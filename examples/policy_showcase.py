#!/usr/bin/env python3
"""Flexibility showcase: four scheduling policies, one middleware.

The paper's central claim is that separating the scheduler from the
generic dispatcher makes HADES flexible: "the provision of various
static and dynamic scheduling policies enables to support a large
range of safety-critical applications".  This example runs the *same*
workload under RM, DM, EDF and Spring planning-based scheduling —
swapping nothing but the ``.policy(...)`` declaration on the fluent
:class:`repro.Scenario` builder — and prints the outcome of each
policy, including the Liu & Layland counterexample where RM fails and
EDF succeeds.

Run:  python examples/policy_showcase.py
"""

from repro import Periodic, Scenario, Task
from repro.core.monitoring import ViolationKind


def make_workload():
    """The classic RM-infeasible / EDF-feasible pair (U = 0.971)."""
    t1 = Task("fast", deadline=500, arrival=Periodic(period=500),
              node_id="cpu")
    t1.code_eu("eu", wcet=200)
    t2 = Task("slow", deadline=700, arrival=Periodic(period=700),
              node_id="cpu")
    t2.code_eu("eu", wcet=400)
    return [t1.validate(), t2.validate()]


def run_policy(name):
    builder = Scenario().node("cpu").policy(name, w_sched=0)
    for task in make_workload():
        builder.task(task, periodic=3_500 // task.arrival.period)
    result = builder.run()
    return {
        "policy": name,
        "completed": result.completed,
        "misses": result.system.monitor.count(ViolationKind.DEADLINE_MISS),
        "rejected": result.scheduler_rejections,
    }


def main() -> None:
    print("One workload, four schedulers (U = 0.971, non-harmonic)")
    print("========================================================")
    print(f"{'policy':>8} {'completed':>10} {'misses':>7} {'rejected':>9}")
    results = {}
    for name in ("rm", "dm", "edf", "spring"):
        outcome = run_policy(name)
        results[name] = outcome
        print(f"{name:>8} {outcome['completed']:>10} "
              f"{outcome['misses']:>7} {outcome['rejected']:>9}")
    print()
    assert results["rm"]["misses"] > 0, "RM is above its bound here"
    assert results["edf"]["misses"] == 0, "EDF sustains U < 1"
    assert results["spring"]["misses"] == 0, \
        "Spring never lets a guaranteed task miss"
    print("RM misses (above its utilisation bound), EDF meets everything,")
    print("Spring sheds load by rejecting instead of missing — all on the")
    print("same dispatcher, task model and cost machinery.")


if __name__ == "__main__":
    main()
