#!/usr/bin/env python3
"""Avionics flight-control application on HADES.

The paper closes by announcing "a large real-time application from the
avionics application domain is planned to be implemented" on HADES.
This example is a synthetic version of that application, exercising
most of the middleware at once:

* three nodes (sensor computer, flight computer, actuator computer)
  connected by the simulated ATM network,
* a distributed HEUG per control cycle: sensor acquisition on node A,
  control law on node B, actuation on node C, connected by *remote
  precedence constraints* that really cross the network,
* EDF scheduling on every node, with dispatcher costs enabled,
* clock synchronisation across the three nodes (drifting clocks),
* the flight-management state actively replicated on all three nodes,
* a fault campaign: a transient lossy link and an actuator-computer
  crash late in the mission; the monitoring services detect both.

Run:  python examples/avionics.py
"""

from repro import HadesSystem
from repro.analysis import response_time_stats
from repro.core import DispatcherCosts, Periodic, Task
from repro.core.monitoring import ViolationKind
from repro.faults import FaultPlan
from repro.scheduling import EDFScheduler
from repro.services import ActiveReplication, ClockSyncService, measure_skew

CYCLE = 20_000          # 20 ms control cycle (50 Hz)
MISSION = 2_000_000     # 2 s of flight


def build_control_cycle() -> Task:
    """One control cycle as a distributed HEUG."""
    cycle = Task("flight_control", deadline=15_000,
                 arrival=Periodic(period=CYCLE), node_id="sensor")
    acquire = cycle.code_eu("acquire", wcet=800, node_id="sensor",
                            action=lambda ctx: ctx.outputs.update(
                                attitude=(ctx.now % 360)))
    filter_eu = cycle.code_eu("filter", wcet=1_200, node_id="sensor")
    law = cycle.code_eu("control_law", wcet=2_500, node_id="flight",
                        action=lambda ctx: ctx.outputs.update(
                            surfaces={"elevator": 1, "rudder": 0}))
    actuate = cycle.code_eu("actuate", wcet=600, node_id="actuator")
    cycle.precede(acquire, filter_eu, param="attitude")
    cycle.precede(filter_eu, law)        # remote: sensor -> flight
    cycle.precede(law, actuate, param="surfaces")  # remote: flight -> actuator
    return cycle.validate()


def main() -> None:
    nodes = ["sensor", "flight", "actuator"]
    system = HadesSystem(
        node_ids=nodes + ["fms"],   # fms: flight-management/ground node
        costs=DispatcherCosts(),
        network_latency=150, network_jitter=30, seed=42,
        clock_drifts={"sensor": 60e-6, "flight": -40e-6,
                      "actuator": 25e-6, "fms": -70e-6})
    for node_id in nodes:
        system.attach_scheduler(EDFScheduler(scope=node_id, w_sched=2))

    # Clock synchronisation across all four computers (f=1).
    group = nodes + ["fms"]
    sync_services = [ClockSyncService(system.network, system.nodes[g],
                                      group, f=1, resync_period=250_000)
                     for g in group]

    # Flight-management state: active replication on the three main
    # computers, driven from the fms node.
    fms = ActiveReplication(system.network, "fms", nodes)

    cycle = build_control_cycle()
    system.register_periodic(cycle, count=MISSION // CYCLE)

    # Mission events: update the replicated flight plan mid-flight.
    system.sim.call_at(500_000,
                       lambda: fms.submit(("set", "waypoint", "WP-7")))
    system.sim.call_at(900_000,
                       lambda: fms.submit(("add", "leg", 1)))

    # Fault campaign: transient loss on the sensor->flight link, then a
    # late actuator-computer crash.
    plan = (FaultPlan(seed=7)
            .link_omission(600_000, "sensor", "flight", probability=0.30)
            .crash(1_700_000, "actuator"))
    plan.apply(system)

    system.run(until=MISSION)

    print("Avionics mission report")
    print("=======================")
    responses = system.dispatcher.response_times("flight_control")
    stats = response_time_stats(responses)
    print(f"control cycles completed: {stats['count']} "
          f"(of {MISSION // CYCLE} released)")
    print(f"cycle response min/mean/p95/max: "
          f"{stats['min']}/{stats['mean']:.0f}/{stats['p95']}"
          f"/{stats['max']} us (deadline 15000)")
    skew = measure_skew([system.nodes[g] for g in group],
                        exclude=["actuator"])
    print(f"post-sync clock skew among live nodes: {skew} us "
          f"(bound {sync_services[0].skew_bound(100e-6)} us)")

    monitor = system.monitor
    print("monitoring summary:")
    for kind in (ViolationKind.DEADLINE_MISS, ViolationKind.NETWORK_OMISSION,
                 ViolationKind.EARLY_TERMINATION):
        print(f"  {kind.value:>20}: {monitor.count(kind)}")

    omissions = monitor.count(ViolationKind.NETWORK_OMISSION)
    misses = monitor.count(ViolationKind.DEADLINE_MISS)
    assert omissions > 0, "the lossy link should be observed"
    assert misses > 0, "cycles hit by drops/crash miss their deadline"
    # Before any fault was injected, every cycle met its deadline.
    early_misses = [v for v in monitor.of_kind(ViolationKind.DEADLINE_MISS)
                    if v.time < 600_000]
    assert not early_misses, "fault-free prefix must be miss-free"
    print("fault-free prefix met every deadline; injected faults were "
          "detected by the monitoring services.")


if __name__ == "__main__":
    main()
