#!/usr/bin/env python3
"""Sensor-driven process control with degradation and recovery.

A reactor-monitoring application (the "nuclear power plants" domain of
the paper's introduction) exercising the event-driven side of the
middleware:

* a temperature **sensor** samples autonomously; each sample raises an
  interrupt that *activates* the control task (§3.1.2's
  interrupt-triggered activation),
* the control task reads the sample, computes, and drives an
  **actuator** (rod position),
* the task declares a **recovery task** (drop rods to a safe position)
  that the middleware activates automatically if the control action
  ever raises,
* a **mode manager** degrades the system to a slower, simpler control
  law if deadline misses pile up — and the run demonstrates both
  mechanisms firing.

Run:  python examples/reactor_control.py
"""

import math

from repro import HadesSystem
from repro.core import DispatcherCosts, EUAttributes, Periodic, Task
from repro.core.monitoring import ViolationKind
from repro.kernel import Actuator, Sensor
from repro.scheduling import EDFScheduler
from repro.services import ModeManager, RecoveryManager


def main() -> None:
    system = HadesSystem(node_ids=["plant"], costs=DispatcherCosts())
    system.attach_scheduler(EDFScheduler(scope="plant", w_sched=2))
    node = system.nodes["plant"]

    # Physical model: temperature oscillates; a spike arrives mid-run.
    def temperature(t: int) -> float:
        base = 550 + 30 * math.sin(t / 300_000)
        if 900_000 <= t <= 1_000_000:
            base += 120  # transient spike
        return base

    sensor = Sensor(node, "core_temp", signal=temperature, period=20_000)
    rods = Actuator(node, "control_rods")

    # Safety recovery: scram — drop the rods fully.
    scram = Task("scram", deadline=5_000, node_id="plant")
    scram.code_eu("drop_rods", wcet=200,
                  attrs=EUAttributes(prio=900),
                  action=lambda ctx: rods.actuate("FULL_INSERT"))

    readings = []

    def control_action(ctx):
        value = sensor.read()
        readings.append(value)
        if value > 650:
            raise RuntimeError(f"temperature out of range: {value:.0f}")
        rods.actuate(round((value - 550) / 100, 3))

    control = Task("pid_control", deadline=15_000, node_id="plant",
                   recovery=scram)
    control.code_eu("law", wcet=2_500, action=control_action)
    system.dispatcher.activate_on_interrupt(sensor.irq, control)

    # Degraded mode: a simpler periodic law at half rate, driven by
    # timers instead of the (possibly failing) sensor.
    degraded = Task("bangbang_control", deadline=35_000,
                    arrival=Periodic(period=40_000), node_id="plant")
    degraded.code_eu("law", wcet=500,
                     action=lambda ctx: rods.actuate("HOLD"))
    manager = ModeManager(system.dispatcher)
    manager.define("nominal", [])          # nominal = sensor-driven
    manager.define("degraded", [degraded])
    manager.switch_to("nominal")
    manager.on_violation(ViolationKind.DEADLINE_MISS, switch_to="degraded",
                         task="pid_control", threshold=3)
    # Leaving nominal means leaving the sensor-driven control path.
    manager.on_switch(lambda switch: sensor.stop()
                      if switch.to_mode == "degraded" else None)

    recovery = RecoveryManager(system.dispatcher)
    recovery.protect(control)

    # A CPU-hogging diagnostic dumps load mid-run and causes misses.
    # The dump runs with a high preemption threshold (a long
    # non-preemptible kernel-ish chore), so control activations pile up
    # behind it and miss.
    hog = Task("diagnostic_dump", deadline=1_000_000, node_id="plant")
    hog.code_eu("dump", wcet=130_000,
                attrs=EUAttributes(prio=1, pt=998))
    system.sim.call_at(1_400_000, lambda: system.activate(hog))

    sensor.start()
    system.run(until=2_000_000)

    print("Reactor control run (2 s)")
    print("=========================")
    print(f"sensor samples: {sensor.samples_taken}, "
          f"control activations: "
          f"{len(system.dispatcher.instances_of('pid_control'))}")
    print(f"actuator commands: {len(rods.commands)}, "
          f"steady jitter: {rods.jitter()} us")
    scrams = [c for c in rods.commands if c[1] == "FULL_INSERT"]
    print(f"scrams triggered by the temperature spike: {len(scrams)}")
    print(f"mode switches: "
          f"{[(s.to_mode, s.time, s.trigger) for s in manager.switches]}")
    print(f"recoveries: {recovery.recoveries_triggered} "
          f"(spike) | misses recorded: "
          f"{system.monitor.count(ViolationKind.DEADLINE_MISS)}")
    assert len(scrams) >= 1, "the spike must trigger the recovery task"
    assert manager.current == "degraded", \
        "the diagnostic overload must degrade the mode"
    print("spike handled by exception recovery; overload handled by a")
    print("mode switch — both without manual intervention.")


if __name__ == "__main__":
    main()
