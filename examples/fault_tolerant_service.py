#!/usr/bin/env python3
"""Fault-tolerance services: replication styles under a crash fault.

Replicates the same deterministic state machine three ways — active,
passive and semi-active (§2.2.1 / Poledna's classification) — crashes
the serving replica mid-run, and reports per-style behaviour: request
latency before the fault, failover time, and state preserved across
the failover.  Persistent storage and dependency tracking make a
cameo: the service state is checkpointed to stable store, and the
dependency tracker shows which downstream computations a corrupted
update would invalidate.

Run:  python examples/fault_tolerant_service.py
"""

from repro.kernel import Node
from repro.network import Network
from repro.services import (
    ActiveReplication,
    DependencyTracker,
    PassiveReplication,
    PersistentStore,
    SemiActiveReplication,
)
from repro.sim import Simulator, Tracer


def build(style):
    sim = Simulator()
    tracer = Tracer(lambda: sim.now)
    net = Network(sim, tracer, base_latency=200)
    for node_id in ("client", "r1", "r2", "r3"):
        net.add_node(Node(sim, node_id, tracer=tracer))
    net.connect_all()
    replicas = ["r1", "r2", "r3"]
    if style == "active":
        svc = ActiveReplication(net, "client", replicas)
    elif style == "passive":
        svc = PassiveReplication(net, "client", replicas,
                                 checkpoint_every=1)
    else:
        svc = SemiActiveReplication(net, "client", replicas)
    return sim, net, svc


def run_style(style):
    sim, net, svc = build(style)
    latencies = []

    def timed_submit(request, **kwargs):
        start = sim.now
        event = svc.submit(request, **kwargs)
        event.add_callback(
            lambda evt: latencies.append(sim.now - start) if evt.ok else None)
        return event

    # Warm-up traffic.
    sim.call_at(1_000, lambda: timed_submit(("set", "altitude", 30_000)))
    sim.call_at(10_000, lambda: timed_submit(("add", "altitude", 500)))
    sim.run(until=40_000)

    # Crash the node currently serving.
    serving = getattr(svc, "primary", None) or getattr(svc, "leader", "r1")
    if style == "active":
        serving = "r1"
        net.nodes[serving].crash()
    else:
        svc.mark_crash()
        net.nodes[serving].crash()

    # Post-fault request must still succeed.
    kwargs = {"retries": 30, "timeout": 20_000} if style == "passive" else {}
    post = None

    def late():
        nonlocal post
        post = timed_submit(("add", "altitude", 250), **kwargs)

    sim.call_in(1_000, late)
    sim.run(until=800_000)
    assert post is not None and post.triggered and post.ok, \
        f"{style}: post-fault request failed"

    failover = None
    if getattr(svc, "failover_times", None):
        failover = svc.failover_times[0]
    machines = getattr(svc, "machines", None)
    if machines is None:
        state = svc.replicas[1].machine.data
    else:
        key = svc.primary if style == "passive" else svc.leader
        state = machines[key].data
    return {
        "style": style,
        "pre_fault_latency": latencies[0],
        "failover_us": failover,
        "altitude": state.get("altitude"),
    }


def main() -> None:
    print("Replication styles under a crash fault")
    print("======================================")
    print(f"{'style':>12} {'pre-fault lat':>14} {'failover':>10} "
          f"{'state after':>12}")
    outcomes = [run_style(style)
                for style in ("active", "passive", "semi-active")]
    for outcome in outcomes:
        failover = (f"{outcome['failover_us']}"
                    if outcome["failover_us"] is not None else "masked")
        print(f"{outcome['style']:>12} {outcome['pre_fault_latency']:>14} "
              f"{failover:>10} {outcome['altitude']:>12}")
    assert all(o["altitude"] == 30_750 for o in outcomes), \
        "every style must preserve 30000 + 500 + 250"
    print()
    print("active replication masks the crash entirely; semi-active pays")
    print("only failure detection; passive adds checkpoint restore and")
    print("request retries.")

    # -- stable storage + dependency tracking cameo -------------------------
    sim = Simulator()
    node = Node(sim, "fms")
    store = PersistentStore(node, write_latency=150)
    store.put("flightplan", ["WP1", "WP2", "WP3"])
    sim.run()
    capture = store.capture({"altitude": 30_750, "leg": 2})
    node.crash()
    node.recover()
    restored = store.restore_capture(capture)
    print(f"state capture survived a crash: {restored}")

    tracker = DependencyTracker()
    tracker.record_write("nav_update#12", "position")
    tracker.record_read("autopilot#40", "position")
    tracker.record_read("display#41", "position")
    casualties = tracker.invalidate("nav_update#12")
    print(f"a corrupted nav update would invalidate: "
          f"{sorted(casualties - {'nav_update#12'})}")


if __name__ == "__main__":
    main()
