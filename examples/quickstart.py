#!/usr/bin/env python3
"""Quickstart: a minimal HADES deployment.

Builds a one-node system, attaches an EDF scheduler, declares two
periodic tasks as HEUGs with the builder idiom (``code_eu`` returns the
unit, ``chain``/``validate`` return the task), runs 100 ms of simulated
time and prints response-time statistics and the monitoring summary.

Everything the example needs comes from the stable ``repro`` facade
(``repro.__all__``); only the response-time helper lives deeper.

Run:  python examples/quickstart.py
"""

from repro import DispatcherCosts, EDFScheduler, HadesSystem, Periodic, Task
from repro.analysis import response_time_stats


def main() -> None:
    # One node, realistic (non-zero) dispatcher costs.
    system = HadesSystem(node_ids=["n0"], costs=DispatcherCosts())
    system.attach_scheduler(EDFScheduler(scope="n0", w_sched=2))

    # Task 1: a 2 ms control computation every 10 ms.  code_eu() returns
    # the created unit; chain() and validate() return the task, so the
    # whole HEUG reads as one builder expression.
    control = Task("control", deadline=10_000,
                   arrival=Periodic(period=10_000), node_id="n0")
    control.chain(
        control.code_eu("sense", wcet=300),
        control.code_eu("compute", wcet=1_500),
        control.code_eu("actuate", wcet=200),
    ).validate()

    # Task 2: a 5 ms logging pass every 50 ms, with a looser deadline.
    logging_task = Task("logger", deadline=40_000,
                        arrival=Periodic(period=50_000), node_id="n0")
    logging_task.code_eu("flush", wcet=5_000)

    system.register_periodic(control, count=10)
    system.register_periodic(logging_task.validate(), count=2)
    system.run(until=100_000)

    print("HADES quickstart")
    print("================")
    for name in ("control", "logger"):
        stats = response_time_stats(system.dispatcher.response_times(name))
        print(f"{name:>8}: {stats['count']} instances, "
              f"response min/mean/max = "
              f"{stats['min']}/{stats['mean']:.0f}/{stats['max']} us")
    print(f"deadline misses: {system.monitor.count()} violations recorded")
    print(f"CPU busy time by category: "
          f"{dict(sorted(system.nodes['n0'].cpu.busy_time.items()))}")
    assert system.monitor.count() == 0, "quickstart should meet every deadline"
    print("every deadline met.")


if __name__ == "__main__":
    main()
