#!/usr/bin/env python3
"""Quickstart: a minimal HADES deployment through the fluent facade.

Declares two periodic tasks as HEUGs with the builder idiom
(``code_eu`` returns the unit, ``chain``/``validate`` return the task),
then stands the deployment up through the blessed :class:`repro.
Scenario` builder — node, scheduler policy and dispatcher costs are one
chained expression instead of four hand-wired layers.  Runs 100 ms of
simulated time and prints response-time statistics and the monitoring
summary.

Everything the example needs comes from the stable ``repro`` facade
(``repro.__all__``); only the response-time helper lives deeper.

Run:  python examples/quickstart.py
"""

from repro import DispatcherCosts, Periodic, Scenario, Task
from repro.analysis import response_time_stats


def main() -> None:
    # Task 1: a 2 ms control computation every 10 ms.  code_eu() returns
    # the created unit; chain() and validate() return the task, so the
    # whole HEUG reads as one builder expression.
    control = Task("control", deadline=10_000,
                   arrival=Periodic(period=10_000), node_id="n0")
    control.chain(
        control.code_eu("sense", wcet=300),
        control.code_eu("compute", wcet=1_500),
        control.code_eu("actuate", wcet=200),
    ).validate()

    # Task 2: a 5 ms logging pass every 50 ms, with a looser deadline.
    logging_task = Task("logger", deadline=40_000,
                        arrival=Periodic(period=50_000), node_id="n0")
    logging_task.code_eu("flush", wcet=5_000)

    # One node, EDF, realistic (non-zero) dispatcher costs — the whole
    # deployment is one fluent declaration.
    result = (Scenario()
              .node("n0")
              .policy("edf", w_sched=2)
              .costs(DispatcherCosts())
              .task(control, periodic=10)
              .task(logging_task.validate(), periodic=2)
              .run(until=100_000))
    system = result.system

    print("HADES quickstart")
    print("================")
    for name in ("control", "logger"):
        stats = response_time_stats(system.dispatcher.response_times(name))
        print(f"{name:>8}: {stats['count']} instances, "
              f"response min/mean/max = "
              f"{stats['min']}/{stats['mean']:.0f}/{stats['max']} us")
    print(f"deadline misses: {system.monitor.count()} violations recorded")
    print(f"CPU busy time by category: "
          f"{dict(sorted(system.nodes['n0'].cpu.busy_time.items()))}")
    assert system.monitor.count() == 0, "quickstart should meet every deadline"
    print("every deadline met.")


if __name__ == "__main__":
    main()
