#!/usr/bin/env python3
"""A safety-critical stock-exchange core on HADES.

The paper's introduction lists stock exchanges among the
safety-critical domains.  This example builds the matching core of
one:

* three **gateway** nodes accept orders and forward them over
  time-bounded reliable channels to the matching node,
* the gateways run **consensus** to agree on the opening auction price
  (one round of FloodSet over their locally observed reference
  prices), tolerating a gateway crash,
* the **matching engine** is a periodic HADES task with a deadline —
  matching must complete within the market-data cycle,
* every trade is committed to **persistent storage** (the audit log),
  which survives a matching-node crash and recovery,
* an **activation watchdog** notices when the matching task's
  activation source stops (the regulatory "market halted" signal).

Run:  python examples/stock_exchange.py
"""

from repro import HadesSystem
from repro.core import DispatcherCosts, Periodic, Task
from repro.core.monitoring import ViolationKind
from repro.scheduling import EDFScheduler
from repro.services import BoundedChannel, PersistentStore
from repro.services.consensus import run_consensus
from repro.services.watchdog import ActivationWatchdog

GATEWAYS = ["gw1", "gw2", "gw3"]
CYCLE = 10_000  # 10 ms matching cycle


def main() -> None:
    system = HadesSystem(node_ids=GATEWAYS + ["match"],
                         costs=DispatcherCosts(), network_latency=120)
    system.attach_scheduler(EDFScheduler(scope="match", w_sched=2))

    # --- Opening auction: gateways agree on the reference price even
    # if one of them crashes mid-protocol.
    observed = {"gw1": 10_025, "gw2": 10_020, "gw3": 10_030}
    services = run_consensus(system.network, GATEWAYS, f=1, inputs=observed)
    system.sim.call_in(500, system.nodes["gw3"].crash)  # crash one gateway
    system.run(until=60_000)
    survivors = [services[g] for g in GATEWAYS
                 if not system.nodes[g].crashed]
    prices = {s.decision for s in survivors}
    assert len(prices) == 1, "gateways must agree on one opening price"
    opening_price = prices.pop()

    # Recover the gateway for the trading session.
    system.nodes["gw3"].recover()

    # --- Order flow over reliable channels.
    channels = {g: BoundedChannel(system.network, g,
                                  retransmit_interval=1_000, max_retries=6)
                for g in GATEWAYS}
    match_channel = BoundedChannel(system.network, "match",
                                   retransmit_interval=1_000, max_retries=6)
    book = {"bids": [], "asks": []}
    match_channel.on_receive(
        lambda src, order: book["bids" if order["side"] == "buy"
                                else "asks"].append(order))

    # --- The matching engine as a deadline-constrained periodic task.
    store = PersistentStore(system.nodes["match"], write_latency=50)
    trades = []

    def match_action(ctx):
        bids = sorted(book["bids"], key=lambda o: -o["price"])
        asks = sorted(book["asks"], key=lambda o: o["price"])
        while bids and asks and bids[0]["price"] >= asks[0]["price"]:
            bid, ask = bids.pop(0), asks.pop(0)
            price = (bid["price"] + ask["price"]) // 2
            trade = {"t": ctx.now, "price": price,
                     "buyer": bid["id"], "seller": ask["id"]}
            trades.append(trade)
            store.put(f"trade#{len(trades)}", trade)
        book["bids"], book["asks"] = bids, asks

    matching = Task("matching", deadline=CYCLE,
                    arrival=Periodic(period=CYCLE), node_id="match")
    matching.code_eu("match", wcet=2_000, action=match_action)
    driver = system.dispatcher.register_periodic(matching)
    watchdog = ActivationWatchdog(system.dispatcher, margin=2_000)
    watchdog.watch(matching)

    # --- A trading session: gateways submit orders around the opening.
    session_start = system.sim.now
    for index in range(60):
        gateway = GATEWAYS[index % 3]
        side = "buy" if index % 2 == 0 else "sell"
        # Buyers bid slightly above, sellers ask slightly below: flow
        # crosses and matches.
        price = opening_price + (5 if side == "buy" else -5) \
            + (index % 7) - 3
        order = {"id": f"{gateway}-{index}", "side": side, "price": price}
        system.sim.call_at(session_start + 1_000 + index * 1_500,
                           lambda g=gateway, o=order:
                           channels[g].send("match", o, size=48))
    system.run(until=session_start + 150_000)

    # --- Market halt: the activation source stops; the watchdog sees it.
    driver.stop()
    halt_time = system.sim.now
    system.run(until=halt_time + 60_000)

    # --- Audit-log durability across a crash.
    system.nodes["match"].crash()
    system.nodes["match"].recover()
    audited = [store.get(f"trade#{i + 1}") for i in range(len(trades))]

    print("Stock-exchange session report")
    print("=============================")
    print(f"opening price (consensus of {len(survivors)} gateways, "
          f"1 crashed): {opening_price}")
    print(f"orders delivered to matching: "
          f"{match_channel._delivered and sum(match_channel._delivered.values())}")
    print(f"trades executed: {len(trades)}; "
          f"matching deadline misses: "
          f"{system.monitor.count(ViolationKind.DEADLINE_MISS)}")
    overdue = [v for v in system.monitor.of_kind(ViolationKind.ARRIVAL_LAW)
               if v.details.get('reason') == 'overdue']
    print(f"market-halt detections by watchdog: {len(overdue)}")
    print(f"audit log intact after crash: "
          f"{all(a is not None for a in audited)} "
          f"({len(audited)} records)")
    assert len(trades) >= 20
    assert system.monitor.count(ViolationKind.DEADLINE_MISS) == 0
    assert overdue, "the watchdog must notice the halt"
    assert all(a is not None for a in audited)
    print("consensus, bounded channels, deadline-scheduled matching,")
    print("durable audit log and halt detection — one middleware.")


if __name__ == "__main__":
    main()
