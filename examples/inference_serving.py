#!/usr/bin/env python3
"""Inference serving on a heterogeneous node (repro.hetero).

An ML inference service shaped as a HEUG: an ingress unit parses the
request on the CPU, four model shards score it, and a reply unit
assembles the response.  Each shard is a *multi-version* Code_EU — an
8 ms CPU implementation and a 900 us GPU kernel (``variants=``) — and
the node owns two non-preemptive GPU units (``engines=``).

The example runs the same request graph three ways:

1. **cpu-only** — every shard on the node's CPU, serialized,
2. **auto-mapped** — :func:`repro.auto_map` offloads the shards to the
   GPUs with the load-balance + critical-path heuristic,
3. **oracle** — exhaustive :func:`repro.enumerate_assignments` search
   for the best possible mapping,

and prints the response times plus the per-engine execution breakdown
of the mapped run (``decompose().executing_by_engine``).

Run:  python examples/inference_serving.py
"""

from repro import (
    DispatcherCosts,
    HadesSystem,
    Task,
    apply_assignment,
    auto_map,
    enumerate_assignments,
)
from repro.obs.spans import decompose, reconstruct

SHARDS = 4
CPU_WCET = 8_000   # the portable C implementation
GPU_WCET = 900     # the CUDA kernel version
ENGINES = {"serve0": {"gpu": 2}}


def build_request() -> Task:
    """ingress -> 4 model shards (multi-version) -> reply."""
    task = Task("inference", deadline=200_000, node_id="serve0")
    ingress = task.code_eu("ingress", wcet=200)
    reply = task.code_eu("reply", wcet=200)
    for i in range(SHARDS):
        shard = task.code_eu(f"shard{i}", wcet=CPU_WCET,
                             variants={"gpu": GPU_WCET})
        task.precede(ingress, shard)
        task.precede(shard, reply)
    return task.validate()


def simulate(task: Task):
    """Run one request to completion; returns (response_us, system)."""
    system = HadesSystem(node_ids=["serve0"],
                         costs=DispatcherCosts.zero(),
                         engines=ENGINES)
    instance = system.activate(task)
    system.run()
    return instance.response_time, system


def main() -> None:
    print("HADES heterogeneous inference serving")
    print("=====================================")
    print(f"{SHARDS} model shards, cpu {CPU_WCET} us / gpu {GPU_WCET} us, "
          f"2 GPU units\n")

    cpu_response, _ = simulate(build_request())
    print(f"cpu-only : {cpu_response:>6} us  (shards serialized on the CPU)")

    mapped_task = build_request()
    assignment = auto_map(mapped_task, {"serve0": ENGINES["serve0"]})
    mapped_response, system = simulate(mapped_task)
    print(f"auto-map : {mapped_response:>6} us  "
          f"(offloaded: {', '.join(assignment.offloaded())})")

    best = None
    for candidate in enumerate_assignments(build_request(),
                                           {"serve0": ENGINES["serve0"]}):
        task = build_request()
        apply_assignment(task, candidate)
        response, _ = simulate(task)
        if best is None or response < best:
            best = response
    print(f"oracle   : {best:>6} us  (exhaustive search, "
          f"2^{SHARDS} mappings)")

    forest = reconstruct(system.tracer)
    breakdown = decompose(next(iter(forest.activations.values())))
    print(f"\nmapped run, executing time by engine class: "
          f"{dict(sorted(breakdown.executing_by_engine.items()))}")
    speedup = cpu_response / mapped_response
    print(f"speedup vs cpu-only: {speedup:.1f}x "
          f"(within {mapped_response / best:.2f}x of the oracle)")

    assert speedup >= 2, "GPU offload should at least halve the response"
    assert mapped_response <= best * 1.10, \
        "heuristic should land within 10% of the oracle"


if __name__ == "__main__":
    main()
