#!/usr/bin/env python3
"""The paper's §5 worked example, end to end.

Implements the complete pipeline of "Example: how HADES can be used to
implement a simple scheduler achieving off-line EDF scheduling
analysis":

1. declare a set of Spuri-model tasks (sporadic, arbitrary deadlines,
   one critical section each — §5.1),
2. translate each into a HEUG per Figure 3,
3. run the **naive** feasibility test (no middleware costs), the
   **HADES modified** test (§5.3: inflated C_i', B_i', scheduler and
   kernel interference withdrawn from deadlines) and the
   **pessimistic** uniform-overhead test,
4. execute the accepted set on the simulated middleware with real
   dispatcher costs, EDF + SRP, and worst-case (synchronous,
   max-rate) arrivals,
5. report analysis vs. observation.

Run:  python examples/edf_feasibility_analysis.py
"""

from repro import HadesSystem
from repro.core import DispatcherCosts
from repro.core.monitoring import ViolationKind
from repro.feasibility import (
    SpuriTask,
    hades_edf_test,
    pessimistic_edf_test,
)
from repro.scheduling import EDFScheduler, SRPProtocol
from repro.workloads import spuri_to_heug

COSTS = DispatcherCosts(c_local=8, c_remote=12, c_start_act=5, c_end_act=5,
                        c_start_inv=6, c_end_inv=6)

TASKS = [
    SpuriTask("attitude", c_before=400, cs=600, c_after=300,
              deadline=4_000, pseudo_period=5_000, resource="imu_bus"),
    SpuriTask("guidance", c_before=900, cs=400, c_after=200,
              deadline=8_000, pseudo_period=9_000, resource="imu_bus"),
    SpuriTask("telemetry", c_before=1_200, cs=0, c_after=0,
              deadline=18_000, pseudo_period=20_000),
]


def run_worst_case(tasks, cycles=5):
    """Execute the set with synchronous max-rate arrivals."""
    system = HadesSystem(node_ids=["cpu"], costs=COSTS)
    system.attach_scheduler(EDFScheduler(scope="cpu", w_sched=2))
    resources = {}
    heugs = [spuri_to_heug(task, "cpu", resources) for task in tasks]
    system.attach_scheduler(SRPProtocol(heugs, scope="cpu", w_sched=1))
    for heug, task in zip(heugs, tasks):
        state = {"n": 0}

        def fire(h=heug, t=task, s=state):
            if s["n"] >= cycles:
                return
            s["n"] += 1
            system.activate(h)
            system.sim.call_in(t.pseudo_period, lambda: fire(h, t, s))

        fire()
    system.run()
    return system


def main() -> None:
    print("Paper §5 worked example: off-line EDF analysis on HADES")
    print("=======================================================")
    print(f"{'task':>10} {'C':>6} {'D':>6} {'P':>6} {'cs':>5} resource")
    for task in TASKS:
        print(f"{task.name:>10} {task.wcet:>6} {task.deadline:>6} "
              f"{task.pseudo_period:>6} {task.cs:>5} "
              f"{task.resource or '-'}")
    utilization = sum(t.utilization for t in TASKS)
    print(f"utilisation: {utilization:.3f}")
    print()

    naive = hades_edf_test(TASKS, costs=DispatcherCosts.zero())
    hades = hades_edf_test(TASKS, costs=COSTS, w_sched=2)
    pessimistic = pessimistic_edf_test(TASKS, overhead_factor=1.5)

    print(f"{'test':>24} {'feasible':>9} {'margin':>8}")
    for name, report in (("naive (no costs)", naive),
                         ("HADES modified (§5.3)", hades),
                         ("pessimistic x1.5", pessimistic)):
        print(f"{name:>24} {str(report.feasible):>9} "
              f"{str(report.margin):>8}")
    print()
    print("inflated WCETs (C_i' per §5.3):")
    for task in TASKS:
        print(f"  {task.name:>10}: C={task.wcet} -> "
              f"C'={hades.inflated_wcets[task.name]}")
    print()

    system = run_worst_case(TASKS)
    misses = system.monitor.count(ViolationKind.DEADLINE_MISS)
    completed = system.dispatcher.completed_instances
    print(f"worst-case execution with real costs: {completed} instances, "
          f"{misses} deadline misses")
    for task in TASKS:
        responses = system.dispatcher.response_times(task.name)
        print(f"  {task.name:>10}: worst observed response "
              f"{max(responses)} us vs deadline {task.deadline} us")
    assert hades.feasible, "the example set is accepted by the HADES test"
    assert misses == 0, "an accepted set must never miss (test safety)"
    print("the §5.3 test's acceptance is confirmed by execution.")


if __name__ == "__main__":
    main()
