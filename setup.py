"""Setuptools shim.

The project is fully described by pyproject.toml; this file exists so
that editable installs work on minimal offline environments where the
`wheel` package (needed for PEP 660 editable wheels) is unavailable:

    pip install -e . --no-use-pep517 --no-build-isolation
"""

from setuptools import setup

setup()
