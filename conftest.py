"""Repository-level pytest configuration.

Puts the repository root on ``sys.path`` so the benchmark modules can
import their shared helpers (``benchmarks.conftest``) regardless of how
pytest was invoked (``pytest ...`` vs ``python -m pytest ...``).
"""

import pathlib
import sys

_ROOT = str(pathlib.Path(__file__).resolve().parent)
if _ROOT not in sys.path:
    sys.path.insert(0, _ROOT)
