"""Tests for cohabitation analysis, Xu93-style static planning and the
Agne-style cyclic executive."""

import pytest

from repro.core import DispatcherCosts
from repro.core.monitoring import ViolationKind
from repro.feasibility import AnalysisTask, SpuriTask
from repro.feasibility.cohabitation import (
    best_effort_slack,
    global_test,
    guaranteed_plus_best_effort,
)
from repro.feasibility.cyclic import (
    build_cyclic_schedule,
    candidate_frames,
    execute_schedule,
)
from repro.scheduling.offline_plan import (
    Job,
    StaticPlan,
    build_plan,
    plan_to_system,
)
from repro.system import HadesSystem


def spuri(name, c, d, p, cs=0, resource=None):
    return SpuriTask(name, c_before=c - cs, cs=cs, c_after=0, deadline=d,
                     pseudo_period=p, resource=resource)


class TestCohabitation:
    def test_global_test_merges_applications(self):
        apps = {
            "appA": [spuri("t", 100, 1_000, 1_000)],
            "appB": [spuri("t", 200, 2_000, 2_000)],
        }
        report = global_test(apps)
        assert report.feasible
        assert set(report.inflated_wcets) == {"appA.t", "appB.t"}

    def test_global_test_sees_cross_application_overload(self):
        apps = {
            "appA": [spuri("t", 700, 1_000, 1_000)],
            "appB": [spuri("t", 600, 1_000, 1_000)],
        }
        assert not global_test(apps).feasible

    def test_slack_decreases_with_load(self):
        light = [spuri("t", 100, 1_000, 1_000)]
        heavy = [spuri("t", 700, 1_000, 1_000)]
        assert best_effort_slack(light, 10_000) > \
            best_effort_slack(heavy, 10_000)

    def test_guaranteed_analysis_ignores_best_effort(self):
        guaranteed = [spuri("ctrl", 300, 1_000, 1_000)]
        flood = [spuri("bulk", 900, 1_000, 1_000)]  # would break a global test
        outcome = guaranteed_plus_best_effort(guaranteed, flood)
        assert outcome["guaranteed"].feasible
        assert not outcome["best_effort_fits_on_average"]

    def test_best_effort_fits_when_light(self):
        guaranteed = [spuri("ctrl", 300, 1_000, 1_000)]
        light = [spuri("bg", 100, 10_000, 10_000)]
        outcome = guaranteed_plus_best_effort(guaranteed, light)
        assert outcome["best_effort_fits_on_average"]
        assert outcome["slack_fraction"] == pytest.approx(0.7, abs=0.01)

    def test_cohabitation_holds_in_execution(self):
        """Option 2 executed: best-effort flood cannot disturb the
        guaranteed application (priorities)."""
        from repro.core import Periodic, Task
        from repro.scheduling import EDFScheduler, FIFOScheduler

        system = HadesSystem(node_ids=["cpu"], costs=DispatcherCosts.zero())
        # Each scheduler manages only its own application (§2.2.1).
        system.attach_scheduler(EDFScheduler(scope="cpu", w_sched=0,
                                             manage_only={"ctrl"}))
        system.attach_scheduler(FIFOScheduler(scope="cpu", w_sched=0,
                                              manage_only={"flood"}))
        guaranteed = Task("ctrl", deadline=1_000,
                          arrival=Periodic(period=1_000), node_id="cpu")
        guaranteed.code_eu("eu", wcet=300)
        system.register_periodic(guaranteed, count=10)
        # Saturating best-effort flood.
        flood = Task("flood", deadline=1_000_000, node_id="cpu")
        flood.code_eu("eu", wcet=50_000)
        system.activate(flood)
        system.run(until=12_000)
        ctrl_misses = [v for v in system.monitor.of_kind(
            ViolationKind.DEADLINE_MISS) if v.task == "ctrl"]
        assert ctrl_misses == []
        assert len(system.dispatcher.response_times("ctrl")) == 10


class TestStaticPlanning:
    def test_simple_chain_on_one_processor(self):
        jobs = [
            Job("a", wcet=100, deadline=500),
            Job("b", wcet=100, deadline=500, predecessors=("a",)),
            Job("c", wcet=100, deadline=500, predecessors=("b",)),
        ]
        plan = build_plan(jobs, ["p0"])
        assert plan is not None
        table = plan.by_name()
        assert table["a"].start == 0
        assert table["b"].start == 100
        assert table["c"].start == 200

    def test_parallel_jobs_use_both_processors(self):
        jobs = [Job(f"j{i}", wcet=100, deadline=200) for i in range(4)]
        plan = build_plan(jobs, ["p0", "p1"])
        assert plan is not None
        assert plan.makespan == 200

    def test_exclusion_serialises_across_processors(self):
        jobs = [
            Job("a", wcet=100, deadline=1_000, exclusion_group="bus"),
            Job("b", wcet=100, deadline=1_000, exclusion_group="bus"),
        ]
        plan = build_plan(jobs, ["p0", "p1"])
        assert plan is not None
        table = plan.by_name()
        first, second = sorted((table["a"], table["b"]),
                               key=lambda p: p.start)
        assert second.start >= first.end  # never overlap despite 2 CPUs

    def test_release_times_respected(self):
        jobs = [Job("late", wcet=50, deadline=500, release=300)]
        plan = build_plan(jobs, ["p0"])
        assert plan.by_name()["late"].start >= 300

    def test_processor_restriction(self):
        jobs = [Job("pinned", wcet=50, deadline=100, processor="p1")]
        plan = build_plan(jobs, ["p0", "p1"])
        assert plan.by_name()["pinned"].processor == "p1"

    def test_infeasible_returns_none(self):
        jobs = [
            Job("a", wcet=300, deadline=400),
            Job("b", wcet=300, deadline=400),
        ]
        assert build_plan(jobs, ["p0"]) is None

    def test_backtracking_recovers_from_greedy_trap(self):
        # EDF-order greedy places "long" first and traps "tight";
        # backtracking must try the other order.
        jobs = [
            Job("long", wcet=300, deadline=400),
            Job("tight", wcet=100, deadline=450),
        ]
        # On one processor EDF order: long (D=400) then tight ends at
        # 400 <= 450: fine.  Make the trap real: tight released late.
        jobs = [
            Job("long", wcet=300, deadline=1_000),
            Job("tight", wcet=100, deadline=200),
        ]
        plan = build_plan(jobs, ["p0"])
        assert plan is not None
        table = plan.by_name()
        assert table["tight"].end <= 200

    def test_validate_rejects_corrupt_plan(self):
        job = Job("a", wcet=100, deadline=150)
        from repro.scheduling.offline_plan import Placement
        bad = StaticPlan([Placement(job, "p0", 100)])  # ends at 200 > 150
        with pytest.raises(ValueError, match="deadline"):
            bad.validate()

    def test_unknown_predecessor_rejected(self):
        with pytest.raises(ValueError, match="unknown predecessor"):
            build_plan([Job("a", wcet=10, deadline=100,
                            predecessors=("ghost",))], ["p0"])

    def test_plan_executes_on_middleware(self):
        jobs = [
            Job("a", wcet=100, deadline=1_000),
            Job("b", wcet=200, deadline=1_000, predecessors=("a",)),
            Job("c", wcet=150, deadline=1_000),
        ]
        plan = build_plan(jobs, ["p0", "p1"])
        system = HadesSystem(node_ids=["p0", "p1"],
                             costs=DispatcherCosts.zero())
        instances = plan_to_system(plan, system)
        system.run()
        table = plan.by_name()
        for name, instance in instances.items():
            eui = list(instance.eu_instances.values())[0]
            assert eui.start_time == table[name].start, name
            assert eui.finish_time == table[name].end, name
        assert system.monitor.count(ViolationKind.DEADLINE_MISS) == 0


class TestCyclicExecutive:
    def harmonic_set(self):
        return [
            AnalysisTask("fast", wcet=20, deadline=100, period=100),
            AnalysisTask("mid", wcet=30, deadline=200, period=200),
            AnalysisTask("slow", wcet=40, deadline=400, period=400),
        ]

    def test_candidate_frames_satisfy_constraints(self):
        import math
        tasks = self.harmonic_set()
        frames = candidate_frames(tasks)
        assert frames  # at least one candidate
        for frame in frames:
            assert frame >= 40
            assert 400 % frame == 0
            for task in tasks:
                assert 2 * frame - math.gcd(frame, task.period) <= \
                    task.deadline

    def test_schedule_covers_all_jobs(self):
        tasks = self.harmonic_set()
        schedule = build_cyclic_schedule(tasks)
        assert schedule is not None
        jobs = [name for _start, names in schedule.table()
                for name in names]
        assert jobs.count("fast") == schedule.major // 100
        assert jobs.count("mid") == schedule.major // 200
        assert jobs.count("slow") == schedule.major // 400

    def test_frame_capacity_never_exceeded(self):
        tasks = self.harmonic_set()
        schedule = build_cyclic_schedule(tasks)
        wcets = {t.name: t.wcet for t in tasks}
        for frame_slot in schedule.frames:
            assert frame_slot.load(wcets) <= schedule.frame

    def test_overloaded_set_unschedulable(self):
        tasks = [
            AnalysisTask("a", wcet=90, deadline=100, period=100),
            AnalysisTask("b", wcet=90, deadline=100, period=100),
        ]
        assert build_cyclic_schedule(tasks) is None

    def test_execution_meets_every_deadline(self):
        tasks = self.harmonic_set()
        schedule = build_cyclic_schedule(tasks)
        system = HadesSystem(node_ids=["cpu"], costs=DispatcherCosts.zero())
        finish_times = execute_schedule(schedule, system, "cpu", cycles=2)
        system.run()
        for task in tasks:
            finishes = sorted(finish_times[task.name])
            assert len(finishes) == 2 * schedule.major // task.period
            for index, finish in enumerate(finishes):
                release = index * task.period
                assert finish <= release + task.deadline, task.name

    def test_explicit_frame_choice(self):
        tasks = self.harmonic_set()
        schedule = build_cyclic_schedule(tasks, frame=100)
        assert schedule is not None
        assert schedule.frame == 100
