"""Tests for synthetic workload generation and HEUG translation."""

import random

import pytest

from repro.core import AccessMode, Resource
from repro.core.attributes import Periodic, Sporadic
from repro.feasibility import SpuriTask, utilization
from repro.workloads import (
    bursty_arrivals,
    harmonic_taskset,
    overload_ramp_arrivals,
    periodic_to_heug,
    random_periodic_taskset,
    random_spuri_taskset,
    spuri_to_heug,
    uunifast,
)


class TestUUniFast:
    def test_sums_to_target(self):
        rng = random.Random(1)
        values = uunifast(8, 0.75, rng)
        assert len(values) == 8
        assert sum(values) == pytest.approx(0.75)

    def test_all_positive(self):
        rng = random.Random(2)
        assert all(u > 0 for u in uunifast(20, 0.9, rng))

    def test_single_task_gets_everything(self):
        rng = random.Random(3)
        assert uunifast(1, 0.5, rng) == [0.5]

    def test_validation(self):
        rng = random.Random(4)
        with pytest.raises(ValueError):
            uunifast(0, 0.5, rng)
        with pytest.raises(ValueError):
            uunifast(3, 1.5, rng)

    def test_deterministic_per_seed(self):
        assert uunifast(5, 0.6, random.Random(9)) == \
            uunifast(5, 0.6, random.Random(9))


class TestRandomTasksets:
    def test_periodic_utilization_close_to_target(self):
        tasks = random_periodic_taskset(10, 0.7, seed=1)
        # Integer rounding loses a little; stay within 10%.
        assert utilization(tasks) == pytest.approx(0.7, abs=0.07)

    def test_periodic_implicit_deadlines(self):
        tasks = random_periodic_taskset(5, 0.5, seed=2)
        assert all(t.deadline == t.period for t in tasks)

    def test_periodic_constrained_deadlines(self):
        tasks = random_periodic_taskset(5, 0.5, seed=2,
                                        implicit_deadline=False)
        assert all(t.deadline <= t.period for t in tasks)
        assert all(t.deadline >= t.wcet for t in tasks)

    def test_spuri_taskset_structure(self):
        tasks = random_spuri_taskset(12, 0.6, seed=3)
        assert len(tasks) == 12
        for task in tasks:
            assert task.wcet == task.c_before + task.cs + task.c_after
            if task.resource is not None:
                assert task.cs > 0
            else:
                assert task.cs == 0

    def test_spuri_resource_names_bounded(self):
        tasks = random_spuri_taskset(30, 0.6, seed=4, n_resources=2,
                                     resource_probability=1.0)
        names = {task.resource for task in tasks}
        assert names <= {"R0", "R1"}

    def test_deterministic(self):
        a = random_spuri_taskset(6, 0.5, seed=7)
        b = random_spuri_taskset(6, 0.5, seed=7)
        assert [(t.name, t.wcet, t.deadline) for t in a] == \
            [(t.name, t.wcet, t.deadline) for t in b]


class TestHarmonic:
    def test_periods_divide_each_other(self):
        tasks = harmonic_taskset(4, 0.9, seed=1)
        periods = [t.period for t in tasks]
        for small, big in zip(periods, periods[1:]):
            assert big % small == 0

    def test_too_many_tasks_rejected(self):
        with pytest.raises(ValueError):
            harmonic_taskset(12, 0.9, seed=1, multipliers=(2, 2))


class TestTranslation:
    def test_figure3_with_resource(self):
        task = SpuriTask("t", c_before=10, cs=20, c_after=5, deadline=500,
                         pseudo_period=500, resource="S")
        resources = {}
        heug = spuri_to_heug(task, "n0", resources, latest_blocking=77)
        assert len(heug.code_eus()) == 3
        assert len(heug.edges) == 2
        names = [eu.name for eu in heug.topological_order()]
        assert names == ["eu1", "eu2", "eu3"]
        eu2 = heug.eus[1]
        assert eu2.wcet == 20
        assert eu2.resources[0][0] is resources["S"]
        assert eu2.resources[0][1] is AccessMode.EXCLUSIVE
        assert eu2.attrs.latest == 77
        assert isinstance(heug.arrival, Sporadic)
        assert heug.deadline == 500

    def test_figure3_without_resource_single_unit(self):
        task = SpuriTask("t", c_before=35, cs=0, c_after=0, deadline=100,
                         pseudo_period=100)
        heug = spuri_to_heug(task, "n0", {})
        assert len(heug.code_eus()) == 1
        assert heug.code_eus()[0].wcet == 35

    def test_resource_objects_shared_across_tasks(self):
        resources = {}
        t1 = SpuriTask("t1", 1, 5, 1, 100, 100, resource="S")
        t2 = SpuriTask("t2", 1, 5, 1, 100, 100, resource="S")
        h1 = spuri_to_heug(t1, "n0", resources)
        h2 = spuri_to_heug(t2, "n0", resources)
        assert h1.eus[1].resources[0][0] is h2.eus[1].resources[0][0]

    def test_actual_fraction_scales_execution(self):
        task = SpuriTask("t", c_before=100, cs=0, c_after=0, deadline=500,
                         pseudo_period=500)
        heug = spuri_to_heug(task, "n0", {}, actual_fraction=0.5)
        eu = heug.code_eus()[0]
        assert eu.resolve_actual({}) == 50
        with pytest.raises(ValueError):
            spuri_to_heug(task, "n0", {}, actual_fraction=0.0)

    def test_periodic_translation(self):
        from repro.feasibility import AnalysisTask
        atask = AnalysisTask("p", wcet=40, deadline=100, period=100)
        heug = periodic_to_heug(atask, "n1")
        assert isinstance(heug.arrival, Periodic)
        assert heug.node_id == "n1"
        assert heug.total_wcet() == 40

    def test_translated_heug_executes(self):
        from repro.core.dispatcher import InstanceState
        from repro.system import HadesSystem
        from repro.core import DispatcherCosts

        system = HadesSystem(node_ids=["n0"], costs=DispatcherCosts.zero())
        task = SpuriTask("t", c_before=10, cs=20, c_after=5, deadline=500,
                         pseudo_period=500, resource="S")
        heug = spuri_to_heug(task, "n0", {})
        instance = system.activate(heug)
        system.run()
        assert instance.state is InstanceState.DONE
        assert instance.response_time == 35


class TestBurstyArrivals:
    def test_burst_structure(self):
        times = bursty_arrivals(1_000, burst_size=3, burst_gap=400,
                                intra_gap=10)
        assert times == [0, 10, 20, 400, 410, 420, 800, 810, 820]

    def test_zero_length_burst_is_legal(self):
        assert bursty_arrivals(1_000, burst_size=0, burst_gap=100) == []

    def test_horizon_is_exclusive_even_mid_burst(self):
        times = bursty_arrivals(415, burst_size=3, burst_gap=400,
                                intra_gap=10)
        # The second burst starts at 400 but only 400 and 410 fit.
        assert times == [0, 10, 20, 400, 410]
        assert bursty_arrivals(0, burst_size=3, burst_gap=100) == []

    def test_jitter_is_deterministic_per_seed(self):
        a = bursty_arrivals(10_000, 2, 500, intra_gap=5, jitter=50, seed=7)
        b = bursty_arrivals(10_000, 2, 500, intra_gap=5, jitter=50, seed=7)
        c = bursty_arrivals(10_000, 2, 500, intra_gap=5, jitter=50, seed=8)
        assert a == b
        assert a != c
        # Jitter shifts burst heads forward only, within the bound.
        heads = a[::2]
        assert all(0 <= head - base <= 50
                   for head, base in zip(heads, range(0, 10_000, 500)))

    def test_validation(self):
        with pytest.raises(ValueError):
            bursty_arrivals(-1, 1, 100)
        with pytest.raises(ValueError):
            bursty_arrivals(100, -1, 100)
        with pytest.raises(ValueError):
            bursty_arrivals(100, 1, 0)
        with pytest.raises(ValueError):
            bursty_arrivals(100, 1, 100, intra_gap=-1)


class TestOverloadRampArrivals:
    def test_ramp_increases_arrival_rate(self):
        times = overload_ramp_arrivals(40_000, wcet=400,
                                       start_load=0.5, peak_load=2.0)
        assert times[0] == 0
        assert all(b > a for a, b in zip(times, times[1:]))
        assert all(0 <= t < 40_000 for t in times)
        gaps = [b - a for a, b in zip(times, times[1:])]
        # Early gaps ~ wcet/0.5 = 800, late gaps approach wcet/2 = 200.
        assert gaps[0] > gaps[-1]
        assert gaps[-1] <= 250

    def test_offered_load_is_parameterized(self):
        # Doubling the peak load roughly doubles the arrival count.
        low = overload_ramp_arrivals(40_000, 400, 1.0, 1.0)
        high = overload_ramp_arrivals(40_000, 400, 2.0, 2.0)
        assert len(low) == 100  # flat load 1.0: one arrival per wcet
        assert len(high) == 200

    def test_deterministic_per_seed(self):
        a = overload_ramp_arrivals(40_000, 400, 0.5, 2.5, jitter=0.3, seed=3)
        b = overload_ramp_arrivals(40_000, 400, 0.5, 2.5, jitter=0.3, seed=3)
        c = overload_ramp_arrivals(40_000, 400, 0.5, 2.5, jitter=0.3, seed=4)
        assert a == b
        assert a != c

    def test_horizon_boundary(self):
        assert overload_ramp_arrivals(0, 400, 1.0, 2.0) == []
        times = overload_ramp_arrivals(401, 400, 1.0, 1.0)
        assert times == [0, 400]

    def test_validation(self):
        with pytest.raises(ValueError):
            overload_ramp_arrivals(-1, 400, 1.0, 2.0)
        with pytest.raises(ValueError):
            overload_ramp_arrivals(100, 0, 1.0, 2.0)
        with pytest.raises(ValueError):
            overload_ramp_arrivals(100, 400, 0.0, 2.0)
        with pytest.raises(ValueError):
            overload_ramp_arrivals(100, 400, 1.0, 2.0, jitter=1.0)
