"""Determinism regression: same seed, same scenario => same trace.

The engine promises reproducible runs (integer time, seeded jitter and
fault randomness, insertion-order tie-breaks).  This pins that promise
at the observable level: two fresh runs of one seeded scenario must
export byte-identical JSONL traces and equal metric reports.
"""

from repro.core import DispatcherCosts, EUAttributes, Periodic, Task
from repro.faults.plan import random_plan
from repro.system import HadesSystem

HORIZON = 300_000
NODES = ["n0", "n1", "n2"]


def run_scenario(jsonl_path, backend=None):
    system = HadesSystem(node_ids=NODES, costs=DispatcherCosts.zero(),
                         network_jitter=25, seed=7, metrics=True,
                         on_deadline_miss="record", backend=backend)
    for i, node_id in enumerate(NODES):
        task = Task(f"pipe{i}", deadline=60_000,
                    arrival=Periodic(period=40_000, phase=i * 3_000))
        src = task.code_eu("src", wcet=300, node_id=node_id,
                           attrs=EUAttributes(prio=10 + i))
        dst = task.code_eu("dst", wcet=200,
                           node_id=NODES[(i + 1) % len(NODES)],
                           attrs=EUAttributes(prio=20 + i))
        task.precede(src, dst)
        system.register_periodic(task, count=6)
    random_plan(NODES, HORIZON, seed=42, crash_count=1,
                omission_links=2, spare_nodes=["n0"]).apply(system)
    system.run(until=HORIZON)
    system.tracer.to_jsonl(str(jsonl_path))
    return system


def test_two_runs_export_identical_jsonl(tmp_path, backend):
    first = run_scenario(tmp_path / "run1.jsonl", backend=backend)
    second = run_scenario(tmp_path / "run2.jsonl", backend=backend)
    bytes1 = (tmp_path / "run1.jsonl").read_bytes()
    bytes2 = (tmp_path / "run2.jsonl").read_bytes()
    assert len(first.tracer) > 50  # the scenario actually did something
    assert bytes1 == bytes2
    # The structured metric reports agree too (meta included: both runs
    # end at the same simulated time with the same record count).
    assert first.run_report().to_dict() == second.run_report().to_dict()
    assert first.run_report().counter("network.messages_dropped") > 0


def test_export_identical_across_backends(tmp_path):
    """The trace contract holds *across* event-set backends, byte for
    byte — the property the swappable engine core rests on."""
    from tests.conftest import BACKENDS

    exports = {}
    for backend in BACKENDS:
        path = tmp_path / f"{backend}.jsonl"
        run_scenario(path, backend=backend)
        exports[backend] = path.read_bytes()
    reference = BACKENDS[0]
    for backend in BACKENDS[1:]:
        assert exports[backend] == exports[reference]


def test_streaming_export_matches_post_hoc_export(tmp_path):
    """Streaming JSONL (written record by record) must equal the batch
    export of an unbounded tracer for the same deterministic run."""
    batch = run_scenario(tmp_path / "batch.jsonl")
    system = HadesSystem(node_ids=NODES, costs=DispatcherCosts.zero(),
                         network_jitter=25, seed=7, metrics=True,
                         on_deadline_miss="record")
    # Rebuild the identical workload, but capture via the stream.
    for i, node_id in enumerate(NODES):
        task = Task(f"pipe{i}", deadline=60_000,
                    arrival=Periodic(period=40_000, phase=i * 3_000))
        src = task.code_eu("src", wcet=300, node_id=node_id,
                           attrs=EUAttributes(prio=10 + i))
        dst = task.code_eu("dst", wcet=200,
                           node_id=NODES[(i + 1) % len(NODES)],
                           attrs=EUAttributes(prio=20 + i))
        task.precede(src, dst)
        system.register_periodic(task, count=6)
    random_plan(NODES, HORIZON, seed=42, crash_count=1,
                omission_links=2, spare_nodes=["n0"]).apply(system)
    with system.tracer.stream_jsonl(str(tmp_path / "stream.jsonl")):
        system.run(until=HORIZON)
    assert (tmp_path / "stream.jsonl").read_bytes() == \
        (tmp_path / "batch.jsonl").read_bytes()
    assert len(system.tracer) == len(batch.tracer)
