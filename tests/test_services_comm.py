"""Tests for communication-oriented services: bounded channels,
reliable broadcast, consensus, fault detection, clock sync."""

import random

import pytest

from repro.kernel import ByzantineClock, HardwareClock, Node
from repro.network import Network, OmissionFault
from repro.services import (
    BoundedChannel,
    ClockSyncService,
    ConsensusService,
    HeartbeatDetector,
    ReliableBroadcast,
    measure_skew,
)
from repro.services.channels import ChannelError
from repro.services.broadcast import make_group
from repro.services.consensus import run_consensus
from repro.sim import Simulator, Tracer


def build_net(n, sim=None, drifts=None, byzantine=(), **kwargs):
    sim = sim or Simulator()
    tracer = Tracer(lambda: sim.now)
    net = Network(sim, tracer, **kwargs)
    drifts = drifts or {}
    for i in range(n):
        node_id = f"n{i}"
        if node_id in byzantine:
            clock = ByzantineClock(sim)
        else:
            clock = HardwareClock(sim, drift=drifts.get(node_id, 0.0))
        net.add_node(Node(sim, node_id, tracer=tracer, clock=clock))
    net.connect_all()
    return sim, net


class TestBoundedChannel:
    def test_delivery_without_faults(self):
        sim, net = build_net(2)
        a = BoundedChannel(net, "n0")
        b = BoundedChannel(net, "n1")
        got = []
        b.on_receive(lambda src, payload: got.append((src, payload)))
        ack = a.send("n1", {"x": 1})
        sim.run()
        assert got == [("n0", {"x": 1})]
        assert ack.triggered and ack.ok

    def test_retransmission_overcomes_bounded_omissions(self):
        sim, net = build_net(2)
        # Drop the first 3 copies; the channel retries up to 5 times.
        fault = OmissionFault(probability=1.0, rng=random.Random(1),
                              max_consecutive=3)
        net.link("n0", "n1").add_fault(fault)
        a = BoundedChannel(net, "n0", retransmit_interval=1_000,
                           max_retries=5)
        b = BoundedChannel(net, "n1")
        got = []
        b.on_receive(lambda src, payload: got.append(payload))
        a.send("n1", "persistent")
        sim.run()
        assert got == ["persistent"]
        assert a.retransmissions >= 3

    def test_delivery_within_bound(self):
        sim, net = build_net(2, base_latency=100)
        fault = OmissionFault(probability=1.0, rng=random.Random(1),
                              max_consecutive=2)
        net.link("n0", "n1").add_fault(fault)
        a = BoundedChannel(net, "n0", retransmit_interval=500, max_retries=4)
        b = BoundedChannel(net, "n1")
        arrival = []
        b.on_receive(lambda src, payload: arrival.append(sim.now))
        a.send("n1", "x")
        sim.run()
        assert arrival[0] <= a.delivery_bound(64)

    def test_gives_up_after_budget(self):
        sim, net = build_net(2)
        net.link("n0", "n1").up = False
        a = BoundedChannel(net, "n0", retransmit_interval=100, max_retries=2)
        BoundedChannel(net, "n1")
        ack = a.send("n1", "doomed")
        sim.run()
        assert a.failed == 1
        assert ack.triggered and not ack.ok
        with pytest.raises(ChannelError):
            _ = ack.value

    def test_duplicates_suppressed(self):
        sim, net = build_net(2, base_latency=5_000)
        # Latency above the retransmit interval: the original and a
        # retransmission both arrive; only one is delivered.
        a = BoundedChannel(net, "n0", retransmit_interval=1_000,
                           max_retries=5)
        b = BoundedChannel(net, "n1")
        got = []
        b.on_receive(lambda src, payload: got.append(payload))
        a.send("n1", "once")
        sim.run()
        assert got == ["once"]
        assert b.duplicates >= 1

    def test_fifo_order_per_peer(self):
        sim, net = build_net(2)
        fault = OmissionFault(probability=0.5, rng=random.Random(7),
                              max_consecutive=2)
        net.link("n0", "n1").add_fault(fault)
        a = BoundedChannel(net, "n0", retransmit_interval=500, max_retries=8)
        b = BoundedChannel(net, "n1")
        got = []
        b.on_receive(lambda src, payload: got.append(payload))
        for i in range(10):
            a.send("n1", i)
        sim.run()
        assert got == list(range(10))

    def test_independent_sequences_per_destination(self):
        sim, net = build_net(3)
        a = BoundedChannel(net, "n0")
        b = BoundedChannel(net, "n1")
        c = BoundedChannel(net, "n2")
        got_b, got_c = [], []
        b.on_receive(lambda src, payload: got_b.append(payload))
        c.on_receive(lambda src, payload: got_c.append(payload))
        a.send("n1", "to_b")
        a.send("n2", "to_c")
        sim.run()
        assert got_b == ["to_b"]
        assert got_c == ["to_c"]


class TestReliableBroadcast:
    def test_validity_all_correct_deliver(self):
        sim, net = build_net(4)
        group = ["n0", "n1", "n2", "n3"]
        endpoints = make_group(net, group)
        delivered = {node_id: [] for node_id in group}
        for node_id, endpoint in endpoints.items():
            endpoint.on_deliver(
                lambda origin, payload, nid=node_id:
                delivered[nid].append(payload))
        endpoints["n0"].broadcast("hello")
        sim.run()
        assert all(delivered[nid] == ["hello"] for nid in group)

    def test_integrity_exactly_once_despite_relays(self):
        sim, net = build_net(4)
        group = ["n0", "n1", "n2", "n3"]
        endpoints = make_group(net, group)
        count = {node_id: 0 for node_id in group}

        def counter(nid):
            def cb(origin, payload):
                count[nid] += 1
            return cb

        for node_id, endpoint in endpoints.items():
            endpoint.on_deliver(counter(node_id))
        endpoints["n1"].broadcast("once")
        sim.run()
        assert all(c == 1 for c in count.values())

    def test_agreement_with_faulty_direct_link(self):
        # n0's direct link to n2 drops everything; n2 still delivers via
        # a relay through n1 or n3.
        sim, net = build_net(4)
        group = ["n0", "n1", "n2", "n3"]
        net.link("n0", "n2").up = False
        endpoints = make_group(net, group)
        got = []
        endpoints["n2"].on_deliver(lambda origin, payload: got.append(payload))
        endpoints["n0"].broadcast("via-relay")
        sim.run()
        assert got == ["via-relay"]

    def test_no_relay_variant_is_not_fault_tolerant(self):
        sim, net = build_net(3)
        group = ["n0", "n1", "n2"]
        net.link("n0", "n2").up = False
        endpoints = make_group(net, group, relay=False)
        got = []
        endpoints["n2"].on_deliver(lambda origin, payload: got.append(payload))
        endpoints["n0"].broadcast("lost")
        sim.run()
        assert got == []  # demonstrates why the relay matters

    def test_timeliness_within_bound(self):
        sim, net = build_net(5, base_latency=100)
        group = [f"n{i}" for i in range(5)]
        endpoints = make_group(net, group)
        times = {}
        for node_id, endpoint in endpoints.items():
            endpoint.on_deliver(
                lambda origin, payload, nid=node_id:
                times.setdefault(nid, sim.now))
        endpoints["n0"].broadcast("timed")
        sim.run()
        bound = endpoints["n1"].delivery_bound(64)
        assert all(t <= bound for t in times.values())

    def test_sender_crash_after_partial_send_still_agrees(self):
        # The sender reaches only n1 (links to n2, n3 cut); relays make
        # everyone else deliver anyway: all-or-none among the correct.
        sim, net = build_net(4)
        group = ["n0", "n1", "n2", "n3"]
        net.link("n0", "n2").up = False
        net.link("n0", "n3").up = False
        endpoints = make_group(net, group)
        delivered = {nid: [] for nid in group}
        for node_id, endpoint in endpoints.items():
            endpoint.on_deliver(
                lambda origin, payload, nid=node_id:
                delivered[nid].append(payload))
        endpoints["n0"].broadcast("partial")
        sim.call_in(1, net.nodes["n0"].crash)
        sim.run()
        assert delivered["n1"] == ["partial"]
        assert delivered["n2"] == ["partial"]
        assert delivered["n3"] == ["partial"]

    def test_multicast_reaches_only_subgroup(self):
        sim, net = build_net(4)
        group = ["n0", "n1", "n2", "n3"]
        endpoints = make_group(net, group)
        delivered = {nid: [] for nid in group}
        for node_id, endpoint in endpoints.items():
            endpoint.on_deliver(
                lambda origin, payload, nid=node_id:
                delivered[nid].append(payload))
        endpoints["n0"].multicast("sub", to=["n0", "n1", "n2"])
        sim.run()
        assert delivered["n1"] == ["sub"]
        assert delivered["n2"] == ["sub"]
        assert delivered["n3"] == []

    def test_sender_must_be_member(self):
        sim, net = build_net(2)
        endpoint = ReliableBroadcast(net, "n0", ["n0", "n1"])
        with pytest.raises(ValueError):
            endpoint.broadcast("x", to=["n1"])

    def test_channel_backed_mode_survives_heavy_loss(self):
        sim, net = build_net(4)
        group = ["n0", "n1", "n2", "n3"]
        for link in net.links.values():
            # str hashes are salted per process: derive the seed
            # deterministically instead.
            seed = sum(map(ord, link.src + link.dst))
            link.add_fault(OmissionFault(probability=0.5,
                                         rng=random.Random(seed),
                                         max_consecutive=3))
        endpoints = make_group(net, group, reliable_links=True,
                               retransmit_interval=500, max_retries=15)
        delivered = {nid: [] for nid in group}
        for node_id, endpoint in endpoints.items():
            endpoint.on_deliver(
                lambda origin, payload, nid=node_id:
                delivered[nid].append(payload))
        endpoints["n0"].broadcast("survives")
        sim.run()
        assert all(delivered[nid] == ["survives"] for nid in group)

    def test_channel_backed_bound_larger_than_diffusion(self):
        sim, net = build_net(3)
        group = ["n0", "n1", "n2"]
        plain = ReliableBroadcast(net, "n0", group)
        backed = ReliableBroadcast(net, "n1", group, reliable_links=True)
        assert backed.delivery_bound(64) > plain.delivery_bound(64)


class TestConsensus:
    def test_agreement_without_faults(self):
        sim, net = build_net(4)
        group = [f"n{i}" for i in range(4)]
        services = run_consensus(net, group, f=1,
                                 inputs={g: f"v{i}"
                                         for i, g in enumerate(group)})
        sim.run()
        decisions = {s.decision for s in services.values()}
        assert len(decisions) == 1
        assert decisions.pop() in {f"v{i}" for i in range(4)}

    def test_validity_single_input(self):
        sim, net = build_net(3)
        group = ["n0", "n1", "n2"]
        services = run_consensus(net, group, f=1,
                                 inputs={g: "same" for g in group})
        sim.run()
        assert all(s.decision == "same" for s in services.values())

    def test_agreement_despite_crash_mid_protocol(self):
        sim, net = build_net(4)
        group = [f"n{i}" for i in range(4)]
        services = run_consensus(net, group, f=1,
                                 inputs={g: f"v{i}"
                                         for i, g in enumerate(group)})
        # Crash n0 between rounds 1 and 2.
        round_len = services["n0"].round_length
        sim.call_in(round_len + round_len // 2, net.nodes["n0"].crash)
        sim.run()
        survivors = [s for nid, s in services.items() if nid != "n0"]
        decisions = {s.decision for s in survivors}
        assert len(decisions) == 1
        assert all(s.rounds_executed == 2 for s in survivors)  # f+1 rounds

    def test_terminates_in_f_plus_one_rounds(self):
        sim, net = build_net(5)
        group = [f"n{i}" for i in range(5)]
        services = run_consensus(net, group, f=2,
                                 inputs={g: g for g in group})
        sim.run()
        assert all(s.rounds_executed == 3 for s in services.values())

    def test_decided_event_carries_value(self):
        sim, net = build_net(3)
        group = ["n0", "n1", "n2"]
        service = ConsensusService(net, "n0", group, f=0)
        for other in ("n1", "n2"):
            ConsensusService(net, other, group, f=0).propose(f"in-{other}")
        evt = service.propose("in-n0")
        sim.run()
        assert evt.triggered
        assert evt.value == service.decision

    def test_invalid_parameters(self):
        sim, net = build_net(2)
        with pytest.raises(ValueError):
            ConsensusService(net, "n0", ["n0", "n1"], f=2)
        with pytest.raises(ValueError):
            ConsensusService(net, "n9", ["n0", "n1"], f=0)

    def test_double_propose_rejected(self):
        sim, net = build_net(2)
        service = ConsensusService(net, "n0", ["n0", "n1"], f=0)
        service.propose(1)
        with pytest.raises(RuntimeError):
            service.propose(2)


class TestHeartbeatDetector:
    def wire(self, sim, net, group, period=10_000):
        for node_id in group:
            HeartbeatDetector.start_heartbeats(net, node_id, group, period)
        detector = HeartbeatDetector(net, group[0], group,
                                     heartbeat_period=period)
        detector.start()
        return detector

    def test_no_false_suspicion(self):
        sim, net = build_net(3)
        detector = self.wire(sim, net, ["n0", "n1", "n2"])
        sim.run(until=200_000)
        assert detector.suspected == set()

    def test_crash_detected_within_timeout(self):
        sim, net = build_net(3)
        detector = self.wire(sim, net, ["n0", "n1", "n2"])
        detected = []
        detector.on_suspect(lambda nid, t: detected.append((nid, t)))
        sim.call_in(50_000, net.nodes["n2"].crash)
        sim.run(until=200_000)
        assert [nid for nid, _t in detected] == ["n2"]
        detection_latency = detected[0][1] - 50_000
        assert detection_latency <= detector.timeout + detector.timeout // 2

    def test_recovered_node_unsuspected(self):
        sim, net = build_net(2)
        group = ["n0", "n1"]
        period = 10_000
        detector = self.wire(sim, net, group, period)
        sim.call_in(30_000, net.nodes["n1"].crash)

        def revive():
            net.nodes["n1"].recover()
            HeartbeatDetector.start_heartbeats(net, "n1", group, period)

        sim.call_in(120_000, revive)
        sim.run(until=110_000)
        assert detector.is_suspected("n1")
        sim.run(until=200_000)
        assert not detector.is_suspected("n1")


class TestClockSync:
    def build_synced(self, n=4, f=1, drifts=None, byzantine=(),
                     period=500_000, jitter=20):
        sim, net = build_net(n, drifts=drifts, byzantine=byzantine,
                             base_latency=100, jitter_bound=jitter, seed=3)
        group = [f"n{i}" for i in range(n)]
        services = [ClockSyncService(net, net.nodes[g], group, f=f,
                                     resync_period=period)
                    for g in group]
        return sim, net, services

    def test_drifting_clocks_converge(self):
        drifts = {"n0": 80e-6, "n1": -60e-6, "n2": 20e-6, "n3": -90e-6}
        sim, net, services = self.build_synced(drifts=drifts)
        # Without sync, skew after 5s would be ~ 170e-6 * 5e6 = 850us.
        sim.run(until=5_000_000)
        skew = measure_skew(list(net.nodes.values()))
        bound = services[0].skew_bound(drift_bound=100e-6)
        assert skew <= bound
        assert all(s.rounds_completed >= 8 for s in services)

    def test_unsynced_baseline_diverges(self):
        drifts = {"n0": 80e-6, "n1": -90e-6}
        sim, net = build_net(2, drifts=drifts)
        sim.call_in(5_000_000, lambda: None)
        sim.run()
        assert measure_skew(list(net.nodes.values())) > 500

    def test_tolerates_byzantine_clock(self):
        drifts = {"n1": 40e-6, "n2": -40e-6, "n3": 10e-6}
        sim, net, services = self.build_synced(
            n=4, f=1, drifts=drifts, byzantine=("n0",))
        sim.run(until=5_000_000)
        correct = [node for nid, node in net.nodes.items() if nid != "n0"]
        skew = measure_skew(correct)
        bound = services[1].skew_bound(drift_bound=100e-6)
        assert skew <= bound

    def test_group_size_validation(self):
        sim, net = build_net(3)
        with pytest.raises(ValueError):
            ClockSyncService(net, net.nodes["n0"], ["n0", "n1", "n2"], f=1)

    def test_membership_validation(self):
        sim, net = build_net(4)
        with pytest.raises(ValueError):
            ClockSyncService(net, net.nodes["n0"], ["n1", "n2", "n3"], f=0)
