"""Tests for kernel synchronisation primitives, devices, and
interrupt-triggered activation."""

import pytest

from repro.core import DispatcherCosts, Task
from repro.core.dispatcher import InstanceState
from repro.kernel import (
    Actuator,
    Compute,
    KBarrier,
    KMutex,
    KSemaphore,
    Node,
    Sensor,
    WaitEvent,
)
from repro.sim import Simulator
from repro.system import HadesSystem


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def node(sim):
    return Node(sim, "n0")


class TestKSemaphore:
    def test_acquire_release_basic(self, sim):
        sem = KSemaphore(sim, initial=1)
        grant = sem.acquire()
        assert grant.triggered
        assert sem.count == 0
        sem.release()
        assert sem.count == 1

    def test_blocking_acquire_wakes_on_release(self, sim, node):
        sem = KSemaphore(sim, initial=1)
        order = []

        def holder():
            yield WaitEvent(sem.acquire())
            yield Compute(100)
            order.append(("holder-done", sim.now))
            sem.release()

        def waiter():
            yield WaitEvent(sem.acquire())
            order.append(("waiter-in", sim.now))
            sem.release()

        node.spawn(holder(), priority=5)
        node.spawn(waiter(), priority=5)
        sim.run()
        assert order == [("holder-done", 100), ("waiter-in", 100)]

    def test_priority_ordered_wakeup(self, sim):
        sem = KSemaphore(sim, initial=0)
        woken = []
        low = sem.acquire(priority=1)
        high = sem.acquire(priority=9)
        low.add_callback(lambda e: woken.append("low"))
        high.add_callback(lambda e: woken.append("high"))
        sem.release()
        sem.release()
        sim.run()
        assert woken == ["high", "low"]

    def test_fifo_among_equal_priorities(self, sim):
        sem = KSemaphore(sim, initial=0)
        woken = []
        first = sem.acquire(priority=5)
        second = sem.acquire(priority=5)
        first.add_callback(lambda e: woken.append("first"))
        second.add_callback(lambda e: woken.append("second"))
        sem.release()
        sem.release()
        sim.run()
        assert woken == ["first", "second"]

    def test_try_acquire(self, sim):
        sem = KSemaphore(sim, initial=1)
        assert sem.try_acquire()
        assert not sem.try_acquire()
        sem.release()
        assert sem.try_acquire()

    def test_counting_semantics(self, sim):
        sem = KSemaphore(sim, initial=3)
        assert sem.acquire().triggered
        assert sem.acquire().triggered
        assert sem.acquire().triggered
        assert not sem.acquire().triggered  # fourth blocks

    def test_negative_initial_rejected(self, sim):
        with pytest.raises(ValueError):
            KSemaphore(sim, initial=-1)

    def test_contention_counted(self, sim):
        sem = KSemaphore(sim, initial=0)
        sem.acquire()
        assert sem.contentions == 1


class TestKMutex:
    def test_release_while_free_rejected(self, sim):
        mutex = KMutex(sim)
        with pytest.raises(RuntimeError):
            mutex.release()

    def test_lock_unlock_cycle(self, sim):
        mutex = KMutex(sim)
        assert mutex.acquire().triggered
        mutex.release()
        assert mutex.acquire().triggered


class TestKBarrier:
    def test_releases_when_full(self, sim):
        barrier = KBarrier(sim, parties=3)
        events = [barrier.wait() for _ in range(2)]
        assert not any(e.triggered for e in events)
        third = barrier.wait()
        assert third.triggered
        assert all(e.triggered for e in events)

    def test_reusable_generations(self, sim):
        barrier = KBarrier(sim, parties=2)
        a1, a2 = barrier.wait(), barrier.wait()
        b1, b2 = barrier.wait(), barrier.wait()
        sim.run()
        assert a1.value == 1 and b1.value == 2

    def test_invalid_parties(self, sim):
        with pytest.raises(ValueError):
            KBarrier(sim, parties=0)


class TestSensor:
    def test_polling_read(self, sim, node):
        sensor = Sensor(node, "temp", signal=lambda t: t // 1000)
        sim.call_in(5_000, lambda: None)
        sim.run()
        assert sensor.read() == 5
        assert sensor.samples_taken == 1

    def test_autonomous_sampling_fires_interrupts(self, sim, node):
        sensor = Sensor(node, "gyro", signal=lambda t: t, period=1_000)
        samples = []
        sensor.on_sample(lambda value: samples.append(value))
        sensor.start()
        sim.run(until=4_500)
        assert len(samples) == 5  # t = 0, 1000, 2000, 3000, 4000
        assert samples[2] == 2_000

    def test_stop_ends_sampling(self, sim, node):
        sensor = Sensor(node, "s", signal=lambda t: 0, period=1_000)
        sensor.start()
        sim.call_at(2_500, sensor.stop)
        sim.run(until=10_000)
        assert sensor.samples_taken == 3

    def test_start_without_period_rejected(self, sim, node):
        sensor = Sensor(node, "s", signal=lambda t: 0)
        with pytest.raises(ValueError):
            sensor.start()

    def test_crashed_node_stops_sampling(self, sim, node):
        sensor = Sensor(node, "s", signal=lambda t: 0, period=1_000)
        sensor.start()
        sim.call_at(1_500, node.crash)
        sim.run(until=10_000)
        assert sensor.samples_taken == 2


class TestActuator:
    def test_records_commands(self, sim, node):
        actuator = Actuator(node, "elevator")
        sim.call_at(100, lambda: actuator.actuate(1.5))
        sim.call_at(300, lambda: actuator.actuate(-0.5))
        sim.run()
        assert actuator.commands == [(100, 1.5), (300, -0.5)]
        assert actuator.last() == (300, -0.5)

    def test_jitter_of_regular_commands_is_zero(self, sim, node):
        actuator = Actuator(node, "a")
        for k in range(5):
            sim.call_at(k * 100, lambda: actuator.actuate(0))
        sim.run()
        assert actuator.jitter() == 0

    def test_jitter_of_irregular_commands(self, sim, node):
        actuator = Actuator(node, "a")
        for when in (0, 100, 350):
            sim.call_at(when, lambda: actuator.actuate(0))
        sim.run()
        assert actuator.jitter() == 150


class TestInterruptTriggeredActivation:
    def test_sensor_interrupt_activates_task(self):
        system = HadesSystem(node_ids=["n0"], costs=DispatcherCosts.zero())
        node = system.nodes["n0"]
        sensor = Sensor(node, "radar", signal=lambda t: t, period=2_000)
        handled = []
        reaction = Task("react", deadline=1_000, node_id="n0")
        reaction.code_eu("process", wcet=100,
                         action=lambda ctx: handled.append(ctx.now))
        system.dispatcher.activate_on_interrupt(sensor.irq, reaction)
        sensor.start()
        system.run(until=7_000)
        # Samples at 0, 2000, 4000, 6000 -> 4 activations.
        assert len(handled) == 4
        instances = system.dispatcher.instances_of("react")
        assert all(i.state is InstanceState.DONE for i in instances)
        # Activation happens after the IRQ handler's WCET (20).
        assert instances[0].activation_time == sensor.irq.wcet

    def test_sporadic_law_monitoring_applies_to_interrupt_activations(self):
        from repro.core import Sporadic
        from repro.core.monitoring import ViolationKind
        system = HadesSystem(node_ids=["n0"], costs=DispatcherCosts.zero())
        node = system.nodes["n0"]
        # A bursty sensor violating the task's declared sporadic law.
        sensor = Sensor(node, "bursty", signal=lambda t: t, period=500,
                        irq_wcet=5)
        reaction = Task("react", deadline=400, arrival=Sporadic(2_000),
                        node_id="n0")
        reaction.code_eu("process", wcet=50)
        system.dispatcher.activate_on_interrupt(sensor.irq, reaction)
        sensor.start()
        system.run(until=3_000)
        assert system.monitor.count(ViolationKind.ARRIVAL_LAW) >= 1
