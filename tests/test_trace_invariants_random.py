"""Randomized trace-replay invariants (§3.2.1 dispatching rules).

For each seed we generate a random HEUG workload (DAG tasks spread over
two nodes, globally unique priorities, a guaranteed deadline miss and —
on some seeds — a sporadic arrival-law violation), run it to
completion, then *replay the trace* record by record, reconstructing
each node's ready set and running thread, and assert the paper's rules:

* running rule — at every settled instant, no runnable thread has a
  priority strictly above the running thread's (per node);
* preemption rule — a ``cpu/preempt`` record names a challenger with a
  strictly higher priority than the preempted thread;
* lifecycle — every dispatched thread was started by the dispatcher
  (``irq:`` kernel handlers excepted), every started thread completes
  exactly once, no orphan threads remain;
* precedence — a unit's thread never starts before all its
  predecessors' ``eu_done`` records (local and remote edges alike);
* earliest-start — first dispatch at or after activation + earliest;
* accounting — violation counters in the :class:`MetricsRegistry`
  match the :class:`ExecutionMonitor`, and dispatcher/cpu counters
  match the trace.
"""

import random

import pytest

from repro.core import DispatcherCosts, EUAttributes, Sporadic, Task
from repro.core.monitoring import ViolationKind
from repro.system import HadesSystem

NODES = ("n0", "n1")
SEEDS = list(range(24))

IRQ_PRIO = 1_000  # PRIO_MAX: kernel interrupt handlers


def build_workload(seed, backend=None):
    """Random DAG tasks + one guaranteed-miss task (+ sporadic abuse)."""
    rng = random.Random(seed)
    system = HadesSystem(node_ids=list(NODES), costs=DispatcherCosts.zero(),
                         metrics=True, on_deadline_miss="record",
                         backend=backend)
    tasks = []
    prios = list(range(10, 60))
    rng.shuffle(prios)
    earliest_offsets = {}  # eu name -> offset

    for t in range(rng.randint(3, 5)):
        task = Task(f"t{t}", deadline=400_000)
        n_eus = rng.randint(2, 4)
        for e in range(n_eus):
            earliest = rng.choice((None, None, None, rng.randint(500, 2_000)))
            name = f"e{e}"
            if earliest is not None:
                earliest_offsets[f"{task.name}/{name}"] = earliest
            task.code_eu(name, wcet=rng.randint(20, 400),
                         node_id=rng.choice(NODES),
                         attrs=EUAttributes(prio=prios.pop(),
                                            earliest=earliest))
        for i in range(n_eus):
            for j in range(i + 1, n_eus):
                if rng.random() < 0.35:
                    task.precede(task.eus[i], task.eus[j])
        tasks.append(task)

    # Guaranteed deadline miss: wcet exceeds the relative deadline.
    late = Task("late", deadline=100, node_id=rng.choice(NODES))
    late.code_eu("l", wcet=300, attrs=EUAttributes(prio=prios.pop()))
    tasks.append(late)

    for task in tasks:
        for _ in range(rng.randint(1, 2)):
            when = rng.randint(0, 20_000)
            system.sim.call_at(when, lambda t=task: system.activate(t))

    expect_arrival_violation = seed % 3 == 0
    if expect_arrival_violation:
        sporadic = Task("spor", arrival=Sporadic(pseudo_period=5_000),
                        node_id="n0")
        sporadic.code_eu("s", wcet=50, attrs=EUAttributes(prio=prios.pop()))
        # 1_200 - 1_000 < pseudo_period: the second request is illegal.
        system.dispatcher.register_arrivals(sporadic, [1_000, 1_200])
        tasks.append(sporadic)

    return system, tasks, earliest_offsets, expect_arrival_violation


class Replay:
    """Per-node ready/running reconstruction from the trace."""

    def __init__(self):
        self.ready = {n: {} for n in NODES}    # name -> priority
        self.running = {n: None for n in NODES}  # name or None
        # Thread names are only unique per node ("irq:net:1" exists on
        # every node), so priorities are keyed by (node, name).
        self.prio = {}                           # (node, name) -> priority
        self.started = {}                        # eu name -> time
        self.first_dispatch = {}                 # eu name -> time
        self.completed = {}                      # eu name -> time
        self.activations = []                    # (task, seq, time)

    def settle(self, time):
        """End-of-instant check: the paper's running rule, per node."""
        for node in NODES:
            run = self.running[node]
            if run is None:
                assert not self.ready[node], (
                    f"t={time} node={node}: idle CPU with runnable "
                    f"threads {sorted(self.ready[node])}")
            else:
                run_prio = self.prio[node, run]
                for name, prio in self.ready[node].items():
                    assert prio <= run_prio, (
                        f"t={time} node={node}: ready {name} (prio {prio}) "
                        f"above running {run} (prio {run_prio})")

    def apply(self, rec):
        d = rec.details
        if rec.category == "dispatcher" and rec.event == "activate":
            self.activations.append((d["task"], d["seq"], rec.time))
        elif rec.category == "dispatcher" and rec.event == "thread_start":
            name, node = d["eu"], d["node"]
            assert name not in self.started, f"{name} started twice"
            self.started[name] = rec.time
            self.prio[node, name] = d["priority"]
            self.ready[node][name] = d["priority"]
        elif rec.category == "cpu" and rec.event == "dispatch":
            node, name = d["node"], d["thread"]
            if (node, name) not in self.prio:
                # Kernel interrupt handlers have no dispatcher start.
                assert name.startswith("irq:"), f"orphan dispatch: {name}"
                self.prio[node, name] = d["priority"]
                self.ready[node][name] = d["priority"]
            assert self.running[node] is None, (
                f"dispatch {name} while {self.running[node]} runs")
            assert name in self.ready[node], f"{name} dispatched, not ready"
            assert d["priority"] == self.prio[node, name]
            del self.ready[node][name]
            self.running[node] = name
            if not name.startswith("irq:"):
                self.first_dispatch.setdefault(name, rec.time)
        elif rec.category == "cpu" and rec.event == "preempt":
            node, name, by = d["node"], d["thread"], d["by"]
            if (node, by) not in self.prio:
                # An interrupt handler may preempt before its own
                # dispatch record; its priority is always PRIO_MAX
                # (checked against the dispatch record that follows).
                assert by.startswith("irq:"), f"orphan challenger: {by}"
                self.prio[node, by] = IRQ_PRIO
                self.ready[node][by] = IRQ_PRIO
            assert self.running[node] == name, "preempted thread not running"
            assert self.prio[node, by] > self.prio[node, name], (
                f"preemption without higher priority: {by} over {name}")
            self.ready[node][name] = self.prio[node, name]
            self.running[node] = None
        elif rec.category == "cpu" and rec.event == "complete":
            node, name = d["node"], d["thread"]
            assert self.running[node] == name, "completed thread not running"
            self.running[node] = None
        elif rec.category == "cpu" and rec.event == "withdraw":
            pytest.fail(f"unexpected withdraw in record-only mode: {d}")
        elif rec.category == "dispatcher" and rec.event == "eu_done":
            name = d["eu"]
            assert name in self.started, f"eu_done for unstarted {name}"
            assert name not in self.completed, f"{name} completed twice"
            self.completed[name] = rec.time


@pytest.mark.parametrize("seed", SEEDS)
def test_trace_replay_invariants(seed, backend):
    system, tasks, earliest_offsets, expect_arrival = build_workload(
        seed, backend=backend)
    system.run()
    graphs = {task.name: task for task in tasks}

    replay = Replay()
    current = None
    for rec in system.tracer.records:
        if current is not None and rec.time != current:
            replay.settle(current)
        current = rec.time
        replay.apply(rec)
    replay.settle(current)

    # Lifecycle: everything started has completed; CPUs drained.
    assert set(replay.completed) == set(replay.started)
    assert all(run is None for run in replay.running.values())
    assert all(not ready for ready in replay.ready.values())
    assert system.monitor.count(ViolationKind.ORPHAN) == 0
    assert system.tracer.count("dispatcher", "instance_abort") == 0

    # Precedence: a unit never starts before its predecessors finish.
    for task_name, seq, activated_at in replay.activations:
        task = graphs[task_name]
        for edge in task.edges:
            src = f"{task_name}#{seq}/{edge.src.name}"
            dst = f"{task_name}#{seq}/{edge.dst.name}"
            assert dst in replay.started, f"{dst} never started"
            assert replay.started[dst] >= replay.completed[src], (
                f"{dst} started before {src} finished")
        # Earliest-start offsets are honoured relative to activation.
        for eu in task.eus:
            offset = earliest_offsets.get(f"{task_name}/{eu.name}")
            if offset is not None:
                name = f"{task_name}#{seq}/{eu.name}"
                assert replay.first_dispatch[name] >= activated_at + offset

    # Accounting: registry counters match the monitor and the trace.
    report = system.run_report()
    tracer = system.tracer
    assert report.counter("dispatcher.activations") == len(replay.activations)
    assert report.counter("dispatcher.thread_starts") == \
        tracer.count("dispatcher", "thread_start") == len(replay.started)
    assert report.counter("dispatcher.eu_completions") == len(replay.completed)
    assert report.counter("cpu.preemptions") == tracer.count("cpu", "preempt")
    assert report.counter("cpu.dispatches") == tracer.count("cpu", "dispatch")
    assert report.counter("violations.total") == system.monitor.count()
    for kind in ViolationKind:
        assert report.counter(f"violations.{kind.value}") == \
            system.monitor.count(kind), kind
    assert system.monitor.count(ViolationKind.DEADLINE_MISS) >= 1
    if expect_arrival:
        assert system.monitor.count(ViolationKind.ARRIVAL_LAW) >= 1


@pytest.mark.parametrize("seed", SEEDS)
def test_trace_identical_across_backends(seed):
    """Cross-backend determinism: every seed's full trace (records and
    details) and metric report must agree between the heapq reference
    and every other event-set backend."""
    from tests.conftest import BACKENDS

    captured = {}
    for backend in BACKENDS:
        system, *_ = build_workload(seed, backend=backend)
        system.run()
        records = [(rec.time, rec.category, rec.event, rec.details)
                   for rec in system.tracer.records]
        captured[backend] = (records, system.run_report().to_dict())
    reference = BACKENDS[0]
    assert len(captured[reference][0]) > 50
    for backend in BACKENDS[1:]:
        assert captured[backend] == captured[reference], \
            f"seed {seed}: backend {backend} diverges from {reference}"
