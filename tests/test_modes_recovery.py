"""Tests for exception handling, recovery and mode switching."""

import pytest

from repro.core import DispatcherCosts, Periodic, Task
from repro.core.dispatcher import InstanceState
from repro.core.monitoring import ViolationKind
from repro.services import ModeManager, RecoveryManager
from repro.system import HadesSystem


def make_system(**kwargs):
    kwargs.setdefault("node_ids", ["n0"])
    kwargs.setdefault("costs", DispatcherCosts.zero())
    return HadesSystem(**kwargs)


def periodic_task(name, wcet, period, deadline=None, node="n0",
                  recovery=None, action=None):
    task = Task(name, deadline=deadline or period,
                arrival=Periodic(period=period), node_id=node,
                recovery=recovery)
    task.code_eu("eu", wcet=wcet, action=action)
    return task


class TestExceptionHandling:
    def test_action_error_activates_recovery_task(self):
        system = make_system()
        recovered = []
        safe = Task("safe_mode_entry", node_id="n0")
        safe.code_eu("enter", wcet=10,
                     action=lambda ctx: recovered.append(ctx.now))
        faulty = Task("faulty", node_id="n0", recovery=safe)

        def explode(ctx):
            raise RuntimeError("sensor range error")

        faulty.code_eu("work", wcet=50, action=explode)
        inst = system.activate(faulty)
        system.run()
        assert inst.state is InstanceState.ABORTED
        assert recovered == [60]  # 50 (work) + 10 (recovery unit)
        assert system.dispatcher.instances_of("safe_mode_entry")[0].state \
            is InstanceState.DONE

    def test_action_error_without_recovery_raises(self):
        system = make_system()
        faulty = Task("faulty", node_id="n0")

        def explode(ctx):
            raise RuntimeError("unhandled")

        faulty.code_eu("work", wcet=10, action=explode)
        system.activate(faulty)
        with pytest.raises(RuntimeError, match="unhandled"):
            system.run()

    def test_recovery_chain_is_possible(self):
        system = make_system()
        order = []
        last_resort = Task("last_resort", node_id="n0")
        last_resort.code_eu("eu", wcet=5,
                            action=lambda ctx: order.append("last"))
        second = Task("second", node_id="n0", recovery=last_resort)

        def also_fails(ctx):
            order.append("second")
            raise RuntimeError("still broken")

        second.code_eu("eu", wcet=5, action=also_fails)
        first = Task("first", node_id="n0", recovery=second)

        def fails(ctx):
            order.append("first")
            raise RuntimeError("broken")

        first.code_eu("eu", wcet=5, action=fails)
        system.activate(first)
        system.run()
        # Action callbacks run before the raise is recorded: first
        # failed, second failed, last resort completed.
        assert order == ["first", "second", "last"]


class TestRecoveryManager:
    def test_deadline_miss_triggers_standard_recovery(self):
        system = make_system()
        recovered = []
        fallback = Task("fallback", node_id="n0")
        fallback.code_eu("eu", wcet=10,
                         action=lambda ctx: recovered.append(ctx.now))
        slow = Task("slow", deadline=100, node_id="n0", recovery=fallback)
        slow.code_eu("eu", wcet=500)
        manager = RecoveryManager(system.dispatcher)
        manager.protect(slow)
        inst = system.activate(slow)
        system.run()
        assert inst.state is InstanceState.ABORTED
        assert manager.recoveries_triggered == 1
        assert len(recovered) == 1
        # Recovery activated promptly after the miss (deadline+1 check).
        assert recovered[0] <= 100 + 1 + 10 + 5

    def test_protect_requires_recovery_task(self):
        system = make_system()
        bare = Task("bare", deadline=100, node_id="n0")
        bare.code_eu("eu", wcet=10)
        manager = RecoveryManager(system.dispatcher)
        with pytest.raises(ValueError):
            manager.protect(bare)

    def test_custom_handler_runs_on_matching_violation(self):
        system = make_system()
        seen = []
        slow = Task("slow", deadline=50, node_id="n0")
        slow.code_eu("eu", wcet=200)
        manager = RecoveryManager(system.dispatcher)
        manager.register(ViolationKind.DEADLINE_MISS, "slow",
                         lambda violation: seen.append(violation.task))
        system.activate(slow)
        system.run()
        assert seen == ["slow"]

    def test_handler_not_called_for_other_tasks(self):
        system = make_system()
        seen = []
        manager = RecoveryManager(system.dispatcher)
        manager.register(ViolationKind.DEADLINE_MISS, "other",
                         lambda violation: seen.append(violation.task))
        slow = Task("slow", deadline=50, node_id="n0")
        slow.code_eu("eu", wcet=200)
        system.activate(slow)
        system.run()
        assert seen == []


class TestModeManager:
    def build(self):
        system = make_system()
        manager = ModeManager(system.dispatcher)
        nominal_done = []
        degraded_done = []
        nominal = periodic_task(
            "nominal_ctrl", wcet=100, period=1_000,
            action=lambda ctx: nominal_done.append(ctx.now))
        degraded = periodic_task(
            "degraded_ctrl", wcet=50, period=2_000,
            action=lambda ctx: degraded_done.append(ctx.now))
        manager.define("nominal", [nominal])
        manager.define("degraded", [degraded])
        return system, manager, nominal_done, degraded_done

    def test_initial_mode_drives_its_tasks(self):
        system, manager, nominal_done, degraded_done = self.build()
        manager.switch_to("nominal")
        system.run(until=5_500)
        assert len(nominal_done) == 6
        assert degraded_done == []

    def test_explicit_switch_stops_old_and_starts_new(self):
        system, manager, nominal_done, degraded_done = self.build()
        manager.switch_to("nominal")
        system.sim.call_at(3_500, lambda: manager.switch_to("degraded"))
        system.run(until=10_000)
        # Nominal fired at 0,1000,2000,3000 then stopped.
        assert len(nominal_done) == 4
        assert len(degraded_done) >= 3
        assert manager.current == "degraded"
        assert [s.to_mode for s in manager.switches] == \
            ["nominal", "degraded"]

    def test_switch_aborts_in_flight_outgoing_instances(self):
        system = make_system()
        manager = ModeManager(system.dispatcher, abort_outgoing=True)
        long_task = periodic_task("long", wcet=5_000, period=10_000)
        idle = periodic_task("idle", wcet=10, period=10_000)
        manager.define("busy", [long_task])
        manager.define("quiet", [idle])
        manager.switch_to("busy")
        system.sim.call_at(1_000, lambda: manager.switch_to("quiet"))
        system.run(until=20_000)
        instance = system.dispatcher.instances_of("long")[0]
        assert instance.state is InstanceState.ABORTED

    def test_violation_policy_switches_mode(self):
        system = make_system()
        manager = ModeManager(system.dispatcher)
        overloaded = periodic_task("overloaded", wcet=900, period=1_000,
                                   deadline=800)
        light = periodic_task("light", wcet=100, period=1_000)
        manager.define("nominal", [overloaded])
        manager.define("degraded", [light])
        manager.on_violation(ViolationKind.DEADLINE_MISS,
                             switch_to="degraded", threshold=2)
        manager.switch_to("nominal")
        system.run(until=20_000)
        assert manager.current == "degraded"
        assert manager.switches[-1].trigger.startswith("deadline_miss")
        # After the switch, no further misses occur.
        switch_time = manager.switches[-1].time
        late_misses = [v for v in system.monitor.of_kind(
            ViolationKind.DEADLINE_MISS) if v.time > switch_time + 1_000]
        assert late_misses == []

    def test_switch_latency_is_recorded_and_small(self):
        system, manager, nominal_done, degraded_done = self.build()
        manager.switch_to("nominal")
        system.sim.call_at(2_500, lambda: manager.switch_to("degraded"))
        system.run(until=6_000)
        switch = manager.switches[-1]
        assert switch.time == 2_500  # switching itself is immediate
        # First degraded activation happens at the switch instant.
        assert degraded_done[0] <= 2_500 + 50 + 1

    def test_duplicate_mode_rejected(self):
        system, manager, *_rest = self.build()
        with pytest.raises(ValueError):
            manager.define("nominal", [])

    def test_unknown_mode_rejected(self):
        system, manager, *_rest = self.build()
        with pytest.raises(ValueError):
            manager.switch_to("ghost")
        with pytest.raises(ValueError):
            manager.on_violation(ViolationKind.DEADLINE_MISS,
                                 switch_to="ghost")

    def test_switch_to_current_mode_is_noop(self):
        system, manager, *_rest = self.build()
        manager.switch_to("nominal")
        manager.switch_to("nominal")
        assert len(manager.switches) == 1

    def test_stopped_driver_generates_nothing(self):
        system = make_system()
        task = periodic_task("p", wcet=10, period=100)
        driver = system.dispatcher.register_periodic(task)
        system.sim.call_at(250, driver.stop)
        system.run(until=1_000)
        assert driver.generated == 3  # t=0, 100, 200
