"""Tests for arrival-registration helpers and overhead reporting."""

import pytest

from repro.analysis.overhead import format_overhead, overhead_report
from repro.core import DispatcherCosts, Sporadic, Task
from repro.core.monitoring import ViolationKind
from repro.system import HadesSystem


def make_system(**kwargs):
    kwargs.setdefault("node_ids", ["n0"])
    return HadesSystem(**kwargs)


class TestArrivalRegistration:
    def test_register_arrivals_fires_at_given_times(self):
        system = make_system(costs=DispatcherCosts.zero())
        task = Task("t", deadline=500, node_id="n0")
        task.code_eu("eu", wcet=10)
        system.dispatcher.register_arrivals(task, [100, 700, 1_500])
        system.run()
        activations = [i.activation_time
                       for i in system.dispatcher.instances_of("t")]
        assert activations == [100, 700, 1_500]

    def test_register_max_rate_uses_pseudo_period(self):
        system = make_system(costs=DispatcherCosts.zero())
        task = Task("s", deadline=400, arrival=Sporadic(1_000),
                    node_id="n0")
        task.code_eu("eu", wcet=10)
        system.dispatcher.register_max_rate(task, count=4)
        system.run()
        activations = [i.activation_time
                       for i in system.dispatcher.instances_of("s")]
        assert activations == [0, 1_000, 2_000, 3_000]
        # Max-rate is exactly legal: no arrival-law violations.
        assert system.monitor.count(ViolationKind.ARRIVAL_LAW) == 0

    def test_register_max_rate_needs_cadence(self):
        system = make_system()
        task = Task("ap", node_id="n0")
        task.code_eu("eu", wcet=10)
        with pytest.raises(ValueError):
            system.dispatcher.register_max_rate(task, count=3)


class TestOverheadReport:
    def test_model_matches_observation(self):
        costs = DispatcherCosts(c_start_act=5, c_end_act=5, c_local=8)
        system = make_system(costs=costs)
        task = Task("t", node_id="n0")
        a = task.code_eu("a", wcet=100)
        b = task.code_eu("b", wcet=50)
        task.precede(a, b)
        system.activate(task)
        system.run()
        report = overhead_report(system)
        assert report["consistent"]
        assert report["ledger_total"] == 2 * 10 + 8
        assert report["totals"]["application"] == 150
        assert 0 < report["overhead_fraction"] < 0.5

    def test_zero_cost_system_has_zero_overhead(self):
        system = make_system(costs=DispatcherCosts.zero())
        task = Task("t", node_id="n0")
        task.code_eu("a", wcet=100)
        system.activate(task)
        system.run()
        report = overhead_report(system)
        assert report["overhead_fraction"] == 0.0
        assert report["consistent"]

    def test_formatting(self):
        system = make_system(costs=DispatcherCosts())
        task = Task("t", node_id="n0")
        task.code_eu("a", wcet=100)
        system.activate(task)
        system.run()
        text = format_overhead(overhead_report(system))
        assert "consistent" in text
        assert "n0:" in text

    def test_idle_system(self):
        system = make_system()
        report = overhead_report(system)
        assert report["busy_total"] == 0
        assert report["overhead_fraction"] == 0.0
