"""Sharded conservative parallel simulation (repro.sim.sharded).

Unit coverage for the partitioner, trace merge and ownership gating,
plus small end-to-end serial-vs-sharded equivalence runs.  The 24-seed
byte-identity harness lives in ``test_sharded_determinism.py``.
"""

import json

import pytest

from repro.core.attributes import Periodic
from repro.core.heug import Task
from repro.scheduling.edf import EDFScheduler
from repro.sim.engine import SimulationError
from repro.sim.sharded import (
    COLOCATION_WEIGHT,
    ShardRunResult,
    _validate_partition,
    auto_partition,
    colocation_weights,
    merge_shard_traces,
    run_sharded,
)
from repro.system import HadesSystem

NODES = ["n0", "n1", "n2", "n3"]


def build_pipeline(system):
    """A shard-agnostic scenario: per-node periodic chains plus
    phase-staggered cross-pair app messages."""
    for i, nid in enumerate(NODES):
        system.attach_scheduler(EDFScheduler(scope=nid))
        task = Task(f"t{nid}", deadline=5_000,
                    arrival=Periodic(period=10_000, phase=1_000 + i * 2_300),
                    node_id=nid)
        a = task.code_eu("a", wcet=300)
        b = task.code_eu("b", wcet=200)
        task.precede(a, b)
        system.register_periodic(task, count=3)
    for i, nid in enumerate(NODES):
        dst = NODES[(i + 2) % 4]
        iface = system.network.interfaces[nid]
        for k in range(3):
            t = 700 + i * 2_300 + k * 10_000
            system.sim.call_at(
                t, lambda iface=iface, dst=dst, k=k:
                iface.send(dst, {"k": k}, size=64))


def scripted(**kwargs):
    kwargs.setdefault("node_ids", NODES)
    kwargs.setdefault("network_jitter", 25)
    kwargs.setdefault("seed", 7)
    return HadesSystem.scripted(build_pipeline, **kwargs)


def trace_bytes(system, tmp_path, name):
    path = tmp_path / name
    system.tracer.to_jsonl(str(path))
    return path.read_bytes()


# --------------------------------------------------------------------------
# auto_partition
# --------------------------------------------------------------------------

class TestAutoPartition:
    def test_no_weights_contiguous_balanced(self):
        assert auto_partition(list("abcde"), 2) == [
            ["a", "b", "c"], ["d", "e"]]
        assert auto_partition(list("abcd"), 4) == [
            ["a"], ["b"], ["c"], ["d"]]

    def test_more_shards_than_nodes_clamps(self):
        assert auto_partition(["a", "b"], 5) == [["a"], ["b"]]

    def test_single_shard_and_empty(self):
        assert auto_partition(["a", "b"], 1) == [["a", "b"]]
        assert auto_partition([], 3) == []
        with pytest.raises(ValueError):
            auto_partition(["a"], 0)

    def test_colocation_weight_merges_pair(self):
        weights = {("a", "d"): COLOCATION_WEIGHT}
        plan = auto_partition(list("abcd"), 2, weights)
        owner = {nid: i for i, group in enumerate(plan) for nid in group}
        assert owner["a"] == owner["d"]
        assert sorted(len(g) for g in plan) == [2, 2]

    def test_traffic_weight_tiebreak(self):
        # b<->c traffic pulls them together; a and d fill the gaps.
        weights = {("b", "c"): 5}
        plan = auto_partition(list("abcd"), 2, weights)
        owner = {nid: i for i, group in enumerate(plan) for nid in group}
        assert owner["b"] == owner["c"]

    def test_infeasible_colocation_raises(self):
        # Three co-located nodes cannot fit a cap-2 shard.
        weights = {("a", "b"): COLOCATION_WEIGHT,
                   ("b", "c"): COLOCATION_WEIGHT,
                   ("a", "c"): COLOCATION_WEIGHT}
        with pytest.raises(ValueError, match="co-located"):
            auto_partition(list("abcd"), 2, weights)

    def test_deterministic(self):
        weights = {("a", "c"): 3, ("b", "d"): 3, ("a", "b"): 1}
        plans = {json.dumps(auto_partition(list("abcdef"), 3, weights))
                 for _ in range(5)}
        assert len(plans) == 1

    def test_covers_every_node_exactly_once(self):
        nodes = [f"n{i}" for i in range(11)]
        weights = {("n1", "n7"): COLOCATION_WEIGHT, ("n2", "n3"): 4}
        plan = auto_partition(nodes, 4, weights)
        flat = sorted(nid for group in plan for nid in group)
        assert flat == sorted(nodes)

    def test_colocation_weights_from_tasks(self):
        system = HadesSystem(node_ids=["n0", "n1", "n2"])
        task = Task("spanning", deadline=1_000)
        a = task.code_eu("a", wcet=10, node_id="n0")
        b = task.code_eu("b", wcet=10, node_id="n1")
        task.precede(a, b)
        system.dispatcher.known_tasks[task.name] = task
        weights = colocation_weights(system.dispatcher)
        # One co-location bump plus one remote-edge traffic unit.
        assert weights == {("n0", "n1"): COLOCATION_WEIGHT + 1}

    def test_spanning_task_colocated_by_auto_partition(self, tmp_path):
        def build(system):
            system.attach_scheduler(EDFScheduler(scope="n0"))
            system.attach_scheduler(EDFScheduler(scope="n1"))
            task = Task("span", deadline=50_000)
            a = task.code_eu("a", wcet=100, node_id="n0")
            b = task.code_eu("b", wcet=100, node_id="n1")
            task.precede(a, b)
            system.dispatcher.register_arrivals(task, [1_000])

        system = HadesSystem.scripted(build, node_ids=NODES)
        result = system.run(until=20_000, shards=2)
        owner = {nid: i for i, group in enumerate(result.partition)
                 for nid in group}
        assert owner["n0"] == owner["n1"]


# --------------------------------------------------------------------------
# _validate_partition
# --------------------------------------------------------------------------

class TestValidatePartition:
    def test_valid(self):
        assert _validate_partition([["a"], ["b", "c"]], list("abc")) == [
            ["a"], ["b", "c"]]

    def test_empty_group(self):
        with pytest.raises(ValueError, match="non-empty"):
            _validate_partition([["a"], []], ["a"])

    def test_overlap(self):
        with pytest.raises(ValueError, match="overlap"):
            _validate_partition([["a"], ["a", "b"]], list("ab"))

    def test_incomplete_cover(self):
        with pytest.raises(ValueError, match="missing \\['c'\\]"):
            _validate_partition([["a"], ["b"]], list("abc"))

    def test_unknown_node(self):
        with pytest.raises(ValueError, match="unknown \\['z'\\]"):
            _validate_partition([["a", "z"], ["b"]], list("ab"))


# --------------------------------------------------------------------------
# Ownership gating on shard replicas
# --------------------------------------------------------------------------

class TestShardReplica:
    def test_foreign_activation_is_noop(self):
        system = HadesSystem(node_ids=["n0", "n1"], owned_nodes=["n0"])
        foreign = Task("f", deadline=1_000, node_id="n1")
        foreign.code_eu("a", wcet=10)
        assert system.activate(foreign) is None
        owned = Task("o", deadline=1_000, node_id="n0")
        owned.code_eu("a", wcet=10)
        assert system.activate(owned) is not None

    def test_spanning_task_raises(self):
        system = HadesSystem(node_ids=["n0", "n1"], owned_nodes=["n0"])
        task = Task("span", deadline=1_000)
        a = task.code_eu("a", wcet=10, node_id="n0")
        b = task.code_eu("b", wcet=10, node_id="n1")
        task.precede(a, b)
        with pytest.raises(ValueError, match="spans shard boundaries"):
            system.activate(task)

    def test_foreign_periodic_driver_is_stopped(self):
        system = HadesSystem(node_ids=["n0", "n1"], owned_nodes=["n0"])
        task = Task("p", deadline=500, arrival=Periodic(period=1_000),
                    node_id="n1")
        task.code_eu("a", wcet=10)
        driver = system.register_periodic(task)
        assert driver.stopped
        system.run(until=5_000)
        assert system.dispatcher.instances_of("p") == []

    def test_foreign_interface_send_is_noop(self):
        system = HadesSystem(node_ids=["n0", "n1"], owned_nodes=["n0"])
        assert system.network.interfaces["n1"].send("n0", "x") is None
        assert system.network.interfaces["n0"].send("n1", "x") is not None

    def test_foreign_scheduler_attach_is_noop(self):
        system = HadesSystem(node_ids=["n0", "n1"], owned_nodes=["n0"])
        before = len(system.tracer)
        system.attach_scheduler(EDFScheduler(scope="n1"))
        assert len(system.tracer) == before
        assert system.dispatcher._schedulers == []

    def test_global_scheduler_raises_on_replica(self):
        system = HadesSystem(node_ids=["n0", "n1"], owned_nodes=["n0"])
        with pytest.raises(ValueError, match="global"):
            system.attach_scheduler(EDFScheduler(scope=None))

    def test_unknown_owned_nodes_raise(self):
        with pytest.raises(ValueError, match="not in node_ids"):
            HadesSystem(node_ids=["n0"], owned_nodes=["nope"])

    def test_cross_shard_send_queues_outbox(self):
        system = HadesSystem(node_ids=["n0", "n1"], owned_nodes=["n0"])
        system.network.interfaces["n0"].send("n1", {"x": 1})
        system.sim.run(until=10)
        outbox = system.network.drain_shard_outbox()
        assert len(outbox) == 1
        message, deliver_at, outcome = outbox[0]
        assert message.dst == "n1" and deliver_at >= 50
        assert outcome == "delivered"
        assert system.network.drain_shard_outbox() == []


# --------------------------------------------------------------------------
# Message-id lanes
# --------------------------------------------------------------------------

class TestMessageIdLanes:
    def test_per_src_lane_independent_of_interleaving(self):
        def ids(order):
            system = HadesSystem(node_ids=["a", "b"])
            out = []
            for src in order:
                dst = "b" if src == "a" else "a"
                out.append(
                    system.network.interfaces[src].send(dst, "x").msg_id)
            return dict(zip(order, out))

        first = ids(["a", "b"])
        second = ids(["b", "a"])
        assert first["a"] == second["a"]
        assert first["b"] == second["b"]

    def test_global_lane_below_node_lanes(self):
        system = HadesSystem(node_ids=["a", "b"])
        anon = system.network.next_msg_id()
        named = system.network.next_msg_id("a")
        assert anon < named


# --------------------------------------------------------------------------
# merge_shard_traces
# --------------------------------------------------------------------------

class TestMergeShardTraces:
    def test_orders_by_time_then_rank(self, tmp_path):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        a.write_text('{"time": 5, "category": "x", "event": "a0"}\n'
                     '{"time": 9, "category": "x", "event": "a1"}\n')
        b.write_text('{"time": 5, "category": "x", "event": "b0"}\n'
                     '{"time": 7, "category": "x", "event": "b1"}\n')
        out = tmp_path / "merged.jsonl"
        assert merge_shard_traces([str(a), str(b)], str(out)) == 4
        events = [json.loads(line)["event"]
                  for line in out.read_text().splitlines()]
        assert events == ["a0", "b0", "b1", "a1"]

    def test_preserves_bytes_verbatim(self, tmp_path):
        a = tmp_path / "a.jsonl"
        line = '{"time": 3, "category": "y", "event": "e", "details": {}}\n'
        a.write_text(line)
        out = tmp_path / "m.jsonl"
        merge_shard_traces([str(a)], str(out))
        assert out.read_text() == line

    def test_falls_back_to_json_parse(self, tmp_path):
        # A line not starting with the canonical prefix still merges.
        a = tmp_path / "a.jsonl"
        a.write_text('{"category": "x", "time": 2, "event": "odd"}\n')
        b = tmp_path / "b.jsonl"
        b.write_text('{"time": 1, "category": "x", "event": "first"}\n')
        out = tmp_path / "m.jsonl"
        merge_shard_traces([str(a), str(b)], str(out))
        events = [json.loads(line)["event"]
                  for line in out.read_text().splitlines()]
        assert events == ["first", "odd"]


# --------------------------------------------------------------------------
# run_sharded end to end
# --------------------------------------------------------------------------

class TestRunSharded:
    def test_requires_scripted_builder(self):
        system = HadesSystem(node_ids=NODES)
        with pytest.raises(SimulationError, match="scripted"):
            system.run(until=1_000, shards=2)

    def test_requires_fresh_system(self):
        system = scripted()
        system.run(until=1_000)
        with pytest.raises(SimulationError, match="fresh"):
            system.run(until=2_000, shards=2)

    def test_rejects_shard_replica(self):
        system = HadesSystem(node_ids=NODES, owned_nodes=["n0"])
        system._builder = lambda s: None
        with pytest.raises(SimulationError, match="replica"):
            run_sharded(system, until=100, shards=2)

    def test_shards_partition_mismatch(self):
        system = scripted()
        with pytest.raises(ValueError, match="contradicts"):
            system.run(until=1_000, shards=3,
                       partition=[NODES[:2], NODES[2:]])

    def test_missing_shard_count(self):
        system = scripted()
        with pytest.raises(ValueError, match="shards=N"):
            run_sharded(system, until=1_000)

    def test_zero_lookahead_raises(self):
        def build(system):
            system.sim.call_at(10, lambda: None)

        system = HadesSystem.scripted(build, node_ids=["a", "b"],
                                      network_latency=0)
        with pytest.raises(SimulationError, match="lookahead"):
            system.run(until=1_000, shards=2)

    def test_single_shard_degenerate(self):
        system = scripted()
        result = system.run(until=30_000, shards=1)
        assert isinstance(result, ShardRunResult)
        assert result.partition == [NODES]
        assert result.lookahead is None and result.windows == 0
        assert result.trace_path is None
        assert system.sim.now == 30_000
        assert len(system.tracer) > 0

    def test_worker_error_propagates(self):
        def build(system):
            def boom():
                raise RuntimeError("shard exploded")
            system.sim.call_at(100, boom)

        system = HadesSystem.scripted(build, node_ids=["a", "b"])
        with pytest.raises(SimulationError, match="shard exploded"):
            system.run(until=1_000, shards=2)

    def test_trace_and_clock_match_serial(self, tmp_path, backend):
        serial = scripted(backend=backend)
        serial.run(until=40_000)
        sharded = scripted(backend=backend)
        result = sharded.run(until=40_000, shards=2)
        assert (trace_bytes(serial, tmp_path, "serial.jsonl")
                == trace_bytes(sharded, tmp_path, "sharded.jsonl"))
        assert sharded.sim.now == serial.sim.now == 40_000
        assert result.lookahead == 50
        assert result.windows > 0 and result.messages > 0

    def test_explicit_partition(self, tmp_path):
        # Byte-identity needs the partition contiguous in builder
        # order: the time-0 construction records of different shards
        # merge in rank order (see the module docstring's same-instant
        # limitation).
        serial = scripted()
        serial.run(until=30_000)
        sharded = scripted()
        result = sharded.run(until=30_000,
                             partition=[["n0"], ["n1", "n2", "n3"]])
        assert result.partition == [["n0"], ["n1", "n2", "n3"]]
        assert (trace_bytes(serial, tmp_path, "s.jsonl")
                == trace_bytes(sharded, tmp_path, "h.jsonl"))

    def test_counter_totals_match_serial_domain_counters(self):
        serial = scripted(metrics=True)
        serial.run(until=40_000)
        serial_counters = {
            name: value
            for name, value in serial.run_report().counters.items()
            if not name.startswith("engine.")}
        sharded = scripted(metrics=True)
        result = sharded.run(until=40_000, shards=2)
        totals = {name: value
                  for name, value in result.counter_totals().items()
                  if not name.startswith("engine.")}
        assert totals == serial_counters

    def test_merged_trace_loaded_into_tracer(self):
        system = scripted()
        result = system.run(until=30_000, shards=2)
        assert result.trace_path is not None
        with open(result.trace_path) as handle:
            merged = sum(1 for _ in handle)
        assert merged == len(system.tracer) > 0

    def test_run_until_none_quiesces(self):
        serial = scripted()
        serial.run()
        sharded = scripted()
        result = sharded.run(shards=2)
        # The sharded clock parks at the last barrier bound, within
        # lookahead-1 past the serial last-event instant.
        assert serial.sim.now <= result.sim_time \
            < serial.sim.now + result.lookahead
        assert len(sharded.tracer) == len(serial.tracer)
