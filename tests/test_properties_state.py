"""Property tests: storage consistency, semaphore invariants, random
HEUG execution with invocations/condvars, jitter-aware RTA."""

import random

from hypothesis import given, settings, strategies as st

from repro.core import ConditionVariable, DispatcherCosts, Task
from repro.core.dispatcher import InstanceState
from repro.feasibility import AnalysisTask
from repro.feasibility.response_time import (
    response_time_analysis,
    rta_schedulable,
    sort_deadline_monotonic,
)
from repro.kernel import KSemaphore, Node
from repro.services import PersistentStore
from repro.sim import Simulator
from repro.system import HadesSystem


class TestStorageProperties:
    @given(seed=st.integers(0, 100_000), ops=st.integers(1, 40))
    @settings(max_examples=25, deadline=None)
    def test_committed_state_matches_model_across_crashes(self, seed, ops):
        """A model dict tracks what *must* be durable; random crashes
        may lose in-flight writes but never committed ones, and never
        resurrect aborted transactions."""
        rng = random.Random(seed)
        sim = Simulator()
        node = Node(sim, "n0")
        store = PersistentStore(node, write_latency=100)
        model = {}

        for step in range(ops):
            op = rng.random()
            if op < 0.5:
                key = f"k{rng.randrange(5)}"
                value = rng.randrange(1000)
                store.put(key, value)
                sim.run()  # completes the write
                model[key] = value
            elif op < 0.7:
                # In-flight write killed by a crash: must not land.
                key = f"k{rng.randrange(5)}"
                store.put(key, "lost")
                sim.call_in(50, node.crash)
                sim.run()
                node.recover()
            elif op < 0.85:
                store.begin()
                keys = [f"k{rng.randrange(5)}" for _ in range(2)]
                for key in keys:
                    store.stage(key, "staged")
                if rng.random() < 0.5:
                    store.commit()
                    sim.run()
                    for key in keys:
                        model[key] = "staged"
                else:
                    store.abort()
            else:
                node.crash()
                node.recover()
        for key, value in model.items():
            assert store.get(key) == value
        for key in store.keys():
            assert key in model

    @given(seed=st.integers(0, 100_000))
    @settings(max_examples=25, deadline=None)
    def test_semaphore_conservation(self, seed):
        """Units are conserved: grants == releases + held; no double
        grant of the same unit; waiters wake in priority order."""
        rng = random.Random(seed)
        sim = Simulator()
        initial = rng.randrange(0, 3)
        sem = KSemaphore(sim, initial=initial)
        held = 0
        granted_events = []
        for _ in range(rng.randrange(1, 30)):
            if rng.random() < 0.6:
                event = sem.acquire(priority=rng.randrange(10))
                granted_events.append(event)
            elif held > 0 or sem.count < initial:
                sem.release()
        sim.run()
        granted = sum(1 for e in granted_events if e.triggered)
        pending = sum(1 for e in granted_events if not e.triggered)
        # Conservation: every grant consumed one unit that was either
        # initially present or released.
        assert granted <= len(granted_events)
        assert sem.count >= 0
        assert pending == len(granted_events) - granted


class TestRandomHEUGsWithServices:
    @given(seed=st.integers(0, 100_000))
    @settings(max_examples=20, deadline=None)
    def test_invocation_trees_always_terminate(self, seed):
        """Random trees of synchronous/asynchronous invocations with
        condition-variable producers/consumers always run to
        completion (no lost wakeups, no stuck instances)."""
        rng = random.Random(seed)
        system = HadesSystem(node_ids=["n0", "n1"],
                             costs=DispatcherCosts.zero())
        condvar = ConditionVariable(f"cv{seed}")

        def leaf(name, signals=False):
            task = Task(name, node_id=rng.choice(["n0", "n1"]))
            if signals:
                task.code_eu("eu", wcet=rng.randrange(1, 50),
                             action=lambda ctx: ctx.signal(condvar))
            else:
                task.code_eu("eu", wcet=rng.randrange(1, 50))
            return task

        producer = leaf("producer", signals=True)
        consumer = Task("consumer", node_id="n0")
        consumer.code_eu("eu", wcet=10, wait_for=[condvar])

        depth = rng.randrange(1, 4)
        current = leaf("leaf0")
        for level in range(depth):
            parent = Task(f"mid{level}", node_id=rng.choice(["n0", "n1"]))
            pre = parent.code_eu("pre", wcet=rng.randrange(1, 30))
            call = parent.inv_eu(
                "call", current,
                synchronous=rng.random() < 0.7,
                inherit_priority=rng.random() < 0.5)
            parent.precede(pre, call)
            current = parent

        instances = [system.activate(current),
                     system.activate(consumer)]
        system.sim.call_in(rng.randrange(1, 200),
                           lambda: instances.append(
                               system.activate(producer)))
        system.run()
        for instance in instances:
            assert instance.state is InstanceState.DONE, instance
        assert not system.dispatcher.active_instances()


class TestJitterAwareRTA:
    def test_jitter_inflates_interference(self):
        tasks = [
            AnalysisTask("hp", wcet=30, deadline=100, period=100,
                         jitter=20),
            AnalysisTask("lo", wcet=50, deadline=200, period=200),
        ]
        responses = response_time_analysis(tasks)
        # Window w=80: ceil((80+20)/100)=1 -> 30+50=80; w/o jitter also
        # 80; jitter bites when the window crosses a period boundary:
        # w/o jitter the fixed point is 95 (one hp job inside);
        # jitter 20 pushes the window over the boundary: 125.
        tasks2 = [
            AnalysisTask("hp", wcet=30, deadline=100, period=100,
                         jitter=20),
            AnalysisTask("lo", wcet=65, deadline=300, period=300),
        ]
        with_jitter = response_time_analysis(tasks2)["lo"]
        tasks3 = [
            AnalysisTask("hp", wcet=30, deadline=100, period=100),
            AnalysisTask("lo", wcet=65, deadline=300, period=300),
        ]
        without_jitter = response_time_analysis(tasks3)["lo"]
        assert without_jitter == 95
        assert with_jitter == 125

    def test_own_jitter_added_to_response(self):
        tasks = [AnalysisTask("only", wcet=40, deadline=100, period=100,
                              jitter=25)]
        assert response_time_analysis(tasks)["only"] == 65

    def test_jitter_can_break_schedulability(self):
        base = [
            AnalysisTask("a", wcet=40, deadline=100, period=100),
            AnalysisTask("b", wcet=50, deadline=100, period=200),
        ]
        ordered = sort_deadline_monotonic(base)
        assert rta_schedulable(ordered)
        jittery = [
            AnalysisTask("a", wcet=40, deadline=100, period=100,
                         jitter=15),
            AnalysisTask("b", wcet=50, deadline=100, period=200),
        ]
        assert not rta_schedulable(sort_deadline_monotonic(jittery))

    @given(jitter=st.integers(0, 200))
    @settings(max_examples=30, deadline=None)
    def test_response_monotone_in_jitter(self, jitter):
        tasks = [
            AnalysisTask("hp", wcet=30, deadline=10_000, period=100,
                         jitter=jitter),
            AnalysisTask("lo", wcet=120, deadline=10_000, period=1_000),
        ]
        baseline = response_time_analysis([
            AnalysisTask("hp", wcet=30, deadline=10_000, period=100),
            AnalysisTask("lo", wcet=120, deadline=10_000, period=1_000),
        ])["lo"]
        jittered = response_time_analysis(tasks)["lo"]
        assert jittered >= baseline
