"""Unit tests for the simulated network substrate."""

import random

import pytest

from repro.kernel import Node
from repro.network import (
    DeliveryOutcome,
    Message,
    Network,
    OmissionFault,
    PerformanceFault,
)
from repro.sim import Simulator, Tracer


@pytest.fixture
def sim():
    return Simulator()


def make_net(sim, n=2, **kwargs):
    tracer = Tracer(lambda: sim.now)
    net = Network(sim, tracer, **kwargs)
    for i in range(n):
        net.add_node(Node(sim, f"n{i}", tracer=tracer))
    net.connect_all()
    return net


class TestBasicDelivery:
    def test_message_arrives_with_payload(self, sim):
        net = make_net(sim)
        received = []
        net.interfaces["n1"].on_receive(lambda m: received.append(m.payload))
        net.interfaces["n0"].send("n1", {"x": 1})
        sim.run()
        assert received == [{"x": 1}]

    def test_delivery_within_guaranteed_bound(self, sim):
        net = make_net(sim, base_latency=100, jitter_bound=30, seed=7)
        inbox = []
        net.interfaces["n1"].on_receive(lambda m: inbox.append(m))
        net.interfaces["n0"].send("n1", "hi", size=10)
        sim.run()
        irq_wcet = net.nodes["n1"].net_irq.wcet
        bound = net.link("n0", "n1").guaranteed_bound(10) + irq_wcet
        assert len(inbox) == 1
        # Receive completes only after the IRQ handler WCET.
        assert sim.now <= bound

    def test_size_cost_scales_latency(self, sim):
        net = make_net(sim, base_latency=10, size_cost_per_byte=2)
        times = {}

        def on_recv(m):
            times[m.payload] = sim.now

        net.interfaces["n1"].on_receive(on_recv)
        net.interfaces["n0"].send("n1", "small", size=1)
        sim.run()
        t_small = times["small"]
        net.interfaces["n0"].send("n1", "big", size=100)
        sim.run()
        t_big = times["big"] - t_small
        assert t_big > t_small

    def test_fifo_links_preserve_order(self, sim):
        net = make_net(sim)
        order = []
        net.interfaces["n1"].on_receive(lambda m: order.append(m.payload))
        for i in range(5):
            net.interfaces["n0"].send("n1", i)
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_kind_filtered_receivers(self, sim):
        net = make_net(sim)
        app, sync = [], []
        net.interfaces["n1"].on_receive(lambda m: app.append(m.payload),
                                        kind="app")
        net.interfaces["n1"].on_receive(lambda m: sync.append(m.payload),
                                        kind="clocksync")
        net.interfaces["n0"].send("n1", 1, kind="app")
        net.interfaces["n0"].send("n1", 2, kind="clocksync")
        sim.run()
        assert app == [1]
        assert sync == [2]

    def test_inbox_accumulates_and_drains(self, sim):
        net = make_net(sim)
        net.interfaces["n0"].send("n1", "a")
        net.interfaces["n0"].send("n1", "b")
        sim.run()
        drained = net.interfaces["n1"].drain_inbox()
        assert [m.payload for m in drained] == ["a", "b"]
        assert net.interfaces["n1"].drain_inbox() == []

    def test_no_route_counted(self, sim):
        net = make_net(sim)
        net.interfaces["n0"].send("ghost", "x")
        sim.run()
        assert net.lost_no_route == 1

    def test_full_mesh_topology(self, sim):
        net = make_net(sim, n=4)
        assert len(net.links) == 4 * 3
        assert net.node_ids() == ["n0", "n1", "n2", "n3"]

    def test_duplicate_node_rejected(self, sim):
        net = make_net(sim)
        with pytest.raises(ValueError):
            net.add_node(Node(sim, "n0"))


class TestCrashSemantics:
    def test_crashed_receiver_gets_nothing(self, sim):
        net = make_net(sim)
        received = []
        net.interfaces["n1"].on_receive(lambda m: received.append(m))
        net.nodes["n1"].crash()
        net.interfaces["n0"].send("n1", "lost")
        sim.run()
        assert received == []

    def test_crashed_sender_cannot_send(self, sim):
        net = make_net(sim)
        net.nodes["n0"].crash()
        assert net.interfaces["n0"].send("n1", "x") is None

    def test_message_in_flight_to_crashing_node_lost(self, sim):
        net = make_net(sim, base_latency=100)
        received = []
        net.interfaces["n1"].on_receive(lambda m: received.append(m))
        net.interfaces["n0"].send("n1", "x")
        sim.call_in(50, net.nodes["n1"].crash)  # crash mid-flight
        sim.run()
        assert received == []


class TestFaults:
    def test_omission_fault_drops_planned_ids(self, sim):
        net = make_net(sim)
        received = []
        net.interfaces["n1"].on_receive(lambda m: received.append(m.payload))
        m1 = net.interfaces["n0"].send("n1", "keep")
        fault = OmissionFault(drop_ids=set())
        net.link("n0", "n1").add_fault(fault)
        m2 = net.interfaces["n0"].send("n1", "keep2")
        sim.run()
        fault.drop_ids.add(m2.msg_id + 1)
        m3 = net.interfaces["n0"].send("n1", "dropme")
        assert m3.msg_id == m2.msg_id + 1
        sim.run()
        assert "dropme" not in received
        assert fault.dropped == 1

    def test_probabilistic_omission_is_deterministic_per_seed(self, sim):
        def run(seed):
            s = Simulator()
            net = make_net(s)
            fault = OmissionFault(probability=0.5, rng=random.Random(seed))
            net.link("n0", "n1").add_fault(fault)
            got = []
            net.interfaces["n1"].on_receive(lambda m: got.append(m.payload))
            for i in range(20):
                net.interfaces["n0"].send("n1", i)
            s.run()
            return got

        assert run(5) == run(5)
        assert run(5) != run(6) or len(run(5)) < 20

    def test_max_consecutive_omissions_bounded(self, sim):
        net = make_net(sim)
        fault = OmissionFault(probability=1.0, rng=random.Random(0),
                              max_consecutive=2)
        net.link("n0", "n1").add_fault(fault)
        got = []
        net.interfaces["n1"].on_receive(lambda m: got.append(m.payload))
        for i in range(9):
            net.interfaces["n0"].send("n1", i)
        sim.run()
        # Pattern: drop, drop, deliver, drop, drop, deliver, ...
        assert got == [2, 5, 8]

    def test_performance_fault_delivers_late(self, sim):
        net = make_net(sim, base_latency=10)
        link = net.link("n0", "n1")
        link.add_fault(PerformanceFault(extra_delay=10_000))
        arrival = []
        net.interfaces["n1"].on_receive(lambda m: arrival.append(sim.now))
        net.interfaces["n0"].send("n1", "slow", size=0)
        sim.run()
        assert arrival[0] > link.guaranteed_bound(0)
        assert link.stats[DeliveryOutcome.LATE] == 1

    def test_partition_and_heal(self, sim):
        net = make_net(sim, n=4)
        got = []
        net.interfaces["n3"].on_receive(lambda m: got.append(m.payload))
        net.partition(["n0", "n1"], ["n2", "n3"])
        net.interfaces["n0"].send("n3", "blocked")
        sim.run()
        assert got == []
        net.heal()
        net.interfaces["n0"].send("n3", "through")
        sim.run()
        assert got == ["through"]

    def test_omission_probability_validation(self):
        with pytest.raises(ValueError):
            OmissionFault(probability=1.5)
        with pytest.raises(ValueError):
            OmissionFault(probability=0.5)  # no rng

    def test_burst_serialised_by_net_irq_pseudo_period(self, sim):
        net = make_net(sim, base_latency=10)
        arrivals = []
        net.interfaces["n1"].on_receive(lambda m: arrivals.append(sim.now))
        for i in range(3):
            net.interfaces["n0"].send("n1", i)
        sim.run()
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        pseudo = net.nodes["n1"].net_irq.pseudo_period
        assert all(g >= pseudo for g in gaps)


class TestMessage:
    def test_latency_observable_after_delivery(self, sim):
        net = make_net(sim, base_latency=75)
        msg = net.interfaces["n0"].send("n1", "x", size=0)
        assert msg.latency == -1
        sim.run()
        assert msg.latency == 75

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Message(src="a", dst="b", payload=None, size=-1)

    def test_unique_ids(self):
        a = Message(src="a", dst="b", payload=None)
        b = Message(src="a", dst="b", payload=None)
        assert a.msg_id != b.msg_id

    def test_max_message_delay_over_topology(self, sim):
        net = make_net(sim, n=3, base_latency=40, jitter_bound=0)
        assert net.max_message_delay(0) == 40


class _FixedRng:
    """Deterministic jitter source: always draws the same value."""

    def __init__(self, value):
        self.value = value

    def randrange(self, _lo, hi):
        assert self.value < hi
        return self.value


def make_link(sim, inbox, base_latency=100, jitter_bound=0, jitter=None,
              **kwargs):
    from repro.network.link import Link

    tracer = Tracer(lambda: sim.now)
    rng = _FixedRng(jitter) if jitter is not None else None
    link = Link(sim, tracer, "a", "b", base_latency=base_latency,
                jitter_bound=jitter_bound, rng=rng, **kwargs)
    link.connect(lambda m: inbox.append((m.payload, sim.now)))
    return link


class TestLateBoundary:
    """LATE means delivered past the guaranteed bound — decided at
    delivery time, whatever combination of fault delay, jitter and FIFO
    push-back produced the delivery instant."""

    def test_exactly_at_bound_is_not_late(self, sim):
        inbox = []
        link = make_link(sim, inbox, base_latency=100, jitter_bound=50,
                         jitter=50)
        link.transmit(Message(src="a", dst="b", payload="x", size=0))
        sim.run()
        assert inbox == [("x", 150)]  # == guaranteed_bound(0)
        assert link.stats[DeliveryOutcome.DELIVERED] == 1
        assert link.stats[DeliveryOutcome.LATE] == 0

    def test_one_past_bound_is_late(self, sim):
        inbox = []
        link = make_link(sim, inbox, base_latency=100, jitter_bound=50,
                         jitter=50)
        link.add_fault(PerformanceFault(extra_delay=1))
        outcome = link.transmit(Message(src="a", dst="b", payload="x",
                                        size=0))
        sim.run()
        assert outcome is DeliveryOutcome.LATE
        assert inbox == [("x", 151)]
        assert link.stats[DeliveryOutcome.LATE] == 1

    def test_fault_delay_absorbed_by_jitter_headroom_is_on_time(self, sim):
        # A lucky draw leaves headroom below the bound: a fault delay
        # smaller than that headroom is invisible to the receiver.
        inbox = []
        link = make_link(sim, inbox, base_latency=100, jitter_bound=50,
                         jitter=0)
        fault = PerformanceFault(extra_delay=30)
        link.add_fault(fault)
        outcome = link.transmit(Message(src="a", dst="b", payload="x",
                                        size=0))
        sim.run()
        assert fault.delayed == 1
        assert outcome is DeliveryOutcome.DELIVERED
        assert inbox == [("x", 130)]  # bound is 150
        assert link.stats[DeliveryOutcome.LATE] == 0
        assert link.stats[DeliveryOutcome.DELIVERED] == 1

    def test_size_dependent_bound_exactly_at_bound_is_not_late(self, sim):
        # The bound grows with the message size; a max-jitter delivery
        # of a sized message lands exactly ON guaranteed_bound(size)
        # and must stay DELIVERED.  Regression: comparing against
        # guaranteed_bound(0) would flag every sized message LATE.
        inbox = []
        link = make_link(sim, inbox, base_latency=100, jitter_bound=50,
                         jitter=50, size_cost_per_byte=2)
        message = Message(src="a", dst="b", payload="x", size=64)
        outcome = link.transmit(message)
        sim.run()
        bound = link.guaranteed_bound(64)
        assert bound == 100 + 2 * 64 + 50
        assert inbox == [("x", bound)]
        assert message.deliver_time - message.send_time == bound
        assert outcome is DeliveryOutcome.DELIVERED
        assert link.stats[DeliveryOutcome.LATE] == 0
        assert link.stats[DeliveryOutcome.DELIVERED] == 1

    def test_size_dependent_bound_one_past_is_late(self, sim):
        inbox = []
        link = make_link(sim, inbox, base_latency=100, jitter_bound=50,
                         jitter=50, size_cost_per_byte=2)
        link.add_fault(PerformanceFault(extra_delay=1))
        outcome = link.transmit(Message(src="a", dst="b", payload="x",
                                        size=64))
        sim.run()
        assert inbox == [("x", link.guaranteed_bound(64) + 1)]
        assert outcome is DeliveryOutcome.LATE
        assert link.stats[DeliveryOutcome.LATE] == 1

    def test_fifo_pushback_past_bound_is_late(self, sim):
        # msg1 is delayed way past the bound; msg2 is healthy but FIFO
        # push-back parks it behind msg1 — also past ITS bound: LATE.
        inbox = []
        link = make_link(sim, inbox, base_latency=100)
        link.add_fault(PerformanceFault(extra_delay=500))
        link.transmit(Message(src="a", dst="b", payload=1, size=0))
        link.clear_faults()
        outcome = link.transmit(Message(src="a", dst="b", payload=2,
                                        size=0))
        sim.run()
        assert outcome is DeliveryOutcome.LATE
        assert inbox == [(1, 600), (2, 600)]  # order preserved
        assert link.stats[DeliveryOutcome.LATE] == 2
        assert link.stats[DeliveryOutcome.DELIVERED] == 0


class TestLinkFaultEdges:
    def test_fifo_order_preserved_under_jitter(self, sim):
        net = make_net(sim, base_latency=100, jitter_bound=80, seed=42)
        order, times = [], []

        def on_recv(m):
            order.append(m.payload)
            times.append(sim.now)

        net.interfaces["n1"].on_receive(on_recv)
        for i in range(10):
            net.interfaces["n0"].send("n1", i)
        sim.run()
        assert order == list(range(10))
        assert times == sorted(times)

    def test_max_consecutive_zero_never_drops(self, sim):
        net = make_net(sim)
        fault = OmissionFault(probability=1.0, rng=random.Random(0),
                              max_consecutive=0)
        net.link("n0", "n1").add_fault(fault)
        got = []
        net.interfaces["n1"].on_receive(lambda m: got.append(m.payload))
        for i in range(5):
            net.interfaces["n0"].send("n1", i)
        sim.run()
        assert got == [0, 1, 2, 3, 4]
        assert fault.dropped == 0

    def test_max_consecutive_resets_after_forced_delivery(self, sim):
        # drop_ids ask for 1,2,3,4 to be dropped; the cap of 2 forces 3
        # through, then the run restarts and 4 drops again.
        net = make_net(sim)
        ids = {}

        def capture(m):
            ids.setdefault(m.payload, m.msg_id)

        sent = []
        for i in range(6):
            msg = Message(src="n0", dst="n1", payload=i,
                          msg_id=1000 + i)
            sent.append(msg)
        fault = OmissionFault(drop_ids={1001, 1002, 1003, 1004},
                              max_consecutive=2)
        link = net.link("n0", "n1")
        link.add_fault(fault)
        got = []
        net.interfaces["n1"].on_receive(lambda m: got.append(m.payload))
        for msg in sent:
            link.transmit(msg)
        sim.run()
        assert got == [0, 3, 5]
        assert fault.dropped == 3

    def test_crashed_destination_counts_dst_crashed(self, sim):
        net = make_net(sim, base_latency=50)
        link = net.link("n0", "n1")
        net.nodes["n1"].crash()
        net.interfaces["n0"].send("n1", "lost")
        sim.run()
        assert link.stats[DeliveryOutcome.DST_CRASHED] == 1
        assert link.stats[DeliveryOutcome.DELIVERED] == 0
        assert net.interfaces["n1"].received_count == 0

    def test_recovered_destination_delivers_again(self, sim):
        net = make_net(sim, base_latency=50)
        link = net.link("n0", "n1")
        net.nodes["n1"].crash()
        net.interfaces["n0"].send("n1", "lost")
        sim.run()
        net.nodes["n1"].recover()
        got = []
        net.interfaces["n1"].on_receive(lambda m: got.append(m.payload))
        net.interfaces["n0"].send("n1", "through")
        sim.run()
        assert got == ["through"]
        assert link.stats[DeliveryOutcome.DST_CRASHED] == 1
        assert link.stats[DeliveryOutcome.DELIVERED] == 1
