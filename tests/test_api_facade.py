"""The stable public facade, the metrics= contract, trace filtering,
and the event-set backend selection plumbing."""

import io
import json
import warnings

import pytest

import repro
from repro.obs.metrics import (
    NULL_METRICS,
    MetricsRegistry,
    NullMetricsRegistry,
    resolve_metrics,
)
from repro.sim.engine import CalendarSimulator, Simulator
from repro.sim.event_set import BACKEND_ENV
from repro.sim.trace import TraceRecord, Tracer
from repro.system import HadesSystem


class TestFacade:
    def test_all_names_resolve(self):
        missing = [name for name in repro.__all__
                   if not hasattr(repro, name)]
        assert missing == []

    def test_core_surface_is_exported(self):
        for name in ("HadesSystem", "Task", "CodeEU", "InvEU",
                     "EUAttributes", "Periodic", "DispatcherCosts",
                     "EDFScheduler", "RMScheduler", "Campaign",
                     "MetricsRegistry", "resolve_metrics", "Tracer"):
            assert name in repro.__all__, name

    def test_facade_classes_are_canonical(self):
        # The facade re-exports, it does not wrap: identity must hold
        # so isinstance checks work across import paths.
        from repro.core.heug import Task as deep_task
        from repro.faults import Campaign as deep_campaign
        assert repro.Task is deep_task
        assert repro.Campaign is deep_campaign

    def test_hetero_surface_is_exported(self):
        for name in ("EngineClass", "HeterogeneousPool", "Assignment",
                     "map_task", "apply_assignment", "auto_map",
                     "cpu_only", "enumerate_assignments"):
            assert name in repro.__all__, name

    def test_hetero_facade_names_are_canonical(self):
        from repro.hetero.engines import EngineClass as deep_class
        from repro.hetero.engines import HeterogeneousPool as deep_pool
        from repro.hetero.mapping import auto_map as deep_auto
        assert repro.EngineClass is deep_class
        assert repro.HeterogeneousPool is deep_pool
        assert repro.auto_map is deep_auto

    def test_minimal_deployment_through_facade_only(self):
        system = repro.HadesSystem(node_ids=["n0"],
                                   costs=repro.DispatcherCosts.zero())
        task = repro.Task("t", deadline=1_000, node_id="n0")
        task.code_eu("a", wcet=10)
        inst = system.activate(task.validate())
        system.run()
        assert inst.response_time == 10


class TestBackendSelection:
    """Plumbing for the swappable event-set core: precedence is
    explicit ``backend=`` argument > ``REPRO_SIM_BACKEND`` environment
    override > the heapq default."""

    def test_facade_exports_backend_helpers(self):
        assert "available_backends" in repro.__all__
        assert "resolve_backend" in repro.__all__
        from repro.sim.event_set import available_backends as deep
        assert repro.available_backends is deep
        assert set(repro.available_backends()) == {"heapq", "calendar"}

    def test_default_is_heapq(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert repro.resolve_backend() == "heapq"
        system = HadesSystem(node_ids=["n0"])
        assert system.backend == "heapq"
        assert type(system.sim) is Simulator

    def test_env_override_wins_over_default(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "calendar")
        assert repro.resolve_backend() == "calendar"
        system = HadesSystem(node_ids=["n0"])
        assert system.backend == "calendar"
        assert type(system.sim) is CalendarSimulator

    def test_explicit_argument_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "calendar")
        assert repro.resolve_backend("heapq") == "heapq"
        system = HadesSystem(node_ids=["n0"], backend="heapq")
        assert system.backend == "heapq"
        assert type(system.sim) is Simulator

    def test_system_backend_passthrough(self):
        system = HadesSystem(node_ids=["n0"], backend="calendar")
        assert system.backend == "calendar"
        assert type(system.sim) is CalendarSimulator
        assert system.sim.backend == "calendar"

    @pytest.mark.parametrize("bad", ["nope", "HEAPQ", "calender", ""])
    def test_invalid_backend_name_raises_clear_error(self, bad):
        with pytest.raises(ValueError) as excinfo:
            HadesSystem(node_ids=["n0"], backend=bad)
        message = str(excinfo.value)
        assert repr(bad) in message
        assert "heapq" in message and "calendar" in message
        with pytest.raises(ValueError):
            Simulator(backend=bad)

    def test_invalid_env_value_names_the_variable(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "bogus")
        with pytest.raises(ValueError) as excinfo:
            HadesSystem(node_ids=["n0"])
        assert BACKEND_ENV in str(excinfo.value)

    @pytest.mark.parametrize("unset", ["", "   ", "\t", " \n "])
    def test_empty_or_whitespace_env_means_unset(self, unset, monkeypatch):
        # `REPRO_SIM_BACKEND= python ...` and stray whitespace must fall
        # through to the default, not raise.
        monkeypatch.setenv(BACKEND_ENV, unset)
        assert repro.resolve_backend() == "heapq"
        system = HadesSystem(node_ids=["n0"])
        assert system.backend == "heapq"

    def test_env_value_is_stripped(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "  calendar\n")
        assert repro.resolve_backend() == "calendar"
        assert type(HadesSystem(node_ids=["n0"]).sim) is CalendarSimulator

    def test_misspelled_env_value_still_raises(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, " calender ")
        with pytest.raises(ValueError) as excinfo:
            repro.resolve_backend()
        message = str(excinfo.value)
        assert BACKEND_ENV in message and "'calender'" in message

    def test_backends_behave_identically_through_facade(self):
        responses = {}
        for backend in repro.available_backends():
            system = repro.HadesSystem(node_ids=["n0"],
                                       costs=repro.DispatcherCosts.zero(),
                                       backend=backend)
            task = repro.Task("t", deadline=1_000, node_id="n0")
            task.code_eu("a", wcet=10)
            inst = system.activate(task.validate())
            system.run()
            responses[backend] = inst.response_time
        assert set(responses.values()) == {10}

    def test_version_bumped_for_backend_surface(self):
        assert repro.__version__ == "1.7.0"


class TestResolveMetrics:
    def test_none_and_false_resolve_to_shared_null(self):
        assert resolve_metrics(None) is NULL_METRICS
        assert resolve_metrics(False) is NULL_METRICS

    def test_true_creates_fresh_registry(self):
        first = resolve_metrics(True)
        second = resolve_metrics(True)
        assert isinstance(first, MetricsRegistry)
        assert first is not second

    def test_registries_pass_through(self):
        registry = MetricsRegistry()
        assert resolve_metrics(registry) is registry
        null = NullMetricsRegistry()
        assert resolve_metrics(null) is null

    def test_duck_typed_object_warns_deprecation(self):
        class Homemade:
            enabled = True

            def counter(self, name):
                raise NotImplementedError

        homemade = Homemade()
        with pytest.warns(DeprecationWarning):
            resolved = resolve_metrics(homemade)
        assert resolved is homemade

    def test_every_subsystem_accepts_bool_metrics(self):
        system = HadesSystem(node_ids=["n0"], metrics=True)
        assert isinstance(system.metrics, MetricsRegistry)
        assert system.sim.metrics is system.metrics
        assert system.nodes["n0"].cpu.metrics is system.metrics
        assert system.network.metrics is system.metrics
        assert system.dispatcher.metrics is system.metrics

        disabled = HadesSystem(node_ids=["n0"], metrics=False)
        assert disabled.metrics is NULL_METRICS
        assert disabled.sim.metrics is NULL_METRICS


class TestTraceFiltering:
    def test_filtered_category_returns_none_and_counts(self):
        tracer = Tracer(clock=lambda: 0, categories={"keep"})
        kept = tracer.record("keep", "ev", x=1)
        dropped = tracer.record("drop", "ev", x=2)
        assert kept is not None and dropped is None
        assert len(tracer) == 1
        assert tracer.filtered == 1
        assert tracer.records[0].category == "keep"

    def test_filtered_records_skip_listeners_and_index(self):
        tracer = Tracer(clock=lambda: 0, categories={"keep"})
        seen = []
        tracer.subscribe(seen.append)
        tracer.record("drop", "ev")
        tracer.record("keep", "ev")
        assert [entry.category for entry in seen] == ["keep"]
        assert tracer.count("drop") == 0
        assert tracer.count("keep") == 1

    def test_set_categories_chains_and_reopens(self):
        tracer = Tracer(clock=lambda: 0).set_categories({"a"})
        assert tracer.categories == frozenset({"a"})
        tracer.record("b", "ev")
        assert len(tracer) == 0
        tracer.set_categories(None)
        tracer.record("b", "ev")
        assert len(tracer) == 1

    def test_system_trace_categories_passthrough(self):
        system = HadesSystem(node_ids=["n0"],
                             trace_categories={"dispatcher"})
        task = repro.Task("t", deadline=1_000, node_id="n0")
        task.code_eu("a", wcet=10)
        system.activate(task)
        system.run()
        categories = {entry.category for entry in system.tracer}
        assert categories == {"dispatcher"}
        assert system.tracer.filtered > 0

    def test_filtered_export_matches_select_of_unfiltered(self, tmp_path):
        # Same scenario traced fully and with a filter: the filtered
        # JSONL must be byte-identical to the full trace restricted to
        # the allowed category.
        def run(categories):
            system = HadesSystem(node_ids=["n0"],
                                 trace_categories=categories)
            task = repro.Task("t", deadline=1_000, node_id="n0")
            task.code_eu("a", wcet=10)
            system.activate(task)
            system.run()
            return system

        full = run(None)
        filtered = run({"cpu"})
        full_path = tmp_path / "full.jsonl"
        filtered_path = tmp_path / "filtered.jsonl"
        full.tracer.to_jsonl(full_path)
        filtered.tracer.to_jsonl(filtered_path)
        full_cpu_lines = [line for line in
                          full_path.read_text().splitlines()
                          if json.loads(line)["category"] == "cpu"]
        assert filtered_path.read_text().splitlines() == full_cpu_lines


class TestTraceRecordCompat:
    def test_equality_and_repr_match_old_dataclass_shape(self):
        one = TraceRecord(5, "cpu", "dispatch", {"thread": "x"})
        two = TraceRecord(5, "cpu", "dispatch", {"thread": "x"})
        other = TraceRecord(6, "cpu", "dispatch", {"thread": "x"})
        assert one == two
        assert one != other
        assert repr(one) == ("TraceRecord(time=5, category='cpu', "
                             "event='dispatch', details={'thread': 'x'})")
        assert str(one) == "[         5] cpu/dispatch thread=x"

    def test_slots_and_default_details(self):
        entry = TraceRecord(1, "c", "e")
        assert entry.details == {}
        assert not hasattr(entry, "__dict__")
