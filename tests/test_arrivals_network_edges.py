"""Tests for arrival-trace generation, Figure 2 notification-ordering
precision, and network edge cases."""

import random

import pytest

from hypothesis import given, settings, strategies as st

from repro.core import DispatcherCosts, EUAttributes, Periodic, Sporadic, Task
from repro.core.monitoring import ViolationKind
from repro.kernel import Node
from repro.network import DeliveryOutcome, Network
from repro.scheduling import EDFScheduler
from repro.sim import Simulator, Tracer
from repro.system import HadesSystem
from repro.workloads.arrivals import (
    periodic_arrivals,
    sporadic_arrivals,
    validate_arrivals,
)


class TestArrivalTraces:
    def test_periodic_without_jitter_is_exact(self):
        law = Periodic(period=1_000, phase=250)
        times = periodic_arrivals(law, horizon=5_000)
        assert times == [250, 1_250, 2_250, 3_250, 4_250]
        assert validate_arrivals(times, law)

    def test_periodic_jitter_bounds_gaps(self):
        law = Periodic(period=1_000)
        times = periodic_arrivals(law, horizon=100_000, jitter=200, seed=3)
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(800 <= g <= 1_200 for g in gaps)
        # With jitter the matching declared law is the relaxed one.
        assert validate_arrivals(times, Sporadic(pseudo_period=800))

    @given(seed=st.integers(0, 10_000),
           burstiness=st.floats(0.0, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_sporadic_arrivals_always_legal(self, seed, burstiness):
        law = Sporadic(pseudo_period=1_000)
        times = sporadic_arrivals(law, horizon=60_000, seed=seed,
                                  burstiness=burstiness)
        assert times and times[0] == 0
        assert validate_arrivals(times, law)

    def test_burstiness_increases_arrival_count(self):
        law = Sporadic(pseudo_period=1_000)
        relaxed = sporadic_arrivals(law, horizon=200_000, seed=1,
                                    burstiness=0.0)
        bursty = sporadic_arrivals(law, horizon=200_000, seed=1,
                                   burstiness=0.9)
        assert len(bursty) > len(relaxed)

    def test_validation_of_parameters(self):
        law = Sporadic(pseudo_period=100)
        with pytest.raises(ValueError):
            sporadic_arrivals(law, 1_000, seed=1, burstiness=2.0)
        with pytest.raises(ValueError):
            sporadic_arrivals(law, 1_000, seed=1, mean_slack=-1)
        with pytest.raises(ValueError):
            periodic_arrivals(Periodic(period=10), 100, jitter=-1)

    def test_driving_the_dispatcher_with_a_trace(self):
        system = HadesSystem(node_ids=["n0"], costs=DispatcherCosts.zero())
        task = Task("sporadic", deadline=500,
                    arrival=Sporadic(pseudo_period=1_000), node_id="n0")
        task.code_eu("eu", wcet=50)
        times = sporadic_arrivals(task.arrival, horizon=20_000, seed=5)
        system.dispatcher.register_arrivals(task, times)
        system.run()
        # Legal trace: zero arrival-law violations, every instance done.
        assert system.monitor.count(ViolationKind.ARRIVAL_LAW) == 0
        assert len(system.dispatcher.instances_of("sporadic")) == len(times)


class TestFigure2Precision:
    def test_app_thread_makes_no_progress_before_scheduler_reacts(self):
        """The paper's Figure 2 premise: the scheduler (highest
        priority) treats Atv before the newly activated thread runs, so
        priorities are correct from the thread's first cycle."""
        system = HadesSystem(node_ids=["n0"], costs=DispatcherCosts.zero())
        system.attach_scheduler(EDFScheduler(scope="n0", w_sched=7))
        long_task = Task("long", deadline=100_000, node_id="n0")
        long_task.code_eu("eu", wcet=1_000)
        short_task = Task("short", deadline=200, node_id="n0")
        short_task.code_eu("eu", wcet=50)
        system.activate(long_task)
        system.sim.call_in(100, lambda: system.activate(short_task))
        system.run()
        short_inst = system.dispatcher.instances_of("short")[0]
        # short waited only for the scheduler pass (7us), then ran:
        # response = w_sched (its own Atv handling) + 50.
        assert short_inst.response_time == 7 + 50
        # long's CPU time is exactly its WCET: no lost progress.
        long_eui = list(system.dispatcher.instances_of("long")[0]
                        .eu_instances.values())[0]
        assert long_eui.thread.cpu_time == 1_000


class TestNetworkEdgeCases:
    def build(self, **kwargs):
        sim = Simulator()
        tracer = Tracer(lambda: sim.now)
        net = Network(sim, tracer, **kwargs)
        for i in range(2):
            net.add_node(Node(sim, f"n{i}", tracer=tracer))
        net.connect_all()
        return sim, net

    def test_dst_crashed_stat_for_unconnected_link(self):
        sim, net = self.build()
        link = net.link("n0", "n1")
        link._on_deliver = None  # simulate an unwired endpoint
        from repro.network import Message
        link.transmit(Message(src="n0", dst="n1", payload="x"))
        sim.run()
        assert link.stats[DeliveryOutcome.DST_CRASHED] == 1

    def test_link_down_mid_flight_still_delivers_sent_message(self):
        # Going down affects *future* transmissions, not in-flight ones
        # (the paper's omission model drops at send time).
        sim, net = self.build(base_latency=500)
        got = []
        net.interfaces["n1"].on_receive(lambda m: got.append(m.payload))
        net.interfaces["n0"].send("n1", "in-flight")
        sim.call_in(100, lambda: setattr(net.link("n0", "n1"), "up", False))
        sim.run()
        assert got == ["in-flight"]
        net.interfaces["n0"].send("n1", "blocked")
        sim.run()
        assert got == ["in-flight"]

    def test_size_cost_respects_guaranteed_bound(self):
        sim, net = self.build(base_latency=50, size_cost_per_byte=3)
        link = net.link("n0", "n1")
        arrivals = []
        net.interfaces["n1"].on_receive(
            lambda m: arrivals.append((m.size, m.latency)))
        for size in (0, 10, 100):
            net.interfaces["n0"].send("n1", "x", size=size)
        sim.run()
        for size, latency in arrivals:
            assert latency <= link.guaranteed_bound(size)

    def test_fifo_ordering_with_mixed_sizes(self):
        # A big (slow) message sent first must not be overtaken.
        sim, net = self.build(base_latency=10, size_cost_per_byte=5)
        order = []
        net.interfaces["n1"].on_receive(lambda m: order.append(m.payload))
        net.interfaces["n0"].send("n1", "big", size=200)
        net.interfaces["n0"].send("n1", "small", size=1)
        sim.run()
        assert order == ["big", "small"]
