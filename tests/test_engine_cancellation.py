"""Engine hot-path semantics: lazy tombstoning and slotted classes.

The optimization contract: ``Event.cancel()`` marks the event as a
tombstone in the pending-event set that is *skipped at pop* (the set is
never compacted eagerly), with time still advancing to the tombstone's
scheduled instant — the exact observable behavior a stale-but-firing
timer used to have.  The ``sim`` fixture (tests/conftest.py) runs every
test here on every event-set backend.
"""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.sim.engine import Event, Process, Simulator, SimulationError, Timeout


class TestCancelSemantics:
    def test_cancelled_timeout_never_fires(self, sim):
        fired = []
        timer = sim.timeout(10)
        timer.add_callback(lambda evt: fired.append(evt))
        timer.cancel()
        sim.run()
        assert fired == []
        assert timer.cancelled
        assert not timer.triggered

    def test_cancel_is_idempotent(self, sim):
        timer = sim.timeout(5)
        timer.cancel()
        timer.cancel()  # no-op, no raise
        assert timer.cancelled

    def test_cancel_after_trigger_raises(self, sim):
        timer = sim.timeout(5)
        sim.run()
        assert timer.triggered
        with pytest.raises(SimulationError):
            timer.cancel()

    def test_succeed_after_cancel_raises(self, sim):
        event = sim.event("e")
        event.cancel()
        with pytest.raises(SimulationError):
            event.succeed()
        with pytest.raises(SimulationError):
            event.fail(RuntimeError("x"))

    def test_tombstone_pop_still_advances_now(self, sim):
        # A cancelled timer must leave sim.now exactly where a stale
        # firing timer would have: at the tombstone's scheduled time.
        sim.timeout(100).cancel()
        sim.run()
        assert sim.now == 100

    def test_tombstones_do_not_disturb_live_event_order(self, sim):
        order = []
        for delay in (10, 20, 30):
            sim.timeout(delay).add_callback(
                lambda evt, d=delay: order.append(d))
        doomed = [sim.timeout(d) for d in (5, 15, 25, 35)]
        for timer in doomed:
            timer.cancel()
        sim.run()
        assert order == [10, 20, 30]
        assert sim.now == 35

    def test_cancelled_skips_counter(self, backend):
        sim = Simulator(metrics=MetricsRegistry(), backend=backend)
        for _ in range(7):
            sim.timeout(3).cancel()
        sim.timeout(4)
        sim.run()
        assert sim.metrics.counter("engine.cancelled_skips").value == 7
        assert sim.metrics.counter("engine.events_fired").value == 1

    def test_run_until_respects_tombstones(self, sim):
        fired = []
        sim.timeout(10).cancel()
        sim.timeout(20).add_callback(lambda evt: fired.append(sim.now))
        sim.run(until=15)
        assert fired == []
        assert sim.now == 15
        sim.run()
        assert fired == [20]


class TestSlots:
    @pytest.mark.parametrize("make", [
        lambda sim: sim.event("e"),
        lambda sim: sim.timeout(1),
        lambda sim: sim.process(iter(())),
    ])
    def test_no_instance_dict(self, sim, make):
        obj = make(sim)
        assert not hasattr(obj, "__dict__")
        with pytest.raises(AttributeError):
            obj.arbitrary_new_attribute = 1

    def test_timeout_name_is_lazy_but_stable(self, sim):
        timer = sim.timeout(42)
        assert timer.name == "timeout(42)"
        timer.name = "custom"
        assert timer.name == "custom"

    def test_event_classes_are_slotted(self):
        for cls in (Event, Timeout, Process):
            assert "__slots__" in cls.__dict__
