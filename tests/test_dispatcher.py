"""Integration tests for the generic dispatcher (paper §3.2.1)."""

import pytest

from repro.core import (
    AccessMode,
    ConditionVariable,
    DispatcherCosts,
    EUAttributes,
    Periodic,
    Resource,
    Sporadic,
    Task,
)
from repro.core.dispatcher import EUState, InstanceState, NEVER
from repro.core.monitoring import ViolationKind
from repro.system import HadesSystem


def make_system(**kwargs):
    kwargs.setdefault("node_ids", ["n0"])
    kwargs.setdefault("costs", DispatcherCosts.zero())
    return HadesSystem(**kwargs)


class TestBasicExecution:
    def test_single_unit_runs_for_wcet(self):
        system = make_system()
        task = Task("t", deadline=1000, node_id="n0")
        task.code_eu("a", wcet=100)
        inst = system.activate(task)
        system.run()
        assert inst.state is InstanceState.DONE
        assert inst.response_time == 100

    def test_chain_respects_precedence(self):
        system = make_system()
        task = Task("t", node_id="n0")
        order = []
        a = task.code_eu("a", wcet=10,
                         action=lambda ctx: order.append(("a", ctx.now)))
        b = task.code_eu("b", wcet=20,
                         action=lambda ctx: order.append(("b", ctx.now)))
        task.precede(a, b)
        system.activate(task)
        system.run()
        assert [name for name, _t in order] == ["a", "b"]
        assert order[1][1] >= order[0][1] + 20

    def test_diamond_joins_wait_for_both_branches(self):
        system = make_system()
        task = Task("diamond", node_id="n0")
        a = task.code_eu("a", wcet=10)
        b = task.code_eu("b", wcet=30)
        c = task.code_eu("c", wcet=50)
        finish = []
        d = task.code_eu("d", wcet=5,
                         action=lambda ctx: finish.append(ctx.now))
        task.precede(a, b)
        task.precede(a, c)
        task.precede(b, d)
        task.precede(c, d)
        inst = system.activate(task)
        system.run()
        # Single CPU: 10 + 30 + 50 + 5 = 95.
        assert inst.response_time == 95
        assert len(finish) == 1

    def test_dispatcher_costs_charged(self):
        costs = DispatcherCosts(c_start_act=5, c_end_act=5, c_local=8)
        system = HadesSystem(node_ids=["n0"], costs=costs)
        task = Task("t", node_id="n0")
        a = task.code_eu("a", wcet=100)
        b = task.code_eu("b", wcet=50)
        task.precede(a, b)
        inst = system.activate(task)
        system.run()
        # 150 + 2*(5+5) + 8 = 178: matches inflate_wcet exactly.
        from repro.core.costs import inflate_wcet
        assert inst.response_time == inflate_wcet(task, costs) == 178

    def test_parameters_flow_along_edges(self):
        system = make_system()
        task = Task("pipe", node_id="n0")
        received = []

        def produce(ctx):
            ctx.outputs["value"] = 42

        def consume(ctx):
            received.append(ctx.inputs["value"])

        a = task.code_eu("a", wcet=5, action=produce)
        b = task.code_eu("b", wcet=5, action=consume)
        task.precede(a, b, param="value")
        system.activate(task)
        system.run()
        assert received == [42]

    def test_earliest_start_time_delays_unit(self):
        system = make_system()
        task = Task("t", node_id="n0")
        starts = []
        task.code_eu("a", wcet=10, attrs=EUAttributes(earliest=500),
                     action=lambda ctx: starts.append(ctx.now))
        system.activate(task)
        system.run()
        # Action effects apply at end of unit: start >= 500, end >= 510.
        assert starts[0] >= 510

    def test_condvar_gates_start(self):
        system = make_system()
        gate = ConditionVariable("gate")
        task = Task("t", node_id="n0")
        done = []
        task.code_eu("a", wcet=10, wait_for=[gate],
                     action=lambda ctx: done.append(ctx.now))
        system.activate(task)
        system.sim.call_in(300, gate.set)
        system.run()
        assert done[0] == 310

    def test_condvar_already_set_no_wait(self):
        system = make_system()
        gate = ConditionVariable("gate", initially=True)
        task = Task("t", node_id="n0")
        task.code_eu("a", wcet=10, wait_for=[gate])
        inst = system.activate(task)
        system.run()
        assert inst.response_time == 10

    def test_action_can_signal_condvar_at_unit_end(self):
        system = make_system()
        flag = ConditionVariable("flag")
        producer = Task("prod", node_id="n0")
        producer.code_eu("p", wcet=50,
                         action=lambda ctx: ctx.signal(flag))
        consumer = Task("cons", node_id="n0")
        done = []
        consumer.code_eu("c", wcet=10, wait_for=[flag],
                         action=lambda ctx: done.append(ctx.now))
        system.activate(consumer)
        system.activate(producer)
        system.run()
        assert done and done[0] >= 60

    def test_multiple_instances_coexist(self):
        system = make_system()
        task = Task("multi", deadline=10_000, node_id="n0")
        task.code_eu("a", wcet=100)
        i1 = system.activate(task)
        i2 = system.activate(task)
        system.run()
        assert i1.state is InstanceState.DONE
        assert i2.state is InstanceState.DONE
        assert i1.seq == 1 and i2.seq == 2

    def test_register_periodic_generates_activations(self):
        system = make_system()
        task = Task("per", deadline=500, arrival=Periodic(period=1000),
                    node_id="n0")
        task.code_eu("a", wcet=100)
        system.register_periodic(task, count=5)
        system.run()
        instances = system.dispatcher.instances_of("per")
        assert len(instances) == 5
        assert [inst.activation_time for inst in instances] == [
            0, 1000, 2000, 3000, 4000]


class TestResources:
    def test_exclusive_resource_serialises_critical_sections(self):
        system = make_system()
        res = Resource("R", node_id="n0")
        spans = []

        def make_task(name):
            task = Task(name, node_id="n0")
            task.code_eu("cs", wcet=100,
                         resources=[(res, AccessMode.EXCLUSIVE)],
                         action=lambda ctx, n=name: spans.append((n, ctx.now)))
            return task

        system.activate(make_task("t1"))
        system.activate(make_task("t2"))
        system.run()
        # Effects at unit end: ends at 100 and 200 — no overlap.
        assert sorted(t for _n, t in spans) == [100, 200]
        assert res.free

    def test_shared_mode_allows_concurrent_holders_across_nodes(self):
        system = make_system(node_ids=["n0", "n1"])
        res_a = Resource("RA", node_id="n0")
        res_b = Resource("RB", node_id="n1")
        # Same-named logical section but per-node resources; run truly in
        # parallel on two CPUs.
        t1 = Task("t1", node_id="n0")
        t1.code_eu("a", wcet=100, resources=[(res_a, AccessMode.SHARED)])
        t2 = Task("t2", node_id="n1")
        t2.code_eu("b", wcet=100, resources=[(res_b, AccessMode.SHARED)])
        i1 = system.activate(t1)
        i2 = system.activate(t2)
        system.run()
        assert i1.response_time == 100
        assert i2.response_time == 100

    def test_shared_holders_coexist_on_one_resource(self):
        system = make_system(node_ids=["n0", "n1"])
        res = Resource("R")  # no node binding: shared data object
        t1 = Task("t1", node_id="n0")
        t1.code_eu("a", wcet=100, resources=[(res, AccessMode.SHARED)])
        t2 = Task("t2", node_id="n1")
        t2.code_eu("b", wcet=100, resources=[(res, AccessMode.SHARED)])
        i1 = system.activate(t1)
        i2 = system.activate(t2)
        system.run()
        assert i1.response_time == 100 and i2.response_time == 100

    def test_highest_priority_waiter_gets_resource_first(self):
        system = make_system()
        res = Resource("R", node_id="n0")
        grabs = []

        def cs_task(name, prio, wcet=50):
            task = Task(name, node_id="n0")
            task.code_eu("cs", wcet=wcet,
                         resources=[(res, AccessMode.EXCLUSIVE)],
                         attrs=EUAttributes(prio=prio),
                         action=lambda ctx, n=name: grabs.append(n))
            return task

        system.activate(cs_task("holder", prio=5, wcet=100))
        system.sim.call_in(10, lambda: system.activate(cs_task("low", 2)))
        system.sim.call_in(20, lambda: system.activate(cs_task("high", 8)))
        system.run()
        assert grabs == ["holder", "high", "low"]

    def test_resource_contention_counted(self):
        system = make_system()
        res = Resource("R", node_id="n0")
        for name in ("a", "b"):
            task = Task(name, node_id="n0")
            task.code_eu("cs", wcet=50,
                         resources=[(res, AccessMode.EXCLUSIVE)])
            system.activate(task)
        system.run()
        assert res.grant_count == 2
        assert res.contention_count >= 1


class TestInvocations:
    def test_synchronous_invocation_waits_for_target(self):
        system = make_system()
        inner = Task("inner", node_id="n0")
        inner.code_eu("work", wcet=200)
        outer = Task("outer", node_id="n0")
        pre = outer.code_eu("pre", wcet=10)
        call = outer.inv_eu("call", inner, synchronous=True)
        post_times = []
        post = outer.code_eu("post", wcet=10,
                             action=lambda ctx: post_times.append(ctx.now))
        outer.chain(pre, call, post)
        inst = system.activate(outer)
        system.run()
        assert inst.state is InstanceState.DONE
        assert post_times[0] >= 220  # pre + inner before post runs

    def test_asynchronous_invocation_does_not_wait(self):
        system = make_system()
        inner = Task("inner", node_id="n0")
        inner.code_eu("work", wcet=1000)
        outer = Task("outer", deadline=5000, node_id="n0")
        call = outer.inv_eu("call", inner, synchronous=False)
        post = outer.code_eu("post", wcet=10,
                             attrs=EUAttributes(prio=500))
        outer.precede(call, post)
        inst = system.activate(outer)
        system.run()
        # outer completes long before inner's 1000us of work would allow
        # if the call were synchronous.
        assert inst.response_time < 1000
        assert system.dispatcher.instances_of("inner")[0].state is \
            InstanceState.DONE

    def test_invocation_costs_charged(self):
        costs = DispatcherCosts(c_start_inv=7, c_end_inv=9, c_start_act=0,
                                c_end_act=0, c_local=0)
        system = HadesSystem(node_ids=["n0"], costs=costs)
        inner = Task("inner", node_id="n0")
        inner.code_eu("w", wcet=100)
        outer = Task("outer", node_id="n0")
        outer.inv_eu("call", inner, synchronous=True)
        inst = system.activate(outer)
        system.run()
        assert inst.response_time == 100 + 7 + 9
        assert system.dispatcher.ledger.count("c_start_inv") == 1
        assert system.dispatcher.ledger.count("c_end_inv") == 1

    def test_nested_invocations(self):
        system = make_system()
        leaf = Task("leaf", node_id="n0")
        leaf.code_eu("w", wcet=50)
        middle = Task("middle", node_id="n0")
        middle.inv_eu("call_leaf", leaf, synchronous=True)
        top = Task("top", node_id="n0")
        top.inv_eu("call_middle", middle, synchronous=True)
        inst = system.activate(top)
        system.run()
        assert inst.state is InstanceState.DONE
        assert inst.response_time == 50


class TestDistributedExecution:
    def test_remote_precedence_crosses_network(self):
        system = make_system(node_ids=["n0", "n1"], network_latency=200)
        task = Task("dist", node_id="n0")
        a = task.code_eu("a", wcet=10)
        b = task.code_eu("b", wcet=10, node_id="n1")
        task.precede(a, b)
        inst = system.activate(task)
        system.run()
        assert inst.state is InstanceState.DONE
        # At least: a(10) + network(200) + irq wcet + b(10).
        assert inst.response_time >= 220

    def test_remote_parameter_transfer(self):
        system = make_system(node_ids=["n0", "n1"])
        task = Task("dist", node_id="n0")
        got = []
        a = task.code_eu("a", wcet=5,
                         action=lambda ctx: ctx.outputs.update(v="hello"))
        b = task.code_eu("b", wcet=5, node_id="n1",
                         action=lambda ctx: got.append(ctx.inputs["v"]))
        task.precede(a, b, param="v")
        system.activate(task)
        system.run()
        assert got == ["hello"]

    def test_remote_edge_through_tnetwork_task(self):
        system = make_system(node_ids=["n0", "n1"], with_tnetwork=True)
        task = Task("dist", node_id="n0")
        a = task.code_eu("a", wcet=5)
        b = task.code_eu("b", wcet=5, node_id="n1")
        task.precede(a, b)
        inst = system.activate(task)
        system.run()
        assert inst.state is InstanceState.DONE
        assert system.nodes["n0"].tnetwork.sent_count == 1

    def test_parallel_branches_on_two_nodes_overlap(self):
        system = make_system(node_ids=["n0", "n1"])
        task = Task("fan", node_id="n0")
        a = task.code_eu("a", wcet=10)
        b = task.code_eu("b", wcet=300)               # on n0
        c = task.code_eu("c", wcet=300, node_id="n1")  # on n1
        task.precede(a, b)
        task.precede(a, c)
        inst = system.activate(task)
        system.run()
        # True parallelism: well under the 610 serial time.
        assert inst.response_time < 500


class TestMonitoring:
    def test_deadline_miss_detected(self):
        system = make_system()
        task = Task("late", deadline=50, node_id="n0")
        task.code_eu("a", wcet=100)
        system.activate(task)
        system.run()
        misses = system.monitor.of_kind(ViolationKind.DEADLINE_MISS)
        assert len(misses) == 1
        assert misses[0].time == 50

    def test_deadline_met_no_violation(self):
        system = make_system()
        task = Task("fine", deadline=500, node_id="n0")
        task.code_eu("a", wcet=100)
        system.activate(task)
        system.run()
        assert system.monitor.count(ViolationKind.DEADLINE_MISS) == 0

    def test_abort_on_deadline_miss_kills_threads(self):
        system = make_system(on_deadline_miss="abort")
        task = Task("late", deadline=50, node_id="n0")
        a = task.code_eu("a", wcet=100)
        ran = []
        b = task.code_eu("b", wcet=10, action=lambda ctx: ran.append(1))
        task.precede(a, b)
        inst = system.activate(task)
        system.run()
        assert inst.state is InstanceState.ABORTED
        assert ran == []  # successor never ran

    def test_arrival_law_violation_detected(self):
        system = make_system()
        task = Task("sporadic", deadline=100,
                    arrival=Sporadic(pseudo_period=1000), node_id="n0")
        task.code_eu("a", wcet=10)
        system.activate(task)
        system.sim.call_in(500, lambda: system.activate(task))  # too soon
        system.run()
        assert system.monitor.count(ViolationKind.ARRIVAL_LAW) == 1

    def test_early_termination_detected(self):
        system = make_system()
        task = Task("early", node_id="n0")
        task.code_eu("a", wcet=100, actual_time=40)
        system.activate(task)
        system.run()
        earlies = system.monitor.of_kind(ViolationKind.EARLY_TERMINATION)
        assert len(earlies) == 1
        assert earlies[0].details["actual"] == 40

    def test_eu_level_deadline_monitored(self):
        system = make_system()
        task = Task("staged", node_id="n0")  # no task-level deadline
        a = task.code_eu("a", wcet=300)
        # b must finish within 400 us of activation: impossible after
        # a's 300 us plus its own 200 us.
        b = task.code_eu("b", wcet=200, attrs=EUAttributes(deadline=400))
        task.precede(a, b)
        system.activate(task)
        system.run()
        misses = system.monitor.of_kind(ViolationKind.DEADLINE_MISS)
        assert len(misses) == 1
        assert misses[0].details["eu"] == "b"
        assert misses[0].details["level"] == "eu"

    def test_eu_level_deadline_met_is_silent(self):
        system = make_system()
        task = Task("staged", node_id="n0")
        task.code_eu("a", wcet=100, attrs=EUAttributes(deadline=400))
        system.activate(task)
        system.run()
        assert system.monitor.count(ViolationKind.DEADLINE_MISS) == 0

    def test_latest_start_violation_detected(self):
        system = make_system()
        blocker = Task("blocker", node_id="n0")
        blocker.code_eu("long", wcet=1000, attrs=EUAttributes(prio=900))
        victim = Task("victim", node_id="n0")
        victim.code_eu("v", wcet=10,
                       attrs=EUAttributes(prio=1, latest=100))
        system.activate(blocker)
        system.activate(victim)
        system.run()
        assert system.monitor.count(ViolationKind.LATEST_START) == 1

    def test_network_omission_detected(self):
        from repro.network import OmissionFault
        system = make_system(node_ids=["n0", "n1"])
        task = Task("dist", deadline=100_000, node_id="n0")
        a = task.code_eu("a", wcet=10)
        b = task.code_eu("b", wcet=10, node_id="n1")
        task.precede(a, b)
        # Drop everything on the n0->n1 link.
        fault = OmissionFault(probability=1.0,
                              rng=__import__("random").Random(0))
        system.network.link("n0", "n1").add_fault(fault)
        system.activate(task)
        system.run()
        assert system.monitor.count(ViolationKind.NETWORK_OMISSION) == 1

    def test_no_omission_report_when_message_arrives(self):
        system = make_system(node_ids=["n0", "n1"])
        task = Task("dist", node_id="n0")
        a = task.code_eu("a", wcet=10)
        b = task.code_eu("b", wcet=10, node_id="n1")
        task.precede(a, b)
        system.activate(task)
        system.run()
        assert system.monitor.count(ViolationKind.NETWORK_OMISSION) == 0

    def test_orphan_detected_in_lazy_abort_mode(self):
        system = make_system(on_deadline_miss="abort", abort_mode="lazy")
        task = Task("late", deadline=50, node_id="n0")
        task.code_eu("a", wcet=100)
        system.activate(task)
        system.run()
        assert system.monitor.count(ViolationKind.ORPHAN) == 1

    def test_deadlock_detector_finds_unsatisfiable_wait(self):
        from repro.core.monitoring import DeadlockDetector
        system = make_system()
        never = ConditionVariable("never")
        task = Task("stuck", node_id="n0")
        task.code_eu("a", wcet=10, wait_for=[never])
        system.activate(task)
        system.run()
        findings = DeadlockDetector().scan(system.dispatcher)
        assert any(f["kind"] == "unsatisfiable_wait" for f in findings)

    def test_deadlock_detector_finds_condvar_cycle(self):
        from repro.core.monitoring import DeadlockDetector
        system = make_system()
        cv1 = ConditionVariable("cv1")
        cv2 = ConditionVariable("cv2")
        t1 = Task("t1", node_id="n0")
        t1.code_eu("a", wcet=10, wait_for=[cv1], may_signal=[cv2])
        t2 = Task("t2", node_id="n0")
        t2.code_eu("b", wcet=10, wait_for=[cv2], may_signal=[cv1])
        system.activate(t1)
        system.activate(t2)
        system.run()
        findings = DeadlockDetector().scan(system.dispatcher)
        assert any(f["kind"] == "cycle" for f in findings)

    def test_no_deadlock_in_clean_run(self):
        from repro.core.monitoring import DeadlockDetector
        system = make_system()
        task = Task("fine", node_id="n0")
        task.code_eu("a", wcet=10)
        system.activate(task)
        system.run()
        assert DeadlockDetector().scan(system.dispatcher) == []


class TestNodeCrash:
    def test_crash_stalls_instance_and_deadline_fires(self):
        system = make_system()
        task = Task("doomed", deadline=500, node_id="n0")
        task.code_eu("a", wcet=1000)
        system.activate(task)
        system.sim.call_in(100, system.nodes["n0"].crash)
        system.run()
        assert system.monitor.count(ViolationKind.DEADLINE_MISS) == 1

    def test_remote_work_survives_sender_side_completion(self):
        system = make_system(node_ids=["n0", "n1"])
        task = Task("dist", node_id="n0")
        a = task.code_eu("a", wcet=10)
        b = task.code_eu("b", wcet=10, node_id="n1")
        task.precede(a, b)
        inst = system.activate(task)
        # Crash n0 after a finishes & message sent (latency 50).
        system.sim.call_in(30, system.nodes["n0"].crash)
        system.run()
        assert inst.eu_instances[b].state is EUState.DONE


class TestDispatcherPrimitive:
    def test_hold_and_release_via_earliest(self):
        system = make_system()
        task = Task("held", node_id="n0")
        task.code_eu("a", wcet=10)
        inst = system.activate(task)
        eui = list(inst.eu_instances.values())[0]
        # Hold it forever, then release at t=400.
        system.dispatcher.set_thread_params(eui, earliest=NEVER)
        system.sim.call_in(
            400, lambda: system.dispatcher.set_thread_params(eui, earliest=0))
        system.run()
        assert inst.finish_time == 410

    def test_priority_change_reflected_on_thread(self):
        system = make_system()
        task = Task("t", node_id="n0")
        task.code_eu("a", wcet=500)
        inst = system.activate(task)
        eui = list(inst.eu_instances.values())[0]
        system.sim.call_in(10, lambda: system.dispatcher.set_thread_params(
            eui, priority=700))
        system.run(until=20)
        assert eui.thread.priority == 700
