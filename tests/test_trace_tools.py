"""Trace-layer tooling: detail snapshotting, stream footers, windows.

Covers the trace-layer groundwork the forensics stack sits on:

* ``record()`` snapshots plain-container detail values, so mutating
  the caller's object afterwards cannot rewrite recorded history;
* ``JsonlStream`` exposes filtered/dropped counters scoped to its own
  lifetime and can append them as a footer metadata line;
* ``select``/``count`` accept ``t_min``/``t_max`` time windows, with
  early exit on monotone traces and a correct fallback on
  non-monotone ones.
"""

import json

import pytest

from repro.sim.trace import JsonlStream, Tracer, load_trace


class TestDetailSnapshotting:
    def test_list_detail_is_copied_on_record(self):
        tracer = Tracer(clock=lambda: 0)
        holders = ["a", "b"]
        entry = tracer.record("cat", "ev", holders=holders)
        holders.append("c")
        holders[0] = "mutated"
        assert entry.details["holders"] == ["a", "b"]

    def test_nested_containers_are_deep_copied(self):
        tracer = Tracer(clock=lambda: 0)
        payload = {"inner": [1, 2], "pair": (3, [4])}
        entry = tracer.record("cat", "ev", payload=payload)
        payload["inner"].append(99)
        payload["pair"][1].append(99)
        payload["new"] = True
        assert entry.details["payload"] == {"inner": [1, 2],
                                            "pair": (3, [4])}

    def test_set_detail_is_copied(self):
        tracer = Tracer(clock=lambda: 0)
        members = {"x"}
        entry = tracer.record("cat", "ev", members=members)
        members.add("y")
        assert entry.details["members"] == {"x"}

    def test_scalars_and_exotic_objects_pass_through(self):
        class Opaque:
            pass

        tracer = Tracer(clock=lambda: 0)
        obj = Opaque()
        entry = tracer.record("cat", "ev", n=7, s="txt", o=obj)
        assert entry.details["o"] is obj
        assert entry.details["n"] == 7


class TestStreamFooterAndCounters:
    def test_counters_scoped_to_stream_lifetime(self, tmp_path):
        tracer = Tracer(clock=lambda: 0, maxlen=2,
                        categories={"keep"})
        # Activity before the stream opens must not be charged to it.
        tracer.record("skip", "ev")
        tracer.record("keep", "ev", i=0)
        tracer.record("keep", "ev", i=1)
        tracer.record("keep", "ev", i=2)  # evicts i=0
        assert tracer.filtered == 1 and tracer.dropped == 1

        with tracer.stream_jsonl(str(tmp_path / "s.jsonl")) as stream:
            tracer.record("skip", "ev")
            tracer.record("skip", "ev")
            tracer.record("keep", "ev", i=3)
            tracer.record("keep", "ev", i=4)
            assert stream.written == 2
            assert stream.filtered == 2
            assert stream.dropped == 2

    def test_footer_line_written_and_skipped_on_load(self, tmp_path):
        path = tmp_path / "footer.jsonl"
        tracer = Tracer(clock=lambda: 0, categories={"keep"})
        with tracer.stream_jsonl(str(path), footer=True):
            tracer.record("keep", "ev", i=1)
            tracer.record("drop", "ev")
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        footer = json.loads(lines[-1])["footer"]
        assert footer == {"written": 1, "filtered": 1, "dropped": 0,
                          "categories": ["keep"]}
        # load_trace must ignore the metadata line.
        reloaded = load_trace(str(path))
        assert len(reloaded) == 1
        assert reloaded.records[0].details == {"i": 1}

    def test_no_footer_by_default_keeps_stream_equal_to_batch(self,
                                                              tmp_path):
        tracer = Tracer(clock=lambda: 0)
        stream_path = tmp_path / "stream.jsonl"
        with tracer.stream_jsonl(str(stream_path)):
            for i in range(5):
                tracer.record("c", "e", i=i)
        batch_path = tmp_path / "batch.jsonl"
        tracer.to_jsonl(str(batch_path))
        assert stream_path.read_bytes() == batch_path.read_bytes()

    def test_footer_constructor_direct(self, tmp_path):
        tracer = Tracer(clock=lambda: 0)
        stream = JsonlStream(tracer, str(tmp_path / "direct.jsonl"),
                             footer=True)
        tracer.record("c", "e")
        stream.close()
        stream.close()  # idempotent
        lines = (tmp_path / "direct.jsonl").read_text().splitlines()
        footer = json.loads(lines[-1])["footer"]
        assert footer["written"] == 1
        assert footer["categories"] is None


class TestTimeWindowSelect:
    def _tracer(self, index=True):
        tracer = Tracer(clock=lambda: 0, index=index)
        for i in range(100):
            tracer.record("cat", f"ev{i % 2}", time=i * 10, i=i)
        return tracer

    def test_window_bounds_inclusive(self):
        tracer = self._tracer()
        rows = tracer.select("cat", "ev0", t_min=200, t_max=400)
        assert [r.time for r in rows] == [200, 220, 240, 260, 280, 300,
                                          320, 340, 360, 380, 400]

    def test_indexed_and_linear_paths_agree(self):
        indexed = self._tracer(index=True)
        linear = self._tracer(index=False)
        for t_min, t_max in ((None, None), (0, 0), (55, 555),
                             (None, 130), (970, None), (2000, 3000)):
            assert (indexed.select("cat", "ev1", t_min=t_min, t_max=t_max)
                    == linear.select("cat", "ev1", t_min=t_min,
                                     t_max=t_max))

    def test_detail_filter_composes_with_window(self):
        tracer = self._tracer()
        rows = tracer.select("cat", "ev0", t_min=100, t_max=900, i=40)
        assert len(rows) == 1 and rows[0].time == 400
        assert tracer.select("cat", "ev0", t_min=500, i=40) == []

    def test_non_monotonic_trace_still_correct(self):
        tracer = Tracer(clock=lambda: 0)
        tracer.record("cat", "ev", time=100, i=0)
        tracer.record("cat", "ev", time=50, i=1)   # goes back in time
        tracer.record("cat", "ev", time=200, i=2)
        assert tracer._monotonic is False
        rows = tracer.select("cat", "ev", t_min=40, t_max=60)
        assert [r.details["i"] for r in rows] == [1]
        # No early exit: the t=200 record after t=50 must not hide it.
        rows = tracer.select("cat", "ev", t_max=100)
        assert [r.details["i"] for r in rows] == [0, 1]

    def test_count_with_window(self):
        tracer = self._tracer()
        assert tracer.count("cat", "ev0", t_min=200, t_max=400) == 11
        assert tracer.count("cat", None, t_min=0, t_max=90) == 10
        # The no-window fast path still answers from bucket length.
        assert tracer.count("cat", "ev0") == 50

    def test_invalid_usage_unchanged(self):
        tracer = self._tracer()
        with pytest.raises(TypeError):
            tracer.select("cat", "ev0", t_min="soon")
