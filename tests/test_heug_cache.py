"""Cached per-task graph structures: correctness under mutation.

The dispatcher optimization caches each Task's derived structures
(topological order, adjacency, remote-edge classification, validation)
and invalidates them on ``add``/``precede``/``chain``.  These tests pin
the contract: a query after any mutation sequence must equal the same
query on a freshly built identical graph.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ConditionVariable, DispatcherCosts, EUAttributes, Task
from repro.core.heug import CodeEU
from repro.system import HadesSystem


def build_random_dag(seed, steps):
    """Grow two identical tasks with an interleaved add/precede script.

    ``mirror`` receives the same mutations as ``task`` but is rebuilt
    from scratch for every comparison — it never has a warm cache, so
    it is the uncached reference.
    """
    rng = random.Random(seed)
    task = Task(f"t{seed}", node_id="n0")
    script = []
    names = iter(f"e{i}" for i in range(1000))
    for _ in range(steps):
        if not task.eus or rng.random() < 0.4:
            name = next(names)
            node = rng.choice(("n0", "n1", None))
            script.append(("add", name, node))
            task.code_eu(name, wcet=10, node_id=node)
        else:
            src, dst = rng.sample(task.eus, k=1)[0], rng.choice(task.eus)
            if src is not dst:
                script.append(("precede", src.name, dst.name))
                task.precede(src, dst)
        # Warm the cache between mutations so invalidation is what is
        # actually under test, not first-build correctness.
        task.predecessors(rng.choice(task.eus))
        try:
            task.topological_order()
        except ValueError:
            pass
    return task, script


def replay(script, seed):
    fresh = Task(f"t{seed}", node_id="n0")
    by_name = {}
    for op, *args in script:
        if op == "add":
            name, node = args
            by_name[name] = fresh.code_eu(name, wcet=10, node_id=node)
        else:
            src, dst = args
            fresh.precede(by_name[src], by_name[dst])
    return fresh


class TestCacheInvalidation:
    @given(seed=st.integers(0, 10_000), steps=st.integers(1, 25))
    @settings(max_examples=40, deadline=None)
    def test_queries_match_fresh_graph_after_mutations(self, seed, steps):
        task, script = build_random_dag(seed, steps)
        fresh = replay(script, seed)
        assert [eu.name for eu in task.eus] == [eu.name for eu in fresh.eus]
        for cached_eu, fresh_eu in zip(task.eus, fresh.eus):
            assert ([e.name for e in task.predecessors(cached_eu)]
                    == [e.name for e in fresh.predecessors(fresh_eu)])
            assert ([e.name for e in task.successors(cached_eu)]
                    == [e.name for e in fresh.successors(fresh_eu)])
        assert ([e.name for e in task.sources()]
                == [e.name for e in fresh.sources()])
        assert ([e.name for e in task.sinks()]
                == [e.name for e in fresh.sinks()])
        try:
            cached_topo = [e.name for e in task.topological_order()]
        except ValueError:
            with pytest.raises(ValueError):
                fresh.topological_order()
        else:
            assert cached_topo == [e.name for e in fresh.topological_order()]
        for cached_edge, fresh_edge in zip(task.edges, fresh.edges):
            assert (task.is_remote(cached_edge)
                    == fresh.is_remote(fresh_edge))
            assert (task.edge_index(cached_edge)
                    == fresh.edge_index(fresh_edge))

    def test_add_invalidates_topology(self):
        task = Task("t", node_id="n0")
        first = task.code_eu("a", wcet=10)
        assert [e.name for e in task.topological_order()] == ["a"]
        second = task.code_eu("b", wcet=10)
        task.precede(second, first)  # b before a
        assert [e.name for e in task.topological_order()] == ["b", "a"]

    def test_precede_invalidates_adjacency(self):
        task = Task("t", node_id="n0")
        a = task.code_eu("a", wcet=10)
        b = task.code_eu("b", wcet=10)
        assert task.successors(a) == []
        task.precede(a, b)
        assert task.successors(a) == [b]
        assert task.predecessors(b) == [a]

    def test_cycle_detected_after_warm_cache(self):
        task = Task("t", node_id="n0")
        a = task.code_eu("a", wcet=10)
        b = task.code_eu("b", wcet=10)
        task.precede(a, b)
        assert len(task.topological_order()) == 2
        task.precede(b, a)
        with pytest.raises(ValueError):
            task.topological_order()

    def test_invalidate_cache_is_chainable_and_resets_validation(self):
        task = Task("t", node_id="n0")
        task.code_eu("a", wcet=10)
        assert task.validate() is task
        assert task.invalidate_cache() is task
        # Re-validation after explicit invalidation still succeeds.
        assert task.validate() is task


class TestBuilderIdiom:
    def test_chain_returns_task_and_units_return_units(self):
        task = Task("t", node_id="n0")
        a = task.code_eu("a", wcet=10)
        b = task.code_eu("b", wcet=10)
        assert isinstance(a, CodeEU) and a.task is task
        edge = task.precede(a, b)
        assert edge.src is a and edge.dst is b
        assert task.chain(a, b) is task
        assert task.validate() is task

    def test_one_expression_heug(self):
        task = Task("t", deadline=1_000, node_id="n0")
        built = task.chain(
            task.code_eu("a", wcet=10),
            task.code_eu("b", wcet=10),
            task.code_eu("c", wcet=10),
        ).validate()
        assert built is task
        assert [e.name for e in task.topological_order()] == ["a", "b", "c"]


class TestSignalDedup:
    def test_set_then_clear_applies_only_clear(self):
        system = HadesSystem(node_ids=["n0"], costs=DispatcherCosts.zero())
        flag = ConditionVariable("flag")

        def flicker(ctx):
            ctx.signal(flag, True)
            ctx.signal(flag, False)

        observed = []
        flag.watch(lambda cv: observed.append("set"))
        task = Task("t", node_id="n0")
        task.code_eu("a", wcet=10, action=flicker)
        system.activate(task)
        system.run()
        # Last write wins: the unit ends with exactly one clear applied
        # and watchers never observe the intermediate set.
        assert observed == []
        assert not flag.is_set
        assert flag.set_count == 0
        assert flag.clear_count == 1

    def test_clear_then_set_applies_only_set(self):
        system = HadesSystem(node_ids=["n0"], costs=DispatcherCosts.zero())
        flag = ConditionVariable("flag", initially=True)

        def flicker(ctx):
            ctx.signal(flag, False)
            ctx.signal(flag, True)

        task = Task("t", node_id="n0")
        task.code_eu("a", wcet=10, action=flicker)
        system.activate(task)
        system.run()
        assert flag.is_set
        assert flag.set_count == 1
        assert flag.clear_count == 0

    def test_distinct_condvars_keep_insertion_order(self):
        applied = []

        class Probe(ConditionVariable):
            def set(self):
                applied.append(self.name)
                super().set()

        system = HadesSystem(node_ids=["n0"], costs=DispatcherCosts.zero())
        one, two = Probe("one"), Probe("two")

        def action(ctx):
            ctx.signal(one)
            ctx.signal(two)
            ctx.signal(one)  # re-signal must not reorder

        task = Task("t", node_id="n0")
        task.code_eu("a", wcet=10, action=action)
        system.activate(task)
        system.run()
        assert applied == ["one", "two"]
