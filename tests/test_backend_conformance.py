"""Differential proof that every event-set backend is interchangeable.

The calendar-queue backend (``repro.sim.event_set.CalendarEventSet``
and its engine flavour ``CalendarSimulator``) is only useful if it is
*indistinguishable* from the heapq reference: in a safety-critical
reproduction, determinism of the execution core is the property
everything else is built on.  This module is that proof, at three
levels:

1. **Event-set level** — randomized push/pop sequences (and a seeded,
   shrinkable hypothesis state machine) through both ``EventSet``
   implementations assert identical pop order, peek times and sizes,
   tombstones included.
2. **Engine level** — random interleavings of schedule / cancel /
   re-schedule at equal timestamps, tombstone-skip and ``run(until=)``
   bound re-check edges, replayed on both ``Simulator`` flavours,
   assert identical dispatch logs and time advancement.
3. **System level** — the PR-4 trace contract: one seeded scenario run
   on both backends must export *byte-identical* JSONL traces, equal
   metric reports, and a representative fault campaign must produce
   identical ``CampaignResult`` wire dicts.

The 24-seed random-workload harness (``test_trace_invariants_random``)
and the determinism suite (``test_trace_determinism``) additionally run
their invariants per backend via the ``backend`` fixture.
"""

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.campaign import Campaign
from repro.sim.engine import CalendarSimulator, SimulationError, Simulator
from repro.sim.event_set import (
    EVENT_SET_BACKENDS,
    WHEEL_SPAN,
    CalendarEventSet,
    HeapEventSet,
)

from tests.conftest import BACKENDS
from tests.test_trace_determinism import run_scenario
from tests.test_trace_invariants_random import build_workload

#: Delays chosen to straddle every calendar boundary: same instant,
#: window interior, the window edge (WHEEL_SPAN +/- 1), deep overflow.
BOUNDARY_DELAYS = (0, 0, 1, 2, 5, WHEEL_SPAN - 1, WHEEL_SPAN,
                   WHEEL_SPAN + 1, 500, 10_000)


# -- 1. event-set level -----------------------------------------------------

@pytest.mark.parametrize("seed", range(20))
def test_random_op_sequences_pop_identically(seed):
    """Both event sets replay one random op sequence identically."""
    rng = random.Random(seed)
    reference, candidate = HeapEventSet(), CalendarEventSet()
    popped_ref, popped_cand = [], []
    current = 0
    for op in range(3_000):
        if len(reference) and rng.random() < 0.45:
            entry_ref = reference.pop()
            entry_cand = candidate.pop()
            popped_ref.append(entry_ref)
            popped_cand.append(entry_cand)
            current = entry_ref[0]
        else:
            time = current + rng.choice(BOUNDARY_DELAYS)
            tag = f"e{op}"
            reference.push(time, tag)
            candidate.push(time, tag)
        assert len(reference) == len(candidate)
        assert reference.peek_time() == candidate.peek_time(), (seed, op)
    while len(reference):
        popped_ref.append(reference.pop())
        popped_cand.append(candidate.pop())
    assert popped_ref == popped_cand


def test_pop_empty_raises_index_error():
    for backend_cls in EVENT_SET_BACKENDS.values():
        events = backend_cls()
        with pytest.raises(IndexError):
            events.pop()
        assert events.peek_time() is None
        assert len(events) == 0 and not events


def test_calendar_rejects_push_behind_anchor():
    events = CalendarEventSet()
    events.push(10, "a")
    assert events.pop() == (10, "a")
    with pytest.raises(ValueError):
        events.push(9, "late")


def test_every_backend_rejects_push_behind_last_pop():
    """The monotone-push contract is enforced uniformly.

    Historically only the calendar backend raised on a push behind the
    current instant, so a scheduling bug surfaced under one backend
    and silently corrupted event order under the other — a divergence
    the conformance harness could never catch because it only drives
    contract-conforming interleavings.
    """
    for name, backend_cls in EVENT_SET_BACKENDS.items():
        events = backend_cls()
        events.push(10, "a")
        events.push(10, "b")        # same instant stays legal
        assert events.pop() == (10, "a")
        events.push(10, "c")        # re-push at the popped instant too
        match = "before the last popped" if name == "heapq" else None
        with pytest.raises(ValueError, match=match):
            events.push(9, "late")
        # The failed push must not have corrupted the set.
        assert [events.pop() for _ in range(len(events))] == [
            (10, "b"), (10, "c")]


class TestCalendarEdges:
    """Targeted ring/overflow boundary cases for the calendar queue."""

    def test_pure_overflow_jump_clears_half_drained_slot(self):
        # Two entries at instant 0 occupy slot 0; WHEEL_SPAN maps onto
        # the SAME slot but lives in overflow.  After draining instant
        # 0 the anchor jumps via the pure-overflow path — which must
        # clear the consumed slot first, or a later push at the new
        # anchor instant would replay the instant-0 entries.
        events = CalendarEventSet()
        events.push(0, "a0")
        events.push(0, "a1")
        events.push(WHEEL_SPAN, "b")  # overflow, slot index 0 again
        assert events.pop() == (0, "a0")
        assert events.pop() == (0, "a1")
        assert events.pop() == (WHEEL_SPAN, "b")
        # The slot was cleared: same-slot instants keep working.
        events.push(WHEEL_SPAN, "c")
        events.push(2 * WHEEL_SPAN, "d")
        assert events.pop() == (WHEEL_SPAN, "c")
        assert events.pop() == (2 * WHEEL_SPAN, "d")
        assert len(events) == 0

    def test_peek_after_pure_overflow_jump(self):
        events = CalendarEventSet()
        events.push(0, "a")
        events.push(WHEEL_SPAN + 3, "b")
        assert events.pop() == (0, "a")
        # Peek must report the overflow head without disturbing state,
        # however many times it is asked.
        for _ in range(3):
            assert events.peek_time() == WHEEL_SPAN + 3
        assert events.pop() == (WHEEL_SPAN + 3, "b")
        # After the jump the window is re-anchored there: a push just
        # inside the new window rides the ring, and peek sees it.
        events.push(WHEEL_SPAN + 3 + (WHEEL_SPAN - 1), "c")
        assert events.peek_time() == 2 * WHEEL_SPAN + 2
        assert events.pop() == (2 * WHEEL_SPAN + 2, "c")
        assert events.peek_time() is None

    def test_window_edge_in_vs_out(self):
        # Delta WHEEL_SPAN-1 is the last ring instant; WHEEL_SPAN is
        # the first overflow instant.  Pop order must be identical to
        # the reference either way.
        events = CalendarEventSet()
        events.push(WHEEL_SPAN, "far")      # overflow (anchor 0)
        events.push(WHEEL_SPAN - 1, "near")  # ring
        assert events.peek_time() == WHEEL_SPAN - 1
        assert events.pop() == (WHEEL_SPAN - 1, "near")
        assert events.pop() == (WHEEL_SPAN, "far")

    @settings(max_examples=200, deadline=None)
    @given(st.lists(st.sampled_from([WHEEL_SPAN - 1, WHEEL_SPAN]),
                    min_size=1, max_size=40),
           st.integers(min_value=1, max_value=3))
    def test_window_edge_differential(self, deltas, pops_between):
        """Straddling the exact window edge never diverges.

        Every push lands at current + (WHEEL_SPAN-1) (ring) or
        current + WHEEL_SPAN (overflow, same slot index as the
        anchor) — the adversarial pair for slot-collision bugs.
        """
        reference, candidate = HeapEventSet(), CalendarEventSet()
        current = 0
        for i, delta in enumerate(deltas):
            reference.push(current + delta, i)
            candidate.push(current + delta, i)
            assert candidate.peek_time() == reference.peek_time()
            for _ in range(pops_between):
                if not len(reference):
                    break
                entry = reference.pop()
                assert candidate.pop() == entry
                current = entry[0]
            assert len(candidate) == len(reference)
        while len(reference):
            assert candidate.pop() == reference.pop()
        assert candidate.peek_time() is None


def test_heap_backend_rejects_negative_first_push():
    # Before any pop the floor is instant 0, matching the calendar
    # backend's anchor-at-zero behaviour.
    events = HeapEventSet()
    with pytest.raises(ValueError):
        events.push(-1, "early")
    events.push(0, "ok")
    assert events.pop() == (0, "ok")


@settings(max_examples=200, deadline=None)
@given(st.lists(
    st.one_of(
        st.tuples(st.just("push"), st.sampled_from(BOUNDARY_DELAYS)),
        st.tuples(st.just("pop"), st.just(0)),
    ),
    min_size=1, max_size=120,
))
def test_event_set_conformance_property(ops):
    """Seeded, shrinkable differential: any op interleaving agrees.

    ``push`` schedules at ``last popped time + delta`` (the engine's
    monotone-push contract); ``pop`` is skipped while empty.  The heapq
    implementation is the oracle for order, peek and size.
    """
    reference, candidate = HeapEventSet(), CalendarEventSet()
    current = 0
    counter = 0
    for op, delta in ops:
        if op == "push":
            counter += 1
            tag = f"e{counter}"
            reference.push(current + delta, tag)
            candidate.push(current + delta, tag)
        elif len(reference):
            entry_ref = reference.pop()
            assert candidate.pop() == entry_ref
            current = entry_ref[0]
        assert reference.peek_time() == candidate.peek_time()
        assert len(reference) == len(candidate)
    while len(reference):
        assert candidate.pop() == reference.pop()


# -- 2. engine level --------------------------------------------------------

def _random_engine_scenario(sim, seed):
    """Random schedule/cancel/re-schedule mix; returns the dispatch log.

    Same-instant collisions, double-cancel, cancel-after-schedule and
    bound re-checks are all exercised; the log records every observable
    (fire order, times, process wakeups), so comparing logs across
    backends pins the full engine contract.
    """
    rng = random.Random(seed)
    log = []

    def worker(name):
        for i in range(rng.randint(5, 25)):
            delay = rng.choice(BOUNDARY_DELAYS)
            timer = sim.timeout(delay, value=(name, i))
            if rng.random() < 0.35:
                doomed = sim.timeout(rng.choice(BOUNDARY_DELAYS))
                doomed.cancel()
                if rng.random() < 0.5:
                    doomed.cancel()  # double-cancel must stay a no-op
            yield timer
            log.append(("wake", sim.now, name, i))

    for k in range(rng.randint(2, 5)):
        sim.process(worker(f"p{k}"))
    for _ in range(rng.randint(3, 8)):
        when = rng.randint(0, 300)
        sim.call_at(when, lambda w=when: log.append(("call", sim.now, w)))
    # A same-instant cluster: several timers at one future instant, some
    # cancelled before firing — fire order must be scheduling order.
    cluster_at = rng.randint(50, 150)
    for j in range(6):
        timer = sim.call_at(cluster_at, lambda j=j: log.append(
            ("cluster", sim.now, j)))
        if j % 2 == 1:
            timer.cancel()
    # Run in bounded hops (tombstone bound re-check edge), then drain.
    horizon = 0
    for _ in range(rng.randint(1, 4)):
        horizon += rng.randint(10, 400)
        sim.run(until=horizon)
        log.append(("bound", sim.now, horizon))
    sim.run()
    log.append(("end", sim.now))
    return log


@pytest.mark.parametrize("seed", range(12))
def test_engines_dispatch_identically(seed):
    logs = {}
    for backend in BACKENDS:
        logs[backend] = _random_engine_scenario(
            Simulator(backend=backend), seed)
    reference = logs[BACKENDS[0]]
    for backend in BACKENDS[1:]:
        assert logs[backend] == reference, seed


def test_tombstone_before_bound_recheck(backend):
    """A tombstone at the bound must not let the run overshoot it."""
    sim = Simulator(backend=backend)
    fired = []
    sim.timeout(10).cancel()
    sim.timeout(12).add_callback(lambda evt: fired.append(sim.now))
    sim.run(until=11)
    assert fired == [] and sim.now == 11
    sim.run()
    assert fired == [12]


def test_push_at_now_after_bounded_run(backend):
    """Pushes at the bound instant after run(until=) stay in order —
    the window re-anchor edge for the calendar backend."""
    sim = Simulator(backend=backend)
    sim.timeout(50)
    sim.run(until=120)
    order = []
    sim.call_at(120, lambda: order.append("a"))
    sim.call_at(120, lambda: order.append("b"))
    sim.call_at(120 + WHEEL_SPAN, lambda: order.append("far"))
    sim.run()
    assert order == ["a", "b", "far"]
    assert sim.now == 120 + WHEEL_SPAN


def test_cancel_after_trigger_raises_on_all_backends(backend):
    sim = Simulator(backend=backend)
    timer = sim.timeout(5)
    sim.run()
    with pytest.raises(SimulationError):
        timer.cancel()


def test_step_interleaves_with_bulk_run(backend):
    """step()-then-run() hands the half-drained instant over cleanly."""
    sim = Simulator(backend=backend)
    order = []
    for j in range(5):
        sim.call_at(10, lambda j=j: order.append(j))
    sim.timeout(10 + WHEEL_SPAN * 2)  # force an overflow entry too
    assert sim.step()
    assert order == [0] and sim.now == 10
    sim.run()
    assert order == [0, 1, 2, 3, 4]
    assert sim.now == 10 + WHEEL_SPAN * 2


# -- 3. system level --------------------------------------------------------

def test_trace_bytes_identical_across_backends(tmp_path, monkeypatch):
    """The seeded determinism scenario exports byte-identical JSONL and
    equal structured reports on every backend (selected via the
    environment override, as the CI matrix does)."""
    exports = {}
    reports = {}
    for backend in BACKENDS:
        monkeypatch.setenv("REPRO_SIM_BACKEND", backend)
        path = tmp_path / f"{backend}.jsonl"
        system = run_scenario(path)
        assert system.backend == backend
        exports[backend] = path.read_bytes()
        reports[backend] = system.run_report().to_dict()
    reference = BACKENDS[0]
    assert len(exports[reference]) > 1_000
    for backend in BACKENDS[1:]:
        assert exports[backend] == exports[reference]
        assert reports[backend] == reports[reference]


@pytest.mark.parametrize("seed", [0, 7, 13, 23])
def test_random_workload_traces_identical_across_backends(seed, monkeypatch):
    """Spot-check of the 24-seed harness: the full trace (records and
    details) and the metric report agree across backends.  The complete
    sweep runs in CI via the backend matrix."""
    captured = {}
    for backend in BACKENDS:
        monkeypatch.setenv("REPRO_SIM_BACKEND", backend)
        system, *_ = build_workload(seed)
        system.run()
        records = [(rec.time, rec.category, rec.event, rec.details)
                   for rec in system.tracer.records]
        captured[backend] = (records, system.run_report().to_dict())
    reference = BACKENDS[0]
    assert len(captured[reference][0]) > 50
    for backend in BACKENDS[1:]:
        assert captured[backend][0] == captured[reference][0], seed
        assert captured[backend][1] == captured[reference][1], seed


def _campaign_result():
    def scenario(seed):
        # build_workload constructs its own HadesSystem, which resolves
        # the backend from REPRO_SIM_BACKEND — exactly the path the CI
        # matrix exercises.
        system, *_ = build_workload(seed)
        system.run()
        return system.run_report()
    return Campaign(scenario, seeds=range(4)).run()


def test_campaign_results_identical_across_backends(monkeypatch):
    """A representative fault campaign aggregates to identical wire
    dicts (per-run metrics and merged report) on every backend."""
    outcomes = {}
    for backend in BACKENDS:
        monkeypatch.setenv("REPRO_SIM_BACKEND", backend)
        result = _campaign_result()
        aggregate = result.aggregate()
        outcomes[backend] = {
            "runs": result.runs,
            "per_run": json.dumps(result.per_run, sort_keys=True,
                                  default=str),
            "aggregate": aggregate.to_dict() if aggregate else None,
        }
    reference = BACKENDS[0]
    assert outcomes[reference]["runs"] == 4
    for backend in BACKENDS[1:]:
        assert outcomes[backend] == outcomes[reference]


# -- selection plumbing (engine side) ---------------------------------------

def test_simulator_dispatches_to_flavour(monkeypatch):
    monkeypatch.delenv("REPRO_SIM_BACKEND", raising=False)
    assert type(Simulator()) is Simulator
    assert type(Simulator(backend="heapq")) is Simulator
    calendar = Simulator(backend="calendar")
    assert type(calendar) is CalendarSimulator
    assert isinstance(calendar, Simulator)
    assert calendar.backend == "calendar"


def test_flavour_class_rejects_foreign_backend():
    with pytest.raises(ValueError):
        CalendarSimulator(backend="heapq")
    assert CalendarSimulator().backend == "calendar"
    assert CalendarSimulator(backend="calendar").backend == "calendar"
