"""Tests for fault plans, campaigns, calibration and trace analysis."""

import pytest

from repro.analysis import (
    calibrate_dispatcher_costs,
    characterize_kernel_activities,
    render_timeline,
    response_time_stats,
    schedule_intervals,
)
from repro.analysis.traces import busy_fraction, thread_time
from repro.core import DispatcherCosts, Task
from repro.core.monitoring import ViolationKind
from repro.faults import Campaign, FaultEvent, FaultKind, FaultPlan, random_plan
from repro.obs import MetricsRegistry
from repro.system import HadesSystem


class TestFaultPlan:
    def test_crash_event_applied_at_time(self):
        system = HadesSystem(node_ids=["n0", "n1"])
        plan = FaultPlan().crash(500, "n1")
        plan.apply(system)
        system.run(until=1_000)
        assert system.nodes["n1"].crashed
        assert len(plan.applied) == 1

    def test_crash_then_recover(self):
        system = HadesSystem(node_ids=["n0"])
        plan = FaultPlan().crash(100, "n0").recover(200, "n0")
        plan.apply(system)
        system.run(until=300)
        assert not system.nodes["n0"].crashed

    def test_link_down_blocks_traffic(self):
        system = HadesSystem(node_ids=["n0", "n1"])
        plan = FaultPlan().link_down(0, "n0", "n1")
        plan.apply(system)
        got = []
        system.network.interfaces["n1"].on_receive(lambda m: got.append(m))
        system.sim.call_in(100,
                           lambda: system.network.interfaces["n0"].send(
                               "n1", "x"))
        system.run(until=10_000)
        assert got == []

    def test_omission_fault_added(self):
        system = HadesSystem(node_ids=["n0", "n1"])
        plan = FaultPlan(seed=3).link_omission(0, "n0", "n1",
                                               probability=1.0)
        plan.apply(system)
        system.run(until=10)
        assert len(system.network.link("n0", "n1").faults) == 1

    def test_link_up_restores_traffic(self):
        from repro.faults.plan import FaultKind
        system = HadesSystem(node_ids=["n0", "n1"])
        plan = (FaultPlan().link_down(0, "n0", "n1")
                .add(FaultEvent(500, FaultKind.LINK_UP, ("n0", "n1"))))
        plan.apply(system)
        got = []
        system.network.interfaces["n1"].on_receive(
            lambda m: got.append(m.payload))
        system.sim.call_in(100, lambda: system.network.interfaces["n0"]
                           .send("n1", "early"))
        system.sim.call_in(600, lambda: system.network.interfaces["n0"]
                           .send("n1", "late"))
        system.run(until=10_000)
        assert got == ["late"]

    def test_link_performance_fault_delays(self):
        from repro.faults.plan import FaultKind
        system = HadesSystem(node_ids=["n0", "n1"], network_latency=50)
        plan = FaultPlan().add(FaultEvent(
            0, FaultKind.LINK_PERFORMANCE, ("n0", "n1"),
            {"extra_delay": 5_000}))
        plan.apply(system)
        arrival = []
        system.network.interfaces["n1"].on_receive(
            lambda m: arrival.append(system.sim.now))
        system.sim.call_in(10, lambda: system.network.interfaces["n0"]
                           .send("n1", "slow"))
        system.run(until=20_000)
        assert arrival and arrival[0] > 5_000

    def test_byzantine_clock_recovers(self):
        from repro.faults.plan import FaultKind
        from repro.kernel import ByzantineClock, Node
        from repro.network import Network
        from repro.sim import Simulator, Tracer

        # Build a system whose node has a Byzantine-capable clock.
        system = HadesSystem(node_ids=["n0"])
        system.nodes["n0"].clock = ByzantineClock(system.sim)
        system.nodes["n0"].clock.byzantine = False
        plan = (FaultPlan()
                .byzantine_clock(100, "n0")
                .add(FaultEvent(500, FaultKind.CLOCK_RECOVER, "n0")))
        plan.apply(system)
        system.run(until=200)
        assert abs(system.nodes["n0"].now() - system.sim.now) > 1_000_000
        system.run(until=1_000)
        assert system.nodes["n0"].now() == system.sim.now

    def test_byzantine_clock_requires_capable_clock(self):
        system = HadesSystem(node_ids=["n0"])
        plan = FaultPlan().byzantine_clock(0, "n0")
        plan.apply(system)
        with pytest.raises(ValueError):
            system.run(until=10)

    def test_events_sorted_by_time(self):
        plan = FaultPlan()
        plan.crash(500, "b")
        plan.crash(100, "a")
        assert [e.time for e in plan.events] == [100, 500]

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(-1, FaultKind.NODE_CRASH, "n0")

    def test_random_plan_is_deterministic(self):
        plan_a = random_plan(["n0", "n1", "n2"], horizon=100_000, seed=5)
        plan_b = random_plan(["n0", "n1", "n2"], horizon=100_000, seed=5)
        assert [(e.time, e.kind, e.target) for e in plan_a.events] == \
            [(e.time, e.kind, e.target) for e in plan_b.events]

    def test_random_plan_spares_nodes(self):
        for seed in range(10):
            plan = random_plan(["n0", "n1"], horizon=10_000, seed=seed,
                               crash_count=1, spare_nodes=["n0"])
            crashes = [e for e in plan.events
                       if e.kind is FaultKind.NODE_CRASH]
            assert all(e.target == "n1" for e in crashes)


class TestCampaign:
    def test_aggregates_metrics(self):
        def scenario(seed):
            return {"value": seed * 2, "hit": seed % 2 == 0}

        result = Campaign(scenario, seeds=range(4)).run()
        assert result.runs == 4
        assert result.mean("value") == 3.0
        assert result.total("value") == 12
        assert result.maximum("value") == 6
        assert result.fraction("hit") == 0.5

    def test_runs_whole_system_scenarios(self):
        def scenario(seed):
            system = HadesSystem(node_ids=["n0"], on_deadline_miss="record")
            task = Task("t", deadline=50, node_id="n0")
            task.code_eu("a", wcet=100)
            system.activate(task)
            system.run()
            return {"misses": system.monitor.count(
                ViolationKind.DEADLINE_MISS)}

        result = Campaign(scenario, seeds=[1, 2]).run()
        assert result.total("misses") == 2


class TestCampaignEdgeCases:
    def test_empty_campaign(self):
        result = Campaign(lambda seed: {"x": 1}, seeds=[]).run()
        assert result.runs == 0
        assert result.per_run == []
        assert result.mean("x") == 0.0
        assert result.total("x") == 0
        assert result.maximum("x") == 0.0
        assert result.fraction("x") == 0.0
        assert result.aggregate() is None
        assert result.counter_total("x") == 0
        assert result.counter_mean("x") == 0.0

    def test_metric_present_in_only_some_runs(self):
        def scenario(seed):
            return {"rare": seed} if seed % 2 else {"other": 1}

        result = Campaign(scenario, seeds=range(4)).run()
        # mean/maximum/total all skip runs lacking the key, so
        # total == mean * present; fraction treats absence as falsy.
        assert result.mean("rare") == 2.0  # (1 + 3) / 2
        assert result.maximum("rare") == 3
        assert result.total("rare") == 4
        assert result.present("rare") == 2
        assert result.total("rare") == result.mean("rare") * result.present("rare")
        assert result.fraction("rare") == 0.5

    def test_mean_with_zero_matching_runs(self):
        result = Campaign(lambda seed: {"x": 1}, seeds=range(3)).run()
        assert result.mean("missing") == 0.0
        assert result.maximum("missing") == 0.0
        assert result.fraction("missing") == 0.0

    def test_seed_recorded_but_not_clobbered(self):
        result = Campaign(lambda seed: {"x": seed}, seeds=[5, 9]).run()
        assert [run["seed"] for run in result.per_run] == [5, 9]
        custom = Campaign(lambda seed: {"seed": 1234},
                          seeds=[5]).run()
        assert custom.per_run[0]["seed"] == 1234

    def test_scenario_returning_bare_run_report(self):
        def scenario(seed):
            registry = MetricsRegistry()
            registry.counter("drops").inc(seed)
            return registry.snapshot(seed=seed)

        result = Campaign(scenario, seeds=[1, 2, 3]).run()
        assert len(result.reports) == 3
        assert result.counter_total("drops") == 6
        assert result.counter_mean("drops") == 2.0
        assert result.total("drops") == 6  # flattened into per-run dicts
        merged = result.aggregate()
        assert merged.counter("drops") == 6
        assert merged.meta["runs"] == 3

    def test_dict_with_embedded_report_backfills_metrics(self):
        def scenario(seed):
            registry = MetricsRegistry()
            registry.counter("a").inc(10)
            registry.counter("b").inc(1)
            # Explicit keys win over the report's flattened metrics.
            return {"a": 99, "report": registry.snapshot()}

        result = Campaign(scenario, seeds=[0, 1]).run()
        assert all(run["a"] == 99 for run in result.per_run)
        assert all(run["b"] == 1 for run in result.per_run)
        assert result.counter_total("a") == 20  # reports keep raw values
        assert result.aggregate().counter("b") == 2

    def test_runs_without_reports_do_not_break_aggregation(self):
        def scenario(seed):
            if seed == 0:
                return {"plain": 1}
            registry = MetricsRegistry()
            registry.counter("c").inc(5)
            return {"report": registry.snapshot()}

        result = Campaign(scenario, seeds=[0, 1]).run()
        assert result.runs == 2
        assert len(result.reports) == 1
        assert result.aggregate().counter("c") == 5
        assert result.counter_mean("c") == 5.0


class TestCalibration:
    def test_measured_constants_match_configuration(self):
        configured = DispatcherCosts(c_local=8, c_remote=12, c_start_act=5,
                                     c_end_act=5, c_start_inv=6, c_end_inv=6)
        measured = calibrate_dispatcher_costs(configured)
        assert measured["per_action"] == configured.per_action()
        assert measured["c_local"] == configured.c_local
        assert measured["c_remote"] == configured.c_remote
        assert measured["per_invocation"] == configured.per_invocation()
        assert measured["c_start_act"] == configured.c_start_act
        assert measured["c_end_act"] == configured.c_end_act

    def test_zero_cost_configuration_measures_zero(self):
        measured = calibrate_dispatcher_costs(DispatcherCosts.zero())
        assert measured["per_action"] == 0
        assert measured["c_local"] == 0
        assert measured["c_remote"] == 0

    def test_kernel_characterisation_finds_both_activities(self):
        activities = characterize_kernel_activities(duration=300_000)
        names = {activity.name for activity in activities}
        assert names == {"clock", "net"}
        clock = next(a for a in activities if a.name == "clock")
        assert clock.pseudo_period == 10_000  # the configured tick

    def test_kernel_characterisation_net_respects_pseudo_period(self):
        activities = characterize_kernel_activities(duration=300_000)
        net = next(a for a in activities if a.name == "net")
        assert net.pseudo_period >= 1


class TestTraceAnalysis:
    def run_two_tasks(self):
        system = HadesSystem(node_ids=["n0"], costs=DispatcherCosts.zero())
        from repro.core.attributes import EUAttributes
        low = Task("low", node_id="n0")
        low.code_eu("a", wcet=100, attrs=EUAttributes(prio=1))
        high = Task("high", node_id="n0")
        high.code_eu("a", wcet=20, attrs=EUAttributes(prio=9))
        system.activate(low)
        system.sim.call_in(50, lambda: system.activate(high))
        system.run()
        return system

    def test_intervals_reconstruct_preemption(self):
        system = self.run_two_tasks()
        intervals = schedule_intervals(system.tracer, node="n0")
        assert thread_time(intervals, "low#1/a") == 100
        assert thread_time(intervals, "high#1/a") == 20
        # low runs in two pieces around high's preemption.
        low_pieces = [i for i in intervals if i.thread == "low#1/a"]
        assert len(low_pieces) == 2
        assert low_pieces[0].end == 50
        assert low_pieces[1].start == 70

    def test_busy_fraction(self):
        system = self.run_two_tasks()
        intervals = schedule_intervals(system.tracer, node="n0")
        assert busy_fraction(intervals, 120) == pytest.approx(1.0)

    def test_response_time_stats(self):
        stats = response_time_stats([10, 20, 30, 40])
        assert stats["count"] == 4
        assert stats["min"] == 10
        assert stats["max"] == 40
        assert stats["mean"] == 25.0

    def test_response_time_stats_empty(self):
        assert response_time_stats([])["count"] == 0

    def test_render_timeline_shape(self):
        system = self.run_two_tasks()
        intervals = schedule_intervals(system.tracer, node="n0")
        art = render_timeline(intervals, width=40)
        lines = art.splitlines()
        assert any("low#1/a" in line for line in lines)
        assert any("high#1/a" in line for line in lines)
        assert "#" in art

    def test_render_empty(self):
        assert render_timeline([]) == "(empty schedule)"
