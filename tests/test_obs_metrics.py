"""Tests for the observability layer: metrics registry, run reports,
tracer ring buffer / indexes / streaming export, and the JSONL
round-trip fidelity fix."""

import json
import time

import pytest

from repro.core import DispatcherCosts, EUAttributes, Task
from repro.core.monitoring import ViolationKind
from repro.obs import (
    MetricsRegistry,
    NULL_METRICS,
    RunReport,
    aggregate_reports,
)
from repro.obs.metrics import DEFAULT_BUCKETS, HistogramSnapshot
from repro.sim.trace import Tracer, load_trace
from repro.system import HadesSystem


class TestMetricsPrimitives:
    def test_counter_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("x")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        # get-or-create returns the same object
        assert registry.counter("x") is counter

    def test_gauge_tracks_max(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(3)
        gauge.set(10)
        gauge.set(2)
        assert gauge.value == 2
        assert gauge.max_value == 10
        assert gauge.samples == 3

    def test_histogram_buckets_and_stats(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(10, 100, 1000))
        for value in (5, 10, 11, 500, 5000):
            hist.observe(value)
        assert hist.counts == [2, 1, 1, 1]  # <=10, <=100, <=1000, overflow
        assert hist.count == 5
        assert hist.total == 5526
        assert hist.min_value == 5
        assert hist.max_value == 5000
        assert hist.mean() == pytest.approx(5526 / 5)

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("bad", buckets=(10, 5))

    def test_snapshot_and_reset(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(3)
        registry.gauge("g").set(7)
        registry.histogram("h", buckets=(10,)).observe(4)
        report = registry.snapshot(run="r1")
        assert report.counter("a") == 3
        assert report.gauges["g"] == {"value": 7, "max": 7}
        assert report.histograms["h"].count == 1
        assert report.meta["run"] == "r1"
        registry.reset()
        after = registry.snapshot()
        assert after.counter("a") == 0
        assert after.histograms["h"].count == 0
        # the cached metric objects stay live after reset
        registry.counter("a").inc()
        assert registry.snapshot().counter("a") == 1

    def test_null_registry_is_shared_noop(self):
        counter = NULL_METRICS.counter("anything")
        assert counter is NULL_METRICS.counter("else")
        counter.inc(100)
        assert counter.value == 0
        NULL_METRICS.gauge("g").set(5)
        NULL_METRICS.histogram("h").observe(5)
        report = NULL_METRICS.snapshot(tag=1)
        assert report.counters == {}
        assert report.meta == {"tag": 1}
        assert not NULL_METRICS.enabled


class TestRunReport:
    def make_report(self, c=1, g=2, n=1):
        registry = MetricsRegistry()
        registry.counter("hits").inc(c)
        registry.gauge("depth").set(g)
        hist = registry.histogram("lat", buckets=(10, 100))
        for _ in range(n):
            hist.observe(50)
        return registry.snapshot()

    def test_flat_shape(self):
        flat = self.make_report(c=3, g=4, n=2).flat()
        assert flat["hits"] == 3
        assert flat["depth.value"] == 4
        assert flat["depth.max"] == 4
        assert flat["lat.count"] == 2
        assert flat["lat.mean"] == pytest.approx(50.0)

    def test_dict_round_trip(self):
        report = self.make_report()
        clone = RunReport.from_dict(
            json.loads(json.dumps(report.to_dict())))
        assert clone == report

    def test_round_trip_preserves_order_and_types(self):
        # The parallel campaign executor ships reports across process
        # boundaries as dicts; merged results must be byte-identical to
        # serial, which needs key order and int/float to survive JSON.
        registry = MetricsRegistry()
        for name in ("z.last", "a.first", "m.middle"):
            registry.counter(name).inc(1)
        registry.gauge("g").set(3)
        registry.histogram("h", buckets=(10,)).observe(4)
        report = registry.snapshot(seed=7, scenario="E9")
        clone = RunReport.from_dict(
            json.loads(json.dumps(report.to_dict())))
        assert clone == report
        # snapshot() normalises counters to sorted name order (so the
        # wire format is registration-order independent) and the
        # round-trip must keep that order untouched.
        assert list(clone.counters) == ["a.first", "m.middle", "z.last"]
        assert list(clone.meta) == ["seed", "scenario"]
        assert isinstance(clone.counters["z.last"], int)
        assert isinstance(clone.meta["seed"], int)
        assert isinstance(clone.histograms["h"].buckets, tuple)
        assert json.dumps(clone.to_dict()) == json.dumps(report.to_dict())
        assert clone.flat() == report.flat()

    def test_aggregate_sums_counters_and_histograms(self):
        merged = aggregate_reports([self.make_report(c=1, g=2, n=1),
                                    self.make_report(c=4, g=6, n=3)])
        assert merged.counter("hits") == 5
        assert merged.gauges["depth"] == {"value": 4.0, "max": 6}
        assert merged.histograms["lat"].count == 4
        assert merged.meta["runs"] == 2

    def test_aggregate_rejects_mismatched_buckets(self):
        a = RunReport(histograms={"h": HistogramSnapshot(
            (10,), (1, 0), 1, 5, 5, 5)})
        b = RunReport(histograms={"h": HistogramSnapshot(
            (20,), (1, 0), 1, 5, 5, 5)})
        with pytest.raises(ValueError):
            aggregate_reports([a, b])

    def test_quantile(self):
        hist = MetricsRegistry().histogram("q", buckets=(10, 100, 1000))
        for value in (1, 2, 50, 60, 70, 800):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap.quantile(0.0) == 10
        assert snap.quantile(0.5) == 100
        assert snap.quantile(1.0) == 1000
        assert HistogramSnapshot((10,), (0, 0), 0, 0, None, None).quantile(0.5) is None

    def test_quantile_edge_cases(self):
        empty = HistogramSnapshot((10, 100), (0, 0, 0), 0, 0, None, None)
        for q in (0.0, 0.5, 1.0):
            assert empty.quantile(q) is None

        single = MetricsRegistry().histogram("s", buckets=(10,))
        single.observe(5)
        snap = single.snapshot()
        assert snap.quantile(0.0) == 10
        assert snap.quantile(1.0) == 10

        # Observations past the last bound live in the overflow bucket:
        # no finite upper bound exists for quantiles that land there.
        over = MetricsRegistry().histogram("o", buckets=(10,))
        over.observe(5)
        over.observe(999)
        snap = over.snapshot()
        assert snap.quantile(0.5) == 10
        assert snap.quantile(1.0) is None

        with pytest.raises(ValueError):
            snap.quantile(-0.1)
        with pytest.raises(ValueError):
            snap.quantile(1.1)

    def test_quantiles_survive_report_round_trip(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(10, 100, 1000))
        for value in (1, 2, 50, 60, 70, 800):
            hist.observe(value)
        report = registry.snapshot()
        clone = RunReport.from_dict(
            json.loads(json.dumps(report.to_dict())))
        original = report.histograms["lat"]
        restored = clone.histograms["lat"]
        for q in (0.0, 0.25, 0.5, 0.75, 0.9, 1.0):
            assert restored.quantile(q) == original.quantile(q)


class TestInstrumentedSystem:
    def run_workload(self, metrics):
        system = HadesSystem(node_ids=["n0", "n1"],
                             costs=DispatcherCosts.zero(), metrics=metrics)
        task = Task("pipe", deadline=100, node_id="n0")
        a = task.code_eu("a", wcet=10, attrs=EUAttributes(prio=1))
        b = task.code_eu("b", wcet=10, node_id="n1")
        task.precede(a, b)
        hog = Task("hog", node_id="n0")
        hog.code_eu("h", wcet=500, attrs=EUAttributes(prio=2))
        system.activate(task)
        system.activate(hog)
        system.run()
        return system

    def test_counters_match_trace_and_monitor(self):
        system = self.run_workload(metrics=True)
        report = system.run_report()
        tracer = system.tracer
        assert report.counter("dispatcher.activations") == \
            tracer.count("dispatcher", "activate") == 2
        assert report.counter("dispatcher.thread_starts") == \
            tracer.count("dispatcher", "thread_start") == 3
        assert report.counter("dispatcher.eu_completions") == \
            tracer.count("dispatcher", "eu_done") == 3
        assert report.counter("cpu.preemptions") == \
            tracer.count("cpu", "preempt")
        assert report.counter("network.messages_delivered") == \
            tracer.count("network", "deliver")
        assert report.histograms["network.latency"].count == \
            tracer.count("network", "deliver")
        # The pipeline crosses the network: deadline 100 < latency, miss.
        misses = system.monitor.count(ViolationKind.DEADLINE_MISS)
        assert misses >= 1
        assert report.counter("violations.deadline_miss") == misses
        assert report.counter("violations.total") == system.monitor.count()
        assert report.counter("engine.events_fired") > 0
        assert report.gauges["engine.heap_depth"]["max"] > 0
        assert report.meta["sim_time"] == system.sim.now

    def test_disabled_metrics_report_is_empty(self):
        system = self.run_workload(metrics=None)
        report = system.run_report()
        assert report.counters == {}
        assert report.histograms == {}
        assert report.meta["trace_records"] == len(system.tracer)

    def test_registry_instance_can_be_shared(self):
        registry = MetricsRegistry()
        system = self.run_workload(metrics=registry)
        assert system.metrics is registry
        assert registry.snapshot().counter("dispatcher.activations") == 2


class TestTracerRingBuffer:
    def fill(self, tracer, n=10):
        for i in range(n):
            tracer.record("cat", f"ev{i % 3}", time=i, k=i)

    def test_bounded_keeps_tail(self):
        tracer = Tracer(clock=lambda: 0, maxlen=4)
        self.fill(tracer, 10)
        assert len(tracer) == 4
        assert tracer.dropped == 6
        assert [r.time for r in tracer.records] == [6, 7, 8, 9]

    def test_bad_maxlen_rejected(self):
        with pytest.raises(ValueError):
            Tracer(clock=lambda: 0, maxlen=0)

    def test_index_consistent_after_eviction(self):
        bounded = Tracer(clock=lambda: 0, maxlen=5)
        linear = Tracer(clock=lambda: 0, maxlen=5, index=False)
        # Query early so the index exists before evictions happen.
        assert bounded.count("cat") == 0
        for tracer in (bounded, linear):
            self.fill(tracer, 12)
        for event in (None, "ev0", "ev1", "ev2"):
            assert bounded.select("cat", event) == linear.select("cat", event)
            assert bounded.count("cat", event) == linear.count("cat", event)
        assert bounded.select("cat", "ev0", k=9) == \
            linear.select("cat", "ev0", k=9)

    def test_index_built_lazily_matches_scan(self):
        indexed = Tracer(clock=lambda: 0)
        plain = Tracer(clock=lambda: 0, index=False)
        for tracer in (indexed, plain):
            for i in range(50):
                tracer.record(f"c{i % 4}", f"e{i % 5}", time=i, v=i % 2)
        assert indexed._by_cat_event is None  # not built yet
        for category in ("c0", "c1", "c2", "c3", "missing"):
            for event in (None, "e0", "e3", "missing"):
                assert indexed.select(category, event) == \
                    plain.select(category, event)
        assert indexed.select("c1", "e2", v=1) == plain.select("c1", "e2", v=1)
        assert indexed.count("c2") == plain.count("c2")
        # Records added after the build keep the index current.
        for tracer in (indexed, plain):
            tracer.record("c0", "e0", time=99, v=0)
        assert indexed.select("c0", "e0") == plain.select("c0", "e0")

    def test_indexed_select_is_10x_faster_on_100k_records(self):
        """Acceptance criterion: O(matches) vs O(n) on a 100k trace."""
        indexed = Tracer(clock=lambda: 0)
        linear = Tracer(clock=lambda: 0, index=False)
        for i in range(100_000):
            category, event = f"cat{i % 10}", f"ev{(i // 10) % 10}"
            indexed.record(category, event, time=i, k=i)
            linear.record(category, event, time=i, k=i)
        expected = linear.select("cat7", "ev3")
        assert indexed.select("cat7", "ev3") == expected  # warm + verify
        assert len(expected) == 1_000

        def clock(fn, repeat=10):
            best = float("inf")
            for _ in range(repeat):
                start = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - start)
            return best

        fast = clock(lambda: indexed.select("cat7", "ev3"))
        slow = clock(lambda: linear.select("cat7", "ev3"))
        assert slow >= 10 * fast, (slow, fast)
        fast_count = clock(lambda: indexed.count("cat7", "ev3"))
        slow_count = clock(lambda: linear.count("cat7", "ev3"))
        assert slow_count >= 10 * fast_count, (slow_count, fast_count)


class TestJsonlRoundTrip:
    def test_round_trip_is_type_faithful(self, tmp_path):
        tracer = Tracer(clock=lambda: 0)
        tracer.record("a", "mixed", time=5, i=3, f=2.5, b=True, s="x",
                      none=None, lst=[1, "two", 3.0, False],
                      dct={"k": 1, "nested": {"deep": [True]}})
        tracer.record("a", "other", time=6, neg=-7)
        path = tmp_path / "trace.jsonl"
        assert tracer.to_jsonl(str(path)) == 2
        loaded = load_trace(str(path))
        assert loaded.records == tracer.records  # typed equality, not str
        detail = loaded.records[0].details
        assert type(detail["i"]) is int
        assert type(detail["f"]) is float
        assert type(detail["b"]) is bool
        assert detail["none"] is None
        assert detail["lst"] == [1, "two", 3.0, False]
        assert detail["dct"]["nested"]["deep"] == [True]

    def test_non_native_values_stringified_at_write_time(self, tmp_path):
        tracer = Tracer(clock=lambda: 0)
        tracer.record("a", "enumish", time=1,
                      kind=ViolationKind.DEADLINE_MISS, tup=(1, 2))
        path = tmp_path / "trace.jsonl"
        tracer.to_jsonl(str(path))
        loaded = load_trace(str(path))
        detail = loaded.records[0].details
        assert detail["kind"] == str(ViolationKind.DEADLINE_MISS)
        assert detail["tup"] == [1, 2]  # JSON has no tuples
        # and a second round trip is now a fixed point
        path2 = tmp_path / "trace2.jsonl"
        loaded.to_jsonl(str(path2))
        assert load_trace(str(path2)).records == loaded.records

    def test_stream_jsonl_captures_evicted_records(self, tmp_path):
        tracer = Tracer(clock=lambda: 0, maxlen=3)
        path = tmp_path / "stream.jsonl"
        with tracer.stream_jsonl(str(path)) as stream:
            for i in range(10):
                tracer.record("c", "e", time=i, k=i)
        assert stream.written == 10
        assert len(tracer) == 3  # ring kept only the tail...
        loaded = load_trace(str(path))
        assert len(loaded) == 10  # ...but the stream kept everything
        assert [r.time for r in loaded.records] == list(range(10))
        # closing detached the listener: new records are not written
        tracer.record("c", "e", time=99)
        assert load_trace(str(path)).records == loaded.records
