"""Property-based tests on protocol invariants: SRP/PCP, reliable
broadcast, bounded channels, consensus, static plans, cyclic schedules.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core import (
    AccessMode,
    DispatcherCosts,
    EUAttributes,
    Resource,
    Task,
)
from repro.core.dispatcher import InstanceState
from repro.kernel import Node
from repro.network import Network, OmissionFault
from repro.scheduling import EDFScheduler, Job, SRPProtocol, build_plan
from repro.services.broadcast import make_group
from repro.services.channels import BoundedChannel
from repro.services.consensus import run_consensus
from repro.sim import Simulator, Tracer
from repro.system import HadesSystem


def build_net(n, **kwargs):
    sim = Simulator()
    tracer = Tracer(lambda: sim.now)
    net = Network(sim, tracer, **kwargs)
    for i in range(n):
        net.add_node(Node(sim, f"n{i}", tracer=tracer))
    net.connect_all()
    return sim, net


class TestSRPProperties:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_all_instances_finish_and_cs_units_never_wait(self, seed):
        """Under EDF+SRP with random CS workloads: everything completes
        (no deadlock) and no critical-section unit blocks mid-job —
        Baker's 'blocked at most once, before starting' property."""
        rng = random.Random(seed)
        system = HadesSystem(node_ids=["cpu"], costs=DispatcherCosts.zero())
        system.attach_scheduler(EDFScheduler(scope="cpu", w_sched=0))
        resources = [Resource(f"R{i}", node_id="cpu") for i in range(2)]
        tasks = []
        for index in range(rng.randrange(2, 5)):
            deadline = rng.randrange(2_000, 40_000)
            task = Task(f"t{index}", deadline=deadline, node_id="cpu")
            before = task.code_eu("before", wcet=rng.randrange(1, 200))
            cs = task.code_eu(
                "cs", wcet=rng.randrange(1, 300),
                resources=[(rng.choice(resources), AccessMode.EXCLUSIVE)])
            after = task.code_eu("after", wcet=rng.randrange(1, 200))
            task.chain(before, cs, after)
            tasks.append(task)
        system.attach_scheduler(SRPProtocol(tasks, scope="cpu", w_sched=0))
        instances = []
        for task in tasks:
            system.sim.call_in(rng.randrange(0, 500),
                               lambda t=task: instances.append(
                                   system.activate(t)))
        system.run()
        for instance in instances:
            assert instance.state is InstanceState.DONE
            units = {e.eu.name: e for e in instance.eu_instances.values()}
            # Once the job started, its cs unit starts the moment its
            # predecessor ends: zero mid-job blocking.
            assert units["cs"].release_time == units["before"].finish_time

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_exclusive_sections_never_overlap_under_srp(self, seed):
        rng = random.Random(seed)
        system = HadesSystem(node_ids=["cpu"], costs=DispatcherCosts.zero())
        system.attach_scheduler(EDFScheduler(scope="cpu", w_sched=0))
        resource = Resource("R", node_id="cpu")
        spans = []
        tasks = []
        for index in range(3):
            task = Task(f"t{index}", deadline=rng.randrange(5_000, 50_000),
                        node_id="cpu")
            task.code_eu(
                "cs", wcet=rng.randrange(50, 400),
                resources=[(resource, AccessMode.EXCLUSIVE)],
                action=lambda ctx, i=index: spans.append((i, ctx.now)))
            tasks.append(task)
        system.attach_scheduler(SRPProtocol(tasks, scope="cpu", w_sched=0))
        for task in tasks:
            system.sim.call_in(rng.randrange(0, 300),
                               lambda t=task: system.activate(t))
        system.run()
        assert len(spans) == 3
        assert resource.free


class TestBroadcastProperties:
    @given(seed=st.integers(0, 10_000),
           loss=st.floats(0.0, 0.4))
    @settings(max_examples=15, deadline=None)
    def test_agreement_all_or_none(self, seed, loss):
        """Channel-backed broadcast: agreement holds under arbitrary
        probabilistic loss with bounded omission runs (the plain
        diffusion variant only assumes one faulty path per pair — the
        property hunt that motivated the channel mode)."""
        sim, net = build_net(4)
        rng = random.Random(seed)
        if loss > 0:
            for link in net.links.values():
                link.add_fault(OmissionFault(
                    probability=loss,
                    rng=random.Random(rng.randrange(2 ** 31)),
                    max_consecutive=3))
        group = [f"n{i}" for i in range(4)]
        endpoints = make_group(net, group, reliable_links=True,
                               retransmit_interval=700, max_retries=12)
        deliveries = {}
        for node_id, endpoint in endpoints.items():
            endpoint.on_deliver(
                lambda origin, payload, nid=node_id:
                deliveries.setdefault(payload, set()).add(nid))
        for index in range(8):
            sender = group[rng.randrange(4)]
            sim.call_at(index * 3_000 + 100,
                        lambda s=sender, i=index:
                        endpoints[s].broadcast(i))
        sim.run()
        for payload, nodes in deliveries.items():
            assert len(nodes) in (0, 4), \
                f"partial delivery of {payload}: {nodes}"

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_integrity_under_random_crash(self, seed):
        """Nobody delivers twice, even when the origin crashes
        mid-diffusion; surviving members still agree."""
        rng = random.Random(seed)
        sim, net = build_net(5)
        group = [f"n{i}" for i in range(5)]
        endpoints = make_group(net, group)
        counts = {nid: {} for nid in group}
        for node_id, endpoint in endpoints.items():
            endpoint.on_deliver(
                lambda origin, payload, nid=node_id:
                counts[nid].__setitem__(payload,
                                        counts[nid].get(payload, 0) + 1))
        endpoints["n0"].broadcast("m")
        sim.call_in(rng.randrange(1, 300), net.nodes["n0"].crash)
        sim.run()
        survivors = [nid for nid in group if not net.nodes[nid].crashed]
        values = {counts[nid].get("m", 0) for nid in survivors}
        assert all(v <= 1 for v in values)  # integrity
        assert len(values) == 1             # agreement among survivors


class TestChannelProperties:
    @given(seed=st.integers(0, 10_000), loss=st.floats(0.0, 0.6),
           n_messages=st.integers(1, 12))
    @settings(max_examples=20, deadline=None)
    def test_exactly_once_in_order(self, seed, loss, n_messages):
        sim, net = build_net(2)
        rng = random.Random(seed)
        if loss > 0:
            # Bounded omission runs keep the retry budget sufficient.
            net.link("n0", "n1").add_fault(OmissionFault(
                probability=loss, rng=random.Random(seed + 1),
                max_consecutive=3))
            net.link("n1", "n0").add_fault(OmissionFault(
                probability=loss, rng=random.Random(seed + 2),
                max_consecutive=3))
        a = BoundedChannel(net, "n0", retransmit_interval=800,
                           max_retries=12)
        b = BoundedChannel(net, "n1", retransmit_interval=800,
                           max_retries=12)
        got = []
        b.on_receive(lambda src, payload: got.append(payload))
        # Sends are spaced past the worst-case round trip: the bounded
        # omission-run guarantee is per *link*, so a message's retry
        # budget is only guaranteed to suffice when its own attempts
        # are the link's traffic (interleaved traffic can absorb the
        # run-resetting successes — found by this property test).
        for index in range(n_messages):
            sim.call_at(index * 15_000, lambda i=index: a.send("n1", i))
        sim.run()
        assert got == list(range(n_messages))
        assert a.failed == 0


class TestConsensusProperties:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_agreement_validity_under_random_crashes(self, seed):
        rng = random.Random(seed)
        n, f = 5, 2
        sim, net = build_net(n)
        group = [f"n{i}" for i in range(n)]
        inputs = {g: f"v{i}" for i, g in enumerate(group)}
        services = run_consensus(net, group, f=f, inputs=inputs)
        round_length = services["n0"].round_length
        # Crash up to f nodes at random times within the protocol.
        victims = rng.sample(group, rng.randrange(0, f + 1))
        for victim in victims:
            sim.call_in(rng.randrange(1, round_length * (f + 1)),
                        net.nodes[victim].crash)
        sim.run()
        survivors = [services[g] for g in group
                     if not net.nodes[g].crashed]
        decisions = {s.decision for s in survivors}
        assert len(decisions) == 1            # agreement
        assert decisions.pop() in inputs.values()  # validity


class TestPlanProperties:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_found_plans_always_validate(self, seed):
        rng = random.Random(seed)
        n = rng.randrange(2, 8)
        jobs = []
        for index in range(n):
            wcet = rng.randrange(10, 200)
            release = rng.randrange(0, 300)
            deadline = release + wcet + rng.randrange(0, 2_000)
            preds = tuple(f"j{p}" for p in range(index)
                          if rng.random() < 0.2)
            group = rng.choice([None, "bus"])
            jobs.append(Job(f"j{index}", wcet=wcet, deadline=deadline,
                            release=release, predecessors=preds,
                            exclusion_group=group))
        processors = [f"p{i}" for i in range(rng.randrange(1, 4))]
        plan = build_plan(jobs, processors)
        if plan is not None:
            plan.validate()  # raises on any constraint violation
            assert len(plan.placements) == n


class TestCyclicProperties:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_schedules_cover_hyperperiod_and_fit_frames(self, seed):
        from repro.feasibility import AnalysisTask, build_cyclic_schedule

        rng = random.Random(seed)
        base = rng.choice([50, 100])
        periods = [base, base * 2, base * 4]
        tasks = []
        for index, period in enumerate(periods[:rng.randrange(2, 4)]):
            wcet = rng.randrange(1, max(2, period // 6))
            tasks.append(AnalysisTask(f"t{index}", wcet=wcet,
                                      deadline=period, period=period))
        schedule = build_cyclic_schedule(tasks)
        if schedule is None:
            return
        wcets = {t.name: t.wcet for t in tasks}
        for frame_slot in schedule.frames:
            assert frame_slot.load(wcets) <= schedule.frame
        for task in tasks:
            placed = sum(1 for f in schedule.frames
                         for name, _r in f.jobs if name == task.name)
            assert placed == schedule.major // task.period
            # Every job sits in a frame inside [release, deadline].
            for frame_slot in schedule.frames:
                for name, release in frame_slot.jobs:
                    if name != task.name:
                        continue
                    assert frame_slot.start >= release
                    assert frame_slot.start + schedule.frame <= \
                        release + task.deadline
