"""Tests for dynamic priority ceilings ([CL90]) and trace export."""

import pytest

from repro.core import (
    AccessMode,
    DispatcherCosts,
    Resource,
    Task,
)
from repro.core.dispatcher import InstanceState
from repro.core.monitoring import ViolationKind
from repro.scheduling import DynamicPCPProtocol, EDFScheduler
from repro.sim.trace import load_trace
from repro.system import HadesSystem


def make_system():
    return HadesSystem(node_ids=["cpu"], costs=DispatcherCosts.zero())


def cs_task(name, resource, deadline, before=50, cs=100, after=50):
    task = Task(name, deadline=deadline, node_id="cpu")
    a = task.code_eu("before", wcet=before)
    b = task.code_eu("cs", wcet=cs,
                     resources=[(resource, AccessMode.EXCLUSIVE)])
    c = task.code_eu("after", wcet=after)
    task.chain(a, b, c)
    return task


class TestDynamicPCP:
    def test_bounds_inversion_under_edf(self):
        """[CL90] with EDF: the urgent task waits at most the holder's
        remaining critical section, not the medium work."""
        def run(with_protocol):
            system = make_system()
            system.attach_scheduler(EDFScheduler(scope="cpu", w_sched=0))
            resource = Resource("R", node_id="cpu")
            low = cs_task("low", resource, deadline=100_000, cs=300)
            urgent = cs_task("urgent", resource, deadline=1_500, cs=50)
            medium = Task("medium", deadline=30_000, node_id="cpu")
            medium.code_eu("spin", wcet=2_000)
            if with_protocol:
                system.attach_scheduler(DynamicPCPProtocol(
                    [low, urgent, medium], scope="cpu", w_sched=0))
            system.activate(low)
            system.sim.call_in(60, lambda: system.activate(medium))
            system.sim.call_in(80, lambda: system.activate(urgent))
            system.run()
            return (system.dispatcher.response_times("urgent")[0],
                    system.monitor.count(ViolationKind.DEADLINE_MISS))

        protected_response, protected_misses = run(True)
        naive_response, naive_misses = run(False)
        assert protected_misses == 0
        assert protected_response < naive_response
        assert naive_misses >= 1

    def test_everything_completes_no_deadlock(self):
        system = make_system()
        system.attach_scheduler(EDFScheduler(scope="cpu", w_sched=0))
        r1 = Resource("R1", node_id="cpu")
        r2 = Resource("R2", node_id="cpu")
        tasks = [
            cs_task("t1", r1, deadline=5_000),
            cs_task("t2", r2, deadline=8_000),
            cs_task("t3", r1, deadline=20_000),
            cs_task("t4", r2, deadline=40_000),
        ]
        system.attach_scheduler(DynamicPCPProtocol(tasks, scope="cpu",
                                                   w_sched=0))
        instances = []
        for index, task in enumerate(tasks):
            system.sim.call_in(index * 30,
                               lambda t=task: instances.append(
                                   system.activate(t)))
        system.run()
        assert all(i.state is InstanceState.DONE for i in instances)
        assert r1.free and r2.free

    def test_ceiling_tracks_live_priorities(self):
        system = make_system()
        system.attach_scheduler(EDFScheduler(scope="cpu", w_sched=0))
        resource = Resource("R", node_id="cpu")
        low = cs_task("low", resource, deadline=100_000)
        high = cs_task("high", resource, deadline=1_000)
        protocol = DynamicPCPProtocol([low, high], scope="cpu", w_sched=0)
        system.attach_scheduler(protocol)
        system.activate(low)
        system.activate(high)
        system.run(until=30)
        # With both live, R's dynamic ceiling is the highest current
        # priority among units that may claim R (the "cs" units).
        ceiling = protocol._current_ceiling(resource)
        live_cs_high = max(
            eui.priority
            for inst in system.dispatcher.active_instances()
            for eui in inst.eu_instances.values()
            if eui.is_code() and eui.eu.name == "cs")
        assert ceiling == live_cs_high
        system.run()


class TestTraceExport:
    def test_roundtrip(self, tmp_path):
        system = make_system()
        task = Task("t", deadline=1_000, node_id="cpu")
        task.code_eu("eu", wcet=100)
        system.activate(task)
        system.run()
        path = tmp_path / "trace.jsonl"
        count = system.tracer.to_jsonl(str(path))
        assert count == len(system.tracer)
        loaded = load_trace(str(path))
        assert len(loaded) == count
        original = system.tracer.select("dispatcher", "instance_done")
        replayed = loaded.select("dispatcher", "instance_done")
        assert len(replayed) == len(original) == 1
        assert replayed[0].time == original[0].time

    def test_schedule_reconstruction_from_saved_trace(self, tmp_path):
        from repro.analysis import schedule_intervals

        system = make_system()
        task = Task("t", node_id="cpu")
        task.code_eu("eu", wcet=250)
        system.activate(task)
        system.run()
        path = tmp_path / "trace.jsonl"
        system.tracer.to_jsonl(str(path))
        loaded = load_trace(str(path))
        live = schedule_intervals(system.tracer, node="cpu")
        replayed = schedule_intervals(loaded, node="cpu")
        assert [(i.thread, i.start, i.end) for i in replayed] == \
            [(i.thread, i.start, i.end) for i in live]
