"""repro.hetero: heterogeneous engines, multi-version EUs, mapping,
the non-preemptive dispatch path, and engine-tagged observability."""

import json

import pytest

from repro import (
    DispatcherCosts,
    EUAttributes,
    HadesSystem,
    Scenario,
    Task,
    apply_assignment,
    auto_map,
    build_timeline,
    cpu_only,
    enumerate_assignments,
    forensics_report,
    map_task,
)
from repro.core.heug import CodeEU
from repro.hetero.engines import (
    CPU_CLASS,
    EngineClass,
    HeterogeneousPool,
    engine_labels,
)
from repro.obs.spans import decompose, reconstruct


def _system(engines=None, **kwargs):
    spec = {"n0": engines} if engines else None
    return HadesSystem(node_ids=["n0"], costs=DispatcherCosts.zero(),
                       engines=spec, **kwargs)


class TestEngineClassAndPool:
    def test_cpu_class_constant(self):
        assert CPU_CLASS == "cpu"
        assert EngineClass("cpu", preemptive=True).preemptive
        assert not EngineClass("gpu").preemptive

    def test_engine_class_rejects_bad_name(self):
        with pytest.raises(ValueError):
            EngineClass("")
        with pytest.raises(ValueError):
            EngineClass(None)

    def test_pool_builds_labeled_nonpreemptive_units(self):
        system = _system(engines={"gpu": 2, "dsp": 1})
        pool = system.nodes["n0"].engines
        assert pool.classes() == ["dsp", "gpu"]
        assert pool.spec() == {"gpu": 2, "dsp": 1}
        assert pool.count("gpu") == 2 and pool.count("dsp") == 1
        assert pool.has("gpu") and not pool.has("npu")
        labels = [unit.engine_label for unit in pool.units()]
        assert labels == ["dsp0", "gpu0", "gpu1"]
        assert all(not unit.preemptive for unit in pool.units())
        assert all(unit.engine_class != "cpu" for unit in pool.units())
        # The node's own CPU stays preemptive and unlabeled.
        assert system.nodes["n0"].cpu.preemptive
        assert system.nodes["n0"].cpu.engine_label is None

    def test_node_without_engines_has_no_pool(self):
        assert _system().nodes["n0"].engines is None

    @pytest.mark.parametrize("bad", [
        {}, {"cpu": 1}, {"gpu": 0}, {"gpu": -2}, {"gpu": True},
        {"gpu": 1.5}, {"": 1}, {3: 1}, "gpu",
    ])
    def test_pool_rejects_bad_specs(self, bad):
        with pytest.raises(ValueError):
            HadesSystem(node_ids=["n0"], engines={"n0": bad})

    def test_acquire_balances_by_outstanding_claims(self):
        pool = _system(engines={"gpu": 2}).nodes["n0"].engines
        first = pool.acquire("gpu")
        second = pool.acquire("gpu")
        assert [first.engine_label, second.engine_label] == ["gpu0", "gpu1"]
        pool.release(first)
        assert pool.acquire("gpu").engine_label == "gpu0"

    def test_unit_for_unknown_class_names_node(self):
        pool = _system(engines={"gpu": 1}).nodes["n0"].engines
        with pytest.raises(RuntimeError) as excinfo:
            pool.unit_for("dsp")
        assert "'n0'" in str(excinfo.value)
        assert "dsp" in str(excinfo.value)

    def test_engine_labels_helper(self):
        assert engine_labels({"gpu": 2, "dsp": 1}) == \
            ["dsp0", "gpu0", "gpu1"]

    def test_system_rejects_engines_for_unknown_nodes(self):
        with pytest.raises(ValueError) as excinfo:
            HadesSystem(node_ids=["n0"], engines={"n9": {"gpu": 1}})
        message = str(excinfo.value)
        assert "n9" in message and "n0" in message


class TestMultiVersionEU:
    def test_single_wcet_constructor_unchanged(self):
        eu = CodeEU("a", wcet=100)
        assert eu.engine == "cpu"
        assert eu.variants == {}
        assert eu.engine_candidates() == ["cpu"]
        assert eu.wcet_on("cpu") == 100
        assert eu.wcet_on("gpu") == 100  # no variant: cpu bound applies

    def test_variants_surface(self):
        eu = CodeEU("a", wcet=900, variants={"gpu": 120, "dsp": 300})
        assert eu.engine_candidates() == ["cpu", "dsp", "gpu"]
        assert eu.wcet_on("cpu") == 900
        assert eu.wcet_on("gpu") == 120
        assert eu.wcet_on("dsp") == 300

    def test_cpu_variant_must_match_wcet(self):
        assert CodeEU("a", wcet=900, variants={"cpu": 900}).wcet == 900
        with pytest.raises(ValueError):
            CodeEU("a", wcet=900, variants={"cpu": 800})

    @pytest.mark.parametrize("bad", [
        {}, {"gpu": -1}, {"gpu": True}, {"gpu": 1.5}, {"": 10}, {3: 10},
    ])
    def test_bad_variants_rejected(self, bad):
        with pytest.raises(ValueError):
            CodeEU("a", wcet=100, variants=bad)

    def test_wcet_error_names_task_and_eu(self):
        task = Task("ctl", deadline=1_000, node_id="n0")
        with pytest.raises(ValueError) as excinfo:
            task.code_eu("sense", wcet=-5)
        message = str(excinfo.value)
        assert "'ctl'" in message and "'sense'" in message

    def test_variant_error_names_task_and_eu(self):
        task = Task("ctl", deadline=1_000, node_id="n0")
        with pytest.raises(ValueError) as excinfo:
            task.code_eu("sense", wcet=100, variants={"gpu": -1})
        message = str(excinfo.value)
        assert "'ctl'" in message and "'sense'" in message

    def test_resolve_actual_per_engine(self):
        eu = CodeEU("a", wcet=900, variants={"gpu": 120},
                    actual_variants={"gpu": 100})
        assert eu.resolve_actual({}) == 900  # cpu: no actual_time -> bound
        assert eu.resolve_actual({}, engine="gpu") == 100

    def test_resolve_actual_defaults_to_variant_bound(self):
        eu = CodeEU("a", wcet=900, variants={"gpu": 120})
        assert eu.resolve_actual({}, engine="gpu") == 120

    def test_resolve_actual_enforces_variant_bound(self):
        eu = CodeEU("a", wcet=900, variants={"gpu": 120},
                    actual_variants={"gpu": 500})
        with pytest.raises(ValueError) as excinfo:
            eu.resolve_actual({}, engine="gpu")
        assert "gpu" in str(excinfo.value)

    def test_actual_variant_requires_matching_variant(self):
        with pytest.raises(ValueError):
            CodeEU("a", wcet=900, actual_variants={"gpu": 100})

    def test_engine_must_be_declared_class_string(self):
        with pytest.raises(ValueError):
            CodeEU("a", wcet=100, engine="")
        assert CodeEU("a", wcet=100, engine="gpu").engine == "gpu"

    def test_total_wcet_uses_selected_engine(self):
        task = Task("t", deadline=100_000, node_id="n0")
        task.code_eu("a", wcet=8_000, variants={"gpu": 900}, engine="gpu")
        task.code_eu("b", wcet=200)
        assert task.validate().total_wcet() == 1_100


class TestNonPreemptiveDispatch:
    def _two_tasks(self, engine):
        """Low-prio long block vs a high-prio challenger arriving late.

        Task A grabs the processor at t=0 for 1000us.  Task B runs a
        200us CPU prep stage, then contends for the same processor at
        t=200 with strictly higher priority.
        """
        variants = {"gpu": 1_000} if engine == "gpu" else None
        a = Task("low", deadline=10_000, node_id="n0")
        a.code_eu("block", wcet=1_000, variants=variants, engine=engine,
                  attrs=EUAttributes(prio=10))
        b = Task("high", deadline=10_000, node_id="n0")
        prep = b.code_eu("prep", wcet=200, attrs=EUAttributes(prio=40))
        work = b.code_eu("work", wcet=300,
                         variants={"gpu": 300} if engine == "gpu" else None,
                         engine=engine, attrs=EUAttributes(prio=40))
        b.precede(prep, work)
        return a.validate(), b.validate()

    def test_gpu_block_runs_to_completion(self):
        system = _system(engines={"gpu": 1})
        low, high = self._two_tasks("gpu")
        inst_low = system.activate(low)
        inst_high = system.activate(high)
        system.run()
        # The high-prio challenger waited for the full block: 1000
        # (A's kernel) + 300 (B's own gpu work).
        assert inst_low.response_time == 1_000
        assert inst_high.response_time == 1_300
        records = system.tracer.records
        preempts = [r for r in records
                    if r.category == "cpu" and r.event == "preempt"
                    and "engine" in r.details]
        assert preempts == []
        dispatches = [r for r in records
                      if r.category == "cpu" and r.event == "dispatch"
                      and r.details.get("engine") == "gpu0"]
        assert [r.time for r in dispatches] == [0, 1_000]

    def test_cpu_control_still_preempts(self):
        system = _system()
        low, high = self._two_tasks("cpu")
        inst_low = system.activate(low)
        inst_high = system.activate(high)
        system.run()
        # Preemptive CPU: prep and work (prio 40) both run before the
        # prio-10 block gets the processor back, so the block finishes
        # at 1500 instead of blocking the challenger.
        assert inst_high.response_time == 500
        assert inst_low.response_time == 1_500
        preempts = [r for r in system.tracer.records
                    if r.category == "cpu" and r.event == "preempt"]
        assert preempts, "preemptive control must preempt"
        assert all("engine" not in r.details for r in preempts)

    def test_missing_engine_units_raise_actionable_error(self):
        system = _system()  # no engines declared
        task = Task("t", deadline=10_000, node_id="n0")
        task.code_eu("a", wcet=100, variants={"gpu": 50}, engine="gpu")
        with pytest.raises(RuntimeError) as excinfo:
            system.activate(task.validate())
            system.run()
        message = str(excinfo.value)
        assert "gpu" in message and "n0" in message
        assert "HadesSystem(engines=" in message


def _fan_out_task(n=4, wcet=8_000, gpu=900):
    task = Task("serve", deadline=200_000, node_id="n0")
    ingress = task.code_eu("ingress", wcet=200)
    reply = task.code_eu("reply", wcet=200)
    for i in range(n):
        infer = task.code_eu(f"infer{i}", wcet=wcet,
                             variants={"gpu": gpu})
        task.precede(ingress, infer)
        task.precede(infer, reply)
    return task.validate()


class TestMapping:
    PLATFORM = {"n0": {"gpu": 2}}

    def test_map_task_offloads_variant_units(self):
        task = _fan_out_task()
        assignment = map_task(task, self.PLATFORM)
        assert assignment.task_name == "serve"
        assert sorted(assignment.offloaded()) == \
            ["infer0", "infer1", "infer2", "infer3"]
        assert assignment.engine_of("ingress") == "cpu"
        assert assignment.engine_of("infer0") == "gpu"

    def test_map_task_is_deterministic(self):
        first = map_task(_fan_out_task(), self.PLATFORM)
        second = map_task(_fan_out_task(), self.PLATFORM)
        assert first.mapping == second.mapping

    def test_map_task_balances_load_against_unit_count(self):
        # One gpu unit, gpu barely faster than cpu: the load-balance
        # estimate must keep some units on the cpu instead of queueing
        # everything behind the single accelerator.
        task = _fan_out_task(n=4, wcet=1_000, gpu=900)
        assignment = map_task(task, {"n0": {"gpu": 1}})
        engines = {assignment.engine_of(f"infer{i}") for i in range(4)}
        assert engines == {"cpu", "gpu"}

    def test_map_task_ignores_classes_absent_from_node(self):
        task = _fan_out_task()
        assignment = map_task(task, {"n0": {"dsp": 1}})
        assert assignment.offloaded() == []

    def test_apply_assignment_sets_engines_and_invalidates(self):
        task = _fan_out_task()
        assignment = map_task(task, self.PLATFORM)
        apply_assignment(task, assignment)
        by_name = {eu.name: eu for eu in task.code_eus()}
        assert by_name["infer0"].engine == "gpu"
        assert by_name["ingress"].engine == "cpu"
        apply_assignment(task, cpu_only(task))
        assert all(eu.engine == "cpu" for eu in task.code_eus())

    def test_apply_assignment_rejects_unknown_eu(self):
        task = _fan_out_task()
        from repro.hetero.mapping import Assignment
        with pytest.raises(ValueError):
            apply_assignment(task, Assignment("serve", {"nope": "gpu"}))

    def test_auto_map_returns_applied_assignment(self):
        task = _fan_out_task()
        assignment = auto_map(task, self.PLATFORM)
        assert {eu.name: eu.engine for eu in task.code_eus()} == {
            name: assignment.engine_of(name)
            for name in (eu.name for eu in task.code_eus())}

    def test_enumerate_assignments_covers_variant_space(self):
        task = _fan_out_task(n=2)
        combos = list(enumerate_assignments(task, self.PLATFORM))
        # Only the two infer units have a gpu variant: 2^2 combos.
        assert len(combos) == 4
        assert len({tuple(sorted(a.mapping.items()))
                    for a in combos}) == 4

    def test_mapped_run_beats_cpu_only(self):
        def response(platform):
            system = _system(engines={"gpu": 2})
            task = _fan_out_task()
            if platform:
                auto_map(task, platform)
            inst = system.activate(task)
            system.run()
            return inst.response_time

        cpu = response(None)
        mapped = response(self.PLATFORM)
        assert cpu == 200 + 4 * 8_000 + 200
        assert mapped == 200 + 2 * 900 + 200
        assert cpu / mapped >= 2


class TestEngineObservability:
    def _run_hetero(self, deadline=200_000):
        system = _system(engines={"gpu": 1})
        task = Task("serve", deadline=deadline, node_id="n0")
        a = task.code_eu("ingress", wcet=200)
        b = task.code_eu("infer", wcet=8_000, variants={"gpu": 900},
                         engine="gpu")
        c = task.code_eu("reply", wcet=200)
        task.precede(a, b)
        task.precede(b, c)
        system.activate(task.validate())
        system.run()
        return system

    def test_trace_records_carry_engine_tags(self):
        tracer = self._run_hetero().tracer
        starts = [r for r in tracer.records
                  if r.category == "dispatcher"
                  and r.event == "thread_start"]
        by_eu = {r.details["eu"].split("/")[-1]: r.details
                 for r in starts}
        assert by_eu["infer"].get("engine") == "gpu"
        assert "engine" not in by_eu["ingress"]
        assert "engine" not in by_eu["reply"]
        gpu_cpu_records = [r for r in tracer.records
                           if r.category == "cpu"
                           and r.details.get("engine") == "gpu0"]
        assert {r.event for r in gpu_cpu_records} >= \
            {"dispatch", "complete"}

    def test_decompose_attributes_time_per_engine_class(self):
        forest = reconstruct(self._run_hetero().tracer)
        activation = next(iter(forest.activations.values()))
        breakdown = decompose(activation)
        assert breakdown.executing_by_engine == {"cpu": 400, "gpu": 900}
        assert sum(breakdown.executing_by_engine.values()) == \
            breakdown.executing

    def test_cpu_only_runs_have_no_engine_keys(self):
        system = _system()
        task = Task("t", deadline=10_000, node_id="n0")
        task.code_eu("a", wcet=100)
        system.activate(task.validate())
        system.run()
        assert all("engine" not in r.details
                   for r in system.tracer.records)
        forest = reconstruct(system.tracer)
        breakdown = decompose(next(iter(forest.activations.values())))
        assert breakdown.executing_by_engine == {"cpu": 100}

    def test_forensics_report_names_engine(self):
        system = self._run_hetero(deadline=1_000)  # forces a miss
        report = forensics_report(system.tracer)
        assert "[gpu]" in report
        assert "/infer" in report

    def test_timeline_renders_engine_units_as_threads(self):
        doc = build_timeline(reconstruct(self._run_hetero().tracer))
        events = doc["traceEvents"]
        names = [e for e in events if e["ph"] == "M"
                 and e["name"] == "thread_name"]
        by_tid = {e["tid"]: e["args"]["name"] for e in names}
        assert by_tid == {0: "cpu", 1: "gpu0"}
        slices = [e for e in events if e["ph"] == "X"]
        gpu_slices = [e for e in slices if e["tid"] == 1]
        assert gpu_slices and all("infer" in e["name"]
                                  for e in gpu_slices)
        assert any(e["tid"] == 0 for e in slices)
        # Round-trips through JSON untouched.
        assert json.loads(json.dumps(doc)) == doc


def _hetero_scenario(backend=None, **tier_kwargs):
    builder = (Scenario()
               .tier("edge", replicas=1, wcet=200)
               .tier("infer", fan_out=2, wcet=8_000,
                     engines={"gpu": 2}, variants={"gpu": 900},
                     **tier_kwargs)
               .cells(2)
               .tenant("gold", rate=20, deadline=50_000)
               .policy("edf", w_sched=0)
               .load(0.5)
               .stagger(50)
               .options(network_latency=50, network_jitter=0,
                        node_kwargs={"net_irq_wcet": 0})
               .seed(3))
    if backend is not None:
        builder.options(backend=backend)
    return builder


class TestScenarioEngines:
    def test_tier_engines_axis_builds_pools_and_offloads(self):
        result = _hetero_scenario().run(until=200_000)
        pool = result.system.nodes["c0.infer0"].engines
        assert pool is not None and pool.spec() == {"gpu": 2}
        assert result.system.nodes["c0.edge0"].engines is None
        gold = result.tenant("gold")
        assert gold["completed"] > 0
        # Offloaded: edge 200 + gpu 900 in parallel x2 + network, far
        # below the 8000us cpu version of a single infer stage.
        assert gold["p99"] < 8_000

    def test_engines_override_wins_over_tier_spec(self):
        builder = _hetero_scenario().engines({"c0.infer0": {"gpu": 4}})
        result = builder.run(until=100_000)
        assert result.system.nodes["c0.infer0"].engines.spec() == \
            {"gpu": 4}

    def test_tier_rejects_bad_engine_and_variant_specs(self):
        with pytest.raises(ValueError):
            Scenario().tier("t", wcet=100, engines={"cpu": 1})
        with pytest.raises(ValueError):
            Scenario().tier("t", wcet=100, engines={"gpu": 0})
        with pytest.raises(ValueError):
            Scenario().tier("t", wcet=100, variants={})
        with pytest.raises(ValueError):
            Scenario().tier("t", wcet=100, variants={"gpu": -1})
        with pytest.raises(ValueError):
            Scenario().engines({"n0": {}})
        with pytest.raises(ValueError):
            Scenario().options(engines={"n0": {"gpu": 1}})

    @pytest.mark.parametrize("backend", ["heapq", "calendar"])
    def test_sharded_trace_byte_identity(self, backend, tmp_path):
        serial = _hetero_scenario(backend=backend).run(until=200_000)
        sharded = _hetero_scenario(backend=backend).run(until=200_000,
                                                        shards=2)
        a, b = tmp_path / "serial.jsonl", tmp_path / "sharded.jsonl"
        serial.system.tracer.to_jsonl(str(a))
        sharded.system.tracer.to_jsonl(str(b))
        assert a.read_bytes(), "empty serial trace"
        assert a.read_bytes() == b.read_bytes()
        assert any("engine" in r.details
                   for r in serial.system.tracer.records)
