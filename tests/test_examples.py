"""Smoke tests: every example runs end-to-end and passes its own
internal assertions (examples double as executable documentation)."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


def load_module(name):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(
        f"example_{name[:-3]}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_clean(script, capsys):
    module = load_module(script)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{script} printed nothing"


def test_expected_examples_present():
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 5
