"""Chrome trace-event timeline export: schema, determinism, CLI."""

import json
import os
import subprocess
import sys

from repro import EUAttributes, HadesSystem, Task
from repro.network.link import PerformanceFault
from repro.obs.spans import reconstruct
from repro.obs.timeline import (
    build_timeline,
    main,
    timeline_bytes,
    write_timeline,
)


def run_system():
    system = HadesSystem(node_ids=["n0", "n1"])
    victim = Task("victim", deadline=700)
    sense = victim.code_eu("sense", wcet=300, node_id="n0",
                           attrs=EUAttributes(prio=10))
    act = victim.code_eu("act", wcet=200, node_id="n1",
                         attrs=EUAttributes(prio=10))
    victim.precede(sense, act)
    hog = Task("hog")
    hog.code_eu("spin", wcet=400, node_id="n0", attrs=EUAttributes(prio=30))
    system.network.link("n0", "n1").add_fault(PerformanceFault(500))
    system.activate(victim.validate())
    system.activate(hog.validate())
    system.run(until=10_000)
    return system


class TestTimelineDocument:
    def test_schema_required_keys(self):
        doc = build_timeline(reconstruct(run_system().tracer))
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        for event in doc["traceEvents"]:
            for key in ("ph", "ts", "pid", "tid"):
                assert key in event, event
            if event["ph"] == "X":
                assert event["dur"] >= 0
            if event["ph"] in ("s", "f"):
                assert event["id"]
            if event["ph"] == "i":
                assert event["s"] in ("g", "p")
        json.dumps(doc)

    def test_processes_are_nodes_threads_are_cpus(self):
        doc = build_timeline(reconstruct(run_system().tracer))
        names = {e["pid"]: e["args"]["name"]
                 for e in doc["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "process_name"}
        assert names == {1: "n0", 2: "n1"}
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert slices and all(e["tid"] == 0 for e in slices)
        assert {e["pid"] for e in slices} == {1, 2}
        # Every CPU slice is named after the owning kernel thread.
        assert any(e["name"] == "victim#1/sense" for e in slices)
        assert any(e["name"] == "victim#1/act" for e in slices)

    def test_flow_events_cross_processes(self):
        doc = build_timeline(reconstruct(run_system().tracer))
        starts = [e for e in doc["traceEvents"] if e["ph"] == "s"]
        ends = [e for e in doc["traceEvents"] if e["ph"] == "f"]
        assert len(starts) == len(ends) == 1
        assert starts[0]["pid"] == 1 and ends[0]["pid"] == 2
        assert starts[0]["id"] == ends[0]["id"]
        assert starts[0]["ts"] < ends[0]["ts"]
        assert "edge 0 victim#1" in starts[0]["name"]

    def test_instants_mark_miss_and_late_delivery(self):
        doc = build_timeline(reconstruct(run_system().tracer))
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        names = " | ".join(e["name"] for e in instants)
        assert "deadline_miss victim#1" in names
        assert "LATE msg" in names


class TestDeterminism:
    def test_byte_identical_across_runs(self):
        assert (timeline_bytes(reconstruct(run_system().tracer))
                == timeline_bytes(reconstruct(run_system().tracer)))

    def test_normalised_msg_ids_absorb_raw_counter_offsets(self, tmp_path):
        # A campaign worker that ran other scenarios first hands out
        # offset raw message ids; the export must not change.
        system = run_system()
        path = tmp_path / "trace.jsonl"
        system.tracer.to_jsonl(str(path))
        baseline = timeline_bytes(reconstruct(str(path)))

        shifted_path = tmp_path / "shifted.jsonl"
        with open(path) as src, open(shifted_path, "w") as dst:
            for line in src:
                raw = json.loads(line)
                if "msg" in raw.get("details", {}):
                    raw["details"]["msg"] += 1_000
                dst.write(json.dumps(raw) + "\n")
        assert timeline_bytes(reconstruct(str(shifted_path))) == baseline

    def test_write_timeline_roundtrip(self, tmp_path):
        forest = reconstruct(run_system().tracer)
        out = tmp_path / "timeline.json"
        written = write_timeline(forest, str(out))
        assert written == len(out.read_bytes())
        assert out.read_bytes() == timeline_bytes(forest)


class TestCli:
    def _trace_file(self, tmp_path):
        system = run_system()
        path = tmp_path / "trace.jsonl"
        system.tracer.to_jsonl(str(path))
        return path

    def test_main_writes_timeline_and_report(self, tmp_path, capsys):
        trace = self._trace_file(tmp_path)
        out = tmp_path / "timeline.json"
        report = tmp_path / "forensics.txt"
        code = main([str(trace), "--out", str(out),
                     "--report", str(report)])
        assert code == 0
        doc = json.loads(out.read_text())
        assert doc["traceEvents"]
        text = report.read_text()
        assert text.startswith("HADES deadline-miss forensics")
        assert "MISS victim#1" in text
        stdout = capsys.readouterr().out
        assert "deadline" in stdout and "perfetto" in stdout

    def test_module_entry_point(self, tmp_path):
        trace = self._trace_file(tmp_path)
        out = tmp_path / "timeline.json"
        env = dict(os.environ)
        repo_src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [sys.executable, "-m", "repro.obs.timeline", str(trace),
             "--out", str(out)],
            capture_output=True, text=True, env=env, timeout=60)
        assert result.returncode == 0, result.stderr
        assert json.loads(out.read_text())["traceEvents"]
