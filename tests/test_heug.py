"""Unit tests for the HEUG task model, attributes, resources, condvars."""

import pytest

from repro.core import (
    AccessMode,
    Aperiodic,
    CodeEU,
    ConditionVariable,
    EUAttributes,
    InvEU,
    Periodic,
    Resource,
    Sporadic,
    Task,
)
from repro.core.costs import DispatcherCosts, KernelActivity, inflate_blocking, inflate_wcet


class TestArrivalLaws:
    def test_periodic_min_separation(self):
        law = Periodic(period=100)
        assert law.min_separation() == 100
        assert not law.violates(None, 0)
        assert not law.violates(0, 100)
        assert law.violates(0, 99)

    def test_sporadic_allows_larger_gaps(self):
        law = Sporadic(pseudo_period=50)
        assert not law.violates(0, 50)
        assert not law.violates(0, 5000)
        assert law.violates(0, 49)

    def test_aperiodic_never_violates(self):
        law = Aperiodic()
        assert not law.violates(0, 0)
        assert law.min_separation() is None
        assert law.max_activations(1000) is None

    def test_max_activations_ceiling(self):
        assert Periodic(period=100).max_activations(250) == 3
        assert Sporadic(pseudo_period=100).max_activations(200) == 2
        assert Periodic(period=100).max_activations(0) == 0

    def test_invalid_laws_rejected(self):
        with pytest.raises(ValueError):
            Periodic(period=0)
        with pytest.raises(ValueError):
            Sporadic(pseudo_period=-5)
        with pytest.raises(ValueError):
            Periodic(period=10, phase=-1)


class TestEUAttributes:
    def test_defaults(self):
        attrs = EUAttributes()
        assert attrs.pt is None
        assert attrs.earliest is None

    def test_latest_before_earliest_rejected(self):
        with pytest.raises(ValueError):
            EUAttributes(earliest=100, latest=50)

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            EUAttributes(earliest=-1)
        with pytest.raises(ValueError):
            EUAttributes(deadline=0)

    def test_copy_is_independent(self):
        attrs = EUAttributes(prio=7, earliest=10)
        clone = attrs.copy()
        clone.prio = 9
        assert attrs.prio == 7


class TestResource:
    def test_exclusive_excludes_everyone(self):
        res = Resource("R")
        res.grant("a", AccessMode.EXCLUSIVE)
        assert not res.can_grant(AccessMode.EXCLUSIVE)
        assert not res.can_grant(AccessMode.SHARED)

    def test_shared_allows_more_shared(self):
        res = Resource("R")
        res.grant("a", AccessMode.SHARED)
        assert res.can_grant(AccessMode.SHARED)
        assert not res.can_grant(AccessMode.EXCLUSIVE)
        res.grant("b", AccessMode.SHARED)
        assert len(res.holders) == 2

    def test_release_restores_availability(self):
        res = Resource("R")
        res.grant("a", AccessMode.EXCLUSIVE)
        res.release("a")
        assert res.free
        assert res.can_grant(AccessMode.EXCLUSIVE)

    def test_double_grant_rejected(self):
        res = Resource("R")
        res.grant("a", AccessMode.SHARED)
        with pytest.raises(RuntimeError):
            res.grant("a", AccessMode.SHARED)

    def test_release_without_grant_rejected(self):
        res = Resource("R")
        with pytest.raises(RuntimeError):
            res.release("ghost")

    def test_grant_when_incompatible_rejected(self):
        res = Resource("R")
        res.grant("a", AccessMode.EXCLUSIVE)
        with pytest.raises(RuntimeError):
            res.grant("b", AccessMode.SHARED)


class TestConditionVariable:
    def test_set_and_clear(self):
        cv = ConditionVariable("go")
        assert not cv.is_set
        cv.set()
        assert cv.is_set
        cv.clear()
        assert not cv.is_set

    def test_watchers_called_on_rising_edge_only(self):
        cv = ConditionVariable("go")
        calls = []
        cv.watch(lambda c: calls.append(c.name))
        cv.set()
        cv.set()  # already set: no second call
        assert calls == ["go"]
        cv.clear()
        cv.set()
        assert calls == ["go", "go"]

    def test_unwatch(self):
        cv = ConditionVariable("go")
        calls = []
        watcher = lambda c: calls.append(1)
        cv.watch(watcher)
        cv.unwatch(watcher)
        cv.set()
        assert calls == []


class TestTaskGraph:
    def make_chain(self):
        task = Task("chain", deadline=1000, node_id="n0")
        a = task.code_eu("a", wcet=10)
        b = task.code_eu("b", wcet=20)
        c = task.code_eu("c", wcet=30)
        task.chain(a, b, c)
        return task, a, b, c

    def test_sources_and_sinks(self):
        task, a, b, c = self.make_chain()
        assert task.sources() == [a]
        assert task.sinks() == [c]

    def test_predecessors_successors(self):
        task, a, b, c = self.make_chain()
        assert task.predecessors(b) == [a]
        assert task.successors(b) == [c]

    def test_topological_order_respects_edges(self):
        task, a, b, c = self.make_chain()
        order = task.topological_order()
        assert order.index(a) < order.index(b) < order.index(c)

    def test_cycle_detected(self):
        task = Task("cyc", node_id="n0")
        a = task.code_eu("a", wcet=1)
        b = task.code_eu("b", wcet=1)
        task.precede(a, b)
        task.precede(b, a)
        with pytest.raises(ValueError, match="cycle"):
            task.validate()

    def test_self_precedence_rejected(self):
        task = Task("self", node_id="n0")
        a = task.code_eu("a", wcet=1)
        with pytest.raises(ValueError):
            task.precede(a, a)

    def test_duplicate_eu_name_rejected(self):
        task = Task("dup", node_id="n0")
        task.code_eu("a", wcet=1)
        with pytest.raises(ValueError):
            task.code_eu("a", wcet=2)

    def test_empty_task_invalid(self):
        with pytest.raises(ValueError):
            Task("empty", node_id="n0").validate()

    def test_eu_without_node_invalid(self):
        task = Task("nonode")  # no default node
        task.code_eu("a", wcet=1)
        with pytest.raises(ValueError, match="processor"):
            task.validate()

    def test_remote_edge_detection(self):
        task = Task("dist", node_id="n0")
        a = task.code_eu("a", wcet=1)
        b = task.code_eu("b", wcet=1, node_id="n1")
        edge = task.precede(a, b)
        assert task.is_remote(edge)
        local = task.precede(a, task.code_eu("c", wcet=1))
        assert not task.is_remote(local)

    def test_resource_on_wrong_node_rejected(self):
        task = Task("wrong", node_id="n0")
        res = Resource("R", node_id="n1")
        task.code_eu("a", wcet=1, resources=[(res, AccessMode.SHARED)])
        with pytest.raises(ValueError, match="node"):
            task.validate()

    def test_duplicate_resource_claim_rejected(self):
        res = Resource("R")
        with pytest.raises(ValueError, match="twice"):
            CodeEU("a", wcet=1, resources=[(res, AccessMode.SHARED),
                                           (res, AccessMode.EXCLUSIVE)])

    def test_duplicate_incoming_param_rejected(self):
        task = Task("params", node_id="n0")
        a = task.code_eu("a", wcet=1)
        b = task.code_eu("b", wcet=1)
        c = task.code_eu("c", wcet=1)
        task.precede(a, c, param="x")
        task.precede(b, c, param="x")
        with pytest.raises(ValueError, match="parameter"):
            task.validate()

    def test_total_wcet_counts_code_eus_only(self):
        task, a, b, c = self.make_chain()
        other = Task("other", node_id="n0")
        other.code_eu("x", wcet=5)
        task.inv_eu("call", other)
        assert task.total_wcet() == 60

    def test_eu_belongs_to_one_task(self):
        task1 = Task("t1", node_id="n0")
        a = task1.code_eu("a", wcet=1)
        task2 = Task("t2", node_id="n0")
        with pytest.raises(ValueError):
            task2.add(a)

    def test_actual_time_validation(self):
        eu = CodeEU("a", wcet=100, actual_time=50)
        assert eu.resolve_actual({}) == 50
        over = CodeEU("b", wcet=100, actual_time=150)
        with pytest.raises(ValueError, match="exceeds"):
            over.resolve_actual({})

    def test_actual_time_callable_gets_inputs(self):
        eu = CodeEU("a", wcet=100,
                    actual_time=lambda inputs: inputs.get("n", 0) * 10)
        assert eu.resolve_actual({"n": 3}) == 30

    def test_precedence_must_join_members(self):
        task = Task("t", node_id="n0")
        a = task.code_eu("a", wcet=1)
        foreign = CodeEU("f", wcet=1)
        with pytest.raises(ValueError):
            task.precede(a, foreign)


class TestCostModel:
    def test_inflate_single_unit(self):
        task = Task("single", node_id="n0")
        task.code_eu("a", wcet=100)
        costs = DispatcherCosts(c_start_act=5, c_end_act=7, c_local=3)
        assert inflate_wcet(task, costs) == 100 + 12

    def test_inflate_figure3_shape(self):
        # 3 Code_EUs + 2 local edges: the paper's resource-using task.
        task = Task("fig3", node_id="n0")
        a = task.code_eu("a", wcet=10)
        b = task.code_eu("b", wcet=20)
        c = task.code_eu("c", wcet=30)
        task.chain(a, b, c)
        costs = DispatcherCosts(c_start_act=5, c_end_act=5, c_local=8)
        assert inflate_wcet(task, costs) == 60 + 3 * 10 + 2 * 8

    def test_inflate_counts_remote_edges(self):
        task = Task("dist", node_id="n0")
        a = task.code_eu("a", wcet=10)
        b = task.code_eu("b", wcet=10, node_id="n1")
        task.precede(a, b)
        costs = DispatcherCosts(c_local=3, c_remote=9, c_start_act=0,
                                c_end_act=0)
        assert inflate_wcet(task, costs) == 20 + 9

    def test_inflate_counts_invocations(self):
        inner = Task("inner", node_id="n0")
        inner.code_eu("x", wcet=5)
        task = Task("outer", node_id="n0")
        task.inv_eu("call", inner)
        costs = DispatcherCosts(c_start_inv=4, c_end_inv=6, c_start_act=0,
                                c_end_act=0, c_local=0)
        assert inflate_wcet(task, costs) == 10

    def test_inflate_blocking(self):
        costs = DispatcherCosts(c_start_act=5, c_end_act=5)
        assert inflate_blocking(100, costs) == 110
        with pytest.raises(ValueError):
            inflate_blocking(-1, costs)

    def test_zero_costs(self):
        costs = DispatcherCosts.zero()
        assert costs.per_action() == 0
        assert costs.per_invocation() == 0

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            DispatcherCosts(c_local=-1)

    def test_kernel_activity_demand(self):
        act = KernelActivity("clock", wcet=15, pseudo_period=10_000)
        assert act.demand(10_000) == 15
        assert act.demand(10_001) == 30
        assert act.demand(0) == 0

    def test_kernel_activity_validation(self):
        with pytest.raises(ValueError):
            KernelActivity("bad", wcet=20, pseudo_period=10)
        with pytest.raises(ValueError):
            KernelActivity("bad", wcet=5, pseudo_period=0)
