"""Tests for the standalone experiment runner."""

import pytest

from repro.experiments import EXPERIMENTS, find_benchmarks_dir, main


class TestRunner:
    def test_registry_covers_design_index(self):
        # Figures, experiments, ablations and the perf guard.
        assert {"F1", "F2", "F3"} <= set(EXPERIMENTS)
        assert {f"E{i}" for i in range(1, 14)} <= set(EXPERIMENTS)
        assert {"A1", "A5", "A7"} <= set(EXPERIMENTS)

    def test_registry_files_exist(self):
        benchmarks = find_benchmarks_dir()
        assert benchmarks is not None
        for filename in set(EXPERIMENTS.values()):
            assert (benchmarks / filename).is_file(), filename

    def test_list_option(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "bench_architecture.py" in out

    def test_unknown_experiment_rejected(self, capsys):
        assert main(["E99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err
