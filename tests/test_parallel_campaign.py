"""Parallel campaign executor: determinism, timeouts, crash recovery.

The scenarios live at module level so they pickle by reference into the
worker processes; closures exercise the graceful serial fallback.
"""

import json
import os
import time

import pytest

from repro.core import DispatcherCosts, Periodic, Task
from repro.faults import Campaign, CampaignTimeoutError, run_parallel
from repro.obs.metrics import MetricsRegistry
from repro.system import HadesSystem


def metric_scenario(seed):
    """A cheap deterministic scenario with an embedded RunReport."""
    registry = MetricsRegistry()
    hits = registry.counter("x.hits")
    latency = registry.histogram("x.latency")
    for i in range(seed % 5 + 1):
        hits.inc()
        latency.observe(10 * i + seed)
    registry.gauge("x.depth").set(seed % 3)
    return {"value": seed * 2, "report": registry.snapshot(seed=seed)}


def bare_report_scenario(seed):
    registry = MetricsRegistry()
    registry.counter("y.count").inc(seed + 1)
    return registry.snapshot(seed=seed)


def system_scenario(seed):
    """An E9-style distributed run producing a system RunReport."""
    system = HadesSystem(node_ids=["a", "b"],
                         costs=DispatcherCosts.zero(), metrics=True)
    pipeline = Task("pipe", deadline=100_000,
                    arrival=Periodic(period=50_000), node_id="a")
    src = pipeline.code_eu("src", wcet=100)
    dst = pipeline.code_eu("dst", wcet=100, node_id="b")
    pipeline.precede(src, dst)
    system.register_periodic(pipeline, count=3 + seed % 3)
    system.run(until=300_000)
    return {"violations": system.monitor.count(),
            "report": system.run_report(seed=seed)}


def sleepy_scenario(seed):
    if seed == 3:
        time.sleep(60)
    return {"value": seed}


def crashing_scenario(seed):
    if seed == 2:
        os._exit(13)  # simulates an OOM-killed / segfaulted worker
    return {"value": seed}


def raising_scenario(seed):
    if seed == 1:
        raise ValueError("injected scenario bug")
    return {"value": seed}


def assert_identical(serial, parallel):
    assert parallel.runs == serial.runs
    assert parallel.per_run == serial.per_run
    assert len(parallel.reports) == len(serial.reports)
    assert parallel.reports == serial.reports
    if serial.reports:
        assert (json.dumps(parallel.aggregate().to_dict())
                == json.dumps(serial.aggregate().to_dict()))


class TestDeterminism:
    def test_metric_scenario_identical_across_jobs(self):
        campaign = Campaign(metric_scenario, seeds=range(24))
        serial = campaign.run()
        for jobs in (1, 4):
            assert_identical(serial, campaign.run(jobs=jobs))

    def test_bare_report_scenario_identical(self):
        campaign = Campaign(bare_report_scenario, seeds=range(10))
        assert_identical(campaign.run(), campaign.run(jobs=3))

    def test_system_scenario_identical(self):
        campaign = Campaign(system_scenario, seeds=range(6))
        assert_identical(campaign.run(), campaign.run(jobs=2))

    def test_report_object_in_per_run_is_the_collected_one(self):
        result = Campaign(metric_scenario, seeds=range(4)).run(jobs=2)
        for run, report in zip(result.per_run, result.reports):
            assert run["report"] is report

    def test_explicit_chunk_size_and_uneven_split(self):
        campaign = Campaign(metric_scenario, seeds=range(7))
        serial = campaign.run()
        assert_identical(serial, campaign.run(jobs=2, chunk_size=3))
        assert_identical(serial, campaign.run(jobs=2, chunk_size=100))

    def test_run_parallel_entry_point(self):
        serial = Campaign(metric_scenario, seeds=range(5)).run()
        assert_identical(serial,
                         run_parallel(metric_scenario, range(5), jobs=2))


class TestFallbacks:
    def test_unpicklable_scenario_falls_back_to_serial(self):
        offset = 10
        campaign = Campaign(lambda seed: {"value": seed + offset},
                            seeds=range(6))
        assert_identical(campaign.run(), campaign.run(jobs=4))

    def test_jobs_one_and_single_seed_stay_serial(self):
        campaign = Campaign(metric_scenario, seeds=[7])
        assert_identical(campaign.run(), campaign.run(jobs=8))
        assert_identical(campaign.run(), campaign.run(jobs=1))

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            run_parallel(metric_scenario, range(4), jobs=2,
                         on_timeout="explode")
        with pytest.raises(ValueError):
            run_parallel(metric_scenario, range(4), jobs=2, retries=-1)
        with pytest.raises(ValueError):
            run_parallel(metric_scenario, range(4), jobs=2, chunk_size=0)


class TestRobustness:
    def test_hung_seed_recorded_and_campaign_completes(self):
        result = Campaign(sleepy_scenario, seeds=range(6)).run(
            jobs=4, timeout=1.0)
        assert result.runs == 6
        assert [run["seed"] for run in result.per_run] == list(range(6))
        errors = [run for run in result.per_run if "campaign_error" in run]
        assert len(errors) == 1
        assert errors[0]["seed"] == 3
        assert "timeout" in errors[0]["campaign_error"]
        healthy = [run for run in result.per_run
                   if "campaign_error" not in run]
        assert [run["value"] for run in healthy] == [0, 1, 2, 4, 5]

    def test_hung_seed_raises_under_raise_policy(self):
        with pytest.raises(CampaignTimeoutError):
            Campaign(sleepy_scenario, seeds=range(6)).run(
                jobs=4, timeout=1.0, on_timeout="raise")

    def test_worker_crash_retried_then_recorded(self):
        result = Campaign(crashing_scenario, seeds=range(5)).run(jobs=4)
        assert result.runs == 5
        assert [run["seed"] for run in result.per_run] == list(range(5))
        errors = [run for run in result.per_run if "campaign_error" in run]
        assert len(errors) == 1
        assert errors[0]["seed"] == 2
        assert "crash" in errors[0]["campaign_error"]
        # Collateral victims of the broken pool still produced results.
        healthy = [run for run in result.per_run
                   if "campaign_error" not in run]
        assert [run["value"] for run in healthy] == [0, 1, 3, 4]

    def test_scenario_exception_becomes_structured_run(self):
        result = Campaign(raising_scenario, seeds=range(4)).run(jobs=2)
        errors = [run for run in result.per_run if "campaign_error" in run]
        assert len(errors) == 1
        assert errors[0]["seed"] == 1
        assert "ValueError" in errors[0]["campaign_error"]
        assert "injected scenario bug" in errors[0]["campaign_error"]


class TestCampaignStatSemantics:
    def test_total_and_mean_skip_missing_consistently(self):
        def scenario(seed):
            return {"rare": seed} if seed % 2 else {"other": 1}

        result = Campaign(scenario, seeds=range(4)).run()
        # Runs 1 and 3 record "rare"; runs 0 and 2 are skipped by every
        # per-key statistic, so mean * present == total holds.
        assert result.present("rare") == 2
        assert result.total("rare") == 4
        assert result.mean("rare") == 2.0
        assert result.mean("rare") == result.total("rare") / result.present("rare")
        assert result.present("missing") == 0
        assert result.total("missing") == 0
