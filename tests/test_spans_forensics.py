"""Causal span reconstruction and deadline-miss forensics."""

import random

import pytest

from repro import EUAttributes, HadesSystem, Task
from repro.core.resources import AccessMode, Resource
from repro.network.link import OmissionFault, PerformanceFault
from repro.obs.forensics import analyze_miss, forensics_report
from repro.obs.spans import (
    critical_path,
    decompose,
    reconstruct,
)


def run_contended_system():
    """Victim task with a remote edge, preempted and blocked on n0."""
    system = HadesSystem(node_ids=["n0", "n1"])
    bus = Resource("bus", node_id="n0")

    victim = Task("victim", deadline=1_500)
    sense = victim.code_eu("sense", wcet=300, node_id="n0",
                           resources=[(bus, AccessMode.EXCLUSIVE)],
                           attrs=EUAttributes(prio=10))
    act = victim.code_eu("act", wcet=200, node_id="n1",
                         attrs=EUAttributes(prio=10))
    victim.precede(sense, act)

    holder = Task("holder")
    holder.code_eu("hold", wcet=400, node_id="n0",
                   resources=[(bus, AccessMode.EXCLUSIVE)],
                   attrs=EUAttributes(prio=20))

    hog = Task("hog")
    hog.code_eu("spin", wcet=500, node_id="n0",
                attrs=EUAttributes(prio=30))

    system.activate(holder.validate())
    system.activate(hog.validate())
    system.activate(victim.validate())
    system.run(until=10_000)
    return system


class TestReconstruction:
    def test_activation_and_eu_spans(self):
        system = run_contended_system()
        forest = reconstruct(system.tracer)
        assert set(forest.activations) == {"victim#1", "holder#1", "hog#1"}

        victim = forest.activations["victim#1"]
        assert victim.activation_time == 0
        assert victim.deadline == 1_500
        assert victim.finished
        assert victim.response_time == victim.finish_time
        assert set(victim.eus) == {"sense", "act"}

        sense = victim.eus["sense"]
        assert sense.node == "n0"
        states = {seg.state for seg in sense.segments}
        # sense must have been blocked on the bus and short of CPU.
        assert "blocked:resource" in states
        assert "running" in states
        blocked = [s for s in sense.segments
                   if s.state == "blocked:resource"]
        assert blocked[0].detail["resource"] == "bus"
        assert "holder#1/hold" in blocked[0].detail["holders"]

        # Segments are disjoint, ordered, and closed.
        for eu in victim.eus.values():
            last_end = None
            for seg in eu.segments:
                assert seg.end is not None and seg.end > seg.start
                if last_end is not None:
                    assert seg.start >= last_end
                last_end = seg.end

    def test_remote_edge_and_message_correlation(self):
        system = run_contended_system()
        forest = reconstruct(system.tracer)
        victim = forest.activations["victim#1"]
        assert list(victim.edges) == [0]
        edge = victim.edges[0]
        assert (edge.src, edge.dst) == ("sense", "act")
        assert edge.remote
        assert edge.message is not None
        assert edge.message.kind == "heug-edge"
        assert edge.message.activation_id == "victim#1"
        assert edge.message.outcome == "delivered"
        assert edge.message in victim.messages
        # Normalised ids are dense, 1-based, first-send ordered.
        assert [m.norm_id for m in forest.messages] == \
            list(range(1, len(forest.messages) + 1))

    def test_cpu_slices_cover_busy_time(self):
        system = run_contended_system()
        forest = reconstruct(system.tracer)
        for node in ("n0", "n1"):
            slices = forest.cpu_slices[node]
            assert slices == sorted(slices, key=lambda s: s.start)
            busy = sum(s.end - s.start for s in slices
                       if s.end is not None)
            assert busy == system.node(node).cpu.utilization_time

    def test_jsonl_round_trip_equals_tracer_reconstruction(self, tmp_path):
        from repro.sim.trace import load_trace

        system = run_contended_system()
        path = tmp_path / "trace.jsonl"
        system.tracer.to_jsonl(str(path))
        from_file = reconstruct(str(path))
        from_tracer = reconstruct(system.tracer)
        # Reloading the file into a Tracer gives the identical report
        # (including the busy-period lines that need select()).
        assert (forensics_report(load_trace(str(path)), forest=from_file)
                == forensics_report(system.tracer, forest=from_tracer))
        assert set(from_file.activations) == set(from_tracer.activations)
        a = from_file.activations["victim#1"]
        b = from_tracer.activations["victim#1"]
        assert [(s.state, s.start, s.end) for s in a.eus["sense"].segments] \
            == [(s.state, s.start, s.end) for s in b.eus["sense"].segments]


class TestDecomposition:
    def test_components_sum_exactly_to_response(self):
        system = run_contended_system()
        forest = reconstruct(system.tracer)
        for activation in forest.activations.values():
            dec = decompose(activation)
            assert dec is not None
            assert dec.total == dec.response == activation.response_time

    def test_interference_is_attributed(self):
        # Staged so the victim experiences *every* interference kind:
        # blocked on the bus first (holder owns it), then preempted
        # mid-run by a hog arriving at t=600, then the remote edge.
        system = HadesSystem(node_ids=["n0", "n1"])
        bus = Resource("bus", node_id="n0")
        victim = Task("victim", deadline=5_000)
        sense = victim.code_eu("sense", wcet=300, node_id="n0",
                               resources=[(bus, AccessMode.EXCLUSIVE)],
                               attrs=EUAttributes(prio=10))
        act = victim.code_eu("act", wcet=200, node_id="n1",
                             attrs=EUAttributes(prio=10))
        victim.precede(sense, act)
        holder = Task("holder")
        holder.code_eu("hold", wcet=400, node_id="n0",
                       resources=[(bus, AccessMode.EXCLUSIVE)],
                       attrs=EUAttributes(prio=20))
        hog = Task("hog")
        hog.code_eu("spin", wcet=500, node_id="n0",
                    attrs=EUAttributes(prio=30))
        system.activate(holder.validate())
        system.activate(victim.validate())
        hog.validate()
        system.sim.call_at(600, lambda: system.activate(hog))
        system.run(until=10_000)

        forest = reconstruct(system.tracer)
        dec = decompose(forest.activations["victim#1"])
        assert dec.preempted > 0
        assert dec.blocked > 0
        assert dec.network > 0
        assert dec.executing > 0
        assert dec.total == dec.response

    def test_critical_path_crosses_the_remote_edge(self):
        system = run_contended_system()
        forest = reconstruct(system.tracer)
        victim = forest.activations["victim#1"]
        path = critical_path(victim)
        assert [h.eu.eu for h in path] == ["sense", "act"]
        assert path[0].edge is None
        assert path[0].begin == victim.activation_time
        assert path[1].edge is victim.edges[0]
        assert path[1].begin >= path[0].end  # network gap
        assert path[-1].end == victim.finish_time

    def test_unfinished_activation_returns_none(self):
        system = HadesSystem(node_ids=["n0", "n1"])
        task = Task("t", deadline=500)
        a = task.code_eu("a", wcet=50, node_id="n0",
                         attrs=EUAttributes(prio=5))
        b = task.code_eu("b", wcet=50, node_id="n1",
                         attrs=EUAttributes(prio=5))
        task.precede(a, b)
        # The remote edge is dropped: b never runs, the instance stalls.
        system.network.link("n0", "n1").add_fault(
            OmissionFault(probability=1.0, rng=random.Random(0)))
        system.activate(task.validate())
        system.run(until=5_000)
        forest = reconstruct(system.tracer)
        activation = forest.activations["t#1"]
        assert not activation.finished
        assert activation.missed
        assert decompose(activation) is None


class TestForensics:
    def _missed_system(self):
        system = HadesSystem(node_ids=["n0", "n1"])
        victim = Task("victim", deadline=700)
        sense = victim.code_eu("sense", wcet=300, node_id="n0",
                               attrs=EUAttributes(prio=10))
        act = victim.code_eu("act", wcet=200, node_id="n1",
                             attrs=EUAttributes(prio=10))
        victim.precede(sense, act)
        hog = Task("hog")
        hog.code_eu("spin", wcet=400, node_id="n0",
                    attrs=EUAttributes(prio=30))
        system.network.link("n0", "n1").add_fault(PerformanceFault(500))
        system.activate(victim.validate())
        system.activate(hog.validate())
        system.run(until=10_000)
        return system

    def test_miss_report_names_concrete_contributors(self):
        system = self._missed_system()
        forest = reconstruct(system.tracer)
        misses = forest.misses()
        assert [m.activation_id for m in misses] == ["victim#1"]
        report = analyze_miss(forest, misses[0], system.tracer)
        assert report.overrun is not None and report.overrun > 0
        assert report.decomposition is not None
        kinds = {c.kind for c in report.contributors}
        assert "preemption" in kinds
        assert "network" in kinds
        preemptors = [c for c in report.contributors
                      if c.kind == "preemption"]
        assert preemptors[0].name == "hog#1/spin"
        assert preemptors[0].amount > 0
        # Busy-period scoping came from the time-window select().
        assert report.busy_preemptions >= 1
        assert report.busy_activations >= 2

    def test_text_report_structure(self):
        system = self._missed_system()
        text = forensics_report(system.tracer)
        assert text.startswith("HADES deadline-miss forensics")
        assert "MISS victim#1" in text
        assert "overrun=+" in text
        assert "critical path:" in text
        assert "blame:" in text
        assert "1. " in text
        assert "LATE" in text
        assert "busy period:" in text
        # Deterministic: formatting twice gives identical bytes.
        assert text == forensics_report(system.tracer)

    def test_stalled_miss_names_the_stall(self):
        system = HadesSystem(node_ids=["n0", "n1"])
        task = Task("t", deadline=500)
        a = task.code_eu("a", wcet=50, node_id="n0",
                         attrs=EUAttributes(prio=5))
        b = task.code_eu("b", wcet=50, node_id="n1",
                         attrs=EUAttributes(prio=5))
        task.precede(a, b)
        system.network.link("n0", "n1").add_fault(
            OmissionFault(probability=1.0, rng=random.Random(0)))
        system.activate(task.validate())
        system.run(until=5_000)
        text = forensics_report(system.tracer)
        assert "MISS t#1" in text
        assert "(never finished)" in text
        assert "stalled" in text
        assert "dropped" in text

    def test_clean_run_reports_no_misses(self):
        system = HadesSystem(node_ids=["n0"])
        task = Task("easy", deadline=100_000)
        task.code_eu("go", wcet=10, node_id="n0",
                     attrs=EUAttributes(prio=5))
        system.activate(task.validate())
        system.run(until=1_000)
        assert "no deadline misses." in forensics_report(system.tracer)
