"""Shared engine fixtures, parametrized over event-set backends.

Engine-level tests (``test_sim_engine.py``, ``test_engine_edges.py``,
``test_engine_cancellation.py``) run against every registered backend
via the ``sim`` fixture, so the semantics they pin — same-instant FIFO,
tombstone time-advance, ``run(until=)`` bound re-checks — are enforced
on the heapq reference and the calendar queue alike.  Suites that need
a specific configuration (network, kernel, devices) keep their own
``sim`` fixture, which shadows this one.
"""

import pytest

from repro.sim.engine import Simulator
from repro.sim.event_set import EVENT_SET_BACKENDS

#: Every registered event-set backend, reference first.
BACKENDS = tuple(sorted(EVENT_SET_BACKENDS, key=lambda n: n != "heapq"))


@pytest.fixture(params=BACKENDS)
def backend(request):
    """Event-set backend name; parametrizes dependent fixtures/tests."""
    return request.param


@pytest.fixture
def sim(backend):
    """A fresh engine on every registered backend."""
    return Simulator(backend=backend)
