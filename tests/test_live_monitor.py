"""Live monitoring plane: time-series primitives, burn-rate window
edges (raise/clear exactly at threshold, hysteresis straddling a mode
switch, zero-traffic tenants), closed-loop reactions, live-monitor vs
post-hoc scoreboard agreement, and the spans/forensics/timeline/CLI
wiring of the ``alert`` category."""

import json

import pytest

from repro import (EDFScheduler, HadesSystem, ResponseTimeTest, Scenario,
                   UtilizationTest)
from repro.core.attributes import Aperiodic
from repro.core.heug import Task
from repro.obs.live import (Alert, BurnRateRule, Ewma, LiveMonitor,
                            RollingCounter, SloSpec, TumblingHistogram,
                            react_degrade, react_revert,
                            render_coordinator, render_dashboard)
from repro.obs.metrics import DEFAULT_BUCKETS, HistogramSnapshot
from repro.services.modes import ModeManager


# ---------------------------------------------------------------------------
# Time-series primitives
# ---------------------------------------------------------------------------

class TestRollingCounter:
    def test_windowed_totals(self):
        counter = RollingCounter(max_window=100, quantum=10)
        counter.add(5)
        counter.add(15, 2)
        counter.add(95)
        assert counter.total(100) == 4
        assert counter.total(100, window=10) == 1   # only t=95's bin
        assert counter.total(200) == 0              # all outside [100,200)
        assert counter.cumulative == 4

    def test_phase_aligned_bins(self):
        # Bins at phase=30 (mod 100): [30, 130) holds t in 30..129.
        counter = RollingCounter(max_window=100, quantum=100, phase=30)
        counter.add(29)
        counter.add(30)
        counter.add(129)
        # queries must be non-decreasing in `now` (probe discipline)
        assert counter.total(30, window=100) == 1   # only t=29's bin
        assert counter.total(130, window=100) == 2

    def test_window_exceeds_retention(self):
        counter = RollingCounter(max_window=50)
        with pytest.raises(ValueError):
            counter.total(100, window=60)

    def test_validation(self):
        with pytest.raises(ValueError):
            RollingCounter(0)
        with pytest.raises(ValueError):
            RollingCounter(10, quantum=0)


class TestEwma:
    def test_integer_fixed_point(self):
        ewma = Ewma(num=1, den=4, scale=1000)
        assert ewma.update(100) == 100_000   # first sample: exact
        # (1*200*1000 + 3*100000) // 4 = 125000
        assert ewma.update(200) == 125_000
        assert ewma.samples == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            Ewma(num=0)
        with pytest.raises(ValueError):
            Ewma(num=5, den=4)


class TestTumblingHistogram:
    def test_roll_and_merge(self):
        hist = TumblingHistogram(buckets=(10, 100))
        for value in (5, 50, 500):
            hist.observe(value)
        summary = hist.roll()
        assert summary["n"] == 3
        assert summary["p50"] == 50
        assert summary["max"] == 500
        hist.observe(7)
        hist.roll()
        merged = hist.merged()
        assert merged.count == 4
        assert merged.counts == (2, 1, 1)
        assert merged.min_value == 5 and merged.max_value == 500

    def test_empty_roll(self):
        hist = TumblingHistogram()
        summary = hist.roll()
        assert summary == {"n": 0, "p50": None, "p99": None, "max": None}
        assert hist.merged().count == 0

    def test_merged_uses_shared_path(self):
        # The merge must be HistogramSnapshot.merge — same bucket
        # bounds everywhere, ValueError on mismatch.
        a = TumblingHistogram(buckets=(10,))
        a.observe(1)
        a.roll()
        b = TumblingHistogram(buckets=(20,))
        b.observe(1)
        b.roll()
        with pytest.raises(ValueError):
            HistogramSnapshot.merge(a.windows + b.windows)

    def test_validation(self):
        with pytest.raises(ValueError):
            TumblingHistogram(buckets=())
        with pytest.raises(ValueError):
            TumblingHistogram(buckets=(100, 10))


class TestSpecs:
    def test_slo_spec(self):
        slo = SloSpec(990_000, window=1_000_000)
        assert slo.budget_ppm == 10_000
        with pytest.raises(ValueError):
            SloSpec(0, window=100)
        with pytest.raises(ValueError):
            SloSpec(1_000_000, window=100)

    def test_rule_defaults_and_validation(self):
        rule = BurnRateRule("r", fast_window=10, slow_window=50)
        assert rule.clear_milli == rule.threshold_milli
        with pytest.raises(ValueError):
            BurnRateRule("r", fast_window=50, slow_window=10)
        with pytest.raises(ValueError):
            BurnRateRule("r", fast_window=1, slow_window=1, hold=0)
        with pytest.raises(ValueError):
            BurnRateRule("r", fast_window=1, slow_window=1,
                         threshold_milli=100, clear_milli=200)


# ---------------------------------------------------------------------------
# Burn-rate window edges on a hand-built system
# ---------------------------------------------------------------------------

def _tiny_system():
    system = HadesSystem(node_ids=["n0"])
    system.attach_scheduler(EDFScheduler(scope="n0"))
    return system


def _request_task(name="req", wcet=100, deadline=10_000):
    task = Task(name, deadline=deadline, arrival=Aperiodic())
    task.code_eu("run", wcet=wcet, node_id="n0")
    return task.validate()


def _emit_good(system, seq, time, task="req", response=50):
    """Schedule one synthetic satisfied request (activate + in-time
    instance_done records with the dispatcher's exact shapes)."""
    aid = f"{task}#{seq}"

    def emit():
        system.tracer.record("dispatcher", "activate", task=task,
                             seq=seq, activation_id=aid, deadline=None)
        system.tracer.record("dispatcher", "instance_done", task=task,
                             seq=seq, activation_id=aid,
                             response=response, missed=False)

    system.sim.call_at(time, emit)


def _emit_reject(system, time, task="req"):
    system.sim.call_at(time, lambda: system.tracer.record(
        "admission", "reject", node="n0", task=task, value=1))


class TestBurnRateEdges:
    def _monitor(self, system, **kwargs):
        defaults = dict(
            slo=SloSpec(900_000, window=10_000),  # 10% error budget
            rules=[BurnRateRule("burn", fast_window=1_000,
                                slow_window=1_000, hold=2)],
            interval=1_000, horizon=10_000, node="n0")
        defaults.update(kwargs)
        return LiveMonitor(system, "req", **defaults)

    def test_raise_exactly_at_threshold(self):
        # budget 10%: 1 bad of 10 is a burn of exactly 1.0x — with
        # threshold_milli=1000 that must raise (>=, not >).
        system = _tiny_system()
        monitor = self._monitor(system)
        for k in range(9):
            _emit_good(system, k, 100 + k)
        _emit_reject(system, 500)  # 1 bad among 10 outcomes
        system.run(until=2_000)
        raised = [a for a in monitor.alerts if a.kind == "raise"]
        assert len(raised) == 1
        assert raised[0].time == 1_000
        assert raised[0].burn_fast_milli == 1000  # exactly 1.0x
        assert monitor.active_alerts() == ["burn"]

    def test_one_below_threshold_stays_quiet(self):
        # 1 bad of 11 burns at 10/11 < 1.0x: no alert.
        system = _tiny_system()
        monitor = self._monitor(system)
        for k in range(10):
            _emit_good(system, k, 100 + k)
        _emit_reject(system, 500)
        system.run(until=2_000)
        assert monitor.alerts == []

    def test_clear_needs_hold_probes(self):
        # Raise in window 1; traffic healthy after.  clear_milli ==
        # threshold, hold=2: the clear lands exactly 2 probes after the
        # first all-good window.
        system = _tiny_system()
        monitor = self._monitor(system)
        _emit_reject(system, 100)
        for k in range(20):
            _emit_good(system, k, 1_100 + 100 * k)
        system.run(until=6_000)
        kinds = [(a.kind, a.time) for a in monitor.alerts]
        assert kinds[0] == ("raise", 1_000)
        # the bad bin [0,1000) leaves the window at probe 2000; the
        # below-count reaches hold=2 at probe 3000.
        assert kinds[1] == ("clear", 3_000)
        assert monitor.active_alerts() == []

    def test_zero_traffic_is_zero_burn(self):
        system = _tiny_system()
        monitor = self._monitor(system)
        system.run(until=5_000)
        assert monitor.alerts == []
        assert monitor.counts() == {"submitted": 0, "admitted": 0,
                                    "good": 0, "bad": 0}
        samples = [r for r in system.tracer.records
                   if r.category == "monitor"]
        assert len(samples) == 5  # probes at 1000..5000 (<= horizon)
        assert all(r.details["good"] == 0 and r.details["bad"] == 0
                   for r in samples)

    def test_hysteresis_straddles_mode_switch(self):
        # The alert raises, degrades the mode, and the clear (held
        # across the switch) reverts it — detect -> react -> recover.
        system = _tiny_system()
        manager = ModeManager(system.dispatcher, abort_outgoing=False)
        manager.define("nominal")
        manager.define("degraded")
        manager.switch_to("nominal", trigger="boot")
        monitor = self._monitor(system)
        monitor.on_alert("burn", react_degrade(manager, "degraded"))
        monitor.on_clear("burn", react_revert(manager))
        _emit_reject(system, 100)
        for k in range(30):
            _emit_good(system, k, 1_100 + 100 * k)
        system.run(until=8_000)
        kinds = [a.kind for a in monitor.alerts]
        assert kinds == ["raise", "clear"]
        assert [(s.to_mode, s.trigger) for s in manager.switches] == [
            ("nominal", "boot"),
            ("degraded", "alert:burn"),
            ("nominal", "alert_clear:burn"),
        ]
        assert manager.current == "nominal"

    def test_on_alert_once_semantics(self):
        # once=True (default): a re-raise after a clear does not rerun
        # the reaction.
        system = _tiny_system()
        monitor = self._monitor(system)
        fired = []
        monitor.on_alert("burn", lambda sys_, alert: fired.append(alert))
        for when in (100, 4_500):  # two separate bad bursts
            _emit_reject(system, when)
        for k in range(25):
            _emit_good(system, k, 1_100 + 100 * k)
        system.run(until=9_000)
        kinds = [a.kind for a in monitor.alerts]
        assert kinds.count("raise") == 2
        assert len(fired) == 1 and isinstance(fired[0], Alert)

    def test_shed_victim_not_double_counted(self):
        # A shed record alone must not count as bad: the victim's
        # instance_abort is the single bad event.
        system = _tiny_system()
        monitor = self._monitor(system)
        task = _request_task()

        def shed_one():
            instance = system.dispatcher.activate(task)
            system.tracer.record("admission", "shed", node="n0",
                                 task="req", value=1, for_task="other")
            system.dispatcher.abort_instance(instance, reason="shed")

        system.sim.call_at(100, shed_one)
        system.run(until=2_000)
        assert monitor.counts()["bad"] == 1

    def test_validation(self):
        system = _tiny_system()
        with pytest.raises(ValueError):
            self._monitor(system, rules=[])
        with pytest.raises(ValueError):
            self._monitor(system, interval=0)
        rules = [BurnRateRule("a", fast_window=1_000, slow_window=1_000),
                 BurnRateRule("a", fast_window=1_000, slow_window=1_000)]
        with pytest.raises(ValueError):
            self._monitor(system, rules=rules)
        monitor = self._monitor(system)
        with pytest.raises(ValueError):
            monitor.on_alert("nope", lambda s, a: None)


# ---------------------------------------------------------------------------
# Scenario integration: live monitor vs post-hoc scoreboard
# ---------------------------------------------------------------------------

def _overloaded(react=None, monitor=True):
    sc = (Scenario()
          .tier("edge", replicas=1, wcet=300)
          .tier("svc", fan_out=2, wcet=400)
          .cells(2)
          .tenant("gold", rate=600, mk=(9, 10), value=5, deadline=3_000)
          .tenant("bronze", rate=900, deadline=3_000)
          .admission("reject", test=UtilizationTest(8.0))
          .load(3.0)
          .stagger(100))
    if monitor:
        sc.monitor("gold", interval=20_000, objective_ppm=990_000,
                   react=react)
    return sc


class TestScenarioMonitor:
    def test_live_agrees_with_scoreboard(self):
        # No reaction: the monitor's cumulative classification must
        # agree with the post-hoc scoreboard on the identical trace.
        result = _overloaded().run(until=300_000, seed=7)
        monitor = result.monitors[0]
        row = result.tenant("gold")
        counts = monitor.counts()
        assert counts["submitted"] == row["submitted"]
        assert counts["admitted"] == row["admitted"]
        # bad = rejected + skipped + missed; good = in-time completions
        assert counts["bad"] == (row["rejected"] + row["skipped"]
                                 + row["missed"])
        assert counts["good"] == row["completed"] - sum(
            1 for a in result.system.tracer.records
            if a.category == "dispatcher" and a.event == "instance_done"
            and a.details.get("task") == "gold" and a.details["missed"])

    def test_reaction_stops_admitted_misses(self):
        result = _overloaded(react="conservative").run(until=400_000,
                                                       seed=7)
        monitor = result.monitors[0]
        raised = [a for a in monitor.alerts if a.kind == "raise"]
        assert raised, "3x overload must raise the burn alert"
        raise_time = raised[0].time
        reconf = [r for r in result.system.tracer.records
                  if r.category == "admission"
                  and r.event == "reconfigure"]
        assert [r.details["to_test"] for r in reconf] == ["response-time"]
        assert reconf[0].time == raise_time
        # Zero misses among work *admitted after* the reaction fired
        # (backlog admitted under the optimistic test may still miss).
        admitted_after = {
            r.details["activation_id"]
            for r in result.system.tracer.records
            if r.category == "dispatcher" and r.event == "activate"
            and r.details.get("task") == "gold" and r.time > raise_time}
        assert admitted_after, "traffic must continue past the reaction"
        late_misses = [
            r for r in result.system.tracer.records
            if r.category == "dispatcher" and r.event == "deadline_miss"
            and r.details.get("activation_id") in admitted_after]
        assert late_misses == []

    def test_sharded_monitor_rehydrates_from_merged_trace(self):
        # Under shards=N the probes fire in the worker that owns the
        # tenant's cell; the parent's monitor object must rebuild its
        # alert log and counters from the merged-trace replay so
        # ``result.monitors[i]`` reads the same at any shard count.
        serial = _overloaded().run(until=300_000, seed=7)
        sharded = _overloaded().run(until=300_000, seed=7, shards=2)
        a, b = serial.monitors[0], sharded.monitors[0]
        assert a.alerts, "3x overload must raise the burn alert"
        assert a.alerts == b.alerts
        assert a.counts() == b.counts()
        assert a.active_alerts() == b.active_alerts()

    def test_monitor_validation(self):
        with pytest.raises(ValueError, match="undeclared tenant"):
            Scenario().monitor("ghost", interval=100)
        sc = Scenario().tier("edge").tenant("t", rate=10)
        with pytest.raises(ValueError, match="needs .admission"):
            sc.monitor("t", interval=100, react="conservative")
        sc.admission("reject")
        with pytest.raises(ValueError, match="unknown react"):
            sc.monitor("t", interval=100, react="explode")
        with pytest.raises(ValueError, match="unknown on_clear"):
            sc.monitor("t", interval=100, on_clear="explode")
        sc.monitor("t", interval=100)
        with pytest.raises(ValueError, match="duplicate monitor"):
            sc.monitor("t", interval=100)
        # stagger quantum must divide the probe interval
        bad = (Scenario().tier("edge").tenant("t", rate=10)
               .stagger(64).monitor("t", interval=100))
        with pytest.raises(ValueError, match="residue class"):
            bad.run(until=10_000)


# ---------------------------------------------------------------------------
# Reconfigure / revert hooks
# ---------------------------------------------------------------------------

class TestHooks:
    def test_reconfigure_validates_and_traces(self):
        from repro.admission.controller import AdmissionController
        system = _tiny_system()
        controller = AdmissionController(system.dispatcher, "n0",
                                         test=UtilizationTest(8.0))
        with pytest.raises(ValueError):
            controller.reconfigure(policy="bogus")
        with pytest.raises(ValueError):
            controller.reconfigure(policy="mk_firm")   # needs mk
        controller.reconfigure()                        # no-op, no record
        controller.reconfigure(policy="reject")         # same: no record
        controller.reconfigure(policy="shed",
                               test=ResponseTimeTest(),
                               trigger="alert:burn")
        records = [r for r in system.tracer.records
                   if r.event == "reconfigure"]
        assert len(records) == 1
        assert records[0].details == {
            "node": "n0", "trigger": "alert:burn",
            "from_policy": "reject", "to_policy": "shed",
            "from_test": "utilization", "to_test": "response-time"}
        assert controller.policy == "shed"

    def test_mode_revert(self):
        system = _tiny_system()
        manager = ModeManager(system.dispatcher)
        manager.define("nominal")
        manager.define("degraded")
        manager.revert()                    # nothing to revert: no-op
        manager.switch_to("nominal")
        manager.revert()                    # from_mode None: no-op
        assert manager.current == "nominal"
        manager.switch_to("degraded", trigger="alert:burn")
        manager.revert(trigger="alert_clear:burn")
        assert manager.current == "nominal"
        assert manager.switches[-1].trigger == "alert_clear:burn"


# ---------------------------------------------------------------------------
# Observability wiring: spans, forensics, timeline, dashboard
# ---------------------------------------------------------------------------

class TestAlertWiring:
    def test_spans_timeline_forensics(self, tmp_path):
        from repro.obs import (build_timeline, forensics_report,
                               reconstruct)
        result = _overloaded(react="conservative").run(until=300_000,
                                                       seed=7)
        forest = reconstruct(result.system.tracer)
        kinds = [e.event for e in forest.alerts]
        assert "raise" in kinds and "reconfigure" in kinds
        raise_event = next(e for e in forest.alerts if e.event == "raise")
        assert raise_event.tenant == "gold" and raise_event.rule == "burn"
        assert raise_event.node == "c0.edge0"
        doc = build_timeline(forest)
        names = [e["name"] for e in doc["traceEvents"]
                 if e.get("cat") == "alert"]
        assert any(n.startswith("alert_raise gold/burn") for n in names)
        report = forensics_report(result.system.tracer, forest=forest)
        assert "alerts:" in report and "gold/burn" in report

    def test_dashboard_renders(self, tmp_path):
        result = _overloaded(react="conservative").run(until=300_000,
                                                       seed=7)
        trace = tmp_path / "trace.jsonl"
        result.system.tracer.to_jsonl(str(trace))
        text = render_dashboard(str(trace))
        assert "tenant gold" in text
        assert "RAISE" in text
        gold_only = render_dashboard(str(trace), tenant="gold")
        assert "tenant gold" in gold_only
        empty = render_dashboard(str(trace), tenant="ghost")
        assert "no monitor/alert records" in empty

    def test_dashboard_cli(self, tmp_path, capsys):
        from repro.obs.live import main
        result = _overloaded().run(until=200_000, seed=7)
        trace = tmp_path / "trace.jsonl"
        result.system.tracer.to_jsonl(str(trace))
        assert main([str(trace), "--tenant", "gold"]) == 0
        out = capsys.readouterr().out
        assert "tenant gold" in out

    def test_coordinator_dashboard(self, tmp_path, capsys):
        from repro.obs.live import main
        result = _overloaded().run(until=100_000, seed=7, shards=2)
        sidecar = result.shard_result.coordinator_path
        assert sidecar is not None
        text = render_coordinator(sidecar)
        assert "barrier window" in text
        assert "stall_ms" in text
        assert main(["--coordinator", sidecar]) == 0
        assert "coordinator:" in capsys.readouterr().out
        # per-shard stats mirror the sidecar
        stats = result.shard_result.shard_stats
        assert len(stats) == 2
        assert all(s["windows"] >= 1 for s in stats)
