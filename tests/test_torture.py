"""Torture integration runs: the whole stack at once, deterministically.

One scenario wires everything the middleware offers — multi-node EDF +
SRP, distributed HEUGs, clock sync, heartbeats, reliable broadcast,
periodic workloads, and a fault campaign — runs it for several
simulated seconds, and then:

* replays the identical scenario and checks the traces are *identical*
  (the determinism contract of the substrate),
* checks global invariants over the final state and the trace
  (resources free, accounting consistent, precedence order respected,
  no unexplained violations).
"""

import pytest

from repro.core import (
    AccessMode,
    DispatcherCosts,
    Periodic,
    Resource,
    Task,
)
from repro.core.dispatcher import InstanceState
from repro.core.monitoring import ViolationKind
from repro.faults import FaultPlan
from repro.scheduling import EDFScheduler, SRPProtocol
from repro.services import ClockSyncService, HeartbeatDetector
from repro.services.broadcast import make_group
from repro.system import HadesSystem

HORIZON = 3_000_000
NODES = ["alpha", "beta", "gamma", "delta"]


def build_and_run(inject_faults=True):
    system = HadesSystem(
        node_ids=NODES, costs=DispatcherCosts(),
        network_latency=150, network_jitter=25, seed=99,
        context_switch_cost=2,
        clock_drifts={"alpha": 40e-6, "beta": -30e-6, "gamma": 10e-6,
                      "delta": -55e-6},
        background_activities=True)
    for node_id in NODES:
        system.attach_scheduler(EDFScheduler(scope=node_id, w_sched=2))

    # Local periodic load with a shared resource on alpha.
    shared = Resource("bus", node_id="alpha")
    local_tasks = []
    for index, (period, wcet) in enumerate(
            [(20_000, 3_000), (50_000, 8_000)]):
        task = Task(f"local{index}", deadline=period,
                    arrival=Periodic(period=period), node_id="alpha")
        task.code_eu("cs", wcet=wcet,
                     resources=[(shared, AccessMode.EXCLUSIVE)])
        local_tasks.append(task)
    system.attach_scheduler(SRPProtocol(local_tasks, scope="alpha",
                                        w_sched=1))
    for task in local_tasks:
        system.register_periodic(task, count=HORIZON // task.arrival.period)

    # A distributed pipeline beta -> gamma -> delta.
    pipeline = Task("pipeline", deadline=40_000,
                    arrival=Periodic(period=60_000), node_id="beta")
    a = pipeline.code_eu("collect", wcet=1_000)
    b = pipeline.code_eu("fuse", wcet=2_000, node_id="gamma")
    c = pipeline.code_eu("emit", wcet=500, node_id="delta")
    pipeline.precede(a, b, param="x")
    pipeline.precede(b, c)
    system.register_periodic(pipeline, count=HORIZON // 60_000)

    # Services beside the application.
    sync = [ClockSyncService(system.network, system.nodes[g], NODES, f=1,
                             resync_period=400_000) for g in NODES]
    for node_id in NODES:
        HeartbeatDetector.start_heartbeats(system.network, node_id,
                                           ["alpha"], 25_000)
    detector = HeartbeatDetector(system.network, "alpha", NODES,
                                 heartbeat_period=25_000)
    detector.start()
    endpoints = make_group(system.network, NODES)
    delivered = []
    endpoints["delta"].on_deliver(lambda origin, p: delivered.append(p))
    for k in range(10):
        system.sim.call_at(101_000 + 250_000 * k,
                           lambda i=k: endpoints["beta"].broadcast(i))

    if inject_faults:
        plan = (FaultPlan(seed=4)
                .link_omission(800_000, "beta", "gamma", probability=0.2)
                .crash(2_200_000, "delta"))
        plan.apply(system)

    system.run(until=HORIZON)
    return system, detector, delivered, sync


def trace_signature(system):
    return [(r.time, r.category, r.event, tuple(sorted(
        (k, str(v)) for k, v in r.details.items())))
            for r in system.tracer]


class TestTorture:
    def test_identical_replay(self):
        first, *_rest = build_and_run()
        second, *_rest2 = build_and_run()
        assert trace_signature(first) == trace_signature(second)

    def test_invariants_after_faulty_run(self):
        system, detector, delivered, sync = build_and_run()

        # 1. The crashed node was detected, and only it.
        assert detector.suspected == {"delta"}

        # 2. Resources all free at the end (alpha's bus included).
        for inst in system.dispatcher.instances_of("local0"):
            for eui in inst.eu_instances.values():
                assert not eui.granted

        # 3. Fault-free prefix: no violations before the first fault.
        early = [v for v in system.monitor.violations if v.time < 800_000]
        assert early == []

        # 4. Deadline misses only explainable by the injected faults:
        #    every miss is on the pipeline (lossy link / crashed node).
        for violation in system.monitor.of_kind(
                ViolationKind.DEADLINE_MISS):
            assert violation.task == "pipeline"

        # 5. Local tasks on alpha all completed on time.
        for name in ("local0", "local1"):
            instances = system.dispatcher.instances_of(name)
            assert instances
            assert all(i.state is InstanceState.DONE for i in instances)
            assert all(not i.missed_deadline for i in instances)

        # 6. Broadcasts sent before the crash reached delta.
        assert delivered[:8] == list(range(8))

        # 7. Clock sync kept the surviving clocks close.
        from repro.services import measure_skew
        survivors = [system.nodes[g] for g in NODES if g != "delta"]
        assert measure_skew(survivors) <= sync[0].skew_bound(100e-6)

        # 8. CPU accounting: every node's busy time is at most elapsed
        #    time and categories sum to the total.
        for node in system.nodes.values():
            total = sum(node.cpu.busy_time.values())
            assert total == node.cpu.utilization_time
            assert total <= HORIZON

    def test_precedence_order_in_trace(self):
        system, *_rest = build_and_run(inject_faults=False)
        # For every pipeline instance: collect finished before fuse
        # started, fuse before emit (reconstructed from the trace).
        done_events = {}
        for record in system.tracer.select("dispatcher", "eu_done"):
            done_events[record.details["eu"]] = record.time
        for inst in system.dispatcher.instances_of("pipeline"):
            if inst.state is not InstanceState.DONE:
                continue
            key = f"pipeline#{inst.seq}"
            assert done_events[f"{key}/collect"] <= \
                done_events[f"{key}/fuse"] <= done_events[f"{key}/emit"]

    def test_fault_free_run_is_clean(self):
        system, detector, delivered, _sync = build_and_run(
            inject_faults=False)
        assert system.monitor.violations == ()
        assert detector.suspected == set()
        assert delivered == list(range(10))
        assert system.dispatcher.completed_instances >= \
            HORIZON // 60_000 + HORIZON // 50_000 + HORIZON // 20_000 - 3
