"""24-seed byte-identity harness: serial vs ``run(shards=4)``.

The scenario is designed so that no two shards ever record a trace
entry at the same simulated instant (the condition under which the
``(time, shard_rank, local_sequence)`` merge key reproduces the serial
engine's push order exactly — see :mod:`repro.sim.sharded`):

* All task activity (activations, EU starts/ends, deadline timers)
  lands on instants ``≡ 0`` or ``≡ 1 (mod 50)`` — phases, periods and
  WCETs are multiples of 50, the deadline timer adds ``deadline + 1``,
  and every overhead cost (dispatcher, scheduler, net IRQ) is zeroed
  so nothing drifts off the grid.
* Cross-shard sends fire at instants ``≡ 13 (mod 50)``; with base
  latency 50 and jitter in ``[0, 25]`` their deliveries land on
  ``≡ 13..38 (mod 50)``.  Node phases are staggered by 950 (and 950
  and 8 000 share no combination within the jitter width), so no two
  sources' deliveries can coincide either.
* Fault injections are scheduled at instants ``≡ 7 (mod 50)``.

Each seed shifts every phase by a multiple of 50 (structure preserved)
and reseeds the per-link jitter and fault RNGs, so the 24 runs cover
genuinely different delivery interleavings.  The auto-partitioner
falls back to contiguous chunks here (per-node tasks create no
co-location edges), which keeps the time-0 construction records in
serial order across shards.
"""

import pytest

from repro.core.attributes import Periodic
from repro.core.costs import DispatcherCosts
from repro.core.heug import Task
from repro.faults.plan import FaultPlan
from repro.scheduling.edf import EDFScheduler
from repro.system import HadesSystem

NODES = [f"n{i}" for i in range(8)]
PERIOD = 8_000
HORIZON = 50_000
SEEDS = range(24)


def make_builder(seed):
    shift = (seed % 13) * 50

    def build(system):
        for i, nid in enumerate(NODES):
            system.attach_scheduler(EDFScheduler(scope=nid, w_sched=0))
            task = Task(f"t{nid}", deadline=4_000,
                        arrival=Periodic(period=PERIOD,
                                         phase=500 + i * 950 + shift),
                        node_id=nid)
            a = task.code_eu("a", wcet=300)
            b = task.code_eu("b", wcet=200)
            task.precede(a, b)
            system.register_periodic(task, count=6)
        for i, nid in enumerate(NODES):
            dst = NODES[(i + 4) % 8]
            iface = system.network.interfaces[nid]
            for k in range(5):
                t = 713 + i * 950 + shift + k * PERIOD
                system.sim.call_at(
                    t, lambda iface=iface, dst=dst, k=k:
                    iface.send(dst, {"k": k}, size=64))
        plan = (FaultPlan(seed=seed * 31 + 5)
                .link_omission(457 + shift, "n0", "n4", probability=0.35)
                .link_omission(1_007 + shift, "n5", "n1", probability=0.25))
        plan.apply(system)

    return build


def run(seed, backend, shards=None):
    system = HadesSystem.scripted(make_builder(seed), node_ids=NODES,
                                  network_jitter=25, seed=seed,
                                  backend=backend,
                                  costs=DispatcherCosts.zero(),
                                  node_kwargs={"net_irq_wcet": 0})
    system.run(until=HORIZON, shards=shards)
    return system


def jsonl_bytes(system, path):
    system.tracer.to_jsonl(str(path))
    return path.read_bytes()


@pytest.mark.parametrize("seed", SEEDS)
def test_sharded_trace_byte_identical(seed, backend, tmp_path):
    serial = run(seed, backend)
    sharded = run(seed, backend, shards=4)
    serial_bytes = jsonl_bytes(serial, tmp_path / "serial.jsonl")
    sharded_bytes = jsonl_bytes(sharded, tmp_path / "sharded.jsonl")
    assert serial_bytes, f"seed {seed}: empty serial trace"
    assert serial_bytes == sharded_bytes, \
        f"seed {seed} ({backend}): sharded trace diverged from serial"


def test_merged_file_matches_reexport(tmp_path):
    # The merged JSONL the coordinator wrote is byte-identical to
    # re-exporting the records it loaded back into the parent tracer.
    system = HadesSystem.scripted(make_builder(0), node_ids=NODES,
                                  network_jitter=25, seed=0,
                                  costs=DispatcherCosts.zero(),
                                  node_kwargs={"net_irq_wcet": 0})
    result = system.run(until=HORIZON, shards=4)
    with open(result.trace_path, "rb") as handle:
        merged = handle.read()
    assert merged == jsonl_bytes(system, tmp_path / "reexport.jsonl")
    assert len(system.tracer) == merged.count(b"\n")


def test_shard_count_does_not_matter(tmp_path):
    base = jsonl_bytes(run(3, None, shards=2), tmp_path / "s2.jsonl")
    assert base == jsonl_bytes(run(3, None, shards=4), tmp_path / "s4.jsonl")
    assert base == jsonl_bytes(run(3, None, shards=8), tmp_path / "s8.jsonl")
