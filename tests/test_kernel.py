"""Unit tests for the simulated RT kernel (CPU, threads, clocks, interrupts)."""

import pytest

from repro.kernel import (
    ByzantineClock,
    Compute,
    HardwareClock,
    KThread,
    Node,
    PRIO_MAX,
    Sleep,
    ThreadState,
    WaitEvent,
)
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def node(sim):
    return Node(sim, "n0")


class TestThreadsBasic:
    def test_compute_consumes_time(self, sim, node):
        def body():
            yield Compute(100)
            return sim.now

        thread = node.spawn(body(), priority=5)
        sim.run()
        assert thread.finished.value == 100
        assert thread.cpu_time == 100
        assert thread.state is ThreadState.FINISHED

    def test_zero_compute_is_instant(self, sim, node):
        def body():
            yield Compute(0)
            return sim.now

        thread = node.spawn(body())
        sim.run()
        assert thread.finished.value == 0

    def test_sleep_blocks_without_cpu(self, sim, node):
        def body():
            yield Sleep(500)
            return sim.now

        thread = node.spawn(body())
        sim.run()
        assert thread.finished.value == 500
        assert thread.cpu_time == 0

    def test_wait_event_delivers_value(self, sim, node):
        gate = sim.event()

        def body():
            got = yield WaitEvent(gate)
            return got

        thread = node.spawn(body())
        sim.call_in(42, lambda: gate.succeed("opened"))
        sim.run()
        assert thread.finished.value == "opened"

    def test_bare_event_yield_shorthand(self, sim, node):
        gate = sim.event()

        def body():
            got = yield gate
            return got

        thread = node.spawn(body())
        sim.call_in(1, lambda: gate.succeed(9))
        sim.run()
        assert thread.finished.value == 9

    def test_body_exception_fails_finished_event(self, sim, node):
        def body():
            yield Compute(1)
            raise ValueError("bad")

        thread = node.spawn(body())
        sim.run()
        assert thread.finished.triggered
        assert not thread.finished.ok

    def test_kill_while_computing(self, sim, node):
        def body():
            yield Compute(1000)
            return "should not happen"

        thread = node.spawn(body())
        sim.call_in(100, thread.kill)
        sim.run()
        assert thread.state is ThreadState.KILLED
        assert thread.finished.value is None

    def test_negative_compute_rejected(self):
        with pytest.raises(ValueError):
            Compute(-5)

    def test_negative_sleep_rejected(self):
        with pytest.raises(ValueError):
            Sleep(-5)


class TestPreemptiveScheduling:
    def test_higher_priority_preempts(self, sim, node):
        log = []

        def low():
            yield Compute(100)
            log.append(("low-done", sim.now))

        def high():
            yield Compute(20)
            log.append(("high-done", sim.now))

        node.spawn(low(), name="low", priority=1)
        sim.call_in(10, lambda: node.spawn(high(), name="high", priority=9))
        sim.run()
        # high arrives at 10, runs 20 -> done at 30; low resumes, had 90
        # left -> done at 120.
        assert log == [("high-done", 30), ("low-done", 120)]

    def test_equal_priority_fifo_no_preemption(self, sim, node):
        log = []

        def worker(name, amount):
            yield Compute(amount)
            log.append((name, sim.now))

        node.spawn(worker("a", 50), priority=5)
        sim.call_in(10, lambda: node.spawn(worker("b", 50), priority=5))
        sim.run()
        assert log == [("a", 50), ("b", 100)]

    def test_preemption_threshold_blocks_preemption(self, sim, node):
        log = []

        def shielded():
            yield Compute(100)
            log.append(("shielded", sim.now))

        def mid():
            yield Compute(10)
            log.append(("mid", sim.now))

        node.spawn(shielded(), priority=1, preemption_threshold=8)
        sim.call_in(5, lambda: node.spawn(mid(), priority=5))
        sim.run()
        # mid's priority (5) does not exceed the threshold (8): no preemption.
        assert log == [("shielded", 100), ("mid", 110)]

    def test_priority_above_threshold_still_preempts(self, sim, node):
        log = []

        def shielded():
            yield Compute(100)
            log.append(("shielded", sim.now))

        def urgent():
            yield Compute(10)
            log.append(("urgent", sim.now))

        node.spawn(shielded(), priority=1, preemption_threshold=8)
        sim.call_in(5, lambda: node.spawn(urgent(), priority=9))
        sim.run()
        assert log == [("urgent", 15), ("shielded", 110)]

    def test_dynamic_priority_raise_triggers_preemption(self, sim, node):
        log = []

        def worker(name, amount):
            yield Compute(amount)
            log.append((name, sim.now))

        node.spawn(worker("runner", 100), priority=5)
        waiter = None

        def spawn_waiter():
            nonlocal waiter
            waiter = node.spawn(worker("waiter", 10), priority=1)

        sim.call_in(10, spawn_waiter)
        sim.call_in(20, lambda: waiter.set_priority(9))
        sim.run()
        assert log == [("waiter", 30), ("runner", 110)]

    def test_preempted_thread_resumes_with_exact_remaining(self, sim, node):
        def low():
            yield Compute(100)
            return sim.now

        def high():
            yield Compute(30)

        t_low = node.spawn(low(), priority=1)
        sim.call_in(50, lambda: node.spawn(high(), priority=9))
        sim.run()
        # low: 50 done before preemption + 30 high + 50 remaining = 130
        assert t_low.finished.value == 130
        assert t_low.cpu_time == 100

    def test_context_switch_cost_charged_to_kernel(self, sim):
        node = Node(sim, "cs", context_switch_cost=5)

        def worker(amount):
            yield Compute(amount)

        node.spawn(worker(50), priority=1)
        sim.run()
        assert node.cpu.busy_time.get("kernel", 0) == 5
        assert node.cpu.busy_time.get("application", 0) == 50

    def test_many_threads_complete_in_priority_order(self, sim, node):
        done = []

        def worker(name):
            yield Compute(10)
            done.append(name)

        # Spawned together; all READY before any runs.
        for prio, name in [(1, "p1"), (7, "p7"), (3, "p3"), (9, "p9")]:
            node.spawn(worker(name), name=name, priority=prio)
        sim.run()
        assert done == ["p9", "p7", "p3", "p1"]

    def test_threshold_elevation_survives_kernel_preemption(self, sim, node):
        """A started thread holds its preemption threshold as effective
        priority even across a preemption by a higher-than-threshold
        thread (classic PT semantics): after the interloper finishes,
        the shielded thread resumes ahead of an equal-priority rival."""
        log = []

        def worker(name, amount):
            yield Compute(amount)
            log.append(name)

        # shielded: prio 1, threshold 50; starts immediately.
        node.spawn(worker("shielded", 200), priority=1,
                   preemption_threshold=50)
        # rival arrives at prio 50 (== threshold): cannot preempt.
        sim.call_in(10, lambda: node.spawn(worker("rival", 50), priority=50))
        # kernel-ish thread at 100 (> threshold) briefly preempts.
        sim.call_in(20, lambda: node.spawn(worker("kernel", 10),
                                           priority=100))
        sim.run()
        # After "kernel" finishes, shielded (boosted to 50, older seq)
        # resumes before rival.
        assert log == ["kernel", "shielded", "rival"]

    def test_threshold_elevation_dropped_on_block(self, sim, node):
        """Voluntarily blocking ends the elevation: after the sleep the
        thread competes at its plain priority again."""
        log = []

        def sleeper():
            yield Compute(10)
            yield Sleep(100)
            yield Compute(10)
            log.append("sleeper")

        def rival():
            yield Compute(30)
            log.append("rival")

        node.spawn(sleeper(), priority=1, preemption_threshold=90)
        sim.call_in(50, lambda: node.spawn(rival(), priority=50))
        sim.run()
        # sleeper blocks at t=10; rival runs 50..80; sleeper wakes at
        # 110 with plain priority 1 — no elevation left, rival already
        # done anyway; order of completion shows rival first.
        assert log == ["rival", "sleeper"]

    def test_cpu_accounting_matches_elapsed_busy_time(self, sim, node):
        def worker(amount):
            yield Compute(amount)
            yield Sleep(37)
            yield Compute(amount)

        node.spawn(worker(100), priority=2)
        sim.run()
        assert node.cpu.utilization_time == 200
        assert sim.now == 237


class TestClocks:
    def test_perfect_clock_tracks_real_time(self, sim):
        clock = HardwareClock(sim)
        sim.call_in(1000, lambda: None)
        sim.run()
        assert clock.read() == 1000

    def test_drift_skews_reading(self, sim):
        clock = HardwareClock(sim, drift=100e-6)
        sim.call_in(1_000_000, lambda: None)
        sim.run()
        assert clock.read() == 1_000_000 + 100

    def test_offset_and_adjust(self, sim):
        clock = HardwareClock(sim, offset=500)
        clock.adjust(-200)
        assert clock.read() == 300

    def test_local_to_real_inverts_read(self, sim):
        clock = HardwareClock(sim, drift=50e-6, offset=123)
        target_local = 2_000_000
        real = clock.local_to_real(target_local)
        # Advancing to `real` must make the clock read >= target.
        sim.call_at(real, lambda: None)
        sim.run()
        assert clock.read() >= target_local
        assert clock.read() - target_local <= 2

    def test_unphysical_drift_rejected(self, sim):
        with pytest.raises(ValueError):
            HardwareClock(sim, drift=1.5)

    def test_byzantine_clock_is_wildly_wrong(self, sim):
        clock = ByzantineClock(sim)
        sim.call_in(500, lambda: None)
        sim.run()
        assert abs(clock.read() - sim.now) > 1_000_000

    def test_byzantine_clock_can_recover(self, sim):
        clock = ByzantineClock(sim)
        clock.byzantine = False
        assert clock.read() == 0


class TestInterrupts:
    def test_interrupt_preempts_application(self, sim, node):
        log = []

        def app():
            yield Compute(100)
            log.append(("app", sim.now))

        node.spawn(app(), priority=10, preemption_threshold=500)
        sim.call_in(20, lambda: node.net_irq.fire())
        sim.run()
        # IRQ wcet=40 runs at PRIO_MAX despite the app threshold.
        assert log == [("app", 140)]
        assert node.net_irq.fire_count == 1

    def test_interrupt_respects_pseudo_period(self, sim, node):
        times = []
        node.net_irq.handler = lambda _p: times.append(sim.now)
        node.net_irq.fire()
        node.net_irq.fire()  # immediate re-fire must be deferred
        sim.run()
        assert len(times) == 2
        assert times[1] - times[0] >= node.net_irq.pseudo_period

    def test_periodic_clock_tick_updates_software_clock(self, sim, node):
        node.start_background_activities()
        sim.run(until=35_000)
        # Ticks at 0, 10000, 20000, 30000 → 4 increments.
        assert node.software_clock == 4 * node.clock_tick.period
        assert node.clock_tick.fire_count == 4

    def test_wcet_longer_than_period_rejected(self, sim, node):
        from repro.kernel.interrupts import InterruptSource
        with pytest.raises(ValueError):
            InterruptSource(node, "bad", wcet=100, pseudo_period=50)

    def test_kernel_activity_parameters_reported(self, node):
        params = node.kernel_activity_parameters()
        assert set(params) == {"w_clock", "P_clock", "w_net", "P_net"}
        assert params["w_clock"] == node.clock_tick.wcet


class TestNodeFaults:
    def test_crash_kills_threads(self, sim, node):
        def body():
            yield Compute(1000)
            return "finished"

        thread = node.spawn(body())
        sim.call_in(100, node.crash)
        sim.run()
        assert node.crashed
        assert thread.state is ThreadState.KILLED

    def test_crashed_node_rejects_spawn(self, sim, node):
        node.crash()
        with pytest.raises(RuntimeError):
            node.spawn((x for x in []))

    def test_crash_listeners_notified(self, sim, node):
        seen = []
        node.on_crash(lambda n: seen.append(n.node_id))
        node.crash()
        assert seen == ["n0"]

    def test_crash_suppresses_pending_timers(self, sim, node):
        fired = []
        node.after(100, lambda: fired.append("x"))
        sim.call_in(50, node.crash)
        sim.run()
        assert fired == []

    def test_recover_allows_spawn_again(self, sim, node):
        node.crash()
        node.recover()
        thread = node.spawn((yield_ for yield_ in iter([])), name="t")
        sim.run()
        assert thread.finished.triggered

    def test_crash_is_idempotent(self, sim, node):
        node.crash()
        node.crash()
        assert node.crashed

    def test_utilization_fraction(self, sim, node):
        def body():
            yield Compute(250)

        node.spawn(body())
        sim.call_in(1000, lambda: None)
        sim.run()
        assert node.utilization() == pytest.approx(0.25)
