"""Tests for the activation watchdog and replica-divergence detection."""

import pytest

from repro.core import DispatcherCosts, Periodic, Sporadic, Task
from repro.core.monitoring import ViolationKind
from repro.kernel import Node, Sensor
from repro.network import Network
from repro.services import ActiveReplication
from repro.services.watchdog import ActivationWatchdog
from repro.sim import Simulator, Tracer
from repro.system import HadesSystem


def make_system(**kwargs):
    kwargs.setdefault("node_ids", ["n0"])
    kwargs.setdefault("costs", DispatcherCosts.zero())
    return HadesSystem(**kwargs)


class TestActivationWatchdog:
    def test_healthy_periodic_task_never_reported(self):
        system = make_system()
        task = Task("steady", deadline=500, arrival=Periodic(period=1_000),
                    node_id="n0")
        task.code_eu("eu", wcet=50)
        watchdog = ActivationWatchdog(system.dispatcher, margin=200)
        watchdog.watch(task)
        system.register_periodic(task, count=20)
        system.run(until=20_000)
        assert watchdog.overdue_reports == 0

    def test_stopped_source_reported_as_overdue(self):
        system = make_system()
        task = Task("dying", deadline=500, arrival=Periodic(period=1_000),
                    node_id="n0")
        task.code_eu("eu", wcet=50)
        watchdog = ActivationWatchdog(system.dispatcher, margin=200)
        watchdog.watch(task)
        system.register_periodic(task, count=5)  # stops after t=4000
        system.run(until=20_000)
        assert watchdog.overdue_reports >= 1
        overdue = [v for v in system.monitor.of_kind(
            ViolationKind.ARRIVAL_LAW)
            if v.details.get("reason") == "overdue"]
        assert overdue
        assert overdue[0].task == "dying"
        # First report lands shortly after the silence exceeds the gap.
        assert overdue[0].time <= 4_000 + 1_200 + 700

    def test_reports_repeat_while_silent(self):
        system = make_system()
        task = Task("silent", deadline=500, arrival=Periodic(period=1_000),
                    node_id="n0")
        task.code_eu("eu", wcet=50)
        watchdog = ActivationWatchdog(system.dispatcher, margin=0)
        watchdog.watch(task)
        system.run(until=10_000)
        assert watchdog.overdue_reports >= 5  # ~ one per period

    def test_dead_sensor_scenario(self):
        """Interrupt-activated task: the watchdog notices when the
        sensor dies (the activation source the dispatcher itself cannot
        see disappearing)."""
        system = make_system()
        node = system.nodes["n0"]
        sensor = Sensor(node, "flow", signal=lambda t: t, period=2_000)
        reaction = Task("react", deadline=1_000,
                        arrival=Sporadic(pseudo_period=1_500),
                        node_id="n0")
        reaction.code_eu("eu", wcet=100)
        system.dispatcher.activate_on_interrupt(sensor.irq, reaction)
        watchdog = ActivationWatchdog(system.dispatcher, margin=500)
        watchdog.watch(reaction)
        sensor.start()
        system.sim.call_at(10_000, sensor.stop)
        system.run(until=30_000)
        assert watchdog.overdue_reports >= 1
        first_overdue = min(v.time for v in system.monitor.of_kind(
            ViolationKind.ARRIVAL_LAW)
            if v.details.get("reason") == "overdue")
        assert first_overdue > 10_000

    def test_unwatch_stops_reports(self):
        system = make_system()
        task = Task("gone", deadline=500, arrival=Periodic(period=1_000),
                    node_id="n0")
        task.code_eu("eu", wcet=50)
        watchdog = ActivationWatchdog(system.dispatcher, margin=0)
        watchdog.watch(task)
        watchdog.unwatch("gone")
        system.run(until=10_000)
        assert watchdog.overdue_reports == 0

    def test_aperiodic_task_rejected(self):
        system = make_system()
        task = Task("anytime", node_id="n0")
        task.code_eu("eu", wcet=10)
        watchdog = ActivationWatchdog(system.dispatcher)
        with pytest.raises(ValueError):
            watchdog.watch(task)


class TestDivergenceDetection:
    def build(self):
        sim = Simulator()
        tracer = Tracer(lambda: sim.now)
        net = Network(sim, tracer, base_latency=100)
        for node_id in ("client", "r1", "r2", "r3"):
            net.add_node(Node(sim, node_id, tracer=tracer))
        net.connect_all()
        return sim, net, ActiveReplication(net, "client",
                                           ["r1", "r2", "r3"])

    def test_no_divergence_with_healthy_replicas(self):
        sim, net, svc = self.build()
        svc.submit(("set", "x", 1))
        sim.run()
        assert svc.divergences == []
        assert svc.suspected_value_failures == {}

    def test_coherent_value_failure_identified(self):
        sim, net, svc = self.build()
        svc.replicas[1].corrupt = lambda value: "garbage"
        for index in range(4):
            sim.call_at(index * 5_000, lambda: svc.submit(("add", "x", 1)))
        sim.run()
        assert svc.suspected_value_failures.get("r2", 0) >= 3
        assert all(d["dissenters"] == ["r2"] for d in svc.divergences)

    def test_divergence_recorded_in_trace(self):
        sim, net, svc = self.build()
        svc.replicas[0].corrupt = lambda value: -1
        svc.submit(("set", "x", 5))
        sim.run()
        assert net.tracer.count("service", "value_failure_detected") >= 1

    def test_majority_still_wins(self):
        sim, net, svc = self.build()
        svc.replicas[2].corrupt = lambda value: None
        result = svc.submit(("set", "x", 9))
        sim.run()
        value, votes = result.value
        assert value == 9
        assert votes >= 2
