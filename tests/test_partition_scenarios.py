"""Partition and long-run stability scenarios.

Crash faults are cheap to reason about; partitions are where
distributed designs show their assumptions.  These tests document how
each service behaves when the network splits (the behaviour a user of
the library must know), plus long-run clock-sync stability.
"""

import pytest

from repro.kernel import HardwareClock, Node
from repro.network import Network
from repro.services import (
    ClockSyncService,
    HeartbeatDetector,
    PassiveReplication,
    measure_skew,
)
from repro.sim import Simulator, Tracer


def build_net(n, drifts=None, **kwargs):
    sim = Simulator()
    tracer = Tracer(lambda: sim.now)
    net = Network(sim, tracer, **kwargs)
    drifts = drifts or {}
    for i in range(n):
        node_id = f"n{i}"
        clock = HardwareClock(sim, drift=drifts.get(node_id, 0.0))
        net.add_node(Node(sim, node_id, tracer=tracer, clock=clock))
    net.connect_all()
    return sim, net


class TestPartitionBehaviour:
    def test_detector_suspects_partitioned_nodes_then_recovers(self):
        sim, net = build_net(3)
        group = ["n0", "n1", "n2"]
        for node_id in group:
            HeartbeatDetector.start_heartbeats(net, node_id, group, 10_000)
        detector = HeartbeatDetector(net, "n0", group,
                                     heartbeat_period=10_000)
        detector.start()
        sim.call_in(50_000, lambda: net.partition(["n0"], ["n1", "n2"]))
        sim.run(until=120_000)
        # From n0's side, the whole other side looks dead: the
        # documented false-suspicion cost of a partition.
        assert detector.suspected == {"n1", "n2"}
        net.heal()
        sim.run(until=220_000)
        assert detector.suspected == set()

    def test_passive_replication_partition_failover_keeps_client_view(self):
        """The client promotes a reachable backup when the primary is
        partitioned away; the old primary keeps running but no client
        requests reach it, so the client-observed history stays
        linear (old primary is orphaned, not split-brain, because the
        client is the single request source)."""
        sim, net = build_net(4)
        svc = PassiveReplication(net, "n0", ["n1", "n2", "n3"],
                                 checkpoint_every=1,
                                 heartbeat_period=5_000)
        results = []

        def submit(expect_retry=False):
            kwargs = {"retries": 30, "timeout": 10_000} if expect_retry \
                else {}
            event = svc.submit(("add", "x", 1), **kwargs)
            event.add_callback(
                lambda evt: results.append(evt.value) if evt.ok else None)

        sim.call_at(1_000, submit)
        sim.run(until=40_000)
        assert results == [1]
        # Partition the primary (n1) away from everyone.
        net.partition(["n1"], ["n0", "n2", "n3"])
        sim.run(until=100_000)
        assert svc.primary != "n1"
        sim.call_in(1_000, lambda: submit(expect_retry=True))
        sim.run(until=400_000)
        # The new primary continued from the last checkpoint: 1 + 1.
        assert results == [1, 2]

    def test_clock_sync_survives_partition_episode(self):
        drifts = {"n0": 70e-6, "n1": -50e-6, "n2": 20e-6, "n3": -80e-6}
        sim, net = build_net(4, drifts=drifts, base_latency=100)
        group = [f"n{i}" for i in range(4)]
        services = [ClockSyncService(net, net.nodes[g], group, f=1,
                                     resync_period=300_000) for g in group]
        # A 1-second partition in the middle of a 6-second run.
        sim.call_at(2_000_000,
                    lambda: net.partition(["n0", "n1"], ["n2", "n3"]))
        sim.call_at(3_000_000, net.heal)
        sim.run(until=6_000_000)
        skew = measure_skew(list(net.nodes.values()))
        # After healing, some full rounds have run: skew is back under
        # the bound.
        assert skew <= services[0].skew_bound(100e-6)


class TestLongRunStability:
    def test_clock_sync_skew_stays_bounded_over_many_rounds(self):
        drifts = {"n0": 90e-6, "n1": -70e-6, "n2": 40e-6, "n3": -100e-6}
        sim, net = build_net(4, drifts=drifts, base_latency=100)
        group = [f"n{i}" for i in range(4)]
        services = [ClockSyncService(net, net.nodes[g], group, f=1,
                                     resync_period=200_000) for g in group]
        bound = services[0].skew_bound(100e-6)
        worst = 0
        # Sample the skew after each full round over 20 rounds.
        for round_index in range(1, 21):
            sim.run(until=round_index * 200_000 + 50_000)
            worst = max(worst, measure_skew(list(net.nodes.values())))
        assert worst <= bound
        assert all(s.rounds_completed >= 19 for s in services)

    def test_corrections_do_not_diverge(self):
        drifts = {"n0": 90e-6, "n1": -90e-6, "n2": 0.0, "n3": 10e-6}
        sim, net = build_net(4, drifts=drifts, base_latency=100)
        group = [f"n{i}" for i in range(4)]
        services = [ClockSyncService(net, net.nodes[g], group, f=1,
                                     resync_period=200_000) for g in group]
        sim.run(until=5_000_000)
        # Per-round corrections settle: a small common-mode component
        # (the half-delay estimation bias — every node sees receive-
        # interrupt service time on top of the modelled transfer) plus
        # per-node drift compensation.  They must be steady and nearly
        # identical, not growing.
        corrections = [s.last_correction for s in services]
        assert all(abs(c) < 500 for c in corrections)
        assert max(corrections) - min(corrections) < 100
