"""Tests for the off-line feasibility analyses (paper §5)."""

import pytest

from repro.core.costs import DispatcherCosts, KernelActivity
from repro.feasibility import (
    AnalysisTask,
    SpuriTask,
    hades_edf_test,
    kernel_interference,
    liu_layland_bound,
    pcp_blocking_times,
    pessimistic_edf_test,
    processor_demand,
    response_time_analysis,
    rm_utilization_test,
    rta_schedulable,
    scheduler_interference,
    spuri_edf_test,
    spuri_task_inflation,
    srp_blocking_times,
    synchronous_busy_period,
    utilization,
)
from repro.feasibility.busy_period import deadlines_within
from repro.feasibility.response_time import (
    sort_deadline_monotonic,
    sort_rate_monotonic,
)


def at(name, c, d, t, **kwargs):
    return AnalysisTask(name=name, wcet=c, deadline=d, period=t, **kwargs)


class TestLiuLayland:
    def test_bound_values(self):
        assert liu_layland_bound(1) == pytest.approx(1.0)
        assert liu_layland_bound(2) == pytest.approx(0.8284, abs=1e-3)
        assert liu_layland_bound(100) == pytest.approx(0.6964, abs=1e-3)

    def test_bound_decreases_to_ln2(self):
        import math
        assert liu_layland_bound(10_000) == pytest.approx(math.log(2),
                                                          abs=1e-4)

    def test_accepts_below_bound(self):
        tasks = [at("a", 20, 100, 100), at("b", 30, 150, 150)]
        assert utilization(tasks) == pytest.approx(0.4)
        assert rm_utilization_test(tasks)

    def test_rejects_above_bound(self):
        tasks = [at("a", 50, 100, 100), at("b", 60, 150, 150)]
        assert not rm_utilization_test(tasks)

    def test_requires_implicit_deadlines(self):
        with pytest.raises(ValueError):
            rm_utilization_test([at("a", 10, 50, 100)])

    def test_empty_set_feasible(self):
        assert rm_utilization_test([])


class TestResponseTimeAnalysis:
    def test_single_task(self):
        results = response_time_analysis([at("a", 30, 100, 100)])
        assert results["a"] == 30

    def test_classic_two_task_example(self):
        # C1=200,T1=500 / C2=400,T2=700 (RM order): R2 = 400+2*200 = 800.
        tasks = sort_rate_monotonic([at("t2", 400, 700, 700),
                                     at("t1", 200, 500, 500)])
        results = response_time_analysis(tasks)
        assert results["t1"] == 200
        assert results["t2"] == 800
        assert not rta_schedulable(tasks)

    def test_blocking_added(self):
        tasks = [at("hi", 10, 100, 100, blocking=25), at("lo", 20, 200, 200)]
        results = response_time_analysis(tasks)
        assert results["hi"] == 35

    def test_interference_hook(self):
        tasks = [at("a", 50, 200, 200)]
        results = response_time_analysis(
            tasks, interference=lambda window: 10)
        assert results["a"] == 60

    def test_overload_is_unschedulable(self):
        tasks = [at("a", 80, 100, 100), at("b", 80, 100, 100)]
        results = response_time_analysis(tasks)
        # The recurrence converges to 400, far past the deadline.
        assert results["b"] == 400
        assert not rta_schedulable(tasks)

    def test_divergent_case_returns_none(self):
        # Higher-priority utilisation of 1.0: the recurrence grows
        # without bound and the analysis gives up.
        tasks = [at("a", 100, 10_000, 100), at("b", 10, 10_000, 150)]
        results = response_time_analysis(tasks)
        assert results["b"] is None

    def test_sort_orders(self):
        tasks = [at("slow", 1, 500, 900), at("fast", 1, 400, 300)]
        assert [t.name for t in sort_rate_monotonic(tasks)] == \
            ["fast", "slow"]
        assert [t.name for t in sort_deadline_monotonic(tasks)] == \
            ["fast", "slow"]


class TestBusyPeriod:
    def test_simple_fixpoint(self):
        # C=30,T=100 and C=20,T=70: L solves L = ceil(L/100)30+ceil(L/70)20.
        tasks = [at("a", 30, 100, 100), at("b", 20, 70, 70)]
        length = synchronous_busy_period(tasks)
        # L = 50: ceil(50/100)*30 + ceil(50/70)*20 = 30 + 20 = 50.
        assert length == 50
        demand = -(-length // 100) * 30 + -(-length // 70) * 20
        assert demand == length

    def test_divergence_at_full_load(self):
        tasks = [at("a", 100, 100, 100), at("b", 10, 100, 100)]
        assert synchronous_busy_period(tasks) is None

    def test_empty(self):
        assert synchronous_busy_period([]) == 0

    def test_deadlines_enumeration(self):
        tasks = [at("a", 1, 50, 100)]
        assert deadlines_within(tasks, 260) == [50, 150, 250]

    def test_interference_lengthens_busy_period(self):
        tasks = [at("a", 50, 100, 100)]
        plain = synchronous_busy_period(tasks)
        loaded = synchronous_busy_period(
            tasks, interference=lambda w: 10)
        assert loaded > plain


class TestSpuriTest:
    def test_processor_demand_counts_whole_jobs(self):
        tasks = [at("a", 10, 50, 100)]
        assert processor_demand(tasks, 49) == 0
        assert processor_demand(tasks, 50) == 10
        assert processor_demand(tasks, 149) == 10
        assert processor_demand(tasks, 150) == 20

    def test_feasible_light_set_vacuous(self):
        # Busy period (30) ends before the first deadline (100): the
        # test is vacuously satisfied, margin stays None.
        tasks = [at("a", 10, 100, 100), at("b", 20, 200, 200)]
        report = spuri_edf_test(tasks)
        assert report["feasible"]
        assert report["busy_period"] == 30
        assert report["checked_deadlines"] == 0
        assert report["margin"] is None

    def test_feasible_set_with_checked_deadlines(self):
        # Constrained deadlines inside the busy period get checked.
        tasks = [at("a", 30, 40, 100), at("b", 20, 60, 200)]
        report = spuri_edf_test(tasks)
        assert report["feasible"]
        assert report["checked_deadlines"] > 0
        assert report["margin"] >= 0

    def test_infeasible_overloaded_set(self):
        tasks = [at("a", 60, 100, 100), at("b", 60, 100, 100)]
        report = spuri_edf_test(tasks)
        assert not report["feasible"]

    def test_infeasible_tight_deadline(self):
        # U < 1 but a deadline shorter than the WCET of the pile-up.
        tasks = [at("a", 50, 60, 1000), at("b", 30, 55, 1000)]
        report = spuri_edf_test(tasks)
        assert not report["feasible"]
        # d=55 only carries b's 30; d=60 carries 30+50=80 > 60.
        assert report["first_failure"] == 60

    def test_blocking_term_can_break_feasibility(self):
        base = [
            at("hi", 30, 60, 200),
            at("lo", 50, 500, 500, cs=0),
        ]
        assert spuri_edf_test(base)["feasible"]
        with_cs = [
            at("hi", 30, 60, 200),
            at("lo", 50, 500, 500, cs=40, resource="R"),
        ]
        report = spuri_edf_test(with_cs)
        # At d=60: demand 30 + blocking 40 = 70 > 60.
        assert not report["feasible"]

    def test_test_is_safe_against_simulation(self):
        """Sets accepted by the test never miss deadlines when executed
        (with zero middleware costs, matching the naive model)."""
        from repro.core import Task
        from repro.core.attributes import Sporadic
        from repro.core.monitoring import ViolationKind
        from repro.scheduling import EDFScheduler
        from repro.system import HadesSystem
        from repro.workloads import random_spuri_taskset, spuri_to_heug

        accepted = 0
        for seed in range(8):
            tasks = random_spuri_taskset(4, 0.6, seed=seed,
                                         period_range=(5_000, 50_000))
            analysis = [t.to_analysis() for t in tasks]
            if not spuri_edf_test(analysis)["feasible"]:
                continue
            accepted += 1
            system = HadesSystem(node_ids=["n0"],
                                 costs=DispatcherCosts.zero())
            system.attach_scheduler(EDFScheduler(scope="n0", w_sched=0))
            from repro.scheduling import SRPProtocol
            resources = {}
            heugs = [spuri_to_heug(t, "n0", resources) for t in tasks]
            system.attach_scheduler(SRPProtocol(heugs, scope="n0",
                                                w_sched=0))
            # Worst case: synchronous arrivals at pseudo-period rate.
            for heug, spuri in zip(heugs, tasks):
                state = {"n": 0}

                def fire(h=heug, s=spuri, st=state):
                    if st["n"] >= 3:
                        return
                    st["n"] += 1
                    system.activate(h)
                    system.sim.call_in(s.pseudo_period,
                                       lambda: fire(h, s, st))

                fire()
            system.run()
            assert system.monitor.count(ViolationKind.DEADLINE_MISS) == 0, \
                f"seed {seed}: accepted set missed deadlines"
        assert accepted >= 2  # the property was actually exercised


class TestBlockingTimes:
    def test_srp_blocking_from_lower_level_cs(self):
        tasks = [
            at("hi", 10, 100, 100, resource="R", cs=5),
            at("lo", 50, 1000, 1000, resource="R", cs=40),
        ]
        blocking = srp_blocking_times(tasks)
        assert blocking["hi"] == 40   # lo's critical section
        assert blocking["lo"] == 0    # nobody below lo

    def test_no_blocking_without_shared_resource(self):
        tasks = [
            at("hi", 10, 100, 100, resource="R1", cs=5),
            at("lo", 50, 1000, 1000, resource="R2", cs=40),
        ]
        blocking = srp_blocking_times(tasks)
        # R2's ceiling is lo's level only: cannot block hi.
        assert blocking["hi"] == 0

    def test_mid_task_blocked_by_low_cs_when_ceiling_high(self):
        tasks = [
            at("hi", 5, 50, 100, resource="R", cs=2),
            at("mid", 10, 200, 300),
            at("lo", 20, 1000, 1000, resource="R", cs=15),
        ]
        blocking = srp_blocking_times(tasks)
        # lo's R has ceiling = hi's level > mid's level: mid is blocked.
        assert blocking["mid"] == 15
        assert blocking["hi"] == 15

    def test_pcp_matches_srp_for_deadline_priorities(self):
        tasks = [
            at("hi", 10, 100, 100, resource="R", cs=5),
            at("lo", 50, 1000, 1000, resource="R", cs=40),
        ]
        assert pcp_blocking_times(tasks) == srp_blocking_times(tasks)


class TestHadesModifiedTest:
    def spuri_set(self, scale=1):
        # Busy enough (U ~ 0.71) that the busy period covers deadlines,
        # so margins are well-defined.
        return [
            SpuriTask("a", c_before=50 * scale, cs=60 * scale,
                      c_after=40 * scale, deadline=400 * scale,
                      pseudo_period=400 * scale, resource="R"),
            SpuriTask("b", c_before=300 * scale, cs=0, c_after=0,
                      deadline=900 * scale, pseudo_period=900 * scale),
        ]

    def test_inflation_matches_figure3_structure(self):
        costs = DispatcherCosts(c_start_act=5, c_end_act=5, c_local=8)
        with_res, without_res = self.spuri_set()
        assert spuri_task_inflation(with_res, costs) == 150 + 3 * 10 + 2 * 8
        assert spuri_task_inflation(without_res, costs) == 300 + 10

    def test_zero_costs_reduce_to_plain_spuri(self):
        tasks = self.spuri_set()
        plain = spuri_edf_test([t.to_analysis() for t in tasks])
        hades = hades_edf_test(tasks, costs=DispatcherCosts.zero())
        assert hades.feasible == plain["feasible"]
        assert hades.margin == plain["margin"]

    def test_costs_shrink_margin(self):
        tasks = self.spuri_set()
        free = hades_edf_test(tasks, costs=DispatcherCosts.zero())
        costed = hades_edf_test(tasks, costs=DispatcherCosts())
        assert costed.margin < free.margin

    def test_kernel_activities_shrink_margin(self):
        tasks = self.spuri_set(scale=10)
        activities = [KernelActivity("clock", 15, 10_000),
                      KernelActivity("net", 40, 100)]
        without = hades_edf_test(tasks, costs=DispatcherCosts.zero())
        with_kernel = hades_edf_test(tasks, costs=DispatcherCosts.zero(),
                                     kernel_activities=activities)
        assert with_kernel.margin < without.margin

    def test_scheduler_interference_monotone(self):
        analysis = [t.to_analysis() for t in self.spuri_set()]
        s1 = scheduler_interference(analysis, 1000, w_sched=2)
        s2 = scheduler_interference(analysis, 2000, w_sched=2)
        assert 0 < s1 <= s2
        assert scheduler_interference(analysis, 1000, w_sched=0) == 0

    def test_kernel_interference_sums_activities(self):
        activities = [KernelActivity("clock", 15, 10_000),
                      KernelActivity("net", 40, 100)]
        assert kernel_interference(activities, 10_000) == 15 + 100 * 40

    def test_heavily_loaded_set_infeasible_only_with_costs(self):
        # Calibrated so the naive test accepts but the precise
        # cost-integrated test refuses.
        tasks = [
            SpuriTask("a", c_before=0, cs=190, c_after=0, deadline=400,
                      pseudo_period=400, resource="R"),
            SpuriTask("b", c_before=195, cs=0, c_after=0, deadline=400,
                      pseudo_period=400),
        ]
        naive = hades_edf_test(tasks, costs=DispatcherCosts.zero())
        costed = hades_edf_test(
            tasks, costs=DispatcherCosts(c_start_act=5, c_end_act=5,
                                         c_local=8))
        assert naive.feasible
        assert not costed.feasible

    def test_pessimistic_test_rejects_more_than_precise(self):
        # A set feasible under precise costs but rejected by a uniform
        # 30% over-estimation (§2.2.2's pessimism problem).
        tasks = [
            SpuriTask("a", c_before=0, cs=150, c_after=0, deadline=390,
                      pseudo_period=400, resource="R"),
            SpuriTask("b", c_before=160, cs=0, c_after=0, deadline=400,
                      pseudo_period=400),
        ]
        precise = hades_edf_test(tasks, costs=DispatcherCosts(
            c_start_act=2, c_end_act=2, c_local=3))
        pessimistic = pessimistic_edf_test(tasks, overhead_factor=1.3)
        assert precise.feasible
        assert not pessimistic.feasible

    def test_pessimistic_factor_validation(self):
        with pytest.raises(ValueError):
            pessimistic_edf_test(self.spuri_set(), overhead_factor=0.9)

    def test_report_carries_inflated_wcets(self):
        tasks = self.spuri_set()
        costs = DispatcherCosts()
        report = hades_edf_test(tasks, costs=costs)
        for task in tasks:
            assert report.inflated_wcets[task.name] == \
                spuri_task_inflation(task, costs)


class TestTaskDescriptors:
    def test_spuri_wcet_is_sum_of_segments(self):
        task = SpuriTask("t", c_before=10, cs=20, c_after=5, deadline=100,
                         pseudo_period=100, resource="R")
        assert task.wcet == 35
        assert task.utilization == pytest.approx(0.35)

    def test_spuri_validation(self):
        with pytest.raises(ValueError):
            SpuriTask("bad", c_before=10, cs=5, c_after=0, deadline=100,
                      pseudo_period=100)  # cs without resource
        with pytest.raises(ValueError):
            SpuriTask("bad", c_before=10, cs=0, c_after=0, deadline=100,
                      pseudo_period=100, resource="R")

    def test_analysis_task_validation(self):
        with pytest.raises(ValueError):
            at("bad", 0, 10, 10)
        with pytest.raises(ValueError):
            at("bad", 10, 0, 10)
        with pytest.raises(ValueError):
            AnalysisTask("bad", wcet=10, deadline=10, period=10, cs=20)

    def test_scaled_substitution(self):
        task = at("t", 100, 200, 300, blocking=10)
        inflated = task.scaled(wcet=120, blocking=15)
        assert inflated.wcet == 120
        assert inflated.blocking == 15
        assert task.wcet == 100  # original untouched
