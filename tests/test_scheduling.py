"""Tests for the scheduling policies built over the dispatcher."""

import pytest

from repro.core import (
    AccessMode,
    DispatcherCosts,
    EUAttributes,
    Periodic,
    Resource,
    Sporadic,
    Task,
)
from repro.core.dispatcher import InstanceState
from repro.core.monitoring import ViolationKind
from repro.scheduling import (
    DMScheduler,
    EDFScheduler,
    FIFOScheduler,
    PCPProtocol,
    RMScheduler,
    SpringScheduler,
    SRPProtocol,
    preemption_levels,
)
from repro.system import HadesSystem


def make_system(**kwargs):
    kwargs.setdefault("node_ids", ["n0"])
    kwargs.setdefault("costs", DispatcherCosts.zero())
    return HadesSystem(**kwargs)


def simple_task(name, wcet, deadline, node="n0", arrival=None):
    task = Task(name, deadline=deadline, arrival=arrival, node_id=node)
    task.code_eu("eu", wcet=wcet)
    return task


class TestEDF:
    def test_shorter_deadline_preempts(self):
        system = make_system()
        system.attach_scheduler(EDFScheduler(scope="n0", w_sched=1))
        long_task = simple_task("long", wcet=500, deadline=10_000)
        short_task = simple_task("short", wcet=100, deadline=300)
        system.activate(long_task)
        system.sim.call_in(100, lambda: system.activate(short_task))
        system.run()
        short_inst = system.dispatcher.instances_of("short")[0]
        long_inst = system.dispatcher.instances_of("long")[0]
        assert short_inst.response_time <= 300   # met its tight deadline
        assert long_inst.response_time > 500     # was preempted

    def test_edf_meets_full_utilization(self):
        # Two tasks at total utilisation 1.0: EDF schedules them, RM can't.
        system = make_system()
        system.attach_scheduler(EDFScheduler(scope="n0", w_sched=0))
        t1 = simple_task("t1", wcet=500, deadline=1000,
                         arrival=Periodic(period=1000))
        t2 = simple_task("t2", wcet=1000, deadline=2000,
                         arrival=Periodic(period=2000))
        system.register_periodic(t1, count=10)
        system.register_periodic(t2, count=5)
        system.run()
        assert system.monitor.count(ViolationKind.DEADLINE_MISS) == 0
        assert system.dispatcher.completed_instances == 15

    def test_edf_matches_textbook_schedule(self):
        # Classic example: T1=(C=1,T=4), T2=(C=2,T=6), T3=(C=3,T=8)
        # (scaled x100); EDF meets all deadlines at U ~ 0.96.
        system = make_system()
        system.attach_scheduler(EDFScheduler(scope="n0", w_sched=0))
        for name, c, p in [("t1", 100, 400), ("t2", 200, 600),
                           ("t3", 300, 800)]:
            task = simple_task(name, wcet=c, deadline=p,
                               arrival=Periodic(period=p))
            system.register_periodic(task, count=6)
        system.run()
        assert system.monitor.count(ViolationKind.DEADLINE_MISS) == 0

    def test_ties_keep_activation_order(self):
        system = make_system()
        system.attach_scheduler(EDFScheduler(scope="n0", w_sched=0))
        done = []
        for name in ("first", "second"):
            task = Task(name, deadline=1000, node_id="n0")
            task.code_eu("eu", wcet=100,
                         action=lambda ctx, n=name: done.append(n))
            system.activate(task)
        system.run()
        assert done == ["first", "second"]

    def test_scheduler_cost_appears_in_accounting(self):
        system = make_system()
        system.attach_scheduler(EDFScheduler(scope="n0", w_sched=5))
        system.activate(simple_task("t", wcet=100, deadline=1000))
        system.run()
        assert system.nodes["n0"].cpu.busy_time.get("scheduler", 0) >= 5


class TestFixedPriority:
    def test_rm_assigns_by_period(self):
        system = make_system()
        fast = simple_task("fast", wcet=10, deadline=100,
                           arrival=Periodic(period=100))
        slow = simple_task("slow", wcet=50, deadline=1000,
                           arrival=Periodic(period=1000))
        scheduler = RMScheduler([slow, fast], scope="n0")
        system.attach_scheduler(scheduler)
        assert scheduler.priority_map["fast"] > scheduler.priority_map["slow"]

    def test_rm_schedules_harmonic_set_at_full_utilization(self):
        system = make_system()
        t1 = simple_task("t1", wcet=500, deadline=1000,
                         arrival=Periodic(period=1000))
        t2 = simple_task("t2", wcet=1000, deadline=2000,
                         arrival=Periodic(period=2000))
        system.attach_scheduler(RMScheduler([t1, t2], scope="n0", w_sched=0))
        system.register_periodic(t1, count=10)
        system.register_periodic(t2, count=5)
        system.run()
        # Harmonic periods: RM achieves U=1.
        assert system.monitor.count(ViolationKind.DEADLINE_MISS) == 0

    def test_rm_misses_where_edf_succeeds(self):
        # The classic Liu-Layland counterexample (scaled x100):
        # T1=(C=200,T=500), T2=(C=400,T=700): U = 0.971 < 1, above the
        # 2-task RM bound 0.828.  RM: R2 = 400 + 2*200 = 800 > 700.
        def run(policy):
            system = make_system()
            t1 = simple_task("t1", wcet=200, deadline=500,
                             arrival=Periodic(period=500))
            t2 = simple_task("t2", wcet=400, deadline=700,
                             arrival=Periodic(period=700))
            if policy == "rm":
                system.attach_scheduler(RMScheduler([t1, t2], scope="n0",
                                                    w_sched=0))
            else:
                system.attach_scheduler(EDFScheduler(scope="n0", w_sched=0))
            system.register_periodic(t1, count=14)
            system.register_periodic(t2, count=10)
            system.run()
            return system.monitor.count(ViolationKind.DEADLINE_MISS)

        assert run("edf") == 0
        assert run("rm") > 0

    def test_rm_rejects_aperiodic_tasks(self):
        task = simple_task("ap", wcet=10, deadline=100)
        scheduler = RMScheduler([task])
        with pytest.raises(ValueError):
            scheduler.assign_priorities()

    def test_dm_assigns_by_deadline(self):
        urgent = simple_task("urgent", wcet=10, deadline=50,
                             arrival=Periodic(period=1000))
        relaxed = simple_task("relaxed", wcet=10, deadline=900,
                              arrival=Periodic(period=1000))
        scheduler = DMScheduler([relaxed, urgent])
        mapping = scheduler.assign_priorities()
        assert mapping["urgent"] > mapping["relaxed"]

    def test_dm_requires_deadline(self):
        task = Task("nodl", node_id="n0", arrival=Periodic(period=100))
        task.code_eu("eu", wcet=10)
        with pytest.raises(ValueError):
            DMScheduler([task]).assign_priorities()

    def test_dm_beats_rm_on_short_deadline_long_period(self):
        # T1: period 1000 but deadline 120, T2: period 400, C=100.
        # RM gives T2 higher priority -> T1 misses; DM gives T1 priority.
        def run(make_sched):
            system = make_system()
            t1 = simple_task("t1", wcet=100, deadline=120,
                             arrival=Periodic(period=1000))
            t2 = simple_task("t2", wcet=100, deadline=400,
                             arrival=Periodic(period=400))
            system.attach_scheduler(make_sched([t1, t2]))
            system.register_periodic(t1, count=4)
            system.register_periodic(t2, count=10)
            system.run()
            return system.monitor.count(ViolationKind.DEADLINE_MISS)

        assert run(lambda ts: DMScheduler(ts, scope="n0", w_sched=0)) == 0
        assert run(lambda ts: RMScheduler(ts, scope="n0", w_sched=0)) > 0


class TestFIFO:
    def test_fifo_flattens_priorities_to_activation_order(self):
        system = make_system()
        system.attach_scheduler(FIFOScheduler(scope="n0", w_sched=0))
        done = []
        for index in range(4):
            task = Task(f"t{index}", node_id="n0")
            # Later tasks get nominally higher static priorities; FIFO
            # must flatten them back to activation order.  Arrivals are
            # staggered so the scheduler task treats each activation
            # before the next one shows up.
            task.code_eu("eu", wcet=50, attrs=EUAttributes(prio=10 + index),
                         action=lambda ctx, i=index: done.append(i))
            system.sim.call_in(index, lambda t=task: system.activate(t))
        system.run()
        assert done == [0, 1, 2, 3]


class TestSRP:
    def make_cs_task(self, name, resource, deadline, wcet_before=50,
                     wcet_cs=100, wcet_after=50, arrival=None):
        task = Task(name, deadline=deadline, arrival=arrival, node_id="n0")
        a = task.code_eu("before", wcet=wcet_before)
        b = task.code_eu("cs", wcet=wcet_cs,
                         resources=[(resource, AccessMode.EXCLUSIVE)])
        c = task.code_eu("after", wcet=wcet_after)
        task.chain(a, b, c)
        return task

    def test_preemption_levels_by_deadline(self):
        t1 = simple_task("short", wcet=1, deadline=100)
        t2 = simple_task("long", wcet=1, deadline=1000)
        levels = preemption_levels([t1, t2])
        assert levels["short"] > levels["long"]

    def test_job_blocked_at_most_once(self):
        system = make_system()
        res = Resource("R", node_id="n0")
        low = self.make_cs_task("low", res, deadline=100_000)
        high = self.make_cs_task("high", res, deadline=1_000)
        system.attach_scheduler(EDFScheduler(scope="n0", w_sched=0))
        srp = SRPProtocol([low, high], scope="n0", w_sched=0)
        system.attach_scheduler(srp)
        system.activate(low)
        # Arrive while low is inside its critical section.
        system.sim.call_in(60, lambda: system.activate(high))
        system.run()
        for inst in system.dispatcher.active_instances():
            assert False, f"unfinished {inst}"
        assert srp.blocked_starts >= 1
        # high is blocked before starting, then runs to completion with
        # no further blocking: its "cs" unit never waits on the resource.
        high_inst = system.dispatcher.instances_of("high")[0]
        cs_eui = [e for e in high_inst.eu_instances.values()
                  if e.eu.name == "cs"][0]
        before_eui = [e for e in high_inst.eu_instances.values()
                      if e.eu.name == "before"][0]
        # The cs unit started as soon as its predecessor finished.
        assert cs_eui.release_time is not None
        assert before_eui.finish_time == cs_eui.release_time

    def test_same_instant_arrival_and_cs_release_never_block_mid_job(self):
        # Regression: a job arriving at the exact instant another
        # started job's critical section is released used to pass the
        # ceiling test against a stale (not yet granted) resource state,
        # start, and then block mid-graph on the just-granted resource.
        # The gate now defers its decision to the tail of the instant.
        system = make_system()
        res = Resource("R", node_id="n0")
        # "slow" runs before for 104; "fast" arrives exactly when slow's
        # cs unit is released (and granted) at t = 104.
        slow = self.make_cs_task("slow", res, deadline=30_000,
                                 wcet_before=104, wcet_cs=297)
        fast = self.make_cs_task("fast", res, deadline=10_000,
                                 wcet_before=80, wcet_cs=106)
        system.attach_scheduler(EDFScheduler(scope="n0", w_sched=0))
        srp = SRPProtocol([slow, fast], scope="n0", w_sched=0)
        system.attach_scheduler(srp)
        system.activate(slow)
        instances = []
        system.sim.call_in(104, lambda: instances.append(
            system.activate(fast)))
        system.run()
        fast_inst = instances[0]
        units = {e.eu.name: e for e in fast_inst.eu_instances.values()}
        # fast is blocked once, before starting (slow holds R from 104
        # to 401); once running it never waits again.
        assert units["before"].release_time == 104 + 297
        assert units["cs"].release_time == units["before"].finish_time
        assert srp.blocked_starts >= 1

    def test_srp_prevents_unbounded_priority_inversion(self):
        # Without SRP a medium task can interleave between low's CS and
        # high; SRP keeps medium out until high finishes.
        def run(with_srp):
            system = make_system()
            res = Resource("R", node_id="n0")
            low = self.make_cs_task("low", res, deadline=100_000,
                                    wcet_cs=200)
            high = self.make_cs_task("high", res, deadline=1_000)
            medium = simple_task("medium", wcet=700, deadline=5_000)
            system.attach_scheduler(EDFScheduler(scope="n0", w_sched=0))
            if with_srp:
                system.attach_scheduler(
                    SRPProtocol([low, high, medium], scope="n0", w_sched=0))
            system.activate(low)
            system.sim.call_in(60, lambda: system.activate(medium))
            system.sim.call_in(80, lambda: system.activate(high))
            system.run()
            return system.dispatcher.instances_of("high")[0].response_time

        assert run(with_srp=True) <= run(with_srp=False)

    def test_system_ceiling_tracks_holders(self):
        system = make_system()
        res = Resource("R", node_id="n0")
        low = self.make_cs_task("low", res, deadline=10_000)
        high = self.make_cs_task("high", res, deadline=100)
        srp = SRPProtocol([low, high], scope="n0", w_sched=0)
        system.attach_scheduler(srp)
        assert srp.system_ceiling() == 0
        res.grant("someone", AccessMode.EXCLUSIVE)
        assert srp.system_ceiling() == srp.levels["high"]
        res.release("someone")
        assert srp.system_ceiling() == 0


class TestPCP:
    def test_inheritance_bounds_inversion(self):
        system = make_system()
        res = Resource("R", node_id="n0")
        # Static priorities: low=10, medium=50, high=90.
        low = Task("low", deadline=100_000, node_id="n0")
        low.code_eu("cs", wcet=300,
                    resources=[(res, AccessMode.EXCLUSIVE)],
                    attrs=EUAttributes(prio=10))
        medium = Task("medium", deadline=100_000, node_id="n0")
        medium.code_eu("eu", wcet=500, attrs=EUAttributes(prio=50))
        high = Task("high", deadline=100_000, node_id="n0")
        high.code_eu("cs", wcet=100,
                     resources=[(res, AccessMode.EXCLUSIVE)],
                     attrs=EUAttributes(prio=90))
        pcp = PCPProtocol([low, medium, high], scope="n0", w_sched=0)
        system.attach_scheduler(pcp)
        system.activate(low)
        system.sim.call_in(50, lambda: system.activate(medium))
        system.sim.call_in(60, lambda: system.activate(high))
        system.run()
        high_inst = system.dispatcher.instances_of("high")[0]
        # With inheritance, high waits only for low's remaining CS
        # (300-60=240) plus its own 100: well under medium's 500.
        assert high_inst.finish_time <= 60 + 240 + 100 + 10
        assert pcp.inheritance_events >= 1

    def test_restores_priority_after_release(self):
        system = make_system()
        res = Resource("R", node_id="n0")
        low = Task("low", node_id="n0")
        low_cs = low.code_eu("cs", wcet=200,
                             resources=[(res, AccessMode.EXCLUSIVE)],
                             attrs=EUAttributes(prio=10))
        tail = low.code_eu("tail", wcet=200, attrs=EUAttributes(prio=10))
        low.precede(low_cs, tail)
        high = Task("high", node_id="n0")
        high.code_eu("cs", wcet=50,
                     resources=[(res, AccessMode.EXCLUSIVE)],
                     attrs=EUAttributes(prio=90))
        pcp = PCPProtocol([low, high], scope="n0", w_sched=0)
        system.attach_scheduler(pcp)
        inst_low = system.activate(low)
        system.sim.call_in(50, lambda: system.activate(high))
        system.run()
        cs_eui = inst_low.eu_instances[low_cs]
        assert cs_eui.priority == 10  # restored after inheritance

    def test_gate_lets_unrelated_tasks_through(self):
        system = make_system()
        res = Resource("R", node_id="n0")
        user = Task("user", node_id="n0")
        user.code_eu("cs", wcet=100,
                     resources=[(res, AccessMode.EXCLUSIVE)],
                     attrs=EUAttributes(prio=10))
        free = Task("free", node_id="n0")
        free.code_eu("eu", wcet=10, attrs=EUAttributes(prio=90))
        pcp = PCPProtocol([user, free], scope="n0", w_sched=0)
        system.attach_scheduler(pcp)
        system.activate(user)
        system.sim.call_in(20, lambda: system.activate(free))
        system.run()
        free_inst = system.dispatcher.instances_of("free")[0]
        assert free_inst.response_time <= 20  # preempted the CS freely


class TestSpring:
    def test_feasible_set_guaranteed_and_meets_deadlines(self):
        system = make_system()
        spring = SpringScheduler(scope="n0", w_sched=0)
        system.attach_scheduler(spring)
        for index in range(3):
            task = simple_task(f"t{index}", wcet=100,
                               deadline=1000 + 400 * index)
            system.activate(task)
        system.run()
        assert spring.guaranteed_count == 3
        assert spring.rejected_count == 0
        assert system.monitor.count(ViolationKind.DEADLINE_MISS) == 0

    def test_infeasible_newcomer_rejected_not_running_tasks(self):
        system = make_system()
        spring = SpringScheduler(scope="n0", w_sched=0)
        system.attach_scheduler(spring)
        good = simple_task("good", wcet=800, deadline=1000)
        system.activate(good)
        # Arrives needing 500 by t=600 while 800-100=700 of good remain:
        # no plan fits both.
        impossible = simple_task("impossible", wcet=500, deadline=500)
        system.sim.call_in(100, lambda: system.activate(impossible))
        system.run()
        assert spring.rejected_count == 1
        good_inst = system.dispatcher.instances_of("good")[0]
        assert good_inst.state is InstanceState.DONE
        assert good_inst.response_time <= 1000

    def test_guaranteed_tasks_never_miss(self):
        # Overload: offer more work than fits; whatever Spring accepts
        # must meet its deadline (the guarantee property).
        system = make_system()
        spring = SpringScheduler(scope="n0", w_sched=0)
        system.attach_scheduler(spring)
        for index in range(6):
            task = simple_task(f"t{index}", wcet=400, deadline=1200)
            system.sim.call_in(index * 10,
                               lambda t=task: system.activate(t))
        system.run()
        assert spring.guaranteed_count + spring.rejected_count == 6
        assert spring.rejected_count >= 1
        assert system.monitor.count(ViolationKind.DEADLINE_MISS) == 0

    def test_heuristics_are_pluggable(self):
        from repro.scheduling.spring import h_min_laxity, h_min_wcet
        system = make_system()
        spring = SpringScheduler(scope="n0", heuristic=h_min_laxity,
                                 w_sched=0)
        system.attach_scheduler(spring)
        system.activate(simple_task("a", wcet=100, deadline=2000))
        system.activate(simple_task("b", wcet=100, deadline=500))
        system.run()
        assert spring.guaranteed_count == 2
        assert system.monitor.count(ViolationKind.DEADLINE_MISS) == 0


class TestCohabitation:
    def test_guaranteed_and_best_effort_coexist(self):
        # §2.2.1: one feasibility-tested scheduler + best-effort FIFO.
        system = make_system(node_ids=["n0", "n1"])
        system.attach_scheduler(EDFScheduler(scope="n0", w_sched=0))
        system.attach_scheduler(FIFOScheduler(scope="n1", w_sched=0))
        critical = simple_task("critical", wcet=100, deadline=500,
                               arrival=Periodic(period=1000))
        besteffort = simple_task("besteffort", wcet=300, deadline=100_000,
                                 node="n1")
        system.register_periodic(critical, count=5)
        system.activate(besteffort)
        system.run()
        assert system.monitor.count(ViolationKind.DEADLINE_MISS) == 0
        assert system.dispatcher.completed_instances == 6


class TestSpringTryPlan:
    """The side-effect-free probe behind admission's SpringProbeTest."""

    @staticmethod
    def _fingerprint(system, spring):
        import json
        state = {
            "plan": sorted((repr(key), start)
                           for key, start in spring.plan.items()),
            "guaranteed": [id(job) for job in spring._guaranteed],
            "counts": (spring.guaranteed_count, spring.rejected_count,
                       spring.handled_count),
            "threads": [(index, job.eui.priority,
                         getattr(job.eui, "earliest", None))
                        for index, job in enumerate(spring._guaranteed)],
            "trace": len(system.tracer.records),
        }
        return json.dumps(state, sort_keys=True).encode("utf-8")

    def test_rejected_probe_leaves_state_byte_identical(self):
        system = make_system()
        spring = SpringScheduler(scope="n0", w_sched=0)
        system.attach_scheduler(spring)
        system.activate(simple_task("good", wcet=800, deadline=1000))
        snap = {}

        def probe():
            # good has ~700us left toward t=1000: a 500us/600 probe
            # cannot fit either way around it, a 100us/5100 one can.
            snap["before"] = self._fingerprint(system, spring)
            snap["reject"] = spring.try_plan(500, system.sim.now + 500)
            snap["after_reject"] = self._fingerprint(system, spring)
            snap["accept"] = spring.try_plan(100, system.sim.now + 5000)
            snap["after_accept"] = self._fingerprint(system, spring)

        system.sim.call_in(100, probe)
        system.run()
        assert snap["reject"] is None
        assert snap["accept"] is not None
        # Neither outcome left a trace: plan, guaranteed set, counters,
        # thread parameters and the trace log are byte-identical.
        assert snap["after_reject"] == snap["before"]
        assert snap["after_accept"] == snap["before"]
        assert spring.rejected_count == 0
        assert spring.guaranteed_count == 1
        good = system.dispatcher.instances_of("good")[0]
        assert good.state is InstanceState.DONE
        assert not good.missed_deadline

    def test_try_plan_requires_attachment(self):
        spring = SpringScheduler(scope="n0", w_sched=0)
        with pytest.raises(RuntimeError):
            spring.try_plan(100, 1000)
