"""Tests for the avionics workload generators."""

import pytest

from repro.core.dispatcher import InstanceState
from repro.core import DispatcherCosts
from repro.feasibility import rm_utilization_test, utilization
from repro.system import HadesSystem
from repro.workloads import (
    RATE_GROUP_PERIODS,
    avionics_taskset,
    random_pipeline,
)


class TestAvionicsTaskset:
    def test_structure(self):
        tasks = avionics_taskset(3, 0.6, seed=1)
        assert len(tasks) == 3 * len(RATE_GROUP_PERIODS)
        periods = {task.period for task in tasks}
        assert periods == set(RATE_GROUP_PERIODS)

    def test_utilization_near_target(self):
        tasks = avionics_taskset(3, 0.6, seed=2)
        assert utilization(tasks) == pytest.approx(0.6, abs=0.05)

    def test_harmonic_periods_rm_friendly(self):
        # Harmonic sets are RM-schedulable up to high utilisation; at
        # 0.6 the Liu-Layland bound comfortably accepts them.
        tasks = avionics_taskset(1, 0.6, seed=3)
        assert rm_utilization_test(tasks)

    def test_deterministic(self):
        a = avionics_taskset(2, 0.5, seed=9)
        b = avionics_taskset(2, 0.5, seed=9)
        assert [(t.name, t.wcet) for t in a] == [(t.name, t.wcet) for t in b]

    def test_validation(self):
        with pytest.raises(ValueError):
            avionics_taskset(0, 0.5, seed=1)


class TestRandomPipeline:
    def test_chain_shape(self):
        chain = random_pipeline("p", ["n0", "n1"], seed=4, n_stages=4)
        assert len(chain.code_eus()) == 4
        assert len(chain.edges) == 3
        order = chain.topological_order()
        assert [eu.name for eu in order] == [f"stage{i}" for i in range(4)]

    def test_deadline_has_slack(self):
        chain = random_pipeline("p", ["n0"], seed=5, n_stages=3,
                                deadline_slack=4.0)
        assert chain.deadline == 4 * chain.total_wcet()

    def test_executes_on_middleware(self):
        chain = random_pipeline("p", ["n0", "n1"], seed=6, n_stages=3)
        system = HadesSystem(node_ids=["n0", "n1"],
                             costs=DispatcherCosts.zero())
        instance = system.activate(chain)
        system.run(until=chain.deadline * 3)
        assert instance.state is InstanceState.DONE

    def test_validation(self):
        with pytest.raises(ValueError):
            random_pipeline("p", [], seed=1)
        with pytest.raises(ValueError):
            random_pipeline("p", ["n0"], seed=1, deadline_slack=1.0)
