"""The fluent ``Scenario`` facade: declarations, derived structure,
traffic generation, and the RunOptions plumbing it rides on."""

import warnings

import pytest

from repro import RunOptions, Scenario, scenario
from repro.core.attributes import Aperiodic, Periodic, Sporadic
from repro.core.heug import Task
from repro.scenarios.traffic import (DeterministicService, LogNormalService,
                                     ParetoService, derive_seed)
from repro.system import HadesSystem
from repro.workloads.arrivals import (diurnal_profile, nhpp_arrivals,
                                      validate_arrivals)


def make_periodic(name="t", period=1_000, wcet=100, node_id="n0",
                  deadline=None):
    task = Task(name, deadline=deadline or period,
                arrival=Periodic(period=period), node_id=node_id)
    task.code_eu("eu", wcet=wcet)
    return task.validate()


class TestDeclarations:
    def test_scenario_helper_returns_builder(self):
        assert isinstance(scenario(), Scenario)

    def test_duplicate_tier_rejected(self):
        with pytest.raises(ValueError, match="duplicate tier"):
            Scenario().tier("edge").tier("edge")

    def test_tier_name_charset(self):
        for bad in ("", "a:b", "a/b", "a#b", "a.b"):
            with pytest.raises(ValueError):
                Scenario().tier(bad)

    def test_tier_parameter_validation(self):
        with pytest.raises(ValueError):
            Scenario().tier("t", replicas=0)
        with pytest.raises(ValueError):
            Scenario().tier("t", fan_out=0)
        with pytest.raises(ValueError):
            Scenario().tier("t", wcet=0)
        with pytest.raises(ValueError):
            Scenario().tier("t", budget=0)

    def test_duplicate_tenant_rejected(self):
        with pytest.raises(ValueError, match="duplicate tenant"):
            Scenario().tenant("gold").tenant("gold")

    def test_tenant_validation(self):
        with pytest.raises(ValueError):
            Scenario().tenant("a:b")
        with pytest.raises(ValueError):
            Scenario().tenant("t", rate=-1)
        with pytest.raises(ValueError):
            Scenario().tenant("t", value=0)
        with pytest.raises(ValueError):
            Scenario().tenant("t", mk=(0, 4))
        with pytest.raises(ValueError):
            Scenario().tenant("t", mk=(5, 4))

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown policy"):
            Scenario().policy("lifo")

    def test_admission_policy_subset(self):
        with pytest.raises(ValueError):
            Scenario().admission("degrade")

    def test_static_policy_incompatible_with_tenants(self):
        builder = (Scenario().tier("edge").tenant("gold", rate=10)
                   .policy("rm"))
        with pytest.raises(ValueError, match="aperiodic"):
            builder.run(until=1_000)

    def test_tenants_require_tiers(self):
        with pytest.raises(ValueError, match="without tiers"):
            Scenario().node("n0").tenant("gold", rate=10).run(until=1_000)

    def test_tenants_require_horizon(self):
        with pytest.raises(ValueError, match="horizon"):
            Scenario().tier("edge").tenant("gold", rate=10).build()

    def test_options_forbids_managed_kwargs(self):
        for key in ("node_ids", "owned_nodes", "costs"):
            with pytest.raises(ValueError, match="managed"):
                Scenario().options(**{key: None})

    def test_load_and_cells_validation(self):
        with pytest.raises(ValueError):
            Scenario().load(0)
        with pytest.raises(ValueError):
            Scenario().cells(0)

    def test_stagger_validation(self):
        with pytest.raises(ValueError):
            Scenario().stagger(1)
        with pytest.raises(ValueError):
            Scenario().cells(8).stagger(10)
        assert Scenario().cells(4).stagger(50)._stagger == 50

    def test_empty_scenario_has_no_nodes(self):
        with pytest.raises(ValueError, match="no tiers and no nodes"):
            Scenario().node_ids()


class TestDerivedStructure:
    def build(self):
        return (Scenario()
                .tier("edge", replicas=2)
                .tier("svc", replicas=1)
                .cells(3)
                .node("aux0"))

    def test_node_ids_cell_major(self):
        assert self.build().node_ids() == [
            "c0.edge0", "c0.edge1", "c0.svc0",
            "c1.edge0", "c1.edge1", "c1.svc0",
            "c2.edge0", "c2.edge1", "c2.svc0",
            "aux0"]

    def test_partition_contiguous_with_extras_on_last_shard(self):
        groups = self.build().partition(2)
        assert groups[0] == ["c0.edge0", "c0.edge1", "c0.svc0",
                             "c1.edge0", "c1.edge1", "c1.svc0"]
        assert groups[1] == ["c2.edge0", "c2.edge1", "c2.svc0", "aux0"]

    def test_partition_rejects_more_shards_than_cells(self):
        with pytest.raises(ValueError, match="smallest shard unit"):
            self.build().partition(4)

    def test_partition_covers_every_node_exactly_once(self):
        builder = self.build()
        flat = [n for group in builder.partition(3) for n in group]
        assert sorted(flat) == sorted(builder.node_ids())


class TestTrafficGeneration:
    def test_nhpp_deterministic_and_monotone(self):
        first = nhpp_arrivals(0.01, 100_000, seed=5)
        second = nhpp_arrivals(0.01, 100_000, seed=5)
        assert first == second
        assert first == sorted(first)
        assert all(0 <= t < 100_000 for t in first)
        assert first != nhpp_arrivals(0.01, 100_000, seed=6)
        assert validate_arrivals(first, Aperiodic())

    def test_nhpp_zero_rate_empty(self):
        assert nhpp_arrivals(0.0, 50_000) == []

    def test_diurnal_profile_shape(self):
        rate = diurnal_profile(10.0, 30.0, period=1_000_000)
        assert rate.peak == 30.0
        assert rate(0) == pytest.approx(10.0)
        assert rate(500_000) == pytest.approx(30.0)

    def test_callable_rate_without_peak_needs_cap(self):
        with pytest.raises(ValueError, match="rate_cap"):
            nhpp_arrivals(lambda t: 0.01, 10_000)
        times = nhpp_arrivals(lambda t: 0.01, 10_000, rate_cap=0.01)
        assert times == sorted(times)

    def test_tenant_callable_rate_requires_peak(self):
        builder = (Scenario().tier("edge")
                   .tenant("gold", rate=lambda t: 5.0))
        with pytest.raises(ValueError, match="peak"):
            builder.run(until=10_000)

    def test_stagger_quantizes_onto_cell_residues(self):
        builder = (Scenario()
                   .tier("edge", wcet=100)
                   .cells(2)
                   .tenant("a", rate=300, deadline=10_000)
                   .tenant("b", rate=300, deadline=10_000)
                   .stagger(50))
        builder._horizon = 100_000
        for index, spec in enumerate(builder._tenants):
            times = builder._tenant_arrivals(spec, index)
            assert times, "stagger dropped the whole stream"
            phase = (index % 2) * 25
            assert all(t % 50 == phase for t in times)
            assert all(t < 100_000 for t in times)
            assert times == sorted(times)

    def test_validate_arrivals_rejects_non_monotone(self):
        # Backwards timestamps are malformed input even under an
        # unconstrained law (they used to slip through as valid).
        with pytest.raises(ValueError, match="not monotone"):
            validate_arrivals([10, 5], Aperiodic())
        with pytest.raises(ValueError, match="not monotone"):
            validate_arrivals([0, 30, 20], Sporadic(pseudo_period=10))

    def test_validate_arrivals_accepts_equal_timestamps(self):
        assert validate_arrivals([5, 5, 7], Aperiodic())
        # Equal timestamps are judged against the law like any gap.
        assert not validate_arrivals([5, 5], Sporadic(pseudo_period=1))


class TestServiceTimeModels:
    def test_sampler_clamped_to_wcet(self):
        sampler = ParetoService(scale=500, alpha=1.1).sampler(
            wcet=600, seed=3)
        draws = [sampler({}) for _ in range(200)]
        assert all(1 <= d <= 600 for d in draws)
        assert max(draws) == 600  # the heavy tail actually hits the cap

    def test_sampler_deterministic_per_seed(self):
        model = LogNormalService(median=200, sigma=0.8)
        a = model.sampler(wcet=1_000, seed=9)
        b = model.sampler(wcet=1_000, seed=9)
        assert [a({}) for _ in range(50)] == [b({}) for _ in range(50)]

    def test_deterministic_service(self):
        sampler = DeterministicService(250).sampler(wcet=300, seed=0)
        assert {sampler({}) for _ in range(10)} == {250}

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            LogNormalService(0)
        with pytest.raises(ValueError):
            LogNormalService(10, sigma=0)
        with pytest.raises(ValueError):
            ParetoService(0)
        with pytest.raises(ValueError):
            DeterministicService(0)
        with pytest.raises(ValueError):
            DeterministicService(5).sampler(wcet=0, seed=0)

    def test_derive_seed_stable_and_distinct(self):
        assert derive_seed(7, "gold", "svc:0") == derive_seed(7, "gold",
                                                              "svc:0")
        assert derive_seed(7, "gold", "svc:0") != derive_seed(7, "gold",
                                                              "svc:1")


class TestRunOptions:
    def test_resolve_defaults(self):
        options = RunOptions.resolve()
        assert options.metrics is None
        assert options.trace_categories is None
        assert options.backend is None

    def test_categories_spelling_deprecated(self):
        with pytest.warns(DeprecationWarning, match="trace_categories"):
            options = RunOptions.resolve(categories=["dispatcher"])
        assert options.trace_categories == ("dispatcher",)

    def test_both_spellings_conflict(self):
        with pytest.raises(ValueError):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                RunOptions.resolve(trace_categories=["a"],
                                   categories=["b"])

    def test_system_accepts_deprecated_spelling(self):
        with pytest.warns(DeprecationWarning):
            system = HadesSystem(node_ids=["n0"],
                                 categories=["dispatcher"])
        assert system.options.trace_categories == ("dispatcher",)
        assert system.options.backend is not None  # pinned post-resolve

    def test_pinned_round_trip(self):
        options = RunOptions.resolve(trace_maxlen=10)
        pinned = options.pinned("heapq")
        assert pinned.backend == "heapq"
        assert pinned.trace_maxlen == 10
        assert "backend" in pinned.to_kwargs()

    def test_owns_is_public_with_compat_alias(self):
        whole = HadesSystem(node_ids=["n0"])
        assert whole.owns("n0") and whole.owns("n1")  # owns everything
        replica = HadesSystem(node_ids=["n0", "n1"], owned_nodes=["n0"])
        assert replica.owns("n0") and not replica.owns("n1")
        assert replica._owns("n0")  # pre-1.5 spelling still works


class TestGenericWorkloads:
    def test_scenario_matches_handwired_system(self):
        """The facade is sugar: same workload, same trajectory."""
        from repro import EDFScheduler

        result = (Scenario()
                  .node("n0")
                  .policy("edf", w_sched=0)
                  .costs(None)
                  .task(make_periodic(), periodic=5)
                  .run(until=10_000))

        manual = HadesSystem(node_ids=["n0"])
        manual.attach_scheduler(EDFScheduler(scope="n0", w_sched=0))
        manual.register_periodic(make_periodic(), count=5)
        manual.run(until=10_000)

        assert result.completed == manual.dispatcher.completed_instances
        assert result.misses == 0

    def test_static_policy_builds_per_node_task_sets(self):
        result = (Scenario()
                  .node("n0", "n1")
                  .policy("rm", w_sched=0)
                  .task(make_periodic("a", node_id="n0"), periodic=3)
                  .task(make_periodic("b", node_id="n1"), periodic=3)
                  .run(until=5_000))
        assert result.completed == 6
        assert len(result.schedulers) == 2

    def test_unregistered_task_is_made_known(self):
        task = make_periodic("lazy")
        result = Scenario().node("n0").task(task).run(until=1_000)
        assert "lazy" in result.system.dispatcher.known_tasks
        assert result.completed == 0


class TestServiceScenarios:
    def build(self):
        return (Scenario()
                .tier("edge", replicas=2, wcet=300)
                .tier("svc", fan_out=2, wcet=500,
                      service=LogNormalService(200, 0.6))
                .cells(2)
                .tenant("gold", rate=50, mk=(9, 10), value=5,
                        deadline=30_000)
                .tenant("bronze", rate=100, mk=(1, 4), deadline=50_000)
                .admission("mk_firm"))

    def test_run_produces_scoreboard(self):
        result = self.build().run(until=120_000, seed=3)
        board = result.scoreboard.to_dict()
        assert set(board) == {"bronze", "gold"}
        gold = board["gold"]
        assert gold["submitted"] > 0
        assert gold["admitted"] + gold["rejected"] + gold["skipped"] \
            == gold["submitted"]
        assert set(gold["tiers"]) == {"edge", "svc"}
        assert result.accrued_value() >= gold["value"]

    def test_admission_controllers_respect_tenant_mk(self):
        result = self.build().run(until=60_000, seed=3)
        controllers = result.controllers
        assert controllers, "no admission controllers attached"
        overrides = {}
        for controller in controllers:
            overrides.update(controller.mk_overrides)
        assert overrides == {"gold": (9, 10), "bronze": (1, 4)}
        # No default mk declared -> mk_firm falls back to the strictest
        # window for undeclared tenants.
        assert all(c.mk == (1, 1) for c in controllers)

    def test_metrics_published(self):
        result = (self.build().options(metrics=True)
                  .run(until=60_000, seed=3))
        report = result.system.metrics.snapshot()
        assert report.gauges["scenario.gold.submitted"]["value"] \
            == result.tenant("gold")["submitted"]
        assert "scenario.bronze.p99" in report.gauges

    def test_requests_never_cross_cells(self):
        builder = self.build()
        for index, spec in enumerate(builder._tenants):
            task = builder._tenant_task(spec, index)
            cells = {task.node_of(eu).split(".")[0] for eu in task.eus}
            assert len(cells) == 1

    def test_tier_budgets_become_cumulative_deadlines(self):
        builder = (Scenario()
                   .tier("edge", wcet=100, budget=1_000)
                   .tier("svc", wcet=100, budget=2_000)
                   .tenant("t", rate=10, deadline=10_000))
        task = builder._tenant_task(builder._tenants[0], 0)
        deadlines = {eu.name: eu.attrs.deadline for eu in task.eus
                     if eu.attrs is not None}
        assert deadlines["edge:0"] == 1_000
        assert deadlines["svc:0"] == 3_000
        assert deadlines["reply:0"] == 10_000

    def test_inflated_wcet_counts_remote_edges(self):
        builder = self.build().options(network_latency=75)
        spec = builder._tenants[0]
        task = builder._tenant_task(spec, 0)
        remote = sum(1 for e in task.edges if task.is_remote(e))
        assert remote > 0
        assert builder._inflated_wcet(task) \
            == task.total_wcet() + remote * 75
