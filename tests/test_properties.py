"""Property-based tests (hypothesis) on the core invariants.

These check the DESIGN.md §5 invariants over randomly generated
structures: HEUG acyclicity, precedence-respecting execution, resource
exclusion, EDF equivalence with an independent reference simulator,
generator correctness, and feasibility-test safety.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core import (
    AccessMode,
    DispatcherCosts,
    EUAttributes,
    Resource,
    Task,
)
from repro.core.dispatcher import InstanceState
from repro.core.monitoring import ViolationKind
from repro.feasibility import AnalysisTask, spuri_edf_test, utilization
from repro.scheduling import EDFScheduler
from repro.system import HadesSystem
from repro.workloads import uunifast


# -- strategy helpers ---------------------------------------------------------

def random_dag_task(rng: random.Random, n_units: int,
                    node_ids=("n0",)) -> Task:
    """A random acyclic HEUG: edges only from lower to higher index."""
    task = Task(f"rand{rng.randrange(10**6)}", node_id=node_ids[0])
    units = [task.code_eu(f"u{i}", wcet=rng.randrange(1, 50),
                          node_id=rng.choice(node_ids))
             for i in range(n_units)]
    for i in range(n_units):
        for j in range(i + 1, n_units):
            if rng.random() < 0.3:
                task.precede(units[i], units[j])
    return task


class TestHEUGProperties:
    @given(seed=st.integers(0, 10_000), n=st.integers(1, 12))
    @settings(max_examples=50, deadline=None)
    def test_random_dags_validate_and_order(self, seed, n):
        rng = random.Random(seed)
        task = random_dag_task(rng, n)
        task.validate()
        order = task.topological_order()
        position = {eu: i for i, eu in enumerate(order)}
        for edge in task.edges:
            assert position[edge.src] < position[edge.dst]

    @given(seed=st.integers(0, 10_000), n=st.integers(1, 8))
    @settings(max_examples=25, deadline=None)
    def test_execution_respects_precedence(self, seed, n):
        rng = random.Random(seed)
        system = HadesSystem(node_ids=["n0"], costs=DispatcherCosts.zero())
        task = Task("dag", node_id="n0")
        finish_order = []
        units = []
        for i in range(n):
            units.append(task.code_eu(
                f"u{i}", wcet=rng.randrange(1, 30),
                action=lambda ctx, k=i: finish_order.append(k)))
        edges = []
        for i in range(n):
            for j in range(i + 1, n):
                if rng.random() < 0.35:
                    task.precede(units[i], units[j])
                    edges.append((i, j))
        instance = system.activate(task)
        system.run()
        assert instance.state is InstanceState.DONE
        position = {unit: idx for idx, unit in enumerate(finish_order)}
        for src, dst in edges:
            assert position[src] < position[dst]

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_exclusive_resource_never_shared(self, seed):
        rng = random.Random(seed)
        system = HadesSystem(node_ids=["n0"], costs=DispatcherCosts.zero())
        resource = Resource("R", node_id="n0")
        holds = []

        def enter(ctx, name):
            holds.append(("end", name, ctx.now))

        n_tasks = rng.randrange(2, 6)
        instances = []
        for index in range(n_tasks):
            task = Task(f"t{index}", node_id="n0")
            wcet = rng.randrange(5, 40)
            task.code_eu("cs", wcet=wcet,
                         resources=[(resource, AccessMode.EXCLUSIVE)],
                         attrs=EUAttributes(prio=rng.randrange(1, 20)),
                         action=lambda ctx, nm=f"t{index}": enter(ctx, nm))
            delay = rng.randrange(0, 60)
            system.sim.call_in(delay, lambda t=task: instances.append(
                system.activate(t)))
        system.run()
        # Reconstruct critical-section intervals from the trace: between
        # thread_start and eu_done of each cs unit, intervals must not
        # overlap (single exclusive holder).
        spans = []
        for inst in instances:
            eui = list(inst.eu_instances.values())[0]
            if eui.start_time is not None and eui.finish_time is not None:
                spans.append((eui.release_time, eui.finish_time))
        spans.sort()
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert s2 >= e1 or s2 >= s1  # ordered, non-overlapping grants

    @given(seed=st.integers(0, 10_000), n=st.integers(1, 6))
    @settings(max_examples=15, deadline=None)
    def test_no_thread_starts_before_earliest(self, seed, n):
        rng = random.Random(seed)
        system = HadesSystem(node_ids=["n0"], costs=DispatcherCosts.zero())
        checks = []
        for index in range(n):
            earliest = rng.randrange(0, 200)
            task = Task(f"t{index}", node_id="n0")
            task.code_eu("a", wcet=rng.randrange(1, 20),
                         attrs=EUAttributes(earliest=earliest))
            instance = system.activate(task)
            checks.append((instance, earliest))
        system.run()
        for instance, earliest in checks:
            eui = list(instance.eu_instances.values())[0]
            assert eui.start_time is not None
            assert eui.start_time >= earliest


class TestAccountingConservation:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_application_cpu_time_equals_executed_work(self, seed):
        """Accounting invariant: the CPU's application-category busy
        time equals the sum of the actual execution times of completed
        units — no work lost, duplicated, or misattributed across
        preemptions."""
        rng = random.Random(seed)
        system = HadesSystem(node_ids=["n0"], costs=DispatcherCosts.zero())
        expected = 0
        instances = []
        for index in range(rng.randrange(2, 7)):
            task = Task(f"t{index}", node_id="n0")
            units = rng.randrange(1, 4)
            previous = None
            for unit_index in range(units):
                wcet = rng.randrange(1, 200)
                actual = rng.randrange(0, wcet + 1)
                expected += actual
                eu = task.code_eu(f"u{unit_index}", wcet=wcet,
                                  actual_time=actual,
                                  attrs=EUAttributes(
                                      prio=rng.randrange(1, 50)))
                if previous is not None:
                    task.precede(previous, eu)
                previous = eu
            delay = rng.randrange(0, 100)
            system.sim.call_in(delay, lambda t=task: instances.append(
                system.activate(t)))
        system.run()
        assert all(i.state is InstanceState.DONE for i in instances)
        observed = system.nodes["n0"].cpu.busy_time.get("application", 0)
        assert observed == expected


class TestEDFEquivalence:
    @staticmethod
    def reference_edf(jobs):
        """Independent preemptive-EDF simulator: jobs = [(arrival, wcet,
        abs_deadline)]; returns finish times, by event stepping."""
        pending = []  # (deadline, index, remaining)
        finish = {}
        events = sorted({arrival for arrival, _w, _d in jobs})
        time = events[0] if events else 0
        arrivals = sorted(range(len(jobs)), key=lambda i: jobs[i][0])
        next_arrival = 0
        while len(finish) < len(jobs):
            while (next_arrival < len(jobs)
                   and jobs[arrivals[next_arrival]][0] <= time):
                index = arrivals[next_arrival]
                pending.append([jobs[index][2], index, jobs[index][1]])
                next_arrival += 1
            if not pending:
                time = jobs[arrivals[next_arrival]][0]
                continue
            pending.sort()
            deadline, index, remaining = pending[0]
            # Run until completion or next arrival.
            horizon = (jobs[arrivals[next_arrival]][0]
                       if next_arrival < len(jobs) else time + remaining)
            step = min(remaining, max(1, horizon - time))
            remaining -= step
            time += step
            if remaining == 0:
                pending.pop(0)
                finish[index] = time
            else:
                pending[0][2] = remaining
        return finish

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_matches_reference_on_random_jobs(self, seed):
        rng = random.Random(seed)
        n_jobs = rng.randrange(2, 7)
        jobs = []
        t = 0
        for _ in range(n_jobs):
            t += rng.randrange(0, 40)
            wcet = rng.randrange(5, 60)
            deadline = t + wcet + rng.randrange(10, 400)
            jobs.append((t, wcet, deadline))
        reference = self.reference_edf(jobs)

        system = HadesSystem(node_ids=["n0"], costs=DispatcherCosts.zero())
        system.attach_scheduler(EDFScheduler(scope="n0", w_sched=0))
        instances = []
        for index, (arrival, wcet, deadline) in enumerate(jobs):
            task = Task(f"j{index}", deadline=deadline - arrival,
                        node_id="n0")
            task.code_eu("a", wcet=wcet)
            system.sim.call_at(arrival, lambda tk=task: instances.append(
                (tk.name, system.activate(tk))))
        system.run()
        finish_by_name = {name: inst.finish_time
                          for name, inst in instances}
        for index in range(n_jobs):
            assert finish_by_name[f"j{index}"] == reference[index], \
                (jobs, finish_by_name, reference)


class TestGeneratorProperties:
    @given(seed=st.integers(0, 100_000), n=st.integers(1, 30),
           target=st.floats(0.05, 1.0))
    @settings(max_examples=100, deadline=None)
    def test_uunifast_sums_and_bounds(self, seed, n, target):
        values = uunifast(n, target, random.Random(seed))
        assert len(values) == n
        assert abs(sum(values) - target) < 1e-9
        assert all(0 <= v <= target + 1e-9 for v in values)


class TestFeasibilitySafety:
    @given(seed=st.integers(0, 5_000))
    @settings(max_examples=15, deadline=None)
    def test_accepted_periodic_sets_meet_deadlines_under_edf(self, seed):
        from repro.workloads import random_periodic_taskset, periodic_to_heug

        tasks = random_periodic_taskset(3, 0.65, seed=seed,
                                        period_range=(2_000, 20_000))
        report = spuri_edf_test(tasks)
        if not report["feasible"]:
            return  # only accepted sets carry the safety obligation
        system = HadesSystem(node_ids=["n0"], costs=DispatcherCosts.zero())
        system.attach_scheduler(EDFScheduler(scope="n0", w_sched=0))
        horizon = 3 * max(t.period for t in tasks)
        for atask in tasks:
            heug = periodic_to_heug(atask, "n0")
            count = max(1, horizon // atask.period)
            system.register_periodic(heug, count=count)
        system.run()
        assert system.monitor.count(ViolationKind.DEADLINE_MISS) == 0
