"""Tests for state-oriented services: replication, storage, dependency."""

import pytest

from repro.kernel import Node
from repro.network import Network
from repro.services import (
    ActiveReplication,
    DependencyTracker,
    PassiveReplication,
    PersistentStore,
    SemiActiveReplication,
)
from repro.services.replication import KeyValueMachine, ReplicationError
from repro.sim import Simulator, Tracer


def build_net(n, **kwargs):
    sim = Simulator()
    tracer = Tracer(lambda: sim.now)
    net = Network(sim, tracer, **kwargs)
    for i in range(n):
        net.add_node(Node(sim, f"n{i}", tracer=tracer))
    net.connect_all()
    return sim, net


class TestKeyValueMachine:
    def test_operations(self):
        machine = KeyValueMachine()
        assert machine.apply(("set", "a", 1)) == 1
        assert machine.apply(("add", "a", 4)) == 5
        assert machine.apply(("get", "a")) == 5
        assert machine.applied == 3

    def test_snapshot_restore(self):
        machine = KeyValueMachine()
        machine.apply(("set", "k", "v"))
        snap = machine.snapshot()
        other = KeyValueMachine()
        other.restore(snap)
        assert other.apply(("get", "k")) == "v"

    def test_unknown_request(self):
        with pytest.raises(ValueError):
            KeyValueMachine().apply(("frobnicate",))


class TestActiveReplication:
    def test_majority_answer(self):
        sim, net = build_net(4)
        svc = ActiveReplication(net, "n0", ["n1", "n2", "n3"])
        result = svc.submit(("set", "x", 10))
        sim.run()
        value, votes = result.value
        assert value == 10
        assert votes >= 2

    def test_all_replicas_apply(self):
        sim, net = build_net(4)
        svc = ActiveReplication(net, "n0", ["n1", "n2", "n3"])
        svc.submit(("set", "x", 1))
        sim.run()
        assert all(r.machine.data == {"x": 1} for r in svc.replicas)

    def test_tolerates_replica_crash(self):
        sim, net = build_net(4)
        svc = ActiveReplication(net, "n0", ["n1", "n2", "n3"])
        net.nodes["n2"].crash()
        result = svc.submit(("set", "x", 5))
        sim.run()
        value, votes = result.value
        assert value == 5
        assert votes == 2

    def test_voting_masks_coherent_value_failure(self):
        sim, net = build_net(4)
        svc = ActiveReplication(net, "n0", ["n1", "n2", "n3"])
        # One replica answers garbage consistently (coherent value
        # failure, §2.1); 2-of-3 voting masks it.
        svc.replicas[0].corrupt = lambda value: "garbage"
        result = svc.submit(("set", "x", 7))
        sim.run()
        value, votes = result.value
        assert value == 7
        assert votes == 2

    def test_no_quorum_fails(self):
        sim, net = build_net(4)
        svc = ActiveReplication(net, "n0", ["n1", "n2", "n3"])
        net.nodes["n1"].crash()
        net.nodes["n2"].crash()
        result = svc.submit(("set", "x", 1), timeout=10_000)
        sim.run()
        assert result.triggered and not result.ok
        with pytest.raises(ReplicationError):
            _ = result.value


class TestPassiveReplication:
    def test_primary_serves(self):
        sim, net = build_net(4)
        svc = PassiveReplication(net, "n0", ["n1", "n2", "n3"])
        result = svc.submit(("set", "x", 3))
        sim.run(until=100_000)
        assert result.value == 3
        assert svc.machines["n1"].data == {"x": 3}

    def test_checkpoints_reach_backups(self):
        sim, net = build_net(4)
        svc = PassiveReplication(net, "n0", ["n1", "n2", "n3"],
                                 checkpoint_every=1)
        svc.submit(("set", "x", 3))
        sim.run(until=100_000)
        assert svc.machines["n2"].data == {"x": 3}
        assert svc.machines["n3"].data == {"x": 3}

    def test_failover_promotes_backup_and_preserves_state(self):
        sim, net = build_net(4)
        svc = PassiveReplication(net, "n0", ["n1", "n2", "n3"],
                                 checkpoint_every=1)
        svc.submit(("set", "x", 1))
        sim.run(until=50_000)

        def kill_primary():
            svc.mark_crash()
            net.nodes["n1"].crash()

        sim.call_in(0, kill_primary)
        sim.run(until=60_000)
        late = svc.submit(("add", "x", 10), timeout=20_000, retries=10)
        sim.run(until=400_000)
        assert svc.primary != "n1"
        assert late.triggered and late.ok
        # State carried over through the checkpoint: 1 + 10.
        assert late.value == 11
        assert svc.failover_count == 1
        assert len(svc.failover_times) == 1

    def test_no_survivors_no_failover(self):
        sim, net = build_net(2)
        svc = PassiveReplication(net, "n0", ["n1"])
        net.nodes["n1"].crash()
        result = svc.submit(("set", "x", 1), timeout=5_000, retries=1)
        sim.run(until=300_000)
        assert result.triggered and not result.ok


class TestSemiActiveReplication:
    def test_leader_answers_and_followers_track(self):
        sim, net = build_net(4)
        svc = SemiActiveReplication(net, "n0", ["n1", "n2", "n3"])
        r1 = svc.submit(("set", "x", 1))
        r2 = svc.submit(("add", "x", 2))
        sim.run(until=100_000)
        assert r1.value == 1
        assert r2.value == 3
        # Followers applied the same sequence.
        assert svc.machines["n2"].data == {"x": 3}
        assert svc.machines["n3"].data == {"x": 3}

    def test_failover_uses_warm_follower_state(self):
        sim, net = build_net(4)
        svc = SemiActiveReplication(net, "n0", ["n1", "n2", "n3"])
        svc.submit(("set", "x", 5))
        sim.run(until=50_000)

        def kill_leader():
            svc.mark_crash()
            net.nodes["n1"].crash()

        sim.call_in(0, kill_leader)
        sim.run(until=60_000)
        late = svc.submit(("add", "x", 1), timeout=200_000)
        sim.run(until=500_000)
        assert svc.leader != "n1"
        assert late.triggered and late.ok
        assert late.value == 6  # warm state: no restore step
        assert svc.failover_count == 1

    def test_semi_active_failover_faster_than_passive(self):
        def run(style):
            sim, net = build_net(4)
            cls = (SemiActiveReplication if style == "semi"
                   else PassiveReplication)
            kwargs = {} if style == "semi" else {"checkpoint_every": 1}
            svc = cls(net, "n0", ["n1", "n2", "n3"], **kwargs)
            svc.submit(("set", "x", 1))
            sim.run(until=50_000)
            svc.mark_crash()
            net.nodes["n1"].crash()
            late = svc.submit(("add", "x", 1), timeout=15_000,
                              **({} if style == "semi" else {"retries": 20}))
            sim.run(until=1_000_000)
            assert late.triggered and late.ok
            return svc.failover_times[0]

        # Semi-active pays only detection; passive adds request retry
        # round-trips.  Allow equality (both dominated by detection).
        assert run("semi") <= run("passive")


class TestPersistentStore:
    def make(self, write_latency=100):
        sim = Simulator()
        node = Node(sim, "n0")
        store = PersistentStore(node, write_latency=write_latency)
        return sim, node, store

    def test_put_get(self):
        sim, node, store = self.make()
        done = store.put("k", 42)
        sim.run()
        assert done.value == 42
        assert store.get("k") == 42

    def test_write_costs_time(self):
        sim, node, store = self.make(write_latency=250)
        store.put("k", 1)
        sim.run()
        assert sim.now == 250

    def test_data_survives_crash(self):
        sim, node, store = self.make()
        store.put("k", "stable")
        sim.run()
        node.crash()
        node.recover()
        assert store.get("k") == "stable"

    def test_read_during_crash_fails(self):
        sim, node, store = self.make()
        store.put("k", 1)
        sim.run()
        node.crash()
        with pytest.raises(RuntimeError):
            store.get("k")

    def test_in_flight_write_lost_on_crash(self):
        sim, node, store = self.make(write_latency=1_000)
        store.put("k", "lost")
        sim.call_in(500, node.crash)
        sim.run()
        node.recover()
        assert store.get("k") is None

    def test_transaction_commits_atomically(self):
        sim, node, store = self.make()
        store.begin()
        store.stage("a", 1)
        store.stage("b", 2)
        done = store.commit()
        sim.run()
        assert done.value == 2
        assert store.get("a") == 1 and store.get("b") == 2

    def test_transaction_crash_applies_nothing(self):
        sim, node, store = self.make(write_latency=1_000)
        store.begin()
        store.stage("a", 1)
        store.stage("b", 2)
        store.commit()
        sim.call_in(500, node.crash)  # mid-commit
        sim.run()
        node.recover()
        assert store.get("a") is None
        assert store.get("b") is None

    def test_abort_discards_staged(self):
        sim, node, store = self.make()
        store.begin()
        store.stage("a", 1)
        store.abort()
        sim.run()
        assert store.get("a") is None
        assert store.aborted_transactions == 1

    def test_nested_begin_rejected(self):
        sim, node, store = self.make()
        store.begin()
        with pytest.raises(RuntimeError):
            store.begin()

    def test_capture_restore_roundtrip(self):
        sim, node, store = self.make()
        cid = store.capture({"position": 10, "mode": "cruise"})
        node.crash()
        node.recover()
        assert store.latest_capture() == cid
        assert store.restore_capture(cid) == {"position": 10,
                                              "mode": "cruise"}

    def test_restore_unknown_capture(self):
        sim, node, store = self.make()
        with pytest.raises(KeyError):
            store.restore_capture(99)

    def test_log_records_history(self):
        sim, node, store = self.make()
        store.put("a", 1)
        sim.run()
        store.capture({"s": 1})
        ops = [entry[1] for entry in store.log]
        assert ops == ["put", "capture"]


class TestDependencyTracker:
    def test_direct_and_transitive_dependents(self):
        tracker = DependencyTracker()
        tracker.record("A", "B")
        tracker.record("B", "C")
        tracker.record("A", "D")
        assert tracker.dependents_of("A") == {"B", "C", "D"}
        assert tracker.depends_on("C") == {"B", "A"}

    def test_invalidate_cascades(self):
        tracker = DependencyTracker()
        tracker.record("A", "B")
        tracker.record("B", "C")
        tracker.record("X", "Y")
        casualties = tracker.invalidate("A")
        assert casualties == {"A", "B", "C"}
        assert not tracker.is_valid("B")
        assert tracker.is_valid("Y")

    def test_read_write_tracking(self):
        tracker = DependencyTracker()
        tracker.record_write("producer", "sensor.x")
        tracker.record_read("consumer", "sensor.x")
        assert tracker.dependents_of("producer") == {"consumer"}

    def test_read_before_any_write_is_free(self):
        tracker = DependencyTracker()
        tracker.record_read("consumer", "never.written")
        assert tracker.depends_on("consumer") == set()

    def test_self_dependency_ignored(self):
        tracker = DependencyTracker()
        tracker.record("A", "A")
        assert tracker.dependents_of("A") == set()

    def test_dispatcher_abort_invalidates(self):
        from repro.core import Task
        from repro.services.dependency import track_dispatcher
        from repro.system import HadesSystem

        system = HadesSystem(node_ids=["n0"], on_deadline_miss="abort")
        tracker = DependencyTracker()
        track_dispatcher(tracker, system.dispatcher)
        task = Task("late", deadline=50, node_id="n0")
        task.code_eu("a", wcet=100)
        inst = system.activate(task)
        tracker.record((inst.task.name, inst.seq), "downstream-consumer")
        system.run()
        assert not tracker.is_valid(("late", 1))
        assert not tracker.is_valid("downstream-consumer")
