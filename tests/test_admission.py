"""Tests for repro.admission: guarantee tests, overload policies,
backpressure, distributed admission, and the observability wiring."""

import json

import pytest

from repro.admission import (
    AdmissionController,
    ResponseTimeTest,
    SpringProbeTest,
    UtilizationTest,
    Verdict,
)
from repro.admission.guarantee import GuaranteeTest, remaining_window
from repro.core import DispatcherCosts, Task
from repro.core.dispatcher import InstanceState
from repro.faults import FaultPlan
from repro.feasibility.response_time import (
    rta_schedulable,
    sort_deadline_monotonic,
)
from repro.feasibility.taskset import AnalysisTask
from repro.obs.forensics import forensics_report
from repro.obs.spans import reconstruct
from repro.obs.timeline import timeline_bytes
from repro.scheduling import EDFScheduler, SpringScheduler
from repro.services.modes import ModeManager
from repro.system import HadesSystem
from repro.workloads import overload_ramp_arrivals


def make_system(node_ids=("n0",), attach_edf=True, **kwargs):
    kwargs.setdefault("costs", DispatcherCosts.zero())
    kwargs.setdefault("metrics", True)
    system = HadesSystem(node_ids=list(node_ids), **kwargs)
    if attach_edf:
        for node_id in node_ids:
            system.attach_scheduler(EDFScheduler(scope=node_id, w_sched=0))
    return system


def aperiodic(name, wcet, deadline, node="n0"):
    task = Task(name, deadline=deadline, node_id=node)
    task.code_eu("run", wcet=wcet)
    return task.validate()


class TestGuaranteeTests:
    def test_utilization_quick_test(self):
        system = make_system()
        adm = AdmissionController(system.dispatcher, "n0",
                                  UtilizationTest(bound=1.0), w_adm=0)
        # densities 0.5 + 0.4 fit; a third 0.3 does not.
        adm.drive_arrivals(aperiodic("a", 500, 1000), [0])
        adm.drive_arrivals(aperiodic("b", 400, 1000), [0])
        adm.drive_arrivals(aperiodic("c", 300, 1000), [0])
        system.run()
        assert [r.decision for r in adm.decisions] == \
            ["admitted", "admitted", "rejected"]
        assert "density" in adm.decisions[-1].reason

    def test_utilization_bound_validation(self):
        with pytest.raises(ValueError):
            UtilizationTest(bound=0)

    def test_response_time_probe_orders_by_deadline(self):
        system = make_system()
        adm = AdmissionController(system.dispatcher, "n0",
                                  ResponseTimeTest(), w_adm=0)
        # Schedulable as {short, long} under DM even though the long
        # one is submitted first — the probe must sort, not trust
        # submission order.
        adm.drive_arrivals(aperiodic("long", 500, 10_000), [0])
        adm.drive_arrivals(aperiodic("short", 400, 1_000), [0])
        system.run()
        assert all(r.decision == "admitted" for r in adm.decisions)
        assert all(r.completed_in_time for r in adm.decisions)

    def test_spring_probe_matches_planner(self):
        system = make_system(attach_edf=False)
        spring = SpringScheduler(scope="n0", w_sched=0)
        system.attach_scheduler(spring)
        adm = AdmissionController(system.dispatcher, "n0",
                                  SpringProbeTest(spring), w_adm=0)
        # Staggered so the planner's guaranteed set is settled before
        # each probe: fits2 is mid-flight (runs 500..900) when nofit
        # (deadline 600+500=1100) probes at 600 — the plan would
        # finish it at 1300.
        adm.drive_arrivals(aperiodic("fits", 400, 1_000), [0])
        adm.drive_arrivals(aperiodic("fits2", 400, 1_000), [500])
        adm.drive_arrivals(aperiodic("nofit", 400, 500), [600])
        system.run()
        assert [r.decision for r in adm.decisions] == \
            ["admitted", "admitted", "rejected"]
        # The planner itself never saw (hence never rejected) the
        # unadmitted arrival: admission intercepted it up front.
        assert spring.rejected_count == 0
        assert spring.guaranteed_count == 2


class TestOverloadPolicies:
    def test_reject_is_default(self):
        system = make_system()
        adm = AdmissionController(system.dispatcher, "n0",
                                  UtilizationTest(0.6), w_adm=0)
        adm.drive_arrivals(aperiodic("a", 500, 1000), [0, 0])
        system.run()
        assert [r.decision for r in adm.decisions] == \
            ["admitted", "rejected"]

    def test_shed_lowest_value_makes_room(self):
        system = make_system()
        adm = AdmissionController(system.dispatcher, "n0",
                                  UtilizationTest(0.6), policy="shed",
                                  w_adm=0)
        cheap = adm.submit(aperiodic("cheap", 500, 1000), value=1)
        rich = adm.submit(aperiodic("rich", 500, 1000), value=5)
        system.run()
        assert cheap.decision == "shed"
        assert cheap.instance.state is InstanceState.ABORTED
        assert rich.decision == "admitted"
        assert rich.completed_in_time
        assert adm.counts()["shed"] == 1

    def test_shed_never_evicts_equal_or_higher_value(self):
        system = make_system()
        adm = AdmissionController(system.dispatcher, "n0",
                                  UtilizationTest(0.6), policy="shed",
                                  w_adm=0)
        first = adm.submit(aperiodic("first", 500, 1000), value=3)
        second = adm.submit(aperiodic("second", 500, 1000), value=3)
        system.run()
        assert first.decision == "admitted"
        assert second.decision == "rejected"
        assert adm.counts()["shed"] == 0

    def test_mk_firm_skips_then_violates(self):
        system = make_system()
        adm = AdmissionController(system.dispatcher, "n0",
                                  UtilizationTest(0.6), policy="mk_firm",
                                  mk=(1, 2), w_adm=0)
        task = aperiodic("mk", 500, 1000)
        adm.drive_arrivals(task, [0, 0, 0])
        system.run()
        assert [r.decision for r in adm.decisions] == \
            ["admitted", "skipped", "rejected"]
        assert adm.mk_violations == 1
        assert adm.counts()["skipped"] == 1

    def test_mk_firm_requires_window(self):
        system = make_system()
        with pytest.raises(ValueError):
            AdmissionController(system.dispatcher, "n0",
                                UtilizationTest(), policy="mk_firm")
        with pytest.raises(ValueError):
            AdmissionController(system.dispatcher, "n0",
                                UtilizationTest(), policy="mk_firm",
                                mk=(3, 2))

    def test_degrade_switches_mode_once_and_retests(self):
        system = make_system()
        manager = ModeManager(system.dispatcher)
        manager.define("nominal")
        manager.define("degraded")
        manager.switch_to("nominal")

        class DegradedOnly(GuaranteeTest):
            name = "stub"

            def admit(self, admitted, newcomer, now):
                return Verdict(manager.current == "degraded", self.name)

        adm = AdmissionController(system.dispatcher, "n0",
                                  DegradedOnly(), policy="degrade",
                                  mode_manager=manager,
                                  degraded_mode="degraded", w_adm=0)
        request = adm.submit(aperiodic("a", 100, 1000))
        system.run()
        # Failed in nominal, switched, passed the re-test.
        assert manager.current == "degraded"
        assert manager.switches[-1].trigger == "admission_overload"
        assert request.decision == "admitted"
        # A second overload must not re-trigger the (one-shot) switch.
        assert len([s for s in manager.switches
                    if s.trigger == "admission_overload"]) == 1

    def test_degrade_requires_manager_and_mode(self):
        system = make_system()
        with pytest.raises(ValueError):
            AdmissionController(system.dispatcher, "n0",
                                UtilizationTest(), policy="degrade")

    def test_unknown_policy_rejected(self):
        system = make_system()
        with pytest.raises(ValueError):
            AdmissionController(system.dispatcher, "n0",
                                UtilizationTest(), policy="drop-all")


class TestBackpressureAndLatency:
    def test_bounded_queue_rejects_overflow(self):
        system = make_system()
        adm = AdmissionController(system.dispatcher, "n0",
                                  UtilizationTest(), queue_capacity=1,
                                  w_adm=0)
        task = aperiodic("a", 10, 100_000)
        first = adm.submit(task)
        second = adm.submit(task)
        third = adm.submit(task)
        assert second.decision == "rejected"
        assert second.reason == "backpressure"
        assert third.decision == "rejected"
        system.run()
        assert first.decision == "admitted"
        assert adm.counts()["backpressure_rejected"] == 2

    def test_guarantee_latency_histogram_and_w_adm(self):
        system = make_system()
        adm = AdmissionController(system.dispatcher, "n0",
                                  UtilizationTest(), w_adm=7)
        adm.drive_arrivals(aperiodic("a", 10, 100_000), [0, 0])
        system.run()
        assert adm.h_latency.count == 2
        # Each decision costs w_adm on the CPU; the second waits for
        # the first.
        latencies = sorted(r.decided_at - r.submit_time
                           for r in adm.decisions)
        assert latencies == [7, 14]

    def test_expired_in_queue_is_rejected(self):
        system = make_system()
        adm = AdmissionController(system.dispatcher, "n0",
                                  UtilizationTest(), w_adm=500)
        request = adm.submit(aperiodic("tight", 100, 300))
        system.run()
        assert request.decision == "rejected"
        assert request.reason == "expired"


def two_node_system(**n0_kwargs):
    system = make_system(node_ids=("n0", "n1"))
    n0 = AdmissionController(system.dispatcher, "n0", ResponseTimeTest(),
                             peers=["n1"], w_adm=0, **n0_kwargs)
    n1 = AdmissionController(system.dispatcher, "n1", ResponseTimeTest(),
                             w_adm=0)
    return system, n0, n1


class TestDistributedAdmission:
    def test_peer_grant_runs_job_remotely(self):
        system, n0, n1 = two_node_system()
        # Two 800/1200 jobs fail DM-RTA together (1600 > 1200), so the
        # second is forwarded; the idle peer guarantees it.
        big = aperiodic("big", 800, 1_200)
        n0.drive_arrivals(big, [0, 100])
        system.run()
        decisions = [r.decision for r in n0.decisions]
        assert decisions == ["admitted", "forward_admitted"]
        assert n0.guarantee_ratio() == 1.0
        # The surrogate ran (and finished in time) on the peer.
        assert n1.accumulated_value() == 1
        remote = [r for r in n1.decisions if r.source == "remote"]
        assert len(remote) == 1
        assert remote[0].task_name == "big@n0"
        assert remote[0].completed_in_time

    def test_peer_denial_rejects_locally(self):
        system, n0, n1 = two_node_system()
        # Saturate the peer so its guarantee test denies the forward.
        n1.drive_arrivals(aperiodic("hog", 1_900, 2_000, node="n1"), [0])
        big = aperiodic("big", 800, 1_200)
        n0.drive_arrivals(big, [200, 300])
        system.run()
        assert [r.decision for r in n0.decisions] == \
            ["admitted", "rejected"]
        assert n0.decisions[-1].reason == "peer_rejected"
        assert n0.counts()["forward_timeouts"] == 0

    def test_dropped_request_times_out_conservatively(self):
        """Fault-plan coverage: a dropped guarantee request must
        resolve to a conservative local reject — no deadlock."""
        system, n0, n1 = two_node_system()
        plan = FaultPlan()
        plan.link_omission(0, "n0", "n1", probability=1.0)
        plan.apply(system)
        big = aperiodic("big", 800, 1_200)
        n0.drive_arrivals(big, [0, 100])
        system.run(until=1_000_000)
        assert [r.decision for r in n0.decisions] == \
            ["admitted", "rejected"]
        assert n0.decisions[-1].reason == "forward_timeout"
        assert n0.counts()["forward_timeouts"] == 1
        assert n1.counts()["submitted"] == 0  # request never arrived

    def test_dropped_reply_times_out_conservatively(self):
        """A lost grant reply also resolves to a local reject; the
        peer (which accepted) still runs the job — safe, documented."""
        system, n0, n1 = two_node_system()
        plan = FaultPlan()
        plan.link_omission(0, "n1", "n0", probability=1.0)
        plan.apply(system)
        big = aperiodic("big", 800, 1_200)
        n0.drive_arrivals(big, [0, 100])
        system.run(until=1_000_000)
        assert n0.decisions[-1].decision == "rejected"
        assert n0.decisions[-1].reason == "forward_timeout"
        assert n1.counts()["admitted"] == 1

    def test_timeout_is_deadline_aware(self):
        system, n0, n1 = two_node_system()
        # Zero slack (deadline == wcet): forwarding is pointless, the
        # controller must reject immediately without arming a timer.
        n0.drive_arrivals(aperiodic("big", 900, 1_000), [0])
        n0.drive_arrivals(aperiodic("big2", 900, 900), [50])
        system.run()
        assert n0.counts()["forwarded"] == 0
        assert n0.decisions[-1].decision == "rejected"

    def test_remote_requests_are_never_reforwarded(self):
        # n0 and n1 peer with each other; saturate both so a forwarded
        # request fails remotely too — it must come straight back as a
        # denial, not ping-pong.
        system = make_system(node_ids=("n0", "n1"))
        n0 = AdmissionController(system.dispatcher, "n0",
                                 UtilizationTest(0.6), peers=["n1"],
                                 w_adm=0)
        n1 = AdmissionController(system.dispatcher, "n1",
                                 UtilizationTest(0.6), peers=["n0"],
                                 w_adm=0)
        n1.drive_arrivals(aperiodic("hog1", 30_000, 60_000, node="n1"),
                          [0])
        n0.drive_arrivals(aperiodic("hog0", 30_000, 60_000), [0])
        n0.drive_arrivals(aperiodic("extra", 30_000, 60_000), [100])
        system.run(until=2_000_000)
        assert n0.decisions[-1].reason in ("peer_rejected",
                                           "forward_timeout")
        assert n1.counts()["forwarded"] == 0


class TestAdmissionObservability:
    def run_mixed(self):
        system = make_system()
        adm = AdmissionController(system.dispatcher, "n0",
                                  ResponseTimeTest(), w_adm=0)
        adm.drive_arrivals(aperiodic("a", 400, 1_000), [0, 100, 200])
        hog = Task("hog", deadline=100, node_id="n0")
        hog.code_eu("x", wcet=5_000)
        system.sim.call_at(50, lambda: system.activate(hog.validate()))
        system.run()
        return system, adm

    def test_spans_mark_admitted_activations(self):
        system, adm = self.run_mixed()
        forest = reconstruct(system.tracer)
        assert forest.has_admission
        assert forest.admission_submits == 3
        assert forest.admission_admits == 2
        assert [e.event for e in forest.admission_events] == ["reject"]
        flags = {a.activation_id: a.admitted
                 for a in forest.activations.values()}
        assert flags["a#1"] and flags["a#2"]
        assert not flags["hog#1"]

    def test_forensics_distinguishes_admitted_misses(self):
        system, adm = self.run_mixed()
        report = forensics_report(system.tracer)
        assert "admission: 3 submitted, 2 admitted, 1 rejected" in report
        assert "MISS hog#1 [not admitted]" in report
        assert "[admitted]" in report

    def test_forensics_without_admission_is_unchanged(self):
        system = make_system()
        system.activate(aperiodic("late", 900, 100))
        system.run()
        report = forensics_report(system.tracer)
        assert "admission:" not in report
        assert "[admitted]" not in report and "[not admitted]" not in report

    def test_timeline_renders_admission_instants(self):
        system, adm = self.run_mixed()
        payload = timeline_bytes(system.tracer)
        doc = json.loads(payload)
        instants = [e for e in doc["traceEvents"]
                    if e.get("cat") == "admission"]
        assert len(instants) == 1
        assert instants[0]["ph"] == "i"
        assert instants[0]["name"].startswith("admission_reject a")
        # Byte determinism is part of the export contract.
        assert payload == timeline_bytes(system.tracer)

    def test_timeline_instants_for_forward_and_timeout(self):
        system, n0, n1 = two_node_system()
        plan = FaultPlan()
        plan.link_omission(0, "n0", "n1", probability=1.0)
        plan.apply(system)
        n0.drive_arrivals(aperiodic("big", 800, 1_200), [0, 100])
        system.run(until=1_000_000)
        doc = json.loads(timeline_bytes(system.tracer))
        names = [e["name"] for e in doc["traceEvents"]
                 if e.get("cat") == "admission"]
        assert any(n.startswith("admission_forward big ->n1")
                   for n in names)
        assert any(n.startswith("admission_forward_timeout big")
                   for n in names)


class RecordingTest(ResponseTimeTest):
    """ResponseTimeTest that snapshots every evaluation's inputs — the
    WCETs and *remaining* windows it reasons over — so the verdicts can
    be re-derived offline."""

    def __init__(self):
        super().__init__()
        self.evaluations = []

    def admit(self, admitted, newcomer, now):
        verdict = super().admit(admitted, newcomer, now)
        snapshot = [(r.task_name, r.wcet, remaining_window(r, now))
                    for r in [*admitted, newcomer]]
        self.evaluations.append((snapshot, verdict.ok))
        return verdict


def overload_run(seed, policy="reject"):
    """One synthetic-overload run (~2.5x offered load) under the
    response-time probe; returns (system, controller, test)."""
    system = make_system()
    test = RecordingTest()
    adm = AdmissionController(system.dispatcher, "n0", test,
                              policy=policy, w_adm=0)
    shapes = [("ctrl", 400, 1_200, 5), ("video", 900, 4_000, 3),
              ("log", 600, 3_000, 1)]
    for index, (name, wcet, deadline, value) in enumerate(shapes):
        times = overload_ramp_arrivals(40_000, wcet, 0.3, 2.5 / len(shapes),
                                       jitter=0.2, seed=seed * 31 + index)
        adm.drive_arrivals(aperiodic(name, wcet, deadline), times,
                           value=value)
    system.run()
    return system, adm, test


class TestAdmissionProperties:
    @pytest.mark.parametrize("seed", range(24))
    def test_admitted_sets_pass_their_own_guarantee(self, seed):
        """Property: at every admit instant, the admitted set (incl.
        the newcomer) passes the guarantee test — re-derived offline
        from the recorded snapshots."""
        system, adm, test = overload_run(seed)
        accepted = [snapshot for snapshot, ok in test.evaluations if ok]
        assert len(accepted) == adm.counts()["admitted"]
        for snapshot in accepted:
            tasks = [AnalysisTask(name=f"{name}#{i}", wcet=wcet,
                                  deadline=deadline, period=deadline)
                     for i, (name, wcet, deadline) in enumerate(snapshot)]
            assert rta_schedulable(sort_deadline_monotonic(tasks))

    @pytest.mark.parametrize("seed", range(24))
    def test_zero_admitted_misses_under_overload(self, seed):
        """Property: under ~2.5x offered load, every admitted
        activation meets its deadline (the guarantee holds) while a
        significant share of arrivals is turned away."""
        system, adm, test = overload_run(seed)
        admitted = [r for r in adm.decisions if r.decision == "admitted"]
        assert admitted, "overload run admitted nothing"
        assert all(r.completed_in_time for r in admitted)
        assert adm.counts()["rejected"] > 0
        assert adm.guarantee_ratio() < 1.0
