"""Determinism of the live monitoring plane and the rank-tagged merge.

The monitor samples and alert transitions are trace records, so the
bar is the same one the sharded harness already sets for everything
else: the *whole* merged trace — monitor/alert records included — must
be byte-identical to the serial run, per seed, per event-set backend,
and for non-contiguous shard partitions (the case the global node-rank
tags exist for)."""

import json

import pytest

from repro import Scenario, UtilizationTest
from repro.sim.sharded import merge_shard_traces

SEEDS = (0, 7, 19)


def monitored(seed):
    """An overloaded monitored scenario on the mod-50 residue grid
    (every duration a multiple of the stagger quantum, IRQ and
    scheduler costs zeroed — the same discipline as the E22 probe), so
    no two cells record at one instant and probes tick on each
    tenant's cell phase: sharding stays byte-exact."""
    return (Scenario()
            .tier("edge", replicas=1, wcet=300)
            .tier("svc", fan_out=2, wcet=400)
            .cells(4)
            .tenant("gold", rate=600, mk=(9, 10), value=5,
                    deadline=3_000)
            .tenant("bronze", rate=900, deadline=3_000)
            .tenant("silver", rate=700, deadline=3_000)
            .tenant("iron", rate=800, deadline=3_000)
            .admission("reject", test=UtilizationTest(8.0))
            .policy("edf", w_sched=0)
            .load(3.0)
            .stagger(50)
            .options(network_latency=50, network_jitter=0,
                     node_kwargs={"net_irq_wcet": 0})
            .seed(seed)
            .monitor("gold", interval=20_000, objective_ppm=990_000,
                     react="conservative", on_clear="restore")
            .monitor("silver", interval=20_000, objective_ppm=990_000))


def trace_bytes(result, path):
    result.system.tracer.to_jsonl(str(path))
    return path.read_bytes()


@pytest.mark.parametrize("seed", SEEDS)
def test_monitored_trace_byte_identical(seed, backend, tmp_path):
    sc = monitored(seed).options(backend=backend)
    serial = sc.run(until=200_000)
    alerts = [r for r in serial.system.tracer.records
              if r.category == "alert"]
    assert alerts, f"seed {seed}: 3x overload must raise alerts"
    serial_bytes = trace_bytes(serial, tmp_path / "serial.jsonl")
    sharded = monitored(seed).options(backend=backend).run(until=200_000,
                                                           shards=4)
    assert serial_bytes == trace_bytes(sharded, tmp_path / "s4.jsonl"), \
        f"seed {seed} ({backend}): monitored sharded trace diverged"


def test_shard_count_does_not_matter(tmp_path):
    s2 = trace_bytes(monitored(3).run(until=200_000, shards=2),
                     tmp_path / "s2.jsonl")
    s4 = trace_bytes(monitored(3).run(until=200_000, shards=4),
                     tmp_path / "s4.jsonl")
    assert s2 == s4


def test_non_contiguous_partition_byte_identical(tmp_path):
    # Interleaved cell blocks (cells {0,2} and {1,3}): the serial
    # time-0 construction order does NOT follow shard rank, so only
    # the global node-rank tags keep the merge byte-exact.
    sc = monitored(0)
    serial_bytes = trace_bytes(sc.run(until=150_000),
                               tmp_path / "serial.jsonl")
    sc2 = monitored(0)
    sc2._horizon = 150_000  # run() sets this; we drive run_sharded direct
    cells = sc2.partition(4)  # one contiguous group per cell
    system = sc2.build()
    system.run(until=150_000,
               partition=[cells[0] + cells[2], cells[1] + cells[3]])
    system.tracer.to_jsonl(str(tmp_path / "interleaved.jsonl"))
    assert serial_bytes == (tmp_path / "interleaved.jsonl").read_bytes()


def test_alert_stream_identical_across_backends(tmp_path):
    # Burn-rate decisions are all-integer: the alert stream must not
    # depend on the event-set backend either.
    def alert_lines(backend):
        result = monitored(7).options(backend=backend).run(until=200_000)
        return [json.dumps({"time": r.time, "event": r.event,
                            "details": r.details}, sort_keys=True)
                for r in result.system.tracer.records
                if r.category == "alert"]

    heapq_lines = alert_lines("heapq")
    assert heapq_lines
    assert heapq_lines == alert_lines("calendar")


class TestTaggedMerge:
    def _write(self, path, lines):
        path.write_text("".join(lines))
        return str(path)

    def test_same_instant_orders_by_node_rank(self, tmp_path):
        # Shard 0 holds the higher-ranked node: at equal times the
        # lower global rank (on shard 1) must come first.
        a = self._write(tmp_path / "s0.jsonl", [
            '5\t{"time": 10, "category": "x", "event": "hi-rank"}\n'])
        b = self._write(tmp_path / "s1.jsonl", [
            '2\t{"time": 10, "category": "x", "event": "lo-rank"}\n'])
        out = tmp_path / "merged.jsonl"
        assert merge_shard_traces([a, b], str(out)) == 2
        events = [json.loads(line)["event"]
                  for line in out.read_text().splitlines()]
        assert events == ["lo-rank", "hi-rank"]

    def test_intra_shard_order_is_never_reordered(self, tmp_path):
        # Within one stream, a later line with a *smaller* rank must
        # stay behind the earlier line at the same instant: the merge
        # compares stream heads only, it never sorts inside a shard.
        a = self._write(tmp_path / "s0.jsonl", [
            '7\t{"time": 10, "category": "x", "event": "first"}\n',
            '1\t{"time": 10, "category": "x", "event": "second"}\n'])
        out = tmp_path / "merged.jsonl"
        assert merge_shard_traces([a], str(out)) == 2
        events = [json.loads(line)["event"]
                  for line in out.read_text().splitlines()]
        assert events == ["first", "second"]

    def test_untagged_legacy_falls_back_to_file_order(self, tmp_path):
        a = self._write(tmp_path / "s0.jsonl", [
            '{"time": 10, "category": "x", "event": "shard0"}\n'])
        b = self._write(tmp_path / "s1.jsonl", [
            '{"time": 10, "category": "x", "event": "shard1"}\n'])
        out = tmp_path / "merged.jsonl"
        assert merge_shard_traces([a, b], str(out)) == 2
        events = [json.loads(line)["event"]
                  for line in out.read_text().splitlines()]
        assert events == ["shard0", "shard1"]


def test_coordinator_sidecar_consistency(tmp_path):
    result = monitored(0).run(until=100_000, shards=4)
    shard = result.shard_result
    assert shard.coordinator_path is not None
    windows = [json.loads(line)
               for line in open(shard.coordinator_path)]
    assert len(windows) == shard.windows
    assert sum(w["shipped"] for w in windows) == shard.messages
    # per-shard totals mirror the per-window rows
    for rank, totals in enumerate(shard.shard_stats):
        assert totals["windows"] == len(windows)
        assert totals["messages_out"] == sum(
            w["shards"][rank]["out"] for w in windows)
        assert totals["bytes_out"] == sum(
            w["shards"][rank]["bytes"] for w in windows)
        assert totals["null_replies"] == sum(
            1 for w in windows if not w["shards"][rank]["out"])
