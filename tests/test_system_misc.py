"""Coverage for the system facade, T_network task, notification queue,
scheduler API details and priority helpers."""

import pytest

from repro.core import (
    DispatcherCosts,
    Notification,
    NotificationKind,
    NotificationQueue,
    Task,
)
from repro.core.scheduler_api import SchedulerBase
from repro.core.tnetwork import TNetwork, install_tnetwork
from repro.kernel.priorities import (
    PRIO_MAX,
    PRIO_MAX_APPL,
    PRIO_MIN_APPL,
    PRIO_SCHEDULER,
    clamp_application_priority,
)
from repro.sim import Simulator
from repro.system import HadesSystem


class TestPriorities:
    def test_band_ordering(self):
        assert PRIO_MAX > PRIO_SCHEDULER > PRIO_MAX_APPL > PRIO_MIN_APPL

    def test_clamp(self):
        assert clamp_application_priority(0) == PRIO_MIN_APPL
        assert clamp_application_priority(10_000) == PRIO_MAX_APPL
        assert clamp_application_priority(500) == 500


class TestHadesSystemFacade:
    def test_builds_requested_topology(self):
        system = HadesSystem(node_ids=["a", "b", "c"])
        assert sorted(system.nodes) == ["a", "b", "c"]
        assert len(system.network.links) == 6
        assert set(system.dispatcher.nodes) == {"a", "b", "c"}

    def test_shared_tracer_everywhere(self):
        system = HadesSystem(node_ids=["a", "b"])
        assert system.dispatcher.tracer is system.tracer
        assert system.nodes["a"].tracer is system.tracer
        assert system.network.tracer is system.tracer

    def test_clock_drifts_applied(self):
        system = HadesSystem(node_ids=["a", "b"],
                             clock_drifts={"a": 100e-6})
        system.sim.call_in(1_000_000, lambda: None)
        system.run()
        assert system.nodes["a"].now() == 1_000_100
        assert system.nodes["b"].now() == 1_000_000

    def test_with_tnetwork_installs_protocol_tasks(self):
        system = HadesSystem(node_ids=["a", "b"], with_tnetwork=True)
        assert isinstance(system.nodes["a"].tnetwork, TNetwork)
        assert isinstance(system.nodes["b"].tnetwork, TNetwork)

    def test_background_activities_tick(self):
        system = HadesSystem(node_ids=["a"], background_activities=True)
        system.run(until=25_000)
        assert system.nodes["a"].clock_tick.fire_count == 3

    def test_kernel_activities_listing(self):
        system = HadesSystem(node_ids=["a", "b"])
        activities = system.kernel_activities()
        assert len(activities) == 4
        names = {a.name for a in activities}
        assert "a:clock" in names and "b:net" in names
        per_node = system.node_kernel_activities("a")
        assert [a.name for a in per_node] == ["clock", "net"]

    def test_context_switch_cost_forwarded(self):
        system = HadesSystem(node_ids=["a"], context_switch_cost=7)
        assert system.nodes["a"].cpu.context_switch_cost == 7

    def test_invalid_modes_rejected(self):
        with pytest.raises(ValueError):
            HadesSystem(node_ids=["a"], on_deadline_miss="panic")
        with pytest.raises(ValueError):
            HadesSystem(node_ids=["a"], abort_mode="detonate")


class TestTNetwork:
    def make(self, **kwargs):
        system = HadesSystem(node_ids=["a", "b"],
                             costs=DispatcherCosts.zero())
        tnet = install_tnetwork(system.nodes["a"],
                                system.network.interfaces["a"], **kwargs)
        return system, tnet

    def test_send_costs_cpu_time(self):
        system, tnet = self.make(send_cost=40)
        got = []
        system.network.interfaces["b"].on_receive(
            lambda m: got.append((m.payload, system.sim.now)))
        tnet.send("b", "hello")
        system.run()
        assert got[0][0] == "hello"
        assert system.nodes["a"].cpu.busy_time.get("service", 0) == 40

    def test_fifo_processing_order(self):
        system, tnet = self.make(send_cost=10)
        got = []
        system.network.interfaces["b"].on_receive(
            lambda m: got.append(m.payload))
        for index in range(5):
            tnet.send("b", index)
        system.run()
        assert got == [0, 1, 2, 3, 4]

    def test_outbox_capacity_drops(self):
        system, tnet = self.make(send_cost=10, outbox_capacity=2)
        accepted = [tnet.send("b", i) for i in range(5)]
        # First goes straight to the thread's hands? It is queued; the
        # thread drains asynchronously, so only the capacity fits now.
        assert accepted.count(True) <= 3
        assert tnet.dropped_full >= 2
        system.run()
        assert tnet.sent_count == accepted.count(True)

    def test_worst_case_queueing_bound(self):
        system, tnet = self.make(send_cost=10, outbox_capacity=8)
        assert tnet.worst_case_queueing() == 80

    def test_parameter_validation(self):
        system = HadesSystem(node_ids=["a", "b"])
        with pytest.raises(ValueError):
            TNetwork(system.nodes["a"], system.network.interfaces["a"],
                     send_cost=-1)
        with pytest.raises(ValueError):
            TNetwork(system.nodes["a"], system.network.interfaces["a"],
                     outbox_capacity=0)


class TestNotificationQueue:
    def test_fifo_order(self):
        sim = Simulator()
        queue = NotificationQueue(sim)

        class FakeEUI:
            qualified_name = "fake"

        for index in range(3):
            queue.put(Notification(NotificationKind.ATV, FakeEUI(), index))
        assert [n.time for n in queue.snapshot()] == [0, 1, 2]
        assert queue.pop().time == 0
        assert queue.pop().time == 1
        assert len(queue) == 1

    def test_wait_nonempty_immediate_when_filled(self):
        sim = Simulator()
        queue = NotificationQueue(sim)

        class FakeEUI:
            qualified_name = "fake"

        queue.put(Notification(NotificationKind.TRM, FakeEUI(), 5))
        ready = queue.wait_nonempty()
        assert ready.triggered

    def test_wait_nonempty_triggers_on_put(self):
        sim = Simulator()
        queue = NotificationQueue(sim)
        ready = queue.wait_nonempty()
        assert not ready.triggered

        class FakeEUI:
            qualified_name = "fake"

        queue.put(Notification(NotificationKind.ATV, FakeEUI(), 1))
        assert ready.triggered

    def test_single_waiter_enforced(self):
        sim = Simulator()
        queue = NotificationQueue(sim)
        queue.wait_nonempty()
        with pytest.raises(RuntimeError):
            queue.wait_nonempty()

    def test_pop_empty_returns_none(self):
        sim = Simulator()
        queue = NotificationQueue(sim)
        assert queue.pop() is None


class TestSchedulerScoping:
    class Recorder(SchedulerBase):
        policy_name = "recorder"

        def __init__(self, **kwargs):
            super().__init__(**kwargs)
            self.seen = []

        def handle(self, notification):
            self.seen.append(
                (notification.kind,
                 notification.eu_instance.instance.task.name))

    def test_global_instant_scheduler_sees_everything(self):
        system = HadesSystem(node_ids=["a", "b"],
                             costs=DispatcherCosts.zero())
        recorder = self.Recorder(scope=None, home_node=None, w_sched=0)
        system.attach_scheduler(recorder)
        for node in ("a", "b"):
            task = Task(f"t_{node}", node_id=node)
            task.code_eu("eu", wcet=10)
            system.activate(task)
        system.run()
        names = {name for _kind, name in recorder.seen}
        assert names == {"t_a", "t_b"}
        kinds = [kind for kind, _name in recorder.seen]
        assert kinds.count(NotificationKind.ATV) == 2
        assert kinds.count(NotificationKind.TRM) == 2

    def test_node_scoped_scheduler_filters(self):
        system = HadesSystem(node_ids=["a", "b"],
                             costs=DispatcherCosts.zero())
        recorder = self.Recorder(scope="a", w_sched=0)
        system.attach_scheduler(recorder)
        for node in ("a", "b"):
            task = Task(f"t_{node}", node_id=node)
            task.code_eu("eu", wcet=10)
            system.activate(task)
        system.run()
        names = {name for _kind, name in recorder.seen}
        assert names == {"t_a"}

    def test_manage_only_filters_by_task(self):
        system = HadesSystem(node_ids=["a"], costs=DispatcherCosts.zero())
        recorder = self.Recorder(scope="a", w_sched=0,
                                 manage_only={"wanted"})
        system.attach_scheduler(recorder)
        for name in ("wanted", "ignored"):
            task = Task(name, node_id="a")
            task.code_eu("eu", wcet=10)
            system.activate(task)
        system.run()
        names = {name for _kind, name in recorder.seen}
        assert names == {"wanted"}

    def test_negative_w_sched_rejected(self):
        with pytest.raises(ValueError):
            SchedulerBase(w_sched=-1)
