"""SLO scoreboard accounting edges: exact quantiles, (m, k) windows
(including a window straddling a live mode change), zero-traffic
tenants, and determinism across shard counts and event-set backends."""

import pytest

from repro import DispatcherCosts, EDFScheduler, HadesSystem, Scenario
from repro.core.attributes import Aperiodic, Periodic
from repro.core.heug import Task
from repro.scenarios import LogNormalService, Scoreboard, TenantSLO
from repro.services.modes import ModeManager


class TestExactQuantile:
    def test_nearest_rank(self):
        from repro.scenarios import exact_quantile
        sample = list(range(1, 101))  # 1..100, sorted
        assert exact_quantile(sample, 0.5) == 50
        assert exact_quantile(sample, 0.99) == 99
        assert exact_quantile(sample, 0.999) == 100
        assert exact_quantile(sample, 1.0) == 100
        assert exact_quantile([7], 0.999) == 7
        assert exact_quantile([], 0.5) is None

    def test_q_bounds(self):
        from repro.scenarios import exact_quantile
        with pytest.raises(ValueError):
            exact_quantile([1], 0.0)
        with pytest.raises(ValueError):
            exact_quantile([1], 1.5)


class TestMkWindows:
    def test_exact_window_counting(self):
        count = Scoreboard.mk_violations
        assert count([], (1, 2)) == 0
        assert count([True, True, True], (2, 2)) == 0
        assert count([True, False, False], (2, 2)) == 2
        # One bad burst: windows covering >= 2 of the 3 failures.
        outcomes = [True] * 5 + [False] * 3 + [True] * 5
        assert count(outcomes, (9, 10)) == 10 - 10 + 1 + 3  # every window
        assert count(outcomes, (1, 3)) == 1  # only the all-False window

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            Scoreboard.mk_violations([True], (0, 2))
        with pytest.raises(ValueError):
            Scoreboard.mk_violations([True], (3, 2))

    def test_window_straddling_mode_change(self):
        """(m, k) accounting across a live ModeManager switch.

        Ten requests straddle a switch into a degraded mode whose heavy
        background task starves them: the first five (pre-switch) meet
        their deadlines, the last five miss.  The violated (3, 4)
        windows are exactly the ones spanning or following the switch.
        """
        system = HadesSystem(node_ids=["n0"], costs=DispatcherCosts.zero())
        system.attach_scheduler(EDFScheduler(scope="n0", w_sched=0))

        request = Task("req", deadline=400, arrival=Aperiodic(),
                       node_id="n0")
        request.code_eu("serve", wcet=200)
        request.validate()

        # Tighter-deadline background load: under EDF its 300 us
        # absolute deadlines always beat a request's 400 us one, so
        # post-switch requests only get the 20 us/period slack.
        heavy = Task("bg_heavy", deadline=300,
                     arrival=Periodic(period=300), node_id="n0")
        heavy.code_eu("burn", wcet=280)
        heavy.validate()

        manager = ModeManager(system.dispatcher)
        manager.define("normal")
        manager.define("degraded", tasks=[heavy])
        manager.switch_to("normal")

        times = [100 + k * 1_000 for k in range(10)]
        system.dispatcher.register_arrivals(request, times)
        system.sim.call_at(5_050, lambda: manager.switch_to("degraded"))
        system.run(until=12_000)

        assert manager.current == "degraded"
        board = Scoreboard.from_records(
            system.tracer.records, [TenantSLO("req", mk=(3, 4))])
        row = board.tenant_stats("req")
        assert row["submitted"] == 10
        assert row["missed"] == 5
        outcomes = board._request_outcomes("req")
        assert outcomes == [True] * 5 + [False] * 5
        # Windows [2-5], [3-6], [4-7] straddle the switch; [5-8], [6-9]
        # follow it.  [2-5] still holds 3 satisfied -> 4 violations.
        assert row["mk_violations"] == 4
        assert Scoreboard.mk_violations(outcomes, (3, 4)) == 4


def service_scenario(**overrides):
    builder = (Scenario()
               .tier("edge", replicas=2, wcet=300)
               .tier("svc", fan_out=2, wcet=500,
                     service=LogNormalService(180, 0.6))
               .cells(4)
               .tenant("gold", rate=50, mk=(9, 10), value=5,
                       deadline=30_000)
               .tenant("bronze", rate=120, mk=(1, 4), deadline=50_000)
               .admission("mk_firm"))
    for key, value in overrides.items():
        getattr(builder, key)(value)
    return builder


class TestZeroTraffic:
    def test_zero_rate_tenant_reports_empty_row(self):
        result = (service_scenario()
                  .tenant("idle", rate=0, mk=(2, 3), deadline=10_000)
                  .run(until=80_000, seed=5))
        row = result.tenant("idle")
        assert row["submitted"] == 0
        assert row["admitted"] == 0
        assert row["completed"] == 0
        assert row["missed"] == 0
        assert row["miss_ratio"] == 0.0
        assert row["p50"] is None and row["p99"] is None \
            and row["p999"] is None
        assert row["value"] == 0
        assert row["mk_violations"] == 0
        assert all(tier["completed"] == 0
                   for tier in row["tiers"].values())

    def test_rateless_tenant_reports_empty_row(self):
        result = (service_scenario()
                  .tenant("manual", deadline=10_000)
                  .run(until=60_000, seed=5))
        assert result.tenant("manual")["submitted"] == 0

    def test_unknown_tenant_records_ignored(self):
        result = service_scenario().run(until=60_000, seed=5)
        board = Scoreboard.from_records(result.system.tracer.records,
                                        [TenantSLO("gold")])
        assert board.tenant_stats("gold")["submitted"] \
            == result.tenant("gold")["submitted"]
        with pytest.raises(KeyError):
            board.tenant_stats("bronze")


class TestDeterminism:
    def test_scoreboard_identical_across_shard_counts(self, backend):
        baseline = None
        for shards in (1, 2, 4):
            result = (service_scenario()
                      .options(backend=backend)
                      .run(until=150_000, seed=11, shards=shards))
            board = result.scoreboard.to_dict()
            if baseline is None:
                baseline = board
                assert board["gold"]["completed"] > 0
            else:
                assert board == baseline, \
                    f"scoreboard diverged at shards={shards} ({backend})"

    def test_staggered_trace_byte_identical(self, backend, tmp_path):
        def build():
            return (Scenario()
                    .tier("edge", replicas=1, wcet=300)
                    .tier("svc", replicas=2, fan_out=2, wcet=400)
                    .cells(4)
                    .tenant("gold", rate=40, mk=(9, 10), value=5,
                            deadline=40_000)
                    .tenant("silver", rate=60, mk=(4, 5),
                            deadline=50_000)
                    .tenant("bronze", rate=90, mk=(1, 4),
                            deadline=60_000)
                    .tenant("free", rate=120, deadline=80_000)
                    .admission("mk_firm")
                    .policy("edf", w_sched=0)
                    .stagger(50)
                    .options(network_latency=50, network_jitter=0,
                             node_kwargs={"net_irq_wcet": 0},
                             backend=backend)
                    .load(2.0))

        serial = build().run(until=120_000, seed=7)
        sharded = build().run(until=120_000, seed=7, shards=4)
        a, b = tmp_path / "serial.jsonl", tmp_path / "sharded.jsonl"
        serial.system.tracer.to_jsonl(str(a))
        sharded.system.tracer.to_jsonl(str(b))
        assert a.read_bytes(), "empty serial trace"
        assert a.read_bytes() == b.read_bytes(), \
            f"sharded trace diverged from serial on {backend}"
        assert serial.scoreboard.to_dict() == sharded.scoreboard.to_dict()

    def test_to_dict_shape_is_plain_and_sorted(self):
        result = service_scenario().run(until=60_000, seed=3)
        board = result.scoreboard.to_dict()
        assert list(board) == sorted(board)
        import json
        json.dumps(board)  # every leaf JSON-serializable
