"""Tests for invocation priority inheritance, end-to-end analysis and
the system monitor service."""

import pytest

from repro.core import DispatcherCosts, EUAttributes, Periodic, Task
from repro.core.dispatcher import InstanceState
from repro.core.monitoring import ViolationKind
from repro.feasibility import AnalysisTask
from repro.feasibility.end_to_end import (
    StageLoad,
    end_to_end_bound,
    end_to_end_feasible,
    separate_tests,
    stage_response_bound,
)
from repro.scheduling import EDFScheduler
from repro.services.monitor import SystemMonitor
from repro.system import HadesSystem


def make_system(**kwargs):
    kwargs.setdefault("node_ids", ["n0"])
    kwargs.setdefault("costs", DispatcherCosts.zero())
    return HadesSystem(**kwargs)


class TestInvocationPriorityInheritance:
    def build(self, inherit):
        """A high-priority caller invokes a (default low-priority)
        service while a medium task competes for the CPU."""
        system = make_system()
        service = Task("logger_service", node_id="n0")
        service.code_eu("write", wcet=200)  # default prio 1
        caller = Task("caller", node_id="n0")
        pre = caller.code_eu("pre", wcet=50, attrs=EUAttributes(prio=80))
        call = caller.inv_eu("call", service, synchronous=True,
                             inherit_priority=inherit)
        caller.precede(pre, call)
        medium = Task("medium", node_id="n0")
        medium.code_eu("spin", wcet=1_000, attrs=EUAttributes(prio=40))
        inst = system.activate(caller)
        system.sim.call_in(10, lambda: system.activate(medium))
        system.run()
        return system, inst

    def test_without_inheritance_service_starves(self):
        system, inst = self.build(inherit=False)
        # Service at prio 1 waits out the whole medium task.
        assert inst.response_time >= 1_000 + 200

    def test_with_inheritance_service_runs_at_caller_priority(self):
        system, inst = self.build(inherit=True)
        # Service inherits 80 > 40: finishes ahead of medium.
        assert inst.response_time < 1_000
        service_inst = system.dispatcher.instances_of("logger_service")[0]
        eui = list(service_inst.eu_instances.values())[0]
        assert eui.priority == 80

    def test_inheritance_avoids_inversion_end_to_end(self):
        fast = self.build(inherit=True)[1].response_time
        slow = self.build(inherit=False)[1].response_time
        assert fast < slow


class TestStageResponseBound:
    def test_no_load_equals_wcet(self):
        assert stage_response_bound(100, None, deadline_cap=10_000) == 100

    def test_load_inflates_fixed_point(self):
        load = StageLoad("n0", [AnalysisTask("hp", 30, 100, 100)])
        # R = 50 + ceil(R/100)*30 -> 80.
        assert stage_response_bound(50, load, deadline_cap=10_000) == 80

    def test_divergence_returns_none(self):
        load = StageLoad("n0", [AnalysisTask("hp", 100, 1_000, 100)])
        assert stage_response_bound(50, load, deadline_cap=10_000) is None


class TestEndToEndAnalysis:
    def chain(self, deadline=20_000):
        chain = Task("pipeline", deadline=deadline, node_id="n0")
        a = chain.code_eu("a", wcet=500)
        b = chain.code_eu("b", wcet=800, node_id="n1")
        c = chain.code_eu("c", wcet=300, node_id="n1")
        chain.precede(a, b)
        chain.precede(b, c)
        return chain

    def test_integrated_bound_composition(self):
        chain = self.chain()
        costs = DispatcherCosts.zero()
        bound = end_to_end_bound(chain, loads={}, network_bound=400,
                                 costs=costs)
        # 500 + 800 + 300 compute, one remote hop (400), one local hop.
        assert bound == 1_600 + 400

    def test_costs_enter_the_bound(self):
        chain = self.chain()
        costs = DispatcherCosts(c_start_act=5, c_end_act=5, c_local=8,
                                c_remote=12)
        bound = end_to_end_bound(chain, loads={}, network_bound=400,
                                 costs=costs)
        assert bound == 1_600 + 3 * 10 + 400 + 12 + 8

    def test_load_on_a_stage_node_inflates_bound(self):
        chain = self.chain()
        light = end_to_end_bound(chain, loads={}, network_bound=400,
                                 costs=DispatcherCosts.zero())
        loads = {"n1": StageLoad("n1",
                                 [AnalysisTask("hp", 200, 1_000, 1_000)])}
        heavy = end_to_end_bound(chain, loads=loads, network_bound=400,
                                 costs=DispatcherCosts.zero())
        assert heavy > light

    def test_feasibility_verdict(self):
        assert end_to_end_feasible(self.chain(deadline=5_000), {}, 400,
                                   DispatcherCosts.zero())
        assert not end_to_end_feasible(self.chain(deadline=1_500), {}, 400,
                                       DispatcherCosts.zero())

    def test_bound_is_safe_against_simulation(self):
        """The analysis bound dominates the observed response, with the
        analysed interference actually running."""
        chain = self.chain()
        loads = {"n1": StageLoad("n1",
                                 [AnalysisTask("hp", 100, 2_000, 2_000)])}
        bound = end_to_end_bound(chain, loads=loads, network_bound=500,
                                 costs=DispatcherCosts.zero())
        system = make_system(node_ids=["n0", "n1"], network_latency=200)
        hp = Task("hp", deadline=2_000, arrival=Periodic(period=2_000),
                  node_id="n1")
        hp.code_eu("eu", wcet=100, attrs=EUAttributes(prio=500))
        system.register_periodic(hp, count=10)
        inst = system.activate(chain)
        system.run(until=50_000)
        assert inst.state is InstanceState.DONE
        assert inst.response_time <= bound

    def test_separate_tests_split_budgets(self):
        chain = self.chain(deadline=10_000)
        verdict = separate_tests(chain, loads={}, network_bound=400,
                                 costs=DispatcherCosts.zero())
        assert verdict["feasible"]
        stages = verdict["stages"]
        assert set(stages) == {"a", "b", "c"}
        # Budgets are proportional to WCETs and sum within the compute
        # budget.
        assert stages["b"]["budget"] > stages["c"]["budget"]
        total_budget = sum(s["budget"] for s in stages.values())
        assert total_budget <= 10_000 - verdict["network_share"]

    def test_separate_tests_reject_network_dominated_deadline(self):
        chain = self.chain(deadline=500)
        verdict = separate_tests(chain, loads={}, network_bound=600,
                                 costs=DispatcherCosts.zero())
        assert not verdict["feasible"]

    def test_separate_is_more_pessimistic_than_integrated(self):
        """Option 2's fixed split can reject what option 1 accepts —
        the paper's 'the way communications are integrated is free'
        trade-off made visible."""
        # With interference on n1, stage b needs 900 but its
        # proportional share of the split deadline is only 825: the
        # separate test refuses while the integrated bound
        # (500 + 900 + 400 + 400 = 2200 <= 2400) accepts.
        chain = self.chain(deadline=2_400)
        loads = {"n1": StageLoad("n1",
                                 [AnalysisTask("hp", 100, 2_000, 2_000)])}
        assert end_to_end_feasible(chain, loads, 400,
                                   DispatcherCosts.zero())
        verdict = separate_tests(chain, loads=loads, network_bound=400,
                                 costs=DispatcherCosts.zero())
        assert not verdict["feasible"]
        # The proportional split starves at least one loaded stage
        # (here c: bound 400 vs budget 375).
        assert any(not stage["feasible"]
                   for stage in verdict["stages"].values())

    def test_chain_without_deadline_rejected(self):
        chain = Task("no_deadline", node_id="n0")
        chain.code_eu("a", wcet=10)
        with pytest.raises(ValueError):
            end_to_end_feasible(chain, {}, 100)
        with pytest.raises(ValueError):
            separate_tests(chain, {}, 100)


class TestSystemMonitor:
    def test_healthy_system_report(self):
        system = make_system()
        task = Task("t", deadline=1_000, node_id="n0")
        task.code_eu("eu", wcet=100)
        system.activate(task)
        system.run()
        monitor = SystemMonitor(system)
        assert monitor.healthy()
        report = monitor.report()
        assert "HEALTHY" in report
        assert "n0: up" in report
        assert monitor.application_status()["completed_instances"] == 1

    def test_degraded_on_violation(self):
        system = make_system()
        task = Task("late", deadline=50, node_id="n0")
        task.code_eu("eu", wcet=200)
        system.activate(task)
        system.run()
        monitor = SystemMonitor(system)
        assert not monitor.healthy()
        assert monitor.violation_counts() == {"deadline_miss": 1}
        assert "DEGRADED" in monitor.report()

    def test_degraded_on_crash_and_link_down(self):
        system = make_system(node_ids=["a", "b"])
        monitor = SystemMonitor(system)
        assert monitor.healthy()
        system.network.link("a", "b").up = False
        assert not monitor.healthy()
        system.network.heal()
        system.nodes["b"].crash()
        assert not monitor.healthy()
        assert "CRASHED" in monitor.report()

    def test_network_counters(self):
        system = make_system(node_ids=["a", "b"])
        system.network.interfaces["a"].send("b", "x")
        system.run()
        monitor = SystemMonitor(system)
        assert monitor.network_status()["delivered"] == 1
