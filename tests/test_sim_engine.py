"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Tracer,
)

# The ``sim`` fixture comes from tests/conftest.py and parametrizes
# every test here over all event-set backends.


class TestEvent:
    def test_starts_pending(self, sim):
        evt = sim.event("e")
        assert not evt.triggered
        with pytest.raises(SimulationError):
            _ = evt.value

    def test_succeed_delivers_value(self, sim):
        evt = sim.event()
        evt.succeed(42)
        assert evt.triggered
        assert evt.ok
        assert evt.value == 42

    def test_succeed_twice_is_error(self, sim):
        evt = sim.event()
        evt.succeed()
        with pytest.raises(SimulationError):
            evt.succeed()

    def test_fail_raises_on_value_access(self, sim):
        evt = sim.event()
        evt.fail(ValueError("boom"))
        assert evt.triggered
        assert not evt.ok
        with pytest.raises(ValueError):
            _ = evt.value

    def test_fail_requires_exception(self, sim):
        evt = sim.event()
        with pytest.raises(TypeError):
            evt.fail("not an exception")

    def test_callbacks_fire_in_order(self, sim):
        evt = sim.event()
        calls = []
        evt.add_callback(lambda e: calls.append(1))
        evt.add_callback(lambda e: calls.append(2))
        evt.succeed()
        sim.run()
        assert calls == [1, 2]

    def test_late_callback_runs_immediately(self, sim):
        evt = sim.event()
        evt.succeed(7)
        sim.run()
        seen = []
        evt.add_callback(lambda e: seen.append(e.value))
        assert seen == [7]


class TestTimeoutAndTime:
    def test_time_advances_to_timeout(self, sim):
        fired = []
        t = sim.timeout(100, value="x")
        t.add_callback(lambda e: fired.append((sim.now, e.value)))
        sim.run()
        assert fired == [(100, "x")]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.timeout(-1)

    def test_same_instant_fifo_order(self, sim):
        order = []
        sim.call_in(50, lambda: order.append("a"))
        sim.call_in(50, lambda: order.append("b"))
        sim.call_in(10, lambda: order.append("first"))
        sim.run()
        assert order == ["first", "a", "b"]

    def test_run_until_stops_clock(self, sim):
        sim.call_in(1000, lambda: None)
        sim.run(until=300)
        assert sim.now == 300
        assert sim.pending == 1

    def test_run_until_in_past_rejected(self, sim):
        sim.call_in(10, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.run(until=5)

    def test_call_at_absolute(self, sim):
        seen = []
        sim.call_at(77, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [77]

    def test_call_at_past_rejected(self, sim):
        sim.call_in(100, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.call_at(50, lambda: None)

    def test_clock_is_integer_microseconds(self, sim):
        sim.call_in(3, lambda: None)
        sim.run()
        assert isinstance(sim.now, int)


class TestProcess:
    def test_process_runs_and_returns(self, sim):
        def worker():
            yield sim.timeout(10)
            yield sim.timeout(5)
            return "done"

        proc = sim.process(worker())
        sim.run()
        assert proc.triggered
        assert proc.value == "done"
        assert sim.now == 15

    def test_process_receives_event_values(self, sim):
        def worker():
            got = yield sim.timeout(1, value="hello")
            return got

        proc = sim.process(worker())
        sim.run()
        assert proc.value == "hello"

    def test_processes_wait_for_each_other(self, sim):
        def child():
            yield sim.timeout(30)
            return 99

        def parent():
            result = yield sim.process(child())
            return result + 1

        proc = sim.process(parent())
        sim.run()
        assert proc.value == 100

    def test_process_exception_propagates_to_waiter(self, sim):
        def child():
            yield sim.timeout(1)
            raise RuntimeError("child died")

        def parent():
            try:
                yield sim.process(child())
            except RuntimeError as err:
                return f"caught: {err}"

        proc = sim.process(parent())
        sim.run()
        assert proc.value == "caught: child died"

    def test_interrupt_is_raised_at_yield_point(self, sim):
        def sleeper():
            try:
                yield sim.timeout(1000)
            except Interrupt as intr:
                return ("interrupted", intr.cause, sim.now)
            return "slept"

        proc = sim.process(sleeper())
        sim.call_in(10, lambda: proc.interrupt("wakeup"))
        sim.run()
        assert proc.value == ("interrupted", "wakeup", 10)

    def test_interrupted_process_stops_waiting_on_old_event(self, sim):
        resumed = []

        def sleeper():
            try:
                yield sim.timeout(50)
            except Interrupt:
                pass
            yield sim.timeout(100)
            resumed.append(sim.now)

        proc = sim.process(sleeper())
        sim.call_in(10, lambda: proc.interrupt())
        sim.run()
        # 10 (interrupt) + 100 — the old timeout at t=50 must not resume it.
        assert resumed == [110]
        assert proc.alive is False

    def test_kill_terminates_quietly(self, sim):
        steps = []

        def worker():
            steps.append("a")
            yield sim.timeout(100)
            steps.append("b")

        proc = sim.process(worker())
        sim.call_in(5, proc.kill)
        sim.run()
        assert steps == ["a"]
        assert proc.triggered
        assert proc.ok
        assert proc.value is None

    def test_kill_dead_process_is_noop(self, sim):
        def worker():
            yield sim.timeout(1)

        proc = sim.process(worker())
        sim.run()
        proc.kill()  # must not raise
        assert not proc.alive

    def test_interrupt_dead_process_is_error(self, sim):
        def worker():
            yield sim.timeout(1)

        proc = sim.process(worker())
        sim.run()
        with pytest.raises(SimulationError):
            proc.interrupt()

    def test_yielding_non_event_fails_process(self, sim):
        def worker():
            yield 42

        proc = sim.process(worker())
        sim.run()
        assert proc.triggered
        assert not proc.ok

    def test_creator_continues_before_new_process_starts(self, sim):
        order = []

        def child():
            order.append("child")
            yield sim.timeout(0)

        def parent():
            sim.process(child())
            order.append("parent-after-spawn")
            yield sim.timeout(0)

        sim.process(parent())
        sim.run()
        assert order[0] == "parent-after-spawn"


class TestCombinators:
    def test_all_of_collects_values(self, sim):
        combo = sim.all_of([sim.timeout(10, "a"), sim.timeout(5, "b")])
        sim.run()
        assert combo.value == ["a", "b"]
        assert sim.now == 10

    def test_all_of_empty_succeeds_immediately(self, sim):
        combo = sim.all_of([])
        assert combo.triggered

    def test_all_of_fails_fast(self, sim):
        bad = sim.event()
        combo = sim.all_of([sim.timeout(100), bad])
        sim.call_in(5, lambda: bad.fail(RuntimeError("x")))
        sim.run()
        assert combo.triggered
        assert not combo.ok

    def test_any_of_first_wins(self, sim):
        combo = sim.any_of([sim.timeout(10, "slow"), sim.timeout(2, "fast")])
        sim.run()
        assert combo.value == (1, "fast")
        assert sim.now >= 2

    def test_any_of_requires_events(self, sim):
        with pytest.raises(ValueError):
            sim.any_of([])


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def build_and_run():
            sim = Simulator()
            tracer = Tracer(lambda: sim.now)
            import random
            rng = random.Random(1234)

            def worker(name):
                for _ in range(5):
                    yield sim.timeout(rng.randrange(1, 100))
                    tracer.record("test", "step", who=name)

            for n in range(4):
                sim.process(worker(f"w{n}"))
            sim.run()
            return [(r.time, r.details["who"]) for r in tracer]

        assert build_and_run() == build_and_run()


class TestTracer:
    def test_records_and_filters(self, sim):
        tracer = Tracer(lambda: sim.now)
        tracer.record("a", "x", k=1)
        tracer.record("a", "y", k=2)
        tracer.record("b", "x", k=1)
        assert len(tracer) == 3
        assert len(tracer.select(category="a")) == 2
        assert len(tracer.select(event="x")) == 2
        assert len(tracer.select(category="a", event="x", k=1)) == 1
        assert tracer.count(category="b") == 1

    def test_requires_clock(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            tracer.record("a", "b")

    def test_subscribe_sees_new_records(self, sim):
        tracer = Tracer(lambda: sim.now)
        seen = []
        tracer.subscribe(lambda rec: seen.append(rec.event))
        tracer.record("c", "evt")
        assert seen == ["evt"]

    def test_dump_renders(self, sim):
        tracer = Tracer(lambda: sim.now)
        tracer.record("cat", "ev", value=3)
        text = tracer.dump()
        assert "cat/ev" in text
        assert "value=3" in text
