"""Edge-case coverage for the simulation engine and kernel corners."""

import pytest

from repro.kernel import Compute, KThread, Node, Sleep, ThreadState
from repro.sim import (
    Interrupt,
    Process,
    ProcessKilled,
    SimulationError,
    Simulator,
)

# The ``sim`` fixture comes from tests/conftest.py and parametrizes
# every test here over all event-set backends.


class TestEngineEdges:
    def test_any_of_fails_if_first_child_fails(self, sim):
        bad = sim.event()
        combo = sim.any_of([sim.timeout(100), bad])
        sim.call_in(5, lambda: bad.fail(RuntimeError("boom")))
        sim.run()
        assert combo.triggered and not combo.ok

    def test_all_of_duplicate_events(self, sim):
        shared = sim.timeout(10, value="v")
        combo = sim.all_of([shared, shared])
        sim.run()
        assert combo.value == ["v", "v"]

    def test_process_catches_kill_and_still_terminates(self, sim):
        observed = []

        def stubborn():
            try:
                yield sim.timeout(1_000)
            except ProcessKilled:
                observed.append("killed")
                raise  # propagating ends the process successfully

        proc = sim.process(stubborn())
        sim.call_in(10, proc.kill)
        sim.run()
        assert observed == ["killed"]
        assert proc.ok and proc.value is None

    def test_interrupt_carries_cause_object(self, sim):
        payload = {"reason": "mode switch"}

        def sleeper():
            try:
                yield sim.timeout(500)
            except Interrupt as intr:
                return intr.cause

        proc = sim.process(sleeper())
        sim.call_in(5, lambda: proc.interrupt(payload))
        sim.run()
        assert proc.value is payload

    def test_run_until_event(self, sim):
        target = sim.timeout(300, value="hit")
        sim.call_in(1_000, lambda: None)  # later noise
        result = sim.run(until_event=target)
        assert result == "hit"
        assert sim.now == 300

    def test_step_returns_false_when_idle(self, sim):
        assert sim.step() is False
        sim.call_in(1, lambda: None)
        assert sim.step() is True

    def test_pending_counts_scheduled_triggers(self, sim):
        sim.call_in(5, lambda: None)
        sim.call_in(10, lambda: None)
        assert sim.pending == 2

    def test_timeout_zero_fires_same_instant_in_order(self, sim):
        order = []
        sim.call_in(0, lambda: order.append("a"))
        sim.call_in(0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b"]
        assert sim.now == 0


class TestKernelEdges:
    def test_thread_double_start_rejected(self, sim):
        node = Node(sim, "n0")

        def body():
            yield Compute(1)

        thread = node.spawn(body())
        with pytest.raises(SimulationError):
            thread.start()

    def test_suspend_dead_thread_rejected(self, sim):
        node = Node(sim, "n0")

        def body():
            yield Compute(1)

        thread = node.spawn(body())
        sim.run()
        with pytest.raises(SimulationError):
            thread.suspend()

    def test_resume_unsuspended_is_noop(self, sim):
        node = Node(sim, "n0")

        def body():
            yield Compute(10)

        thread = node.spawn(body())
        thread.resume()  # no-op, must not corrupt CPU state
        sim.run()
        assert thread.state is ThreadState.FINISHED

    def test_suspend_resume_midflight_preserves_progress(self, sim):
        node = Node(sim, "n0")

        def body():
            yield Compute(100)
            return sim.now

        thread = node.spawn(body())
        sim.call_in(30, thread.suspend)
        sim.call_in(200, thread.resume)
        sim.run()
        # 30 done + suspended 170 + 70 remaining = 270.
        assert thread.finished.value == 270
        assert thread.cpu_time == 100

    def test_sleep_zero(self, sim):
        node = Node(sim, "n0")

        def body():
            yield Sleep(0)
            return sim.now

        thread = node.spawn(body())
        sim.run()
        assert thread.finished.value == 0

    def test_thread_body_typeerror_propagates_to_finished(self, sim):
        node = Node(sim, "n0")

        def body():
            yield "not a request"

        thread = node.spawn(body())
        with pytest.raises(SimulationError):
            sim.run()


class TestScheduledEventTriggering:
    """A scheduled event (Timeout, call_at trigger) fires on its own;
    triggering it manually used to double-schedule it, making the
    second dispatch crash on the consumed callback list."""

    def test_succeed_on_pending_timeout_rejected(self, sim):
        timer = sim.timeout(100)
        with pytest.raises(SimulationError, match="scheduled"):
            timer.succeed("manual")

    def test_fail_on_pending_timeout_rejected(self, sim):
        timer = sim.timeout(100)
        with pytest.raises(SimulationError, match="scheduled"):
            timer.fail(RuntimeError("manual"))

    def test_succeed_after_timeout_fired_rejected(self, sim):
        timer = sim.timeout(10, value="v")
        sim.run()
        assert timer.triggered and timer.value == "v"
        with pytest.raises(SimulationError, match="already triggered"):
            timer.succeed("again")

    def test_call_at_trigger_rejected(self, sim):
        trigger = sim.call_at(50, lambda: None)
        with pytest.raises(SimulationError, match="scheduled"):
            trigger.succeed()

    def test_rejected_trigger_does_not_break_the_timeout(self, sim):
        # The original bug: succeed() on a pending Timeout enqueued a
        # second dispatch whose callback list was already consumed,
        # raising TypeError deep inside the engine.  The reject must
        # leave the timeout fully functional.
        timer = sim.timeout(100, value=7)
        with pytest.raises(SimulationError):
            timer.succeed(99)
        fired = []
        timer.add_callback(lambda evt: fired.append(evt.value))
        sim.run()
        assert fired == [7]
        assert sim.now == 100

    def test_process_waiting_on_timeout_unaffected(self, sim):
        log = []

        def proc():
            got = yield sim.timeout(30, value="tick")
            log.append((sim.now, got))

        sim.process(proc())
        timer = sim.timeout(5)
        with pytest.raises(SimulationError):
            timer.fail(RuntimeError("nope"))
        sim.run()
        assert log == [(30, "tick")]
