"""The full §4→§5 closed loop, with *measured* constants.

The paper's methodology is: measure the middleware's costs on the
deployed system (worst-case scenario benchmarks), feed those measured
numbers into the feasibility test, then trust the test's answers.
These tests run that loop without ever looking at the configured
constants — analysis inputs come from calibration output only.
"""

import pytest

from repro.analysis import calibrate_dispatcher_costs
from repro.core import DispatcherCosts
from repro.core.monitoring import ViolationKind
from repro.feasibility import hades_edf_test
from repro.scheduling import EDFScheduler, SRPProtocol
from repro.system import HadesSystem
from repro.workloads import random_spuri_taskset, spuri_to_heug

#: The "true" deployment constants — the calibration step is the only
#: place allowed to observe their effect.
DEPLOYED = DispatcherCosts(c_local=11, c_remote=17, c_start_act=6,
                           c_end_act=4, c_start_inv=8, c_end_inv=5)


def measured_costs() -> DispatcherCosts:
    measured = calibrate_dispatcher_costs(DEPLOYED)
    return DispatcherCosts(
        c_local=measured["c_local"],
        c_remote=measured["c_remote"],
        c_start_act=measured["c_start_act"],
        c_end_act=measured["c_end_act"],
        c_start_inv=measured["c_start_inv"],
        c_end_inv=measured["c_end_inv"],
    )


class TestClosedLoop:
    def test_measured_constants_equal_deployed(self):
        assert measured_costs() == DEPLOYED

    def test_analysis_with_measured_costs_is_safe(self):
        costs = measured_costs()
        checked = 0
        for seed in (5, 17, 29):
            tasks = random_spuri_taskset(4, 0.6, seed=seed,
                                         period_range=(5_000, 40_000))
            system = HadesSystem(node_ids=["cpu"], costs=DEPLOYED,
                                 background_activities=True)
            report = hades_edf_test(
                tasks, costs=costs,
                kernel_activities=system.node_kernel_activities("cpu"),
                w_sched=2)
            if not report.feasible:
                continue
            checked += 1
            system.attach_scheduler(EDFScheduler(scope="cpu", w_sched=2))
            resources = {}
            heugs = [spuri_to_heug(task, "cpu", resources)
                     for task in tasks]
            system.attach_scheduler(SRPProtocol(heugs, scope="cpu",
                                                w_sched=0))
            for heug in heugs:
                system.dispatcher.register_max_rate(heug, count=3)
            system.run(until=4 * max(t.pseudo_period for t in tasks))
            assert system.monitor.count(
                ViolationKind.DEADLINE_MISS) == 0, seed
        assert checked >= 2

    def test_under_measured_costs_reject_overload_honestly(self):
        """A set infeasible under the measured constants really does
        miss when executed — the analysis is not just conservative
        noise; near the boundary its verdicts track reality."""
        costs = measured_costs()
        # Hand-built boundary set: fits without overheads, breaks with.
        from repro.feasibility import SpuriTask
        tasks = [
            SpuriTask("a", c_before=0, cs=190, c_after=0, deadline=400,
                      pseudo_period=400, resource="R"),
            SpuriTask("b", c_before=195, cs=0, c_after=0, deadline=400,
                      pseudo_period=400),
        ]
        naive = hades_edf_test(tasks, costs=DispatcherCosts.zero())
        precise = hades_edf_test(tasks, costs=costs)
        assert naive.feasible
        assert not precise.feasible
        # Execute with the deployed constants at worst case: misses.
        system = HadesSystem(node_ids=["cpu"], costs=DEPLOYED)
        system.attach_scheduler(EDFScheduler(scope="cpu", w_sched=0))
        resources = {}
        heugs = [spuri_to_heug(task, "cpu", resources) for task in tasks]
        system.attach_scheduler(SRPProtocol(heugs, scope="cpu", w_sched=0))
        for heug in heugs:
            system.dispatcher.register_max_rate(heug, count=5)
        system.run(until=3_000)
        assert system.monitor.count(ViolationKind.DEADLINE_MISS) >= 1
