"""Swappable pending-event set backends for the simulation engine.

The :class:`~repro.sim.engine.Simulator` owns virtual time; *where the
pending events live* is a backend decision.  Every backend implements
the same small contract (the :class:`EventSet` interface) so the engine
core can be swapped without touching the event/process layer, and so a
differential harness (``tests/test_backend_conformance.py``) can replay
one operation sequence through two backends and assert identical
behaviour.

The contract
------------

* ``push(time, event)`` — schedule ``event`` at absolute ``time``.
  Pushes arrive with monotonically non-decreasing *current* time: a
  push never targets an instant earlier than the last popped time.
  **Every backend enforces this** and raises :class:`ValueError` on a
  violation — the contract is universal, not a calendar-queue
  implementation detail, so a buggy caller fails identically under
  either backend instead of passing on the reference and exploding on
  the ring.
* ``pop()`` — remove and return ``(time, event)`` for the entry with
  the smallest ``(time, insertion order)``.  Raises :class:`IndexError`
  when empty.  Two entries at the same instant pop in push order —
  this is the engine's determinism guarantee.
* ``peek_time()`` — the ``time`` the next ``pop()`` would return, or
  ``None`` when empty.  Used by the bounded ``run(until=...)`` loop to
  re-check the bound after every pop without committing to it.
* ``cancel-tombstone`` — cancellation is *not* an event-set operation.
  :meth:`repro.sim.engine.Event.cancel` flags the event; the entry
  stays in the set and still pops in order (the engine skips it at
  dispatch).  Backends must therefore never reorder or drop cancelled
  entries: a tombstone transits the set exactly like a live event.
* ``__len__`` — number of pushed-but-not-popped entries, tombstones
  included.

Backends
--------

:class:`HeapEventSet`
    The reference implementation: one binary heap of
    ``(time, sequence, event)`` triples (``heapq``).  Simple, O(log n)
    per operation, and the semantics yardstick every other backend is
    differential-tested against.

:class:`CalendarEventSet`
    A calendar queue tuned for the E17 timeout/cancel-heavy shapes,
    where delays are short and many events share an instant.

    **Bucket policy:** a fixed ring of ``WHEEL_SPAN`` (64) reusable
    list slots, one per microsecond of a sliding window anchored at
    the last popped instant.  A push within the window appends to
    ``ring[time % WHEEL_SPAN]`` — no allocation, no heap operation, no
    sequence counter, since a plain list preserves push order and the
    window guarantees each slot maps to at most one pending instant.
    Pushes at or beyond the window's far edge go to an *overflow*
    ``(time, sequence, event)`` heap, exactly the reference layout.
    Popping walks the ring one instant at a time (empty slots cost a
    single truthiness test), merging in overflow entries when their
    instant comes up; because the window only ever slides forward, all
    overflow entries for an instant predate all ring entries for it,
    so draining overflow first preserves global push order.  Slots are
    cleared (never freed) when the walk moves past them, keeping the
    steady state allocation-free.

Selection
---------

``Simulator(backend=...)`` / ``HadesSystem(backend=...)`` pick a
backend by name.  An explicit argument wins over the
``REPRO_SIM_BACKEND`` environment variable, which wins over the
default (``"heapq"``).  :func:`resolve_backend` implements that
precedence and rejects unknown names with the list of valid ones.
"""

from __future__ import annotations

import os
from heapq import heappop, heappush
from typing import Any, List, Optional, Tuple

#: Environment variable overriding the default backend (but not an
#: explicit ``backend=`` argument).
BACKEND_ENV = "REPRO_SIM_BACKEND"

DEFAULT_BACKEND = "heapq"

#: Width (in microseconds) of the calendar ring.  Power of two so the
#: slot index is a mask.  64 covers the short-delay traffic the wheel
#: is for (engine timeouts, kernel quanta, network hops) while keeping
#: the worst-case empty-slot walk between sparse instants bounded and
#: cheap; longer delays take the overflow heap, which is simply the
#: reference layout.
WHEEL_SPAN = 64
_WHEEL_MASK = WHEEL_SPAN - 1


class EventSet:
    """Interface for pending-event set backends (see module docstring).

    Concrete backends subclass this for documentation/isinstance
    purposes only — the engine never dispatches through the base class
    on its hot paths.
    """

    #: Registry name of the backend, e.g. ``"heapq"``.
    name: str = ""

    __slots__ = ()

    def push(self, time: int, event: Any) -> None:
        """Schedule ``event`` at absolute ``time`` (FIFO within an instant)."""
        raise NotImplementedError

    def pop(self) -> Tuple[int, Any]:
        """Remove and return the earliest ``(time, event)``; IndexError if empty."""
        raise NotImplementedError

    def peek_time(self) -> Optional[int]:
        """Time of the next entry to pop, or ``None`` when empty."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __bool__(self) -> bool:
        return len(self) > 0


class HeapEventSet(EventSet):
    """Reference backend: a ``heapq`` of ``(time, sequence, event)``.

    The sequence number breaks same-instant ties in push order.  The
    engine's heapq-flavoured ``Simulator`` shares this storage but
    inlines push/pop in its hot loops (see the hot-path notes in
    :mod:`repro.sim.engine`); this class is the plain-spoken contract
    those inlined loops must match.
    """

    name = "heapq"

    __slots__ = ("_heap", "_sequence", "_last_popped")

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, Any]] = []
        self._sequence = 0
        self._last_popped = 0

    def push(self, time: int, event: Any) -> None:
        if time < self._last_popped:
            # The monotone-push contract, enforced here exactly as the
            # calendar backend enforces it at its window anchor — a
            # violating caller must fail on the reference too.
            raise ValueError(
                f"push at {time} is before the last popped instant "
                f"{self._last_popped}")
        self._sequence += 1
        heappush(self._heap, (time, self._sequence, event))

    def pop(self) -> Tuple[int, Any]:
        time, _seq, event = heappop(self._heap)
        self._last_popped = time
        return time, event

    def peek_time(self) -> Optional[int]:
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)


class CalendarEventSet(EventSet):
    """Calendar-queue backend: a sliding ring of slots + overflow heap.

    See the module docstring for the bucket policy.  Internal state:

    * ``_scan_time`` — the window anchor: the instant the pop walk
      resumes from.  Equals the last popped time (pops are globally
      monotone), so every future push lands at or after it.
    * ``_slot_idx`` — consumption cursor into the slot at
      ``_scan_time``.  Non-zero means that slot is being drained; a
      same-instant push appends to the live slot and is picked up
      before the cursor retires, preserving FIFO across events
      scheduled *during* the instant (immediate events, process
      starts).  A consumed slot is cleared for reuse only when the
      walk moves past its instant.

    The window-slide argument for correctness: the anchor never moves
    backwards, so for a fixed target time "in the window" is a latched
    property — once one push at time *t* lands in the ring, every
    later push at *t* does too, and conversely every overflow entry at
    *t* predates every ring entry at *t*.  Draining overflow first at
    each instant therefore reproduces exact push order.  Two pending
    instants can never share a ring slot: a colliding time would have
    to be a full ``WHEEL_SPAN`` away from an instant that is still at
    or ahead of the anchor, which the window test sends to overflow.
    """

    name = "calendar"

    __slots__ = ("_ring", "_overflow", "_sequence", "_size",
                 "_wheel_count", "_scan_time", "_slot_idx")

    def __init__(self) -> None:
        self._ring: List[List[Any]] = [[] for _ in range(WHEEL_SPAN)]
        self._overflow: List[Tuple[int, int, Any]] = []
        self._sequence = 0
        self._size = 0
        self._wheel_count = 0
        self._scan_time = 0
        self._slot_idx = 0

    def push(self, time: int, event: Any) -> None:
        delta = time - self._scan_time
        if delta < WHEEL_SPAN:
            if delta < 0:
                raise ValueError(
                    f"push at {time} is before the last popped instant "
                    f"{self._scan_time}")
            self._ring[time & _WHEEL_MASK].append(event)
            self._wheel_count += 1
        else:
            self._sequence += 1
            heappush(self._overflow, (time, self._sequence, event))
        self._size += 1

    def pop(self) -> Tuple[int, Any]:
        if not self._size:
            raise IndexError("pop from an empty event set")
        overflow = self._overflow
        ring = self._ring
        if not self._wheel_count:
            # Pure-overflow stretch; the walk would find nothing.  The
            # consumed slot at the old anchor must be cleared before
            # the anchor jumps, or a later instant mapping to the same
            # slot would replay its entries.
            if self._slot_idx:
                ring[self._scan_time & _WHEEL_MASK].clear()
                self._slot_idx = 0
            time, _seq, event = heappop(overflow)
            self._scan_time = time
            self._size -= 1
            return time, event
        t = self._scan_time
        idx = self._slot_idx
        o_head = overflow[0][0] if overflow else None
        while True:
            if o_head is not None and o_head <= t:
                # Overflow entries for this instant predate every ring
                # entry for it (window-slide argument) — drain first.
                # This can only fire with idx == 0: a push at the
                # half-drained anchor instant is inside the window.
                time, _seq, event = heappop(overflow)
                self._scan_time = time
                self._slot_idx = 0
                self._size -= 1
                return time, event
            slot = ring[t & _WHEEL_MASK]
            if idx < len(slot):
                event = slot[idx]
                self._scan_time = t
                self._slot_idx = idx + 1
                self._size -= 1
                self._wheel_count -= 1
                return t, event
            if idx:
                slot.clear()
                idx = 0
            t += 1

    def peek_time(self) -> Optional[int]:
        if not self._size:
            return None
        overflow = self._overflow
        if not self._wheel_count:
            return overflow[0][0]
        ring = self._ring
        t = self._scan_time
        idx = self._slot_idx
        o_head = overflow[0][0] if overflow else None
        while True:
            if o_head is not None and o_head <= t:
                return o_head
            slot = ring[t & _WHEEL_MASK]
            if idx < len(slot):
                return t
            # Pure walk: empty/consumed slots are left for pop() to
            # clear — peeking must not disturb the pending state.
            idx = 0
            t += 1

    def __len__(self) -> int:
        return self._size


#: name -> EventSet class; the engine's Simulator subclasses mirror
#: this registry (see ``repro.sim.engine._SIMULATOR_CLASSES``).
EVENT_SET_BACKENDS = {
    HeapEventSet.name: HeapEventSet,
    CalendarEventSet.name: CalendarEventSet,
}


def available_backends() -> Tuple[str, ...]:
    """Names of the registered event-set backends, sorted."""
    return tuple(sorted(EVENT_SET_BACKENDS))


def resolve_backend(backend: Optional[str] = None) -> str:
    """Resolve a backend name: explicit arg > ``REPRO_SIM_BACKEND`` > default.

    Raises :class:`ValueError` for unknown names, naming the valid set
    — a mistyped backend must fail loudly, not silently fall back.
    The environment value is stripped first: an *unset, empty or
    whitespace-only* variable means "no override" (fall back to the
    default), while any other value must name a real backend — so
    ``REPRO_SIM_BACKEND=" calendar "`` works and
    ``REPRO_SIM_BACKEND="calender"`` raises instead of silently
    running the default.
    """
    origin = "backend argument"
    if backend is None:
        env = os.environ.get(BACKEND_ENV)
        env = env.strip() if env is not None else ""
        if env:
            backend, origin = env, f"{BACKEND_ENV} environment variable"
        else:
            return DEFAULT_BACKEND
    if backend not in EVENT_SET_BACKENDS:
        raise ValueError(
            f"unknown simulation backend {backend!r} (from {origin}); "
            f"available backends: {', '.join(available_backends())}")
    return backend


def make_event_set(backend: Optional[str] = None) -> EventSet:
    """Instantiate the event set for ``backend`` (resolved per precedence)."""
    return EVENT_SET_BACKENDS[resolve_backend(backend)]()
