"""Sharded conservative parallel simulation over T_network lookahead.

The paper's ``T_network`` layer guarantees every message a bounded
delivery delay — which is exactly the *lookahead* a conservative
(Chandy–Misra-style) parallel discrete-event simulation needs.  This
module partitions a :class:`~repro.system.HadesSystem`'s nodes into
shards, runs each shard's event loop in its own worker process, and
synchronizes the shards on the network's link bounds:

Lookahead
    ``L = min(base_latency)`` over every link crossing a shard
    boundary.  A shard at local time *t* cannot affect a peer before
    ``t + L`` — the link layer adds at least the base latency (plus
    size cost, jitter and fault delays, all non-negative) before any
    delivery, and FIFO push-back only moves deliveries later.

Barrier windows (the null-message protocol)
    The coordinator repeatedly computes ``T = min(earliest pending
    instant across all shards)`` — each shard's earliest-output-time
    report doubles as a null message, so an idle shard cannot deadlock
    its peers — and releases every shard to advance through the window
    ``[T, T + L - 1]``.  No event inside the window can send a message
    that *arrives* inside it (arrivals land at ``>= T + L``), so the
    windows of different shards are causally independent and may run
    concurrently.  After each window the coordinator routes the
    send-side delivery decisions (message, delivery instant, planned
    outcome — decided deterministically on the sender's replica,
    including jitter, fault and FIFO effects) to the destination
    shards, which replay them through their local replica link's
    normal delivery path.

Replicas and ownership
    Every worker rebuilds the *whole* system from the
    :meth:`~repro.system.HadesSystem.scripted` builder, then runs only
    its shard: foreign nodes are inert stand-ins (no task activations,
    no sends, no background activity, no fault events), so one
    shard-agnostic builder drives both the serial and the sharded run.
    Determinism carries over because every per-entity RNG is seeded by
    name (links) or pre-drawn in plan order (fault plans) and message
    ids are allocated per sender — allocation never depends on
    cross-shard interleaving.

Trace merging
    Each worker streams its JSONL trace with every line prefixed by
    the **global node rank** of the node the record is attributable to
    (``"<rank>\\t<json>"`` — rank = position of the node in the
    system's construction-order node list, resolved from the record's
    ``node``/``eu``/``task``/``link`` details).  The coordinator runs
    a head-based stable merge: it repeatedly pops the stream whose
    *head* record has the smallest ``(time, node_rank, shard_rank)``
    key and copies that line — tag stripped — verbatim.  Because only
    stream heads are compared, intra-shard emission order is never
    violated, and same-instant records from *different* shards come
    out in node-rank order.  Construction-time records (time 0) are
    emitted cell-major by scenario builders, i.e. grouped by ascending
    node rank within each shard, so the merge reproduces the serial
    engine's order even for **non-contiguous** cell partitions — the
    serial engine dispatches same-instant events in global push order,
    which at time 0 is exactly node-construction order.  Runtime
    records never collide across shards under the residue-class
    discipline the 24-seed harness in
    ``tests/test_sharded_determinism.py`` pins; scenarios that do
    collide keep a valid total order, just not necessarily the serial
    engine's intra-instant interleaving.  Untagged files (older
    exports) merge on the legacy ``(time, file_order, sequence)`` key.

Surface: ``HadesSystem.run(shards=N)`` or ``run(partition=[[...],
...])``; :func:`auto_partition` is the default min-cut-ish partitioner
(greedy agglomeration over the task co-location graph).  Workers are
forked, so closures in builders need no pickling; results come back as
:class:`~repro.obs.metrics.RunReport` dicts over the same wire format
the parallel fault campaigns use (:mod:`repro.faults.wire`).
"""

from __future__ import annotations

import heapq
import json
import os
import tempfile
import time as _wall
from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, Iterator, List, Optional, Sequence,
                    Tuple)

from repro.faults.wire import decode_report, encode_report
from repro.network.link import DeliveryOutcome
from repro.sim.engine import SimulationError
from repro.sim.trace import TraceRecord, _record_to_json

__all__ = ["ShardRunResult", "auto_partition", "colocation_weights",
           "make_rank_resolver", "merge_shard_traces", "run_sharded"]

#: Co-location weight added per task whose EUs span a node pair: far
#: above any traffic weight, so the greedy partitioner merges those
#: nodes first (a task split across shards cannot run at all).
COLOCATION_WEIGHT = 1_000_000


@dataclass
class ShardRunResult:
    """Outcome of one sharded run."""

    #: The node groups actually used, in shard-rank order.
    partition: List[List[str]]
    #: Conservative lookahead (min cross-shard base latency), or
    #: ``None`` for the degenerate single-shard run.
    lookahead: Optional[int]
    #: Synchronization windows executed.
    windows: int
    #: Cross-shard deliveries shipped between workers.
    messages: int
    #: Per-shard metric reports, in shard-rank order.
    reports: List[Any] = field(default_factory=list)
    #: Path of the merged JSONL trace (``None`` for single-shard runs,
    #: whose trace stays in the system tracer as usual).
    trace_path: Optional[str] = None
    #: Final simulated time (mirrors the serial run's ``sim.now``).
    sim_time: int = 0
    #: Path of the per-barrier-window coordinator introspection sidecar
    #: (``coordinator.jsonl``; ``None`` for single-shard runs).  One
    #: JSON line per window: start/bound instants, shipped messages,
    #: and per-shard stall/null/outbox figures.  Wall-clock stalls are
    #: inherently nondeterministic, which is why this lives in a
    #: sidecar and never in the merged trace.
    coordinator_path: Optional[str] = None
    #: Per-shard coordinator totals, in shard-rank order: dicts with
    #: ``windows``, ``stall_us`` (wall-clock µs the coordinator spent
    #: blocked on this shard's barrier replies), ``null_replies``
    #: (windows where the shard shipped nothing — pure null messages),
    #: ``messages_out`` and ``bytes_out`` (cross-shard traffic volume).
    shard_stats: List[Dict[str, int]] = field(default_factory=list)

    def counter_totals(self) -> Dict[str, int]:
        """Every metric counter summed across shards.

        Each simulated occurrence is counted on exactly one shard
        (sends and drops on the sender's, deliveries on the
        receiver's), so domain totals (``network.*``, ``dispatcher.*``,
        ...) equal a serial run's counters.  The ``engine.*`` event-loop
        counters are per-process bookkeeping — injected-delivery
        callbacks and replica scheduling inflate them — and are not
        comparable to a serial run.
        """
        totals: Dict[str, int] = {}
        for report in self.reports:
            for name, value in report.counters.items():
                totals[name] = totals.get(name, 0) + value
        return totals


# --------------------------------------------------------------------------
# Partitioning
# --------------------------------------------------------------------------

def colocation_weights(dispatcher) -> Dict[Tuple[str, str], int]:
    """Node-pair weights from the dispatcher's registered tasks.

    Every task contributes :data:`COLOCATION_WEIGHT` per pair of
    distinct nodes it touches (its nodes *must* share a shard) plus one
    unit per remote precedence edge (traffic proportionality between
    already-feasible cuts).
    """
    weights: Dict[Tuple[str, str], int] = {}

    def bump(a: str, b: str, amount: int) -> None:
        pair = (a, b) if a < b else (b, a)
        weights[pair] = weights.get(pair, 0) + amount

    for name in sorted(dispatcher.known_tasks):
        task = dispatcher.known_tasks[name]
        nodes = sorted({task.node_of(eu) for eu in task.eus} - {None})
        for i in range(len(nodes)):
            for j in range(i + 1, len(nodes)):
                bump(nodes[i], nodes[j], COLOCATION_WEIGHT)
        for edge in task.edges:
            src_node = task.node_of(edge.src)
            dst_node = task.node_of(edge.dst)
            if (src_node is not None and dst_node is not None
                    and src_node != dst_node):
                bump(src_node, dst_node, 1)
    return weights


def auto_partition(node_ids: Sequence[str], shards: int,
                   weights: Optional[Dict[Tuple[str, str], int]] = None,
                   ) -> List[List[str]]:
    """Partition ``node_ids`` into at most ``shards`` balanced groups.

    Min-cut-ish greedy agglomeration: heaviest edges first, two groups
    merge while the merged size stays within the balanced cap
    ``ceil(n / shards)``; the resulting groups are then packed onto
    shards by descending size (least-loaded shard first).  Fully
    deterministic — ties break on node order — and with no weights it
    degenerates to contiguous balanced chunks.
    """
    node_ids = list(node_ids)
    n = len(node_ids)
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    shards = min(shards, n)
    if shards <= 1:
        return [node_ids] if node_ids else []
    if not weights:
        base, extra = divmod(n, shards)
        out, i = [], 0
        for k in range(shards):
            step = base + (1 if k < extra else 0)
            out.append(node_ids[i:i + step])
            i += step
        return [group for group in out if group]

    index = {nid: i for i, nid in enumerate(node_ids)}
    cap = -(-n // shards)  # ceil: the balanced group-size cap
    parent = list(range(n))
    size = [1] * n

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    edges = sorted(
        ((-w, min(index[a], index[b]), max(index[a], index[b]))
         for (a, b), w in weights.items()
         if a in index and b in index and a != b))
    for neg_w, ia, ib in edges:
        ra, rb = find(ia), find(ib)
        if ra == rb:
            continue
        if size[ra] + size[rb] <= cap:
            # Deterministic union: lower root wins.
            lo, hi = (ra, rb) if ra < rb else (rb, ra)
            parent[hi] = lo
            size[lo] += size[hi]
        elif -neg_w >= COLOCATION_WEIGHT:
            raise ValueError(
                f"cannot partition into {shards} shards: co-located "
                f"nodes {node_ids[ia]!r} and {node_ids[ib]!r} would "
                f"overflow the balanced shard size {cap}")

    groups: Dict[int, List[int]] = {}
    for i in range(n):
        groups.setdefault(find(i), []).append(i)
    # Pack groups (largest first, ties by first node) onto the least
    # loaded shard (ties by shard index).
    ordered = sorted(groups.values(), key=lambda g: (-len(g), g[0]))
    bins: List[List[int]] = [[] for _ in range(shards)]
    for group in ordered:
        target = min(range(shards), key=lambda k: (len(bins[k]), k))
        bins[target].extend(group)
    out = [sorted(b) for b in bins if b]
    out.sort(key=lambda g: g[0])
    return [[node_ids[i] for i in group] for group in out]


# --------------------------------------------------------------------------
# Node-rank attribution & trace merging
# --------------------------------------------------------------------------

def make_rank_resolver(system) -> Callable[[TraceRecord], int]:
    """Map a trace record to the global rank of the node it concerns.

    The rank is the node's position in the system's construction-order
    node list — identical in every shard replica (replicas build the
    *whole* node set), so tags computed independently per worker agree
    globally.  Resolution order: an explicit ``node`` detail, the link
    endpoint this shard owns (``send``/``drop`` → source, deliveries →
    destination), then the task named by ``eu`` / ``activation_id`` /
    ``task`` (tasks never span shards, so the task's minimum node rank
    stays inside the right shard), finally the shard's lowest owned
    rank (process-global records like mode switches).
    """
    rank: Dict[str, int] = {nid: i for i, nid in enumerate(system.nodes)}
    if system.owned_nodes:
        fallback = min(rank[nid] for nid in system.owned_nodes)
    else:
        fallback = 0
    known = system.dispatcher.known_tasks
    task_cache: Dict[str, int] = {}

    def task_rank(name: str) -> int:
        cached = task_cache.get(name)
        if cached is not None:
            return cached
        task = known.get(name)
        resolved = fallback
        if task is not None:
            ranks = [rank[node] for node in
                     {task.node_of(eu) for eu in task.eus}
                     if node in rank]
            if ranks:
                resolved = min(ranks)
        task_cache[name] = resolved
        return resolved

    def resolve(entry: TraceRecord) -> int:
        details = entry.details
        node = details.get("node")
        if node is not None:
            found = rank.get(node)
            if found is not None:
                return found
        link = details.get("link")
        if link is not None:
            src, _, dst = str(link).partition("->")
            found = rank.get(src if entry.event in ("send", "drop")
                             else dst)
            if found is not None:
                return found
        eu = details.get("eu")
        if eu:
            return task_rank(str(eu).partition("#")[0])
        activation_id = details.get("activation_id")
        if activation_id:
            return task_rank(str(activation_id).partition("#")[0])
        task = details.get("task")
        if task:
            return task_rank(str(task))
        return fallback

    return resolve


class _TaggedTraceStream:
    """Streams rank-tagged JSONL (``"<rank>\\t<json>"``) to a file.

    The worker-side counterpart of :func:`merge_shard_traces`: the tag
    lets the coordinator order same-instant records from different
    shards by global node rank instead of by shard rank, which is what
    makes non-contiguous partitions byte-identical to serial runs.
    """

    def __init__(self, system, path: str):
        self._resolve = make_rank_resolver(system)
        self._handle = open(path, "w")
        self._tracer = system.tracer
        self._tracer.subscribe(self._on_record)

    def _on_record(self, entry: TraceRecord) -> None:
        self._handle.write(f"{self._resolve(entry)}\t"
                           f"{_record_to_json(entry)}\n")

    def close(self) -> None:
        self._tracer.unsubscribe(self._on_record)
        self._handle.close()


_TIME_PREFIX = '{"time": '


def _parse_time(payload: str) -> int:
    plen = len(_TIME_PREFIX)
    if payload.startswith(_TIME_PREFIX):
        try:
            return int(payload[plen:payload.index(",", plen)])
        except ValueError:
            pass
    return json.loads(payload)["time"]


def _tagged_entries(handle, fallback_rank: int,
                    ) -> Iterator[Tuple[int, int, str]]:
    """Yield ``(time, node_rank, json_line)`` from one shard stream.

    Tagged lines (``"<rank>\\t<json>"``) carry their own node rank;
    untagged lines — legacy per-shard exports — fall back to the
    stream's file order, reproducing the historical ``(time,
    shard_rank, sequence)`` merge key.
    """
    for line in handle:
        tag, sep, payload = line.partition("\t")
        if sep and tag.isdigit():
            yield (_parse_time(payload), int(tag), payload)
        else:
            yield (_parse_time(line), fallback_rank, line)


def merge_shard_traces(paths: Sequence[str], out_path: str) -> int:
    """Merge per-shard JSONL traces into one global, untagged trace.

    Head-based stable merge: a heap tracks each stream's *head* record
    under the key ``(time, node_rank, shard_rank)``; the minimum head
    is copied (tag stripped) and its stream advanced.  Comparing only
    heads preserves each shard's emission order unconditionally, while
    same-instant records from different shards interleave by global
    node rank — the serial engine's order for construction-time
    records even under non-contiguous partitions (see the module
    docstring).  Output lines are byte-identical to a serial
    ``Tracer.to_jsonl`` export.  Returns the number of records written.
    """
    written = 0
    with ExitStack() as stack:
        out = stack.enter_context(open(out_path, "w"))
        streams = [_tagged_entries(stack.enter_context(open(path)), rank)
                   for rank, path in enumerate(paths)]
        heap: List[Tuple[int, int, int, str]] = []
        for rank, stream in enumerate(streams):
            head = next(stream, None)
            if head is not None:
                time, node_rank, line = head
                heap.append((time, node_rank, rank, line))
        heapq.heapify(heap)
        while heap:
            _time, _node_rank, rank, line = heapq.heappop(heap)
            out.write(line)
            written += 1
            head = next(streams[rank], None)
            if head is not None:
                time, node_rank, line = head
                heapq.heappush(heap, (time, node_rank, rank, line))
    return written


# --------------------------------------------------------------------------
# Worker side
# --------------------------------------------------------------------------

def _worker_main(conn, rank: int, owned: List[str], builder,
                 kwargs: Dict[str, Any], trace_path: str) -> None:
    """One shard's process: build the replica, serve advance commands.

    Protocol (coordinator -> worker / worker -> coordinator):

    * ``("ready", next_time)`` after construction.
    * ``("advance", bound, injections)`` -> run to ``bound`` after
      scheduling the injected cross-shard deliveries; reply
      ``("at", next_time, outbox)`` with the drained send-side
      decisions for other shards.
    * ``("finish",)`` -> close the trace stream, reply
      ``("done", report_dict, now)`` and exit.

    Any exception is reported as ``("error", text)``.
    """
    from repro.system import HadesSystem

    try:
        system = HadesSystem(owned_nodes=owned, **kwargs)
        stream = _TaggedTraceStream(system, trace_path)
        builder(system)
        conn.send(("ready", system.sim.next_event_time()))
        while True:
            command = conn.recv()
            op = command[0]
            if op == "advance":
                _op, bound, injections = command
                for message, deliver_at, outcome_value in injections:
                    system.network.inject_delivery(
                        message, deliver_at,
                        DeliveryOutcome(outcome_value))
                system.sim.run(until=bound)
                outbox = system.network.drain_shard_outbox()
                conn.send(("at", system.sim.next_event_time(), outbox))
            elif op == "finish":
                stream.close()
                report = system.run_report(shard=rank)
                conn.send(("done", encode_report(report),
                           system.sim.now))
                return
            else:
                raise RuntimeError(f"unknown shard command {op!r}")
    except BaseException as exc:  # report, never hang the coordinator
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
    finally:
        conn.close()


# --------------------------------------------------------------------------
# Coordinator
# --------------------------------------------------------------------------

def _validate_partition(partition: Sequence[Sequence[str]],
                        node_ids: Sequence[str]) -> List[List[str]]:
    plan = [list(group) for group in partition]
    flat = [nid for group in plan for nid in group]
    if any(not group for group in plan):
        raise ValueError("partition groups must be non-empty")
    if len(flat) != len(set(flat)):
        raise ValueError("partition groups overlap")
    if set(flat) != set(node_ids):
        missing = sorted(set(node_ids) - set(flat))
        extra = sorted(set(flat) - set(node_ids))
        raise ValueError(
            f"partition must cover the node set exactly "
            f"(missing {missing}, unknown {extra})")
    return plan


def run_sharded(system, until: Optional[int] = None,
                shards: Optional[int] = None,
                partition: Optional[Sequence[Sequence[str]]] = None,
                trace_dir: Optional[str] = None) -> ShardRunResult:
    """Execute ``system``'s scripted scenario across shard processes.

    Called through :meth:`HadesSystem.run(shards=N) <repro.system.
    HadesSystem.run>`.  On return the merged trace has been loaded
    back into ``system.tracer`` (and ``system.sim.now`` advanced), so
    post-hoc analyses — span reconstruction, forensics, JSONL export —
    see the same record stream a serial run would have left.  The
    system itself is *finished*: its own event loop never ran, so it
    cannot be resumed with another ``run()``.

    With ``until=None`` the run ends when every shard is quiescent;
    the final clock then sits at the last barrier bound, which may
    exceed the serial run's last-event instant by up to
    ``lookahead - 1`` (the trace itself is unaffected).
    """
    if system._builder is None:
        raise SimulationError(
            "run(shards=N) needs a replayable scenario; build the "
            "system with HadesSystem.scripted(builder, ...)")
    if system.owned_nodes is not None:
        raise SimulationError("cannot shard a shard replica")
    if system.sim.now != 0 or len(system.tracer):
        raise SimulationError(
            "sharded runs must start from a fresh system (time 0, "
            "empty trace)")
    node_ids = list(system.nodes)
    if partition is not None:
        plan = _validate_partition(partition, node_ids)
        if shards is not None and shards != len(plan):
            raise ValueError(
                f"shards={shards} contradicts the explicit partition "
                f"of {len(plan)} groups")
    else:
        if shards is None:
            raise ValueError("pass shards=N or an explicit partition=")
        plan = auto_partition(node_ids, shards,
                              colocation_weights(system.dispatcher))

    if len(plan) <= 1:
        # Degenerate case: nothing to parallelize.
        system.sim.run(until=until)
        return ShardRunResult(partition=plan, lookahead=None, windows=0,
                              messages=0,
                              reports=[system.run_report(shard=0)],
                              sim_time=system.sim.now)

    owner = {nid: rank for rank, group in enumerate(plan)
             for nid in group}
    lookahead = system.network.min_cross_base_latency(owner)
    if lookahead is None or lookahead < 1:
        raise SimulationError(
            f"conservative sharding needs every cross-shard link to "
            f"have base_latency >= 1 (derived lookahead: {lookahead})")

    import multiprocessing

    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError as exc:  # pragma: no cover - non-POSIX platforms
        raise SimulationError(
            "sharded execution requires the fork start method "
            "(POSIX); run serially on this platform") from exc

    kwargs = dict(system._scripted_kwargs or {})
    # Overwrite everything RunOptions owns with the parent's resolved
    # bundle: pins the backend so workers cannot re-resolve differently
    # (e.g. if the environment changed after construction) and
    # normalizes deprecated option spellings before replay.
    kwargs.pop("categories", None)
    kwargs.update(system.options.to_kwargs())

    if trace_dir is None:
        trace_dir = tempfile.mkdtemp(prefix="repro-shards-")
    else:
        os.makedirs(trace_dir, exist_ok=True)
    shard_paths = [os.path.join(trace_dir, f"shard{rank}.jsonl")
                   for rank in range(len(plan))]
    coordinator_path = os.path.join(trace_dir, "coordinator.jsonl")
    coordinator_log = open(coordinator_path, "w")

    conns, procs = [], []
    try:
        for rank, group in enumerate(plan):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=_worker_main,
                args=(child_conn, rank, group, system._builder, kwargs,
                      shard_paths[rank]),
                daemon=True)
            proc.start()
            child_conn.close()
            conns.append(parent_conn)
            procs.append(proc)

        def receive(rank: int):
            try:
                reply = conns[rank].recv()
            except EOFError:
                raise SimulationError(
                    f"shard {rank} (nodes {plan[rank]}) died "
                    f"unexpectedly") from None
            if reply[0] == "error":
                raise SimulationError(f"shard {rank} failed: {reply[1]}")
            return reply

        worker_next: List[Optional[int]] = []
        for rank in range(len(plan)):
            _tag, next_time = receive(rank)
            worker_next.append(next_time)

        inbox: List[List[Tuple[Any, int, str]]] = [[] for _ in plan]
        windows = 0
        shipped = 0
        # Per-barrier-window introspection: where does sharded
        # wall-clock go?  ``stall_us`` is the wall time the coordinator
        # spent blocked on each shard's barrier reply (replies are
        # collected in rank order, so each shard is charged only the
        # wait *beyond* the previous reply); a ``null`` reply shipped
        # no cross-shard messages — the shard's earliest-output report
        # acted as a pure null message.
        shard_stats = [{"windows": 0, "stall_us": 0, "null_replies": 0,
                        "messages_out": 0, "bytes_out": 0} for _ in plan]
        while True:
            earliest: Optional[int] = None
            for rank in range(len(plan)):
                candidate = worker_next[rank]
                for _message, deliver_at, _outcome in inbox[rank]:
                    if candidate is None or deliver_at < candidate:
                        candidate = deliver_at
                if candidate is not None and (earliest is None
                                              or candidate < earliest):
                    earliest = candidate
            if earliest is None or (until is not None
                                    and earliest > until):
                break
            bound = earliest + lookahead - 1
            if until is not None and bound > until:
                bound = until
            for rank in range(len(plan)):
                conns[rank].send(("advance", bound, inbox[rank]))
                inbox[rank] = []
            window_rows = []
            window_shipped = 0
            last_reply = _wall.perf_counter()
            for rank in range(len(plan)):
                _tag, next_time, outbox = receive(rank)
                now_wall = _wall.perf_counter()
                stall_us = int((now_wall - last_reply) * 1_000_000)
                last_reply = now_wall
                worker_next[rank] = next_time
                bytes_out = 0
                for message, deliver_at, outcome_value in outbox:
                    inbox[owner[message.dst]].append(
                        (message, deliver_at, outcome_value))
                    shipped += 1
                    window_shipped += 1
                    bytes_out += getattr(message, "size", 0) or 0
                stats = shard_stats[rank]
                stats["windows"] += 1
                stats["stall_us"] += stall_us
                stats["messages_out"] += len(outbox)
                stats["bytes_out"] += bytes_out
                if not outbox:
                    stats["null_replies"] += 1
                window_rows.append({"rank": rank, "next": next_time,
                                    "out": len(outbox),
                                    "bytes": bytes_out,
                                    "stall_us": stall_us})
            coordinator_log.write(json.dumps(
                {"window": windows, "start": earliest, "bound": bound,
                 "shipped": window_shipped, "shards": window_rows}) + "\n")
            windows += 1

        if until is not None:
            # Mirror the serial run's final clock advance to the bound
            # (events beyond it — including not-yet-due cross-shard
            # deliveries — stay pending, exactly as in a serial run).
            for rank in range(len(plan)):
                conns[rank].send(("advance", until, inbox[rank]))
                inbox[rank] = []
            for rank in range(len(plan)):
                _tag, next_time, _outbox = receive(rank)
                worker_next[rank] = next_time

        reports = []
        final_time = 0 if until is None else until
        for rank in range(len(plan)):
            conns[rank].send(("finish",))
            _tag, report_dict, worker_now = receive(rank)
            reports.append(decode_report(report_dict))
            if until is None and worker_now > final_time:
                final_time = worker_now
        for proc in procs:
            proc.join(timeout=30)
    finally:
        coordinator_log.close()
        for conn in conns:
            conn.close()
        for proc in procs:
            if proc.is_alive():
                proc.terminate()

    merged_path = os.path.join(trace_dir, "merged.jsonl")
    record_count = merge_shard_traces(shard_paths, merged_path)

    # Load the merged stream back into the parent tracer so post-hoc
    # analyses see the global record sequence.
    tracer = system.tracer
    with open(merged_path) as handle:
        for line in handle:
            raw = json.loads(line)
            tracer.record(raw["category"], raw["event"],
                          time=raw["time"], **raw["details"])
    system.sim.now = final_time

    result = ShardRunResult(partition=plan, lookahead=lookahead,
                            windows=windows, messages=shipped,
                            reports=reports, trace_path=merged_path,
                            sim_time=final_time,
                            coordinator_path=coordinator_path,
                            shard_stats=shard_stats)
    assert record_count == len(tracer) or tracer.maxlen is not None
    return result
