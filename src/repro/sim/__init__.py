"""Deterministic discrete-event simulation engine.

This package is the foundation every other HADES subsystem runs on.  It
replaces the paper's physical testbed (ChorusR3 kernel on Pentium
workstations connected by ATM) with a deterministic event-driven virtual
time base, which is what makes the paper's predictability and
cost-integration arguments reproducible bit-for-bit.

Simulated time is an integer number of microseconds.  Determinism is a
hard requirement: given identical inputs (including random seeds), two
runs produce identical traces.  Ties between events scheduled for the
same instant are broken by insertion order.

The pending-event set is swappable (:mod:`repro.sim.event_set`):
``Simulator(backend="heapq")`` is the reference binary-heap core,
``backend="calendar"`` a calendar-queue core tuned for timeout/cancel
heavy workloads.  Both are proven observably identical by the
differential harness in ``tests/test_backend_conformance.py``.
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    CalendarSimulator,
    Event,
    Interrupt,
    Process,
    ProcessKilled,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.sim.event_set import (
    BACKEND_ENV,
    CalendarEventSet,
    EventSet,
    HeapEventSet,
    available_backends,
    make_event_set,
    resolve_backend,
)
from repro.sim.trace import TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "BACKEND_ENV",
    "CalendarEventSet",
    "CalendarSimulator",
    "Event",
    "EventSet",
    "HeapEventSet",
    "Interrupt",
    "Process",
    "ProcessKilled",
    "SimulationError",
    "Simulator",
    "Timeout",
    "TraceRecord",
    "Tracer",
    "available_backends",
    "make_event_set",
    "resolve_backend",
]
