"""Deterministic discrete-event simulation engine.

This package is the foundation every other HADES subsystem runs on.  It
replaces the paper's physical testbed (ChorusR3 kernel on Pentium
workstations connected by ATM) with a deterministic event-driven virtual
time base, which is what makes the paper's predictability and
cost-integration arguments reproducible bit-for-bit.

Simulated time is an integer number of microseconds.  Determinism is a
hard requirement: given identical inputs (including random seeds), two
runs produce identical traces.  Ties between events scheduled for the
same instant are broken by insertion order.
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    ProcessKilled,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.sim.trace import TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Process",
    "ProcessKilled",
    "SimulationError",
    "Simulator",
    "Timeout",
    "TraceRecord",
    "Tracer",
]
