"""Core discrete-event simulation engine.

The engine follows the classic event/process duality:

* An :class:`Event` is a one-shot occurrence that callbacks can be
  attached to.  Events carry a value (or an exception) once triggered.
* A :class:`Process` wraps a Python generator.  The generator *yields*
  events; the process sleeps until the yielded event triggers, then
  resumes with the event's value (or with the event's exception raised
  inside the generator).  A process is itself an event that triggers
  when the generator returns, so processes can wait for each other.

The :class:`Simulator` owns virtual time (integer microseconds) and the
pending-event heap.  Two events scheduled for the same instant fire in
scheduling order, which keeps runs deterministic.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised for illegal engine operations (e.g. re-triggering an event)."""


class Interrupt(Exception):
    """Thrown inside a process when another process interrupts it.

    The interrupting party supplies ``cause``, an arbitrary payload the
    interrupted process can inspect (e.g. a preemption reason).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class ProcessKilled(Exception):
    """Thrown inside a process that is being forcibly terminated."""


# Sentinel distinguishing "not yet triggered" from "triggered with None".
_PENDING = object()


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*; it is later *succeeded* with a value or
    *failed* with an exception.  Callbacks attached before the trigger
    run at trigger time; callbacks attached afterwards run immediately.
    """

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self._value: Any = _PENDING
        self._exception: Optional[BaseException] = None
        self._callbacks: List[Callable[["Event"], None]] = []
        self._scheduled = False

    @property
    def triggered(self) -> bool:
        """Whether the event has already occurred (succeeded or failed)."""
        return self._value is not _PENDING

    @property
    def ok(self) -> bool:
        """Whether the event succeeded.  Only meaningful once triggered."""
        return self.triggered and self._exception is None

    @property
    def value(self) -> Any:
        """The delivered value (raises if failed or pending)."""
        if not self.triggered:
            raise SimulationError(f"event {self.name!r} has not been triggered")
        if self._exception is not None:
            raise self._exception
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, delivering ``value`` to waiters."""
        if self.triggered:
            raise SimulationError(f"event {self.name!r} already triggered")
        if self._scheduled:
            raise SimulationError(
                f"event {self.name!r} is already scheduled to fire; "
                f"it cannot be triggered manually")
        self._value = value
        self.sim._schedule_event(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception to raise in waiters."""
        if self.triggered:
            raise SimulationError(f"event {self.name!r} already triggered")
        if self._scheduled:
            raise SimulationError(
                f"event {self.name!r} is already scheduled to fire; "
                f"it cannot be triggered manually")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._value = None
        self._exception = exception
        self.sim._schedule_event(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event triggers.

        If the event already triggered *and was dispatched*, the callback
        runs immediately.
        """
        if self._callbacks is None:  # already dispatched
            callback(self)
        else:
            self._callbacks.append(callback)

    def _dispatch(self) -> None:
        if self._callbacks is None:  # already dispatched: idempotent
            return
        callbacks, self._callbacks = self._callbacks, None
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:
        state = "triggered" if self.triggered else "pending"
        return f"<{type(self).__name__} {self.name!r} {state}>"


class Timeout(Event):
    """An event that triggers automatically ``delay`` microseconds from now."""

    def __init__(self, sim: "Simulator", delay: int, value: Any = None,
                 name: str = ""):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim, name or f"timeout({delay})")
        self._scheduled_value = value
        sim._schedule_event(self, delay)

    def _dispatch(self) -> None:
        # The value becomes observable (and `triggered` true) only when
        # the timeout actually fires, not at construction.
        if self._value is _PENDING:
            self._value = self._scheduled_value
        super()._dispatch()


class AllOf(Event):
    """Triggers when every child event has triggered successfully.

    Its value is the list of child values in construction order.  Fails
    as soon as any child fails.
    """

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, "all_of")
        self._children = list(events)
        self._remaining = len(self._children)
        if self._remaining == 0:
            self.succeed([])
            return
        for child in self._children:
            child.add_callback(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self.triggered:
            return
        if not child.ok:
            self.fail(child._exception)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([c.value for c in self._children])


class AnyOf(Event):
    """Triggers when the first child event triggers.

    Its value is a ``(index, value)`` pair identifying which child fired
    first.  Fails if the first child to trigger fails.
    """

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, "any_of")
        self._children = list(events)
        if not self._children:
            raise ValueError("AnyOf requires at least one event")
        for index, child in enumerate(self._children):
            child.add_callback(lambda c, i=index: self._on_child(i, c))

    def _on_child(self, index: int, child: Event) -> None:
        if self.triggered:
            return
        if not child.ok:
            self.fail(child._exception)
        else:
            self.succeed((index, child._value))


ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A generator-driven simulated activity.

    The generator yields :class:`Event` instances and is resumed with
    each event's value.  The process itself triggers (as an event) when
    the generator returns; its value is the generator's return value.

    Processes can be interrupted (:meth:`interrupt`): an
    :class:`Interrupt` is raised at the current yield point.  They can
    also be killed (:meth:`kill`), which raises :class:`ProcessKilled`
    and, if the generator lets it escape, terminates the process with a
    *successful* ``None`` result so that killing is not an error.
    """

    def __init__(self, sim: "Simulator", generator: ProcessGenerator,
                 name: str = ""):
        super().__init__(sim, name or getattr(generator, "__name__", "process"))
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        self._alive = True
        # Start the process at the current instant, but asynchronously:
        # the creator continues first.
        start = Event(sim, f"start:{self.name}")
        start.add_callback(self._resume)
        start.succeed()

    @property
    def alive(self) -> bool:
        """Whether the generator has not yet finished."""
        return self._alive

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupt` inside the process at its yield point."""
        if not self._alive:
            raise SimulationError(f"cannot interrupt dead process {self.name!r}")
        self._throw_soon(Interrupt(cause))

    def kill(self) -> None:
        """Forcibly terminate the process.  Killing a dead process is a no-op."""
        if not self._alive:
            return
        self._throw_soon(ProcessKilled())

    def _throw_soon(self, exc: BaseException) -> None:
        # Deliver via an immediate event so the thrower keeps running and
        # delivery order stays deterministic.
        bomb = Event(self.sim, f"throw:{self.name}")
        self._detach_wait()
        bomb.add_callback(lambda _evt: self._resume_throw(exc))
        bomb.succeed()

    def _detach_wait(self) -> None:
        # The process stops caring about the event it was waiting on.
        target = self._waiting_on
        self._waiting_on = None
        if target is not None and target._callbacks is not None:
            try:
                target._callbacks.remove(self._resume)
            except ValueError:
                pass

    def _resume_throw(self, exc: BaseException) -> None:
        if not self._alive:
            return
        try:
            next_event = self._generator.throw(exc)
        except StopIteration as stop:
            self._finish_ok(stop.value)
        except ProcessKilled:
            self._finish_ok(None)
        except BaseException as error:
            self._finish_fail(error)
        else:
            self._wait_for(next_event)

    def _resume(self, event: Event) -> None:
        if not self._alive or (self._waiting_on is not None
                               and event is not self._waiting_on):
            return
        self._waiting_on = None
        try:
            if event._exception is not None:
                next_event = self._generator.throw(event._exception)
            else:
                next_event = self._generator.send(
                    None if event._value is _PENDING else event._value)
        except StopIteration as stop:
            self._finish_ok(stop.value)
        except ProcessKilled:
            self._finish_ok(None)
        except BaseException as error:
            self._finish_fail(error)
        else:
            self._wait_for(next_event)

    def _wait_for(self, event: Event) -> None:
        if not isinstance(event, Event):
            self._finish_fail(
                SimulationError(
                    f"process {self.name!r} yielded {event!r}, not an Event"))
            return
        self._waiting_on = event
        event.add_callback(self._resume)

    def _finish_ok(self, value: Any) -> None:
        self._alive = False
        self._generator = None
        if not self.triggered:
            self.succeed(value)

    def _finish_fail(self, error: BaseException) -> None:
        self._alive = False
        self._generator = None
        if not self.triggered:
            self.fail(error)
        else:
            raise error


class Simulator:
    """Owner of virtual time and the pending-event schedule.

    ``metrics`` (a :class:`repro.obs.MetricsRegistry`) enables engine
    instrumentation: events scheduled/fired counters and a heap-depth
    gauge.  Left at None the updates hit shared no-op metric objects.
    """

    def __init__(self, metrics=None):
        from repro.obs.metrics import NULL_METRICS

        self.now: int = 0
        self._heap: List[Tuple[int, int, Event]] = []
        self._sequence = 0
        self._uncaught: List[BaseException] = []
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self._m_scheduled = self.metrics.counter("engine.events_scheduled")
        self._m_fired = self.metrics.counter("engine.events_fired")
        self._m_heap_depth = self.metrics.gauge("engine.heap_depth")

    # -- event factories ------------------------------------------------

    def event(self, name: str = "") -> Event:
        """Create a fresh pending event."""
        return Event(self, name)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` microseconds from now."""
        return Timeout(self, int(delay), value)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Launch a generator as a simulated process."""
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """An event that fires when every given event has fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """An event that fires with the first given event."""
        return AnyOf(self, events)

    # -- scheduling -----------------------------------------------------

    def _schedule_event(self, event: Event, delay: int = 0) -> None:
        event._scheduled = True
        self._sequence += 1
        heapq.heappush(self._heap, (self.now + delay, self._sequence, event))
        self._m_scheduled.inc()
        self._m_heap_depth.set(len(self._heap))

    def call_at(self, time: int, callback: Callable[[], None]) -> Event:
        """Run ``callback`` at absolute simulated ``time`` (>= now)."""
        if time < self.now:
            raise SimulationError(
                f"call_at({time}) is in the past (now={self.now})")
        trigger = Timeout(self, time - self.now, name=f"call_at({time})")
        trigger.add_callback(lambda _evt: callback())
        return trigger

    def call_in(self, delay: int, callback: Callable[[], None]) -> Event:
        """Run ``callback`` after ``delay`` microseconds."""
        trigger = self.timeout(delay)
        trigger.add_callback(lambda _evt: callback())
        return trigger

    # -- execution ------------------------------------------------------

    @property
    def pending(self) -> int:
        """Number of scheduled (not yet dispatched) event triggers."""
        return len(self._heap)

    def step(self) -> bool:
        """Dispatch the next scheduled event.  Returns False when idle."""
        if not self._heap:
            return False
        time, _seq, event = heapq.heappop(self._heap)
        if time < self.now:
            raise SimulationError("event scheduled in the past")
        self.now = time
        self._m_fired.inc()
        event._dispatch()
        return True

    def run(self, until: Optional[int] = None,
            until_event: Optional[Event] = None) -> Any:
        """Run until the schedule drains, ``until`` is reached, or
        ``until_event`` triggers.

        Returns ``until_event``'s value if given and triggered.
        """
        if until is not None and until < self.now:
            raise SimulationError(f"run(until={until}) is in the past")
        while self._heap:
            if until_event is not None and until_event.triggered:
                return until_event.value
            next_time = self._heap[0][0]
            if until is not None and next_time > until:
                self.now = until
                return None
            self.step()
        if until_event is not None and until_event.triggered:
            return until_event.value
        if until is not None:
            self.now = until
        return None
