"""Core discrete-event simulation engine.

The engine follows the classic event/process duality:

* An :class:`Event` is a one-shot occurrence that callbacks can be
  attached to.  Events carry a value (or an exception) once triggered.
* A :class:`Process` wraps a Python generator.  The generator *yields*
  events; the process sleeps until the yielded event triggers, then
  resumes with the event's value (or with the event's exception raised
  inside the generator).  A process is itself an event that triggers
  when the generator returns, so processes can wait for each other.

The :class:`Simulator` owns virtual time (integer microseconds) and the
pending-event heap.  Two events scheduled for the same instant fire in
scheduling order, which keeps runs deterministic.

Hot-path design (E17, ``benchmarks/bench_engine_hotpath.py``): the
workload shape this engine serves is millions of tiny timed events with
frequent cancellation, so constant factors dominate wall-clock.  Three
mechanisms keep them down:

* **``__slots__`` everywhere** — :class:`Event`, :class:`Timeout` and
  :class:`Process` are slotted, halving per-event memory and speeding
  attribute access on the resume path.
* **Lazy tombstoning** — :meth:`Event.cancel` marks a scheduled entry
  dead in place; the heap skips tombstones at pop instead of removing
  and re-heapifying.  Cancellation is O(1), the skip is one flag test.
* **Deferred naming** — the default ``timeout(delay)`` display name is
  formatted on first access, not at construction, so the million-event
  case never pays string interpolation.

The pending set itself is a swappable backend (:mod:`repro.sim.event_set`):
``Simulator(backend="heapq")`` is the reference binary-heap core with
the hot loops below inlined over its storage; ``backend="calendar"``
selects :class:`CalendarSimulator`, whose loops drain exact-time
buckets instead.  Both flavours are differential-tested to be
observably indistinguishable (``tests/test_backend_conformance.py``).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from repro.sim.event_set import (
    WHEEL_SPAN as _WHEEL_SPAN,
    _WHEEL_MASK,
    CalendarEventSet,
    HeapEventSet,
    available_backends,
    resolve_backend,
)


class SimulationError(RuntimeError):
    """Raised for illegal engine operations (e.g. re-triggering an event)."""


class Interrupt(Exception):
    """Thrown inside a process when another process interrupts it.

    The interrupting party supplies ``cause``, an arbitrary payload the
    interrupted process can inspect (e.g. a preemption reason).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class ProcessKilled(Exception):
    """Thrown inside a process that is being forcibly terminated."""


# Sentinel distinguishing "not yet triggered" from "triggered with None".
_PENDING = object()


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*; it is later *succeeded* with a value or
    *failed* with an exception.  Callbacks attached before the trigger
    run at trigger time; callbacks attached afterwards run immediately.
    A pending event can instead be *cancelled*, after which it never
    triggers (see :meth:`cancel`).
    """

    __slots__ = ("sim", "_name", "_value", "_exception", "_callbacks",
                 "_scheduled", "_cancelled")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self._name = name
        self._value: Any = _PENDING
        self._exception: Optional[BaseException] = None
        self._callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._scheduled = False
        self._cancelled = False

    @property
    def name(self) -> str:
        """Display name used in errors and ``repr`` (may be lazy)."""
        return self._name

    @name.setter
    def name(self, value: str) -> None:
        self._name = value

    @property
    def triggered(self) -> bool:
        """Whether the event has already occurred (succeeded or failed)."""
        return self._value is not _PENDING

    @property
    def ok(self) -> bool:
        """Whether the event succeeded.  Only meaningful once triggered."""
        return self._value is not _PENDING and self._exception is None

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called on this event."""
        return self._cancelled

    @property
    def value(self) -> Any:
        """The delivered value (raises if failed or pending)."""
        if self._value is _PENDING:
            raise SimulationError(f"event {self.name!r} has not been triggered")
        if self._exception is not None:
            raise self._exception
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, delivering ``value`` to waiters."""
        if self._value is not _PENDING:
            raise SimulationError(f"event {self.name!r} already triggered")
        if self._scheduled:
            raise SimulationError(
                f"event {self.name!r} is already scheduled to fire; "
                f"it cannot be triggered manually")
        if self._cancelled:
            raise SimulationError(f"event {self.name!r} was cancelled")
        self._value = value
        self.sim._schedule_event(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception to raise in waiters."""
        if self._value is not _PENDING:
            raise SimulationError(f"event {self.name!r} already triggered")
        if self._scheduled:
            raise SimulationError(
                f"event {self.name!r} is already scheduled to fire; "
                f"it cannot be triggered manually")
        if self._cancelled:
            raise SimulationError(f"event {self.name!r} was cancelled")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._value = None
        self._exception = exception
        self.sim._schedule_event(self)
        return self

    def cancel(self) -> "Event":
        """Cancel the event: it will never trigger and runs no callbacks.

        A scheduled entry (e.g. a pending :class:`Timeout`) becomes a
        *tombstone* in the event heap — skipped when popped, never
        re-heapified — so cancellation is O(1) regardless of heap depth.
        Cancelling an already-triggered event is an error; cancelling
        twice is a no-op.  After cancellation, :meth:`succeed` and
        :meth:`fail` raise :class:`SimulationError`.
        """
        if self._value is not _PENDING:
            raise SimulationError(
                f"cannot cancel already-triggered event {self.name!r}")
        self._cancelled = True
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event triggers.

        If the event already triggered *and was dispatched*, the callback
        runs immediately.  Callbacks added to a cancelled event never run.
        """
        if self._callbacks is None:  # already dispatched
            callback(self)
        else:
            self._callbacks.append(callback)

    def _dispatch(self) -> None:
        callbacks = self._callbacks
        if callbacks is None:  # already dispatched: idempotent
            return
        self._callbacks = None
        # Fast-path the single-waiter case: one Process._resume waiter
        # dominates real workloads.
        if len(callbacks) == 1:
            callbacks[0](self)
        else:
            for callback in callbacks:
                callback(self)

    def __repr__(self) -> str:
        if self._cancelled:
            state = "cancelled"
        else:
            state = "triggered" if self._value is not _PENDING else "pending"
        return f"<{type(self).__name__} {self.name!r} {state}>"


class Timeout(Event):
    """An event that triggers automatically ``delay`` microseconds from now."""

    __slots__ = ("_scheduled_value", "_delay")

    def __init__(self, sim: "Simulator", delay: int, value: Any = None,
                 name: str = ""):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        # Inlined Event.__init__ plus scheduling: this constructor is
        # the hottest allocation site in the engine.
        self.sim = sim
        self._name = name
        self._value = _PENDING
        self._exception = None
        self._callbacks = []
        self._scheduled = False
        self._cancelled = False
        self._scheduled_value = value
        self._delay = delay
        sim._schedule_event(self, delay)

    @property
    def name(self) -> str:
        """Display name; the ``timeout(delay)`` default is formatted lazily."""
        return self._name or f"timeout({self._delay})"

    @name.setter
    def name(self, value: str) -> None:
        self._name = value

    def _dispatch(self) -> None:
        # The value becomes observable (and `triggered` true) only when
        # the timeout actually fires, not at construction.
        if self._value is _PENDING:
            self._value = self._scheduled_value
        callbacks = self._callbacks
        if callbacks is None:
            return
        self._callbacks = None
        if len(callbacks) == 1:
            callbacks[0](self)
        else:
            for callback in callbacks:
                callback(self)


class AllOf(Event):
    """Triggers when every child event has triggered successfully.

    Its value is the list of child values in construction order.  Fails
    as soon as any child fails.
    """

    __slots__ = ("_children", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, "all_of")
        self._children = list(events)
        self._remaining = len(self._children)
        if self._remaining == 0:
            self.succeed([])
            return
        for child in self._children:
            child.add_callback(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self.triggered:
            return
        if not child.ok:
            self.fail(child._exception)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([c.value for c in self._children])


class AnyOf(Event):
    """Triggers when the first child event triggers.

    Its value is a ``(index, value)`` pair identifying which child fired
    first.  Fails if the first child to trigger fails.
    """

    __slots__ = ("_children",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, "any_of")
        self._children = list(events)
        if not self._children:
            raise ValueError("AnyOf requires at least one event")
        for index, child in enumerate(self._children):
            child.add_callback(lambda c, i=index: self._on_child(i, c))

    def _on_child(self, index: int, child: Event) -> None:
        if self.triggered:
            return
        if not child.ok:
            self.fail(child._exception)
        else:
            self.succeed((index, child._value))


ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A generator-driven simulated activity.

    The generator yields :class:`Event` instances and is resumed with
    each event's value.  The process itself triggers (as an event) when
    the generator returns; its value is the generator's return value.

    Processes can be interrupted (:meth:`interrupt`): an
    :class:`Interrupt` is raised at the current yield point.  They can
    also be killed (:meth:`kill`), which raises :class:`ProcessKilled`
    and, if the generator lets it escape, terminates the process with a
    *successful* ``None`` result so that killing is not an error.
    """

    __slots__ = ("_generator", "_waiting_on", "_alive")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator,
                 name: str = ""):
        super().__init__(sim, name or getattr(generator, "__name__", "process"))
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        self._alive = True
        # Start the process at the current instant, but asynchronously:
        # the creator continues first.
        start = Event(sim, "start")
        start.add_callback(self._resume)
        start.succeed()

    @property
    def alive(self) -> bool:
        """Whether the generator has not yet finished."""
        return self._alive

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupt` inside the process at its yield point."""
        if not self._alive:
            raise SimulationError(f"cannot interrupt dead process {self.name!r}")
        self._throw_soon(Interrupt(cause))

    def kill(self) -> None:
        """Forcibly terminate the process.  Killing a dead process is a no-op."""
        if not self._alive:
            return
        self._throw_soon(ProcessKilled())

    def _throw_soon(self, exc: BaseException) -> None:
        # Deliver via an immediate event so the thrower keeps running and
        # delivery order stays deterministic.
        bomb = Event(self.sim, "throw")
        self._detach_wait()
        bomb.add_callback(lambda _evt: self._resume_throw(exc))
        bomb.succeed()

    def _detach_wait(self) -> None:
        # The process stops caring about the event it was waiting on.
        target = self._waiting_on
        self._waiting_on = None
        if target is not None and target._callbacks is not None:
            try:
                target._callbacks.remove(self._resume)
            except ValueError:
                pass

    def _resume_throw(self, exc: BaseException) -> None:
        if not self._alive:
            return
        try:
            next_event = self._generator.throw(exc)
        except StopIteration as stop:
            self._finish_ok(stop.value)
        except ProcessKilled:
            self._finish_ok(None)
        except BaseException as error:
            self._finish_fail(error)
        else:
            self._wait_for(next_event)

    def _resume(self, event: Event) -> None:
        waiting_on = self._waiting_on
        if not self._alive or (waiting_on is not None
                               and event is not waiting_on):
            return
        self._waiting_on = None
        try:
            if event._exception is not None:
                next_event = self._generator.throw(event._exception)
            else:
                value = event._value
                next_event = self._generator.send(
                    None if value is _PENDING else value)
        except StopIteration as stop:
            self._finish_ok(stop.value)
        except ProcessKilled:
            self._finish_ok(None)
        except BaseException as error:
            self._finish_fail(error)
        else:
            # Fast path: the yielded object is a plain Event (isinstance
            # is checked on the slow path only for the error message).
            # ``add_callback`` is inlined: pending events append, an
            # already-dispatched event resumes immediately.
            if isinstance(next_event, Event):
                self._waiting_on = next_event
                callbacks = next_event._callbacks
                if callbacks is not None:
                    callbacks.append(self._resume)
                else:
                    self._resume(next_event)
            else:
                self._wait_for(next_event)

    def _wait_for(self, event: Event) -> None:
        if not isinstance(event, Event):
            self._finish_fail(
                SimulationError(
                    f"process {self.name!r} yielded {event!r}, not an Event"))
            return
        self._waiting_on = event
        event.add_callback(self._resume)

    def _finish_ok(self, value: Any) -> None:
        self._alive = False
        self._generator = None
        if not self.triggered:
            self.succeed(value)

    def _finish_fail(self, error: BaseException) -> None:
        self._alive = False
        self._generator = None
        if not self.triggered:
            self.fail(error)
        else:
            raise error


class Simulator:
    """Owner of virtual time and the pending-event schedule.

    ``metrics`` (a :class:`repro.obs.MetricsRegistry`, ``True`` to
    create one, or ``None``/``False`` for the no-op default — see
    :func:`repro.obs.resolve_metrics`) enables engine instrumentation:
    events scheduled/fired/cancelled counters and a heap-depth gauge.
    With metrics disabled the hot path skips the updates entirely
    behind one cached boolean.

    ``backend`` names the pending-event set implementation: ``"heapq"``
    (this class, the reference) or ``"calendar"``
    (:class:`CalendarSimulator`).  An explicit argument wins over the
    ``REPRO_SIM_BACKEND`` environment variable, which wins over the
    heapq default; unknown names raise :class:`ValueError`.
    Constructing ``Simulator(backend="calendar")`` returns the
    subclass, so ``isinstance(sim, Simulator)`` holds for every
    backend.
    """

    #: Registry name of this flavour's event-set backend.
    backend_name = "heapq"

    def __new__(cls, metrics=None, backend=None):
        if cls is Simulator:
            cls = _SIMULATOR_CLASSES[resolve_backend(backend)]
        return object.__new__(cls)

    def __init__(self, metrics=None, backend=None):
        from repro.obs.metrics import resolve_metrics

        if backend is not None and resolve_backend(backend) != self.backend_name:
            raise ValueError(
                f"backend {backend!r} does not match "
                f"{type(self).__name__} (backend {self.backend_name!r}); "
                f"available backends: {', '.join(available_backends())}")
        self.backend = self.backend_name
        self.now: int = 0
        self._bind_event_storage()
        self._uncaught: List[BaseException] = []
        self.metrics = resolve_metrics(metrics)
        self._m_scheduled = self.metrics.counter("engine.events_scheduled")
        self._m_fired = self.metrics.counter("engine.events_fired")
        self._m_cancelled_skips = self.metrics.counter(
            "engine.cancelled_skips")
        self._m_heap_depth = self.metrics.gauge("engine.heap_depth")
        # Cached flag keeping the per-event metric updates off the hot
        # path when metrics are disabled (the default).
        self._instrumented = self.metrics.enabled

    def _bind_event_storage(self) -> None:
        # The engine's hot loops own the event set's storage directly
        # (``self._heap`` is the *same list* as ``self.events._heap``)
        # and keep their own tie-break counter, so pushing through
        # ``self.events`` must not be mixed with engine scheduling on a
        # live simulator.  ``self.events`` is the contract object the
        # conformance harness exercises standalone.
        self.events = HeapEventSet()
        self._heap: List[Tuple[int, int, Event]] = self.events._heap
        self._sequence = 0

    # -- event factories ------------------------------------------------

    def event(self, name: str = "") -> Event:
        """Create a fresh pending event."""
        return Event(self, name)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` microseconds from now."""
        return Timeout(self, int(delay), value)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Launch a generator as a simulated process."""
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """An event that fires when every given event has fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """An event that fires with the first given event."""
        return AnyOf(self, events)

    # -- scheduling -----------------------------------------------------

    def _schedule_event(self, event: Event, delay: int = 0) -> None:
        event._scheduled = True
        self._sequence += 1
        heapq.heappush(self._heap, (self.now + delay, self._sequence, event))
        if self._instrumented:
            self._m_scheduled.inc()
            self._m_heap_depth.set(len(self._heap))

    def call_at(self, time: int, callback: Callable[[], None]) -> Event:
        """Run ``callback`` at absolute simulated ``time`` (>= now)."""
        if time < self.now:
            raise SimulationError(
                f"call_at({time}) is in the past (now={self.now})")
        trigger = Timeout(self, time - self.now, name=f"call_at({time})")
        trigger.add_callback(lambda _evt: callback())
        return trigger

    def call_in(self, delay: int, callback: Callable[[], None]) -> Event:
        """Run ``callback`` after ``delay`` microseconds."""
        trigger = self.timeout(delay)
        trigger.add_callback(lambda _evt: callback())
        return trigger

    # -- execution ------------------------------------------------------

    @property
    def pending(self) -> int:
        """Number of scheduled (not yet dispatched) event triggers.

        Includes cancelled entries whose tombstones have not been
        popped yet — the heap is never compacted eagerly.
        """
        return len(self._heap)

    def next_event_time(self) -> Optional[int]:
        """Absolute time of the earliest pending entry, or ``None``.

        Tombstones count: a cancelled entry still advances virtual time
        when popped, so its instant is a faithful (conservative) lower
        bound on when this simulator next does *anything*.  This is the
        earliest-output-time ingredient the sharded coordinator
        (:mod:`repro.sim.sharded`) synchronizes on.
        """
        return self._heap[0][0] if self._heap else None

    def step(self) -> bool:
        """Dispatch the next scheduled event.  Returns False when idle.

        Tombstones (cancelled entries) are skipped: popping one advances
        virtual time to its instant — timestamps stay monotone exactly
        as if the entry had fired with no observable effect — but runs
        no callbacks.
        """
        heap = self._heap
        while heap:
            time, _seq, event = heapq.heappop(heap)
            if time < self.now:
                raise SimulationError("event scheduled in the past")
            self.now = time
            if event._cancelled:
                if self._instrumented:
                    self._m_cancelled_skips.inc()
                continue
            if self._instrumented:
                self._m_fired.inc()
            event._dispatch()
            return True
        return False

    def run(self, until: Optional[int] = None,
            until_event: Optional[Event] = None) -> Any:
        """Run until the schedule drains, ``until`` is reached, or
        ``until_event`` triggers.

        Returns ``until_event``'s value if given and triggered.
        """
        if until is not None and until < self.now:
            raise SimulationError(f"run(until={until}) is in the past")
        heap = self._heap
        heappop = heapq.heappop
        if until is None and until_event is None:
            # Tight drain loop: the common benchmark/experiment shape.
            if self._instrumented:
                while self._heap:
                    self.step()
            else:
                while heap:
                    time, _seq, event = heappop(heap)
                    if time < self.now:
                        raise SimulationError("event scheduled in the past")
                    self.now = time
                    if not event._cancelled:
                        event._dispatch()
            return None
        while heap:
            if until_event is not None and until_event.triggered:
                return until_event.value
            next_time = heap[0][0]
            if until is not None and next_time > until:
                self.now = until
                return None
            # One heap entry per iteration (not step(), which skips
            # tombstones until it dispatches something and could
            # overshoot ``until``): the bound is re-checked against the
            # new head after every tombstone pop.
            time, _seq, event = heappop(heap)
            if time < self.now:
                raise SimulationError("event scheduled in the past")
            self.now = time
            if event._cancelled:
                if self._instrumented:
                    self._m_cancelled_skips.inc()
                continue
            if self._instrumented:
                self._m_fired.inc()
            event._dispatch()
        if until_event is not None and until_event.triggered:
            return until_event.value
        if until is not None:
            self.now = until
        return None


# Bound C constructor for the calendar flavour's inlined timeout()
# fast path (Timeout defines __slots__ only, so object.__new__ is the
# whole allocation).
_new_timeout = object.__new__


class CalendarSimulator(Simulator):
    """Simulator flavour backed by the calendar-queue event set.

    Same observable semantics as the heapq reference — same-instant
    FIFO, tombstone pops advancing time, ``run(until=)`` bound
    re-checks — with the drain loop specialized for the ring layout:
    one slot walk per *instant* instead of one heap operation per
    event, ``self.now`` written once per instant, no per-event tuple
    allocation, and no sequence counter for in-window traffic.  See
    :class:`repro.sim.event_set.CalendarEventSet` for the bucket
    policy and ``tests/test_backend_conformance.py`` for the
    differential proof of equivalence.
    """

    backend_name = "calendar"

    def _bind_event_storage(self) -> None:
        # As in the base class, the hot loops below reach into the
        # event set's storage directly; ``self.events`` is the shared
        # contract object.
        self.events = CalendarEventSet()

    # -- scheduling -----------------------------------------------------

    def _schedule_event(self, event: Event, delay: int = 0) -> None:
        # Inlined CalendarEventSet.push, with two engine liberties the
        # standalone set cannot take: no past-push guard (delays are
        # non-negative, so ``time >= now``), and the window anchored on
        # ``self.now`` rather than ``_scan_time`` — the bulk drain
        # advances ``now`` per instant but settles ``_scan_time`` only
        # at the end, and anchoring on the stale value would send every
        # mid-drain push to overflow.  The layout invariants survive
        # because pending times never trail ``now``: a slot collision
        # would need two pending instants ``WHEEL_SPAN`` apart with the
        # later one in-window, putting the earlier behind ``now``; and
        # ``now`` is monotone, so per target instant "in-window" stays
        # a latched property (overflow entries predate ring entries).
        event._scheduled = True
        events = self.events
        time = self.now + delay
        if delay < _WHEEL_SPAN:
            events._ring[time & _WHEEL_MASK].append(event)
            events._wheel_count += 1
        else:
            events._sequence += 1
            heapq.heappush(events._overflow, (time, events._sequence, event))
        events._size += 1
        if self._instrumented:
            self._m_scheduled.inc()
            self._m_heap_depth.set(events._size)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` microseconds from now.

        Calendar fast path: builds the :class:`Timeout` without the
        ``__init__`` -> ``_schedule_event`` call chain — the field
        assignments mirror ``Timeout.__init__`` and the scheduling
        mirrors :meth:`_schedule_event`; keep all three in sync.
        """
        if delay.__class__ is not int:
            delay = int(delay)
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        event = _new_timeout(Timeout)
        event.sim = self
        event._name = ""
        event._value = _PENDING
        event._exception = None
        event._callbacks = []
        event._scheduled = True
        event._cancelled = False
        event._scheduled_value = value
        event._delay = delay
        events = self.events
        if delay < _WHEEL_SPAN:
            events._ring[(self.now + delay) & _WHEEL_MASK].append(event)
            events._wheel_count += 1
        else:
            events._sequence += 1
            heapq.heappush(events._overflow,
                           (self.now + delay, events._sequence, event))
        events._size += 1
        if self._instrumented:
            self._m_scheduled.inc()
            self._m_heap_depth.set(events._size)
        return event

    # -- execution ------------------------------------------------------

    @property
    def pending(self) -> int:
        """Number of scheduled (not yet dispatched) event triggers.

        Tombstones included, as in the reference backend.  Exact
        whenever the simulator is quiescent (between ``run``/``step``
        calls); the bulk drain loop settles the count once per instant,
        so a callback sampling ``pending`` mid-instant may see the
        slot's already-dispatched events still counted.
        """
        return self.events._size

    def next_event_time(self) -> Optional[int]:
        """Absolute time of the earliest pending entry, or ``None``.

        Same contract as the reference backend; the ring walk starts at
        the settled window anchor, which ``run``/``_advance_to`` leave
        consistent between calls.
        """
        return self.events.peek_time()

    def step(self) -> bool:
        """Dispatch the next scheduled event.  Returns False when idle.

        Tombstone semantics match the reference backend: a cancelled
        entry advances virtual time to its instant but runs nothing.
        """
        events = self.events
        while events._size:
            time, event = events.pop()
            if time < self.now:
                raise SimulationError("event scheduled in the past")
            self.now = time
            if event._cancelled:
                if self._instrumented:
                    self._m_cancelled_skips.inc()
                continue
            if self._instrumented:
                self._m_fired.inc()
            event._dispatch()
            return True
        return False

    def run(self, until: Optional[int] = None,
            until_event: Optional[Event] = None) -> Any:
        """Run until the schedule drains, ``until`` is reached, or
        ``until_event`` triggers.

        Returns ``until_event``'s value if given and triggered.
        """
        if until is not None and until < self.now:
            raise SimulationError(f"run(until={until}) is in the past")
        events = self.events
        if until is None and until_event is None:
            if self._instrumented:
                while self.step():
                    pass
                return None
            if not events._size:
                return None
            # Tight drain loop, one ring walk per instant.  The inner
            # loop is the C list iterator, which picks up appends *at*
            # the instant being drained (immediate events, process
            # starts) in push order; ``len(slot)`` after the loop is
            # therefore the full consumed count.  Interrupted mid-slot
            # (a dispatch raising), the persisted state simply replays
            # the instant: already dispatched events are no-ops and
            # the counters settle once the slot finally retires.
            ring = events._ring
            overflow = events._overflow
            heappop = heapq.heappop
            pending_marker = _PENDING
            timeout_cls = Timeout
            t = events._scan_time
            idx = events._slot_idx
            try:
                while events._size:
                    if events._wheel_count:
                        if idx == 0 and overflow and overflow[0][0] <= t:
                            # Overflow entries due at this instant
                            # predate every ring entry for it — drain
                            # them first.  ``t`` may rewind to the
                            # popped time; the instants in between hold
                            # only cleared slots, so re-walking is safe.
                            time, _seq, event = heappop(overflow)
                            events._size -= 1
                            if time < self.now:
                                raise SimulationError(
                                    "event scheduled in the past")
                            self.now = t = time
                            if not event._cancelled:
                                event._dispatch()
                            continue
                        slot = ring[t & _WHEEL_MASK]
                        if idx:
                            # Finish a slot left half-drained by step()
                            # / run(until=): indexed, so entries before
                            # the cursor are not replayed, and counted
                            # per entry so the cursor persisted by the
                            # ``finally`` is always consistent.
                            if idx < len(slot):
                                if t < self.now:
                                    raise SimulationError(
                                        "event scheduled in the past")
                                self.now = t
                                while idx < len(slot):
                                    event = slot[idx]
                                    idx += 1
                                    events._size -= 1
                                    events._wheel_count -= 1
                                    if not event._cancelled:
                                        event._dispatch()
                            slot.clear()
                            idx = 0
                        elif slot:
                            if t < self.now:
                                raise SimulationError(
                                    "event scheduled in the past")
                            self.now = t
                            for event in slot:
                                if event._cancelled:
                                    continue
                                if type(event) is timeout_cls:
                                    # Monomorphic Timeout._dispatch,
                                    # inlined (the dominant event type
                                    # by far — keep in sync with the
                                    # method).
                                    if event._value is pending_marker:
                                        event._value = \
                                            event._scheduled_value
                                    callbacks = event._callbacks
                                    if callbacks is None:
                                        continue
                                    event._callbacks = None
                                    if len(callbacks) == 1:
                                        callbacks[0](event)
                                    else:
                                        for callback in callbacks:
                                            callback(event)
                                else:
                                    event._dispatch()
                            n = len(slot)
                            events._size -= n
                            events._wheel_count -= n
                            slot.clear()
                        t += 1
                        continue
                    # Pure-overflow stretch: clear the consumed slot
                    # before the walk position jumps (slot reuse
                    # safety), then drain reference-style.
                    if idx:
                        ring[t & _WHEEL_MASK].clear()
                        idx = 0
                    time, _seq, event = heappop(overflow)
                    events._size -= 1
                    if time < self.now:
                        raise SimulationError("event scheduled in the past")
                    self.now = t = time
                    if not event._cancelled:
                        event._dispatch()
            finally:
                if events._size:
                    # A dispatch raised mid-drain: persist the walk
                    # cursor so a later run resumes where this one
                    # stopped.  The interrupted instant replays — its
                    # counters were not settled yet and re-dispatching
                    # is idempotent — so the state stays consistent.
                    events._scan_time = t
                    events._slot_idx = idx
                else:
                    # All slots are clear; re-anchor the window at the
                    # current instant so post-run pushes at ``now``
                    # stay in order.
                    events._scan_time = self.now
                    events._slot_idx = 0
            return None
        while events._size:
            if until_event is not None and until_event.triggered:
                return until_event.value
            next_time = events.peek_time()
            if until is not None and next_time > until:
                self._advance_to(until)
                return None
            # One entry per iteration, bound re-checked against the new
            # head after every tombstone pop — the same edge contract
            # as the reference backend.
            time, event = events.pop()
            if time < self.now:
                raise SimulationError("event scheduled in the past")
            self.now = time
            if event._cancelled:
                if self._instrumented:
                    self._m_cancelled_skips.inc()
                continue
            if self._instrumented:
                self._m_fired.inc()
            event._dispatch()
        if until_event is not None and until_event.triggered:
            return until_event.value
        if until is not None:
            self._advance_to(until)
        return None

    def _advance_to(self, until: int) -> None:
        # ``now`` jumps to the run bound without a pop, so the window
        # anchor must follow: later pushes anchor the in-window test on
        # ``now``, and with a lagging anchor an entry at ``T`` would
        # alias into the slot the pop walk reaches at ``T - WHEEL_SPAN``
        # and fire early.  Every instant <= ``until`` has been drained
        # here, so the slot at the old anchor holds only consumed
        # entries — clearing it before the jump is the same dirty-slot
        # discipline the pop walk follows.
        events = self.events
        if events._slot_idx:
            events._ring[events._scan_time & _WHEEL_MASK].clear()
            events._slot_idx = 0
        events._scan_time = until
        self.now = until


#: backend name -> Simulator flavour; ``Simulator.__new__`` dispatches
#: through this so ``Simulator(backend=...)`` returns the right class.
_SIMULATOR_CLASSES = {
    Simulator.backend_name: Simulator,
    CalendarSimulator.backend_name: CalendarSimulator,
}
