"""Timestamped execution tracing.

Every HADES subsystem records what it does through a shared
:class:`Tracer`.  Traces drive the monitoring benchmarks (experiment E9)
and the invariant checks in the test suite: rather than trusting the
dispatcher's own bookkeeping, tests replay the trace and verify the
paper's runnable/running rules against it.

The tracer scales to long runs four ways:

* **Deferred formatting** — :meth:`record` stores the raw fields of a
  slotted :class:`TraceRecord`; all string interpolation (human dump,
  JSONL encoding) happens at render/export time, never on the hot path.
* **Category filtering** — ``Tracer(categories={...})`` restricts
  recording to the named categories; a filtered call pays one frozenset
  membership test and returns ``None`` (``filtered`` counts the drops).
* **Bounded ring buffer** — ``Tracer(maxlen=...)`` keeps only the most
  recent records (post-mortem tail), dropping the oldest; ``dropped``
  counts evictions.
* **Per-(category, event) indexes** — :meth:`select` and :meth:`count`
  are O(matching records), not O(trace length).  The index is built
  lazily on the first category query and maintained incrementally
  afterwards, so record-heavy runs that never query pay nothing.
* **Time windows** — ``select(..., t_min=..., t_max=...)`` restricts a
  query to a window of simulated time.  With a category filter the
  window runs over the index bucket and — for the common monotone
  (clock-bound) trace — stops scanning at the right window edge, so
  scoping a deadline miss to its busy period costs O(bucket prefix),
  not O(trace length).

**Streaming JSONL export** — :meth:`Tracer.stream_jsonl` writes records
to disk as they are emitted, so a bounded tracer still produces a
complete on-disk trace.  Streaming and category filtering compose the
obvious way: a record dropped by ``categories=`` is never created, so
it never reaches any stream either — the stream sees exactly what
:meth:`record` returns.  Pass ``footer=True`` to append a final
metadata line counting what the stream did (and did not) capture.
"""

from __future__ import annotations

import json
from collections import deque
from itertools import islice
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    IO,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
)


class TraceRecord:
    """One timestamped fact about the execution.

    ``category`` is a coarse subsystem tag (``"dispatcher"``,
    ``"kernel"``, ``"network"``, ...), ``event`` the specific occurrence
    (``"thread_start"``, ``"deadline_miss"``, ...), and ``details`` a
    free-form payload.

    Records are created on the simulation hot path, so the class is
    slotted and its constructor does nothing but store the four fields
    (it is a tuple with names, not a dataclass).  Treat instances as
    immutable; formatting is deferred to :meth:`__str__` and the JSONL
    exporters.
    """

    __slots__ = ("time", "category", "event", "details")

    def __init__(self, time: int, category: str, event: str,
                 details: Optional[Dict[str, Any]] = None):
        self.time = time
        self.category = category
        self.event = event
        self.details = {} if details is None else details

    def __eq__(self, other: Any) -> Any:
        if other.__class__ is TraceRecord:
            return (self.time == other.time
                    and self.category == other.category
                    and self.event == other.event
                    and self.details == other.details)
        return NotImplemented

    __hash__ = None  # mutable payload, like the frozen-dataclass-with-dict

    def __repr__(self) -> str:
        return (f"TraceRecord(time={self.time!r}, "
                f"category={self.category!r}, event={self.event!r}, "
                f"details={self.details!r})")

    def __str__(self) -> str:
        payload = " ".join(f"{k}={v}" for k, v in sorted(self.details.items()))
        return f"[{self.time:>10d}] {self.category}/{self.event} {payload}"


#: Detail value types that are snapshotted on record() so that later
#: caller-side mutation cannot rewrite already-recorded history.
_MUTABLE_CONTAINERS = frozenset((list, dict, set, tuple))


def _own(value: Any) -> Any:
    """Recursively copy plain containers; scalars pass through.

    Only exact ``list``/``dict``/``set``/``tuple`` instances are
    copied — exotic subclasses and arbitrary objects are stored as
    given (they are stringified at export time anyway).
    """
    t = type(value)
    if t is list:
        return [_own(item) for item in value]
    if t is dict:
        return {key: _own(item) for key, item in value.items()}
    if t is tuple:
        return tuple(_own(item) for item in value)
    if t is set:
        return {_own(item) for item in value}
    return value


def _jsonable(value: Any) -> Any:
    """Map a detail value to a JSON-faithful equivalent.

    int/float/bool/str/None pass through; lists/tuples and dicts recurse
    (tuples become lists — JSON has no tuple); anything else is
    stringified *explicitly* here, not silently by ``json.dumps``, so a
    saved trace reloads with the same typed values it was saved with.
    """
    if value is None or type(value) in (bool, int, float, str):
        return value
    if isinstance(value, bool):  # bool subclasses handled before int
        return bool(value)
    if isinstance(value, int):
        return int(value)
    if isinstance(value, float):
        return float(value)
    if isinstance(value, str):
        return str(value)
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    return str(value)


def _record_to_json(entry: TraceRecord) -> str:
    return json.dumps({
        "time": entry.time,
        "category": entry.category,
        "event": entry.event,
        "details": {key: _jsonable(value)
                    for key, value in entry.details.items()},
    })


class JsonlStream:
    """Streams records to a JSON-lines file as they are emitted.

    Created by :meth:`Tracer.stream_jsonl`; usable as a context manager.
    Closing detaches the stream from the tracer and closes the file.

    A stream only sees records the tracer actually creates: a record
    dropped by the tracer's ``categories=`` filter never reaches the
    stream (it is counted in :attr:`filtered` instead), and ring-buffer
    eviction is irrelevant here — eviction happens *after* streaming,
    so a bounded tracer still streams everything it recorded.  The
    :attr:`filtered` / :attr:`dropped` properties count what happened
    *while this stream was attached*; with ``footer=True`` they are
    also written as a final ``{"footer": ...}`` metadata line on close
    (skipped by :func:`load_trace`).
    """

    def __init__(self, tracer: "Tracer", path: str, footer: bool = False):
        self.tracer = tracer
        self.path = path
        self.footer = footer
        self.written = 0
        self._filtered_at_open = tracer.filtered
        self._dropped_at_open = tracer.dropped
        self._handle: Optional[IO[str]] = open(path, "w")
        tracer.subscribe(self._on_record)

    @property
    def filtered(self) -> int:
        """Records the category filter dropped while streaming (they
        were never recorded, hence never written)."""
        return self.tracer.filtered - self._filtered_at_open

    @property
    def dropped(self) -> int:
        """Ring-buffer evictions while streaming (already written —
        eviction only affects the in-memory tail)."""
        return self.tracer.dropped - self._dropped_at_open

    def _on_record(self, entry: TraceRecord) -> None:
        if self._handle is not None:
            self._handle.write(_record_to_json(entry))
            self._handle.write("\n")
            self.written += 1

    def close(self) -> None:
        """Stop streaming and close the underlying file (idempotent).

        With ``footer=True`` a final metadata line is appended first:
        ``{"footer": {"written": ..., "filtered": ..., "dropped": ...,
        "categories": ...}}``.
        """
        if self._handle is None:
            return
        self.tracer.unsubscribe(self._on_record)
        if self.footer:
            categories = self.tracer.categories
            self._handle.write(json.dumps({"footer": {
                "written": self.written,
                "filtered": self.filtered,
                "dropped": self.dropped,
                "categories": (None if categories is None
                               else sorted(categories)),
            }}))
            self._handle.write("\n")
        self._handle.close()
        self._handle = None

    def __enter__(self) -> "JsonlStream":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class Tracer:
    """Collects :class:`TraceRecord` instances in emission order."""

    def __init__(self, clock: Optional[Callable[[], int]] = None,
                 maxlen: Optional[int] = None, index: bool = True,
                 categories: Optional[Iterable[str]] = None):
        if maxlen is not None and maxlen <= 0:
            raise ValueError(f"maxlen must be positive, got {maxlen}")
        self._records: Any = (deque(maxlen=maxlen) if maxlen is not None
                              else [])
        self.maxlen = maxlen
        self._clock = clock
        self._listeners: List[Callable[[TraceRecord], None]] = []
        #: Records evicted by the ring buffer so far.
        self.dropped = 0
        #: Records dropped by the category filter so far.
        self.filtered = 0
        # None means "record everything"; otherwise a frozenset of the
        # categories kept.  Checked first in record() so a filtered
        # category costs one membership test, nothing else.
        self._categories: Optional[frozenset] = (
            None if categories is None else frozenset(categories))
        self._seq = 0          # sequence number of the next record
        self._first_seq = 0    # sequence number of the oldest kept record
        # Whether record times have been non-decreasing so far; lets
        # time-window queries stop scanning at the right window edge.
        self._monotonic = True
        self._last_time: Optional[int] = None
        self._index_enabled = index
        # Lazily built:  (category, event) -> deque[(seq, record)] and
        # category -> deque[(seq, record)].  Entries older than
        # ``_first_seq`` are pruned lazily on access.
        self._by_cat_event: Optional[Dict[Tuple[str, str],
                                          Deque[Tuple[int, TraceRecord]]]] = None
        self._by_cat: Optional[Dict[str, Deque[Tuple[int, TraceRecord]]]] = None

    def bind_clock(self, clock: Callable[[], int]) -> None:
        """Attach the time source used when ``record`` omits a time."""
        self._clock = clock

    @property
    def categories(self) -> Optional[frozenset]:
        """The category allow-list (``None`` records everything)."""
        return self._categories

    def set_categories(self,
                       categories: Optional[Iterable[str]]) -> "Tracer":
        """Restrict future recording to ``categories`` (``None`` = all).

        Already-held records are unaffected.  Returns the tracer, so the
        call chains off the constructor.
        """
        self._categories = (None if categories is None
                            else frozenset(categories))
        return self

    def subscribe(self, listener: Callable[[TraceRecord], None]) -> None:
        """Invoke ``listener`` synchronously for every new record."""
        self._listeners.append(listener)

    def unsubscribe(self, listener: Callable[[TraceRecord], None]) -> None:
        """Remove a previously subscribed listener (no-op if absent)."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def record(self, category: str, event: str, time: Optional[int] = None,
               **details: Any) -> Optional[TraceRecord]:
        """Append a record; time defaults to the bound clock's now.

        Returns ``None`` (and counts in :attr:`filtered`) when
        ``category`` is excluded by the filter — the near-free path.

        Detail values that are plain containers (list/dict/set/tuple)
        are snapshotted at record time: mutating the caller's object
        afterwards does not rewrite the recorded history.
        """
        allowed = self._categories
        if allowed is not None and category not in allowed:
            self.filtered += 1
            return None
        if time is None:
            if self._clock is None:
                raise RuntimeError("tracer has no bound clock")
            time = self._clock()
        last = self._last_time
        if last is not None and time < last:
            self._monotonic = False
        self._last_time = time
        for key, value in details.items():
            if type(value) in _MUTABLE_CONTAINERS:
                details[key] = _own(value)
        entry = TraceRecord(time, category, event, details)
        if self.maxlen is not None and len(self._records) == self.maxlen:
            self.dropped += 1
            self._first_seq += 1
        self._records.append(entry)
        seq = self._seq
        self._seq += 1
        if self._by_cat_event is not None:
            self._by_cat_event.setdefault((category, event),
                                          deque()).append((seq, entry))
            self._by_cat.setdefault(category, deque()).append((seq, entry))
        if self._listeners:
            for listener in self._listeners:
                listener(entry)
        return entry

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    @property
    def records(self) -> Tuple[TraceRecord, ...]:
        """All records in emission order (immutable view)."""
        return tuple(self._records)

    # -- indexed queries ----------------------------------------------------

    def _ensure_index(self) -> None:
        if self._by_cat_event is not None:
            return
        self._by_cat_event = {}
        self._by_cat = {}
        seq = self._first_seq
        for entry in self._records:
            self._by_cat_event.setdefault((entry.category, entry.event),
                                          deque()).append((seq, entry))
            self._by_cat.setdefault(entry.category, deque()).append(
                (seq, entry))
            seq += 1

    def _bucket(self, category: str,
                event: Optional[str]) -> Deque[Tuple[int, TraceRecord]]:
        self._ensure_index()
        if event is not None:
            bucket = self._by_cat_event.get((category, event))
        else:
            bucket = self._by_cat.get(category)
        if bucket is None:
            return deque()
        # Drop entries the ring buffer has already evicted.
        first = self._first_seq
        while bucket and bucket[0][0] < first:
            bucket.popleft()
        return bucket

    def select(self, category: Optional[str] = None,
               event: Optional[str] = None,
               t_min: Optional[int] = None,
               t_max: Optional[int] = None,
               **details: Any) -> List[TraceRecord]:
        """Records matching the given category/event/detail filters.

        With a ``category`` filter this runs over the per-(category,
        event) index — O(matching records); other shapes fall back to a
        linear scan.

        ``t_min``/``t_max`` bound the record times (both inclusive) —
        the forensics tooling uses this to scope a deadline miss to its
        busy period.  On a monotone trace (times never decreased, the
        normal clock-bound case) the indexed path stops scanning at the
        first record past ``t_max``.
        """
        if category is not None and self._index_enabled:
            bucket = self._bucket(category, event)
            found = []
            for _seq, entry in bucket:
                time = entry.time
                if t_min is not None and time < t_min:
                    continue
                if t_max is not None and time > t_max:
                    if self._monotonic:
                        break
                    continue
                if details and not all(entry.details.get(k) == v
                                       for k, v in details.items()):
                    continue
                found.append(entry)
            return found
        found = []
        for entry in self._records:
            if category is not None and entry.category != category:
                continue
            if event is not None and entry.event != event:
                continue
            if t_min is not None and entry.time < t_min:
                continue
            if t_max is not None and entry.time > t_max:
                continue
            if any(entry.details.get(k) != v for k, v in details.items()):
                continue
            found.append(entry)
        return found

    def count(self, category: Optional[str] = None,
              event: Optional[str] = None,
              t_min: Optional[int] = None,
              t_max: Optional[int] = None, **details: Any) -> int:
        """Current number of matching items."""
        if (category is not None and self._index_enabled and not details
                and t_min is None and t_max is None):
            return len(self._bucket(category, event))
        return len(self.select(category, event, t_min=t_min, t_max=t_max,
                               **details))

    # -- rendering & export -------------------------------------------------

    def dump(self, limit: Optional[int] = None) -> str:
        """Human-readable rendering of (the head of) the trace."""
        rows = (self._records if limit is None
                else islice(self._records, limit))
        return "\n".join(str(entry) for entry in rows)

    def to_jsonl(self, path: str) -> int:
        """Write the currently held records as JSON lines; returns the
        record count.

        The format round-trips through :func:`load_trace` type-faithfully
        for int/float/bool/str/list/dict detail values (tuples load as
        lists; other objects are stringified at write time).  A bounded
        tracer writes only what the ring buffer still holds — use
        :meth:`stream_jsonl` for a complete trace of a bounded run.
        """
        written = 0
        with open(path, "w") as handle:
            for entry in self._records:
                handle.write(_record_to_json(entry))
                handle.write("\n")
                written += 1
        return written

    def stream_jsonl(self, path: str, footer: bool = False) -> JsonlStream:
        """Stream every future record to ``path`` as JSON lines.

        Returns the :class:`JsonlStream` handle (a context manager);
        records already held are **not** written — open the stream
        before running the scenario.

        Category filtering composes with streaming: a record the
        tracer's ``categories=`` filter drops is never created, so it
        is not streamed either.  ``footer=True`` appends one final
        metadata line on close with the ``written``/``filtered``/
        ``dropped`` counters for the streaming window (see
        :class:`JsonlStream`); leave it off when the file must be
        byte-comparable to a :meth:`to_jsonl` batch export.
        """
        return JsonlStream(self, path, footer=footer)


def load_trace(path: str, maxlen: Optional[int] = None) -> "Tracer":
    """Load a trace previously saved with :meth:`Tracer.to_jsonl` or
    :meth:`Tracer.stream_jsonl` (a ``footer`` metadata line, if
    present, is skipped)."""
    tracer = Tracer(clock=lambda: 0, maxlen=maxlen)
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            raw = json.loads(line)
            if "time" not in raw:
                continue  # stream footer (or other metadata) line
            tracer.record(raw["category"], raw["event"], time=raw["time"],
                          **raw["details"])
    return tracer
