"""Timestamped execution tracing.

Every HADES subsystem records what it does through a shared
:class:`Tracer`.  Traces drive the monitoring benchmarks (experiment E9)
and the invariant checks in the test suite: rather than trusting the
dispatcher's own bookkeeping, tests replay the trace and verify the
paper's runnable/running rules against it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class TraceRecord:
    """One timestamped fact about the execution.

    ``category`` is a coarse subsystem tag (``"dispatcher"``,
    ``"kernel"``, ``"network"``, ...), ``event`` the specific occurrence
    (``"thread_start"``, ``"deadline_miss"``, ...), and ``details`` a
    free-form payload.
    """

    time: int
    category: str
    event: str
    details: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        payload = " ".join(f"{k}={v}" for k, v in sorted(self.details.items()))
        return f"[{self.time:>10d}] {self.category}/{self.event} {payload}"


class Tracer:
    """Collects :class:`TraceRecord` instances in emission order."""

    def __init__(self, clock: Optional[Callable[[], int]] = None):
        self._records: List[TraceRecord] = []
        self._clock = clock
        self._listeners: List[Callable[[TraceRecord], None]] = []

    def bind_clock(self, clock: Callable[[], int]) -> None:
        """Attach the time source used when ``record`` omits a time."""
        self._clock = clock

    def subscribe(self, listener: Callable[[TraceRecord], None]) -> None:
        """Invoke ``listener`` synchronously for every new record."""
        self._listeners.append(listener)

    def record(self, category: str, event: str, time: Optional[int] = None,
               **details: Any) -> TraceRecord:
        """Append a record; time defaults to the bound clock's now."""
        if time is None:
            if self._clock is None:
                raise RuntimeError("tracer has no bound clock")
            time = self._clock()
        entry = TraceRecord(time, category, event, details)
        self._records.append(entry)
        for listener in self._listeners:
            listener(entry)
        return entry

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    @property
    def records(self) -> Tuple[TraceRecord, ...]:
        """All records in emission order (immutable view)."""
        return tuple(self._records)

    def select(self, category: Optional[str] = None,
               event: Optional[str] = None,
               **details: Any) -> List[TraceRecord]:
        """Records matching the given category/event/detail filters."""
        found = []
        for entry in self._records:
            if category is not None and entry.category != category:
                continue
            if event is not None and entry.event != event:
                continue
            if any(entry.details.get(k) != v for k, v in details.items()):
                continue
            found.append(entry)
        return found

    def count(self, category: Optional[str] = None,
              event: Optional[str] = None, **details: Any) -> int:
        """Current number of matching items."""
        return len(self.select(category, event, **details))

    def dump(self, limit: Optional[int] = None) -> str:
        """Human-readable rendering of (the head of) the trace."""
        rows = self._records if limit is None else self._records[:limit]
        return "\n".join(str(entry) for entry in rows)

    def to_jsonl(self, path: str) -> int:
        """Write the trace as JSON lines; returns the record count.

        The format round-trips through :func:`load_trace`, so post-
        mortem analysis (schedule reconstruction, violation counting)
        can run on saved traces from earlier experiments.
        """
        import json

        with open(path, "w") as handle:
            for entry in self._records:
                handle.write(json.dumps({
                    "time": entry.time,
                    "category": entry.category,
                    "event": entry.event,
                    "details": entry.details,
                }, default=str))
                handle.write("\n")
        return len(self._records)


def load_trace(path: str) -> "Tracer":
    """Load a trace previously saved with :meth:`Tracer.to_jsonl`."""
    import json

    tracer = Tracer(clock=lambda: 0)
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            raw = json.loads(line)
            tracer.record(raw["category"], raw["event"], time=raw["time"],
                          **raw["details"])
    return tracer
