"""Measuring middleware costs by worst-case scenario benchmarks (§4).

"Attribute w of any dispatcher activity is determined in HADES either
analytically or by running worst-case scenario benchmarks.  A prototype
of the dispatcher has been implemented in order to identify all
activities and their resulting costs."

This module is that prototype methodology applied to the simulated
middleware: each function runs a purpose-built micro-scenario and
extracts one constant from the *observed* execution (CPU accounting and
response times), never from the configured model.  The calibration
benchmark (experiment E1) then checks measurement == configuration,
which is the property making feasibility analysis trustworthy.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.costs import DispatcherCosts, KernelActivity
from repro.core.heug import Task
from repro.system import HadesSystem


def _fresh_system(costs: DispatcherCosts) -> HadesSystem:
    return HadesSystem(node_ids=["n0", "n1"], costs=costs,
                       network_latency=50)


def _run_response(system: HadesSystem, task: Task) -> int:
    instance = system.activate(task)
    system.run()
    if instance.response_time is None:
        raise RuntimeError(f"calibration task {task.name} did not finish")
    return instance.response_time


def calibrate_dispatcher_costs(costs: Optional[DispatcherCosts] = None
                               ) -> Dict[str, int]:
    """Measure every §4.1 constant from worst-case micro-scenarios.

    Returns the measured ``{constant: microseconds}`` table.  The
    scenarios isolate each constant by differencing response times of
    structurally minimal HEUGs:

    * one unit, zero WCET      -> c_start_act + c_end_act
    * two-unit local chain     -> + c_local
    * two-unit remote chain    -> + c_remote (on the send side)
    * synchronous invocation   -> + c_start_inv + c_end_inv
    """
    costs = costs if costs is not None else DispatcherCosts()

    # Scenario 1: a single zero-length action.  Everything observed is
    # per-action dispatcher work.
    system = _fresh_system(costs)
    single = Task("cal_single", node_id="n0")
    single.code_eu("a", wcet=0)
    per_action = _run_response(system, single)

    # Scenario 2: two-unit local chain: adds one action bracket and one
    # local precedence.
    system = _fresh_system(costs)
    chain = Task("cal_chain", node_id="n0")
    a = chain.code_eu("a", wcet=0)
    b = chain.code_eu("b", wcet=0)
    chain.precede(a, b)
    chain_response = _run_response(system, chain)
    c_local = chain_response - 2 * per_action

    # Scenario 3: remote chain: the dispatcher-side cost of a remote
    # precedence is what the *sending node's CPU* spends in dispatcher
    # category beyond the two action brackets (transfer time is the
    # network's, not the dispatcher's).
    system = _fresh_system(costs)
    remote = Task("cal_remote", node_id="n0")
    ra = remote.code_eu("a", wcet=0)
    rb = remote.code_eu("b", wcet=0, node_id="n1")
    remote.precede(ra, rb)
    _run_response(system, remote)
    n0_dispatcher = system.nodes["n0"].cpu.busy_time.get("dispatcher", 0)
    c_remote = n0_dispatcher - per_action

    # Scenario 4: synchronous invocation of an empty task.  The ledger
    # separates the start-of-invocation cost from the end cost (a pure
    # response-time difference cannot tell them apart).
    system = _fresh_system(costs)
    inner = Task("cal_inner", node_id="n0")
    inner.code_eu("w", wcet=0)
    outer = Task("cal_outer", node_id="n0")
    outer.inv_eu("call", inner, synchronous=True)
    invocation_response = _run_response(system, outer)
    per_invocation = invocation_response - per_action
    inv_ledger = system.dispatcher.ledger
    c_start_inv = (inv_ledger.total("c_start_inv")
                   // inv_ledger.count("c_start_inv")
                   if inv_ledger.count("c_start_inv") else 0)
    c_end_inv = per_invocation - c_start_inv

    # Split the brackets using the kernel accounting: start/end act are
    # charged separately in the ledger, so read their per-piece split
    # from a dedicated run.
    system = _fresh_system(costs)
    probe = Task("cal_probe", node_id="n0")
    probe.code_eu("a", wcet=0)
    system.activate(probe)
    system.run()
    ledger = system.dispatcher.ledger
    c_start_act = (ledger.total("c_start_act") // ledger.count("c_start_act")
                   if ledger.count("c_start_act") else 0)
    c_end_act = per_action - c_start_act

    return {
        "c_start_act": c_start_act,
        "c_end_act": c_end_act,
        "c_local": c_local,
        "c_remote": c_remote,
        "c_start_inv": c_start_inv,
        "c_end_inv": c_end_inv,
        "per_action": per_action,
        "per_invocation": per_invocation,
    }


def characterize_kernel_activities(duration: int = 1_000_000,
                                   message_count: int = 20
                                   ) -> List[KernelActivity]:
    """Measure the §4.2 background activities from an actual run.

    Drives a two-node system with background activities on and some
    network traffic, then extracts each interrupt source's observed
    WCET (CPU time per firing) and minimum inter-arrival from the
    trace — the sporadic (w, P) pair the scheduling test needs.
    """
    system = HadesSystem(node_ids=["n0", "n1"],
                         costs=DispatcherCosts.zero(),
                         background_activities=True)
    interface = system.network.interfaces["n0"]
    for index in range(message_count):
        system.sim.call_at(1_000 + index * 2_000,
                           lambda i=index: interface.send("n1", i))
    system.run(until=duration)

    activities: List[KernelActivity] = []
    node = system.nodes["n1"]
    # Clock interrupt: observed firings and period from the trace.
    clock_fires = [r.time for r in system.tracer.select(
        "kernel", "interrupt", node="n1", source="clock")]
    if len(clock_fires) >= 2:
        gaps = [b - a for a, b in zip(clock_fires, clock_fires[1:])]
        activities.append(KernelActivity(
            "clock", node.clock_tick.wcet, min(gaps)))
    net_fires = [r.time for r in system.tracer.select(
        "kernel", "interrupt", node="n1", source="net")]
    if len(net_fires) >= 2:
        gaps = [b - a for a, b in zip(net_fires, net_fires[1:])]
        activities.append(KernelActivity(
            "net", node.net_irq.wcet, min(min(gaps),
                                          node.net_irq.pseudo_period)))
    return activities
