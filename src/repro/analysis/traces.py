"""Schedule reconstruction and response-time statistics from traces.

The tests use these reconstructions to verify the dispatcher's
priority rules *from the outside*, and the Figure 2 benchmark renders
the scheduler/dispatcher cooperation timeline with them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.sim.trace import Tracer


@dataclass(frozen=True)
class ScheduleInterval:
    """One stretch of a thread holding a CPU."""

    node: str
    thread: str
    start: int
    end: int

    @property
    def length(self) -> int:
        """Duration of the interval in microseconds."""
        return self.end - self.start


def schedule_intervals(tracer: Tracer,
                       node: Optional[str] = None) -> List[ScheduleInterval]:
    """Reconstruct who ran when from cpu dispatch/preempt/withdraw/
    complete records."""
    intervals: List[ScheduleInterval] = []
    running: Dict[str, tuple] = {}  # node -> (thread, start)

    for record in tracer:
        if record.category != "cpu":
            continue
        rec_node = record.details.get("node")
        if node is not None and rec_node != node:
            continue
        thread = record.details.get("thread")
        if record.event == "dispatch":
            running[rec_node] = (thread, record.time)
        elif record.event in ("preempt", "complete", "withdraw"):
            current = running.pop(rec_node, None)
            if current is not None:
                name, start = current
                if record.time > start:
                    intervals.append(
                        ScheduleInterval(rec_node, name, start, record.time))
    return intervals


def busy_fraction(intervals: Sequence[ScheduleInterval],
                  horizon: int) -> float:
    """Fraction of [0, horizon] covered by the given intervals."""
    if horizon <= 0:
        return 0.0
    return sum(interval.length for interval in intervals) / horizon


def thread_time(intervals: Sequence[ScheduleInterval],
                thread: str) -> int:
    """Total CPU time a thread (by exact name) received."""
    return sum(i.length for i in intervals if i.thread == thread)


def response_time_stats(response_times: Sequence[int]) -> Dict[str, float]:
    """min / max / mean / p95 over a response-time sample."""
    if not response_times:
        return {"count": 0, "min": 0, "max": 0, "mean": 0.0, "p95": 0}
    ordered = sorted(response_times)
    p95_index = min(len(ordered) - 1, int(0.95 * len(ordered)))
    return {
        "count": len(ordered),
        "min": ordered[0],
        "max": ordered[-1],
        "mean": sum(ordered) / len(ordered),
        "p95": ordered[p95_index],
    }


def render_timeline(intervals: Sequence[ScheduleInterval],
                    width: int = 72,
                    until: Optional[int] = None) -> str:
    """ASCII Gantt chart of a schedule (one row per thread).

    Used by the Figure 2 benchmark to print the cooperation timeline
    in the same shape as the paper's figure.
    """
    if not intervals:
        return "(empty schedule)"
    horizon = until if until is not None else max(i.end for i in intervals)
    horizon = max(horizon, 1)
    threads = []
    for interval in intervals:
        if interval.thread not in threads:
            threads.append(interval.thread)
    label_width = max(len(t) for t in threads) + 1
    scale = width / horizon

    lines = []
    for thread in threads:
        row = [" "] * width
        for interval in intervals:
            if interval.thread != thread:
                continue
            start = int(interval.start * scale)
            end = max(start + 1, int(interval.end * scale))
            for position in range(start, min(end, width)):
                row[position] = "#"
        lines.append(f"{thread:<{label_width}}|{''.join(row)}|")
    axis = f"{'':<{label_width}}|{'0':<{width - len(str(horizon))}}{horizon}|"
    lines.append(axis)
    return "\n".join(lines)
