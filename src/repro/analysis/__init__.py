"""Cost calibration and trace analysis.

* :mod:`repro.analysis.calibration` — the §4 methodology: run
  worst-case scenario benchmarks against a deployed system and
  *measure* the dispatcher constants and kernel activity parameters
  back out of the execution, validating the cost model end to end.
* :mod:`repro.analysis.traces` — reconstruct per-CPU schedules from
  traces (who ran when), compute response-time statistics, and render
  Figure-2-style timelines.
"""

from repro.analysis.calibration import (
    calibrate_dispatcher_costs,
    characterize_kernel_activities,
)
from repro.analysis.overhead import format_overhead, overhead_report
from repro.analysis.traces import (
    ScheduleInterval,
    render_timeline,
    response_time_stats,
    schedule_intervals,
)

__all__ = [
    "ScheduleInterval",
    "calibrate_dispatcher_costs",
    "characterize_kernel_activities",
    "format_overhead",
    "overhead_report",
    "render_timeline",
    "response_time_stats",
    "schedule_intervals",
]
