"""Middleware-overhead reporting: the §4 cost taxonomy, observed.

The paper's cost model splits middleware work into dispatcher
activities (charged to applications) and background kernel activities
(independent sporadic load).  The simulated kernel accounts every
microsecond of CPU by category, and the dispatcher's
:class:`~repro.core.costs.CostLedger` records every modelled constant
it charged — so observed and modelled overhead can be reconciled,
which is exactly the validation the calibration methodology needs.
"""

from __future__ import annotations

from typing import Dict


def overhead_report(system) -> Dict[str, object]:
    """Per-node CPU breakdown plus the model-vs-observation check.

    Returns a dict with:

    * ``per_node`` — {node: {category: µs}},
    * ``totals`` — {category: µs} system-wide,
    * ``overhead_fraction`` — non-application share of busy time,
    * ``ledger_total`` — dispatcher cost the model says was charged,
    * ``observed_dispatcher`` — dispatcher-category CPU time observed,
    * ``consistent`` — ledger == observation (the §4 model is exact in
      this substrate; any gap is a bug).
    """
    per_node: Dict[str, Dict[str, int]] = {}
    totals: Dict[str, int] = {}
    for node_id in sorted(system.nodes):
        busy = dict(system.nodes[node_id].cpu.busy_time)
        per_node[node_id] = busy
        for category, amount in busy.items():
            totals[category] = totals.get(category, 0) + amount
    busy_total = sum(totals.values())
    application = totals.get("application", 0)
    overhead_fraction = ((busy_total - application) / busy_total
                         if busy_total else 0.0)
    ledger_total = system.dispatcher.ledger.total()
    observed_dispatcher = totals.get("dispatcher", 0)
    return {
        "per_node": per_node,
        "totals": totals,
        "busy_total": busy_total,
        "overhead_fraction": overhead_fraction,
        "ledger_total": ledger_total,
        "observed_dispatcher": observed_dispatcher,
        "consistent": ledger_total == observed_dispatcher,
    }


def format_overhead(report: Dict[str, object]) -> str:
    """Text rendering of :func:`overhead_report`."""
    lines = ["middleware overhead:"]
    for node_id, busy in report["per_node"].items():
        rendered = ", ".join(f"{k}={v}" for k, v in sorted(busy.items()))
        lines.append(f"  {node_id}: {rendered or 'idle'}")
    lines.append(f"  overhead fraction: "
                 f"{report['overhead_fraction']:.2%}")
    lines.append(f"  dispatcher cost: modelled {report['ledger_total']} us, "
                 f"observed {report['observed_dispatcher']} us "
                 f"({'consistent' if report['consistent'] else 'MISMATCH'})")
    return "\n".join(lines)
