"""Convenience facade wiring a complete HADES system.

A :class:`HadesSystem` owns one simulator, one shared tracer, a set of
nodes, the network connecting them, the generic dispatcher and the
execution monitor — the whole gray layer of the paper's Figure 1 plus
the simulated COTS substrate underneath it.  Most examples and
benchmarks start with::

    system = HadesSystem(node_ids=["n0", "n1"])
    system.attach_scheduler(EDFScheduler(scope="n0"))
    ...
    system.run(until=1_000_000)
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, \
    Tuple

from repro.core.costs import DispatcherCosts, KernelActivity
from repro.core.dispatcher import Dispatcher
from repro.core.monitoring import ExecutionMonitor
from repro.core.tnetwork import install_tnetwork
from repro.kernel.clocks import HardwareClock
from repro.kernel.node import Node
from repro.network.network import Network
from repro.obs.metrics import RunReport, resolve_metrics
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer


@dataclass(frozen=True)
class RunOptions:
    """The observability/engine options a run is configured with.

    One resolved bundle shared by every construction path —
    ``HadesSystem(...)``, :meth:`HadesSystem.scripted`, and the sharded
    executor's worker replicas — instead of each re-plumbing
    ``metrics=`` / ``trace_categories=`` / ``backend=`` separately.
    ``metrics`` holds the caller's *spec* (None/True/registry, see
    :func:`repro.obs.resolve_metrics`), not the resolved registry, so
    the bundle stays replayable; ``backend`` is pinned to the resolved
    name once the engine exists (:meth:`pinned`), so worker processes
    cannot re-resolve ``REPRO_SIM_BACKEND`` differently.
    """

    metrics: Any = None
    trace_maxlen: Optional[int] = None
    trace_categories: Optional[Tuple[str, ...]] = None
    backend: Optional[str] = None

    @classmethod
    def resolve(cls, metrics: Any = None,
                trace_maxlen: Optional[int] = None,
                trace_categories: Optional[Iterable[str]] = None,
                backend: Optional[str] = None,
                categories: Optional[Iterable[str]] = None) -> "RunOptions":
        """Normalize raw constructor kwargs into one options bundle.

        ``categories=`` is the deprecated spelling of
        ``trace_categories=`` (the :class:`~repro.sim.trace.Tracer`
        parameter name leaked into one layer above it); it still works
        but warns, and giving both is an error.
        """
        if categories is not None:
            warnings.warn(
                "categories= is deprecated here; it is the Tracer's "
                "parameter name — use trace_categories=",
                DeprecationWarning, stacklevel=3)
            if trace_categories is not None:
                raise ValueError(
                    "give trace_categories= or categories=, not both")
            trace_categories = categories
        if trace_categories is not None:
            trace_categories = tuple(trace_categories)
        return cls(metrics=metrics, trace_maxlen=trace_maxlen,
                   trace_categories=trace_categories, backend=backend)

    def pinned(self, backend: str) -> "RunOptions":
        """A copy with ``backend`` fixed to the resolved engine name."""
        return replace(self, backend=backend)

    def to_kwargs(self) -> Dict[str, Any]:
        """The bundle as ``HadesSystem`` constructor kwargs."""
        return {"metrics": self.metrics,
                "trace_maxlen": self.trace_maxlen,
                "trace_categories": self.trace_categories,
                "backend": self.backend}


class HadesSystem:
    """One simulated deployment of the middleware."""

    def __init__(self, node_ids: Iterable[str] = ("n0",),
                 costs: Optional[DispatcherCosts] = None,
                 network_latency: int = 50,
                 network_jitter: int = 0,
                 seed: int = 0,
                 context_switch_cost: int = 0,
                 clock_drifts: Optional[Dict[str, float]] = None,
                 with_tnetwork: bool = False,
                 background_activities: bool = False,
                 on_deadline_miss: str = "record",
                 abort_mode: str = "kill",
                 node_kwargs: Optional[Dict[str, Any]] = None,
                 metrics: Any = None,
                 trace_maxlen: Optional[int] = None,
                 trace_categories: Optional[Iterable[str]] = None,
                 backend: Optional[str] = None,
                 owned_nodes: Optional[Iterable[str]] = None,
                 lazy_links: bool = False,
                 categories: Optional[Iterable[str]] = None,
                 engines: Optional[Dict[str, Dict[str, int]]] = None):
        # ``metrics`` accepts a MetricsRegistry, True (create one), or
        # None/False (disabled — the near-zero-cost default); see
        # :func:`repro.obs.resolve_metrics` for the full contract.
        # ``backend`` names the engine's event-set implementation
        # ("heapq" or "calendar"); an explicit argument wins over the
        # REPRO_SIM_BACKEND environment variable, which wins over the
        # heapq default.  Both backends produce byte-identical traces
        # (tests/test_backend_conformance.py).
        # ``owned_nodes`` turns this instance into one shard's replica
        # of the deployment (repro.sim.sharded): every node is built —
        # foreign nodes are inert stand-ins for link endpoints — but
        # only the owned subset activates tasks, sends messages or runs
        # background activity.  ``lazy_links`` defers full-mesh link
        # construction to first use (see :class:`repro.network.Network`).
        # ``categories`` is the deprecated spelling of
        # ``trace_categories`` (see :meth:`RunOptions.resolve`).
        options = RunOptions.resolve(
            metrics=metrics, trace_maxlen=trace_maxlen,
            trace_categories=trace_categories, backend=backend,
            categories=categories)
        self.metrics = resolve_metrics(options.metrics)
        self.sim = Simulator(metrics=self.metrics, backend=options.backend)
        self.backend = self.sim.backend
        self.options = options.pinned(self.sim.backend)
        self.tracer = Tracer(lambda: self.sim.now,
                             maxlen=options.trace_maxlen,
                             categories=options.trace_categories)
        self.monitor = ExecutionMonitor()
        node_ids = list(node_ids)
        self.owned_nodes: Optional[frozenset] = None
        if owned_nodes is not None:
            self.owned_nodes = frozenset(owned_nodes)
            unknown = self.owned_nodes - set(node_ids)
            if unknown:
                raise ValueError(
                    f"owned_nodes {sorted(unknown)} are not in node_ids")
        self.network = Network(self.sim, self.tracer,
                               base_latency=network_latency,
                               jitter_bound=network_jitter, seed=seed,
                               metrics=self.metrics, lazy_links=lazy_links)
        self.nodes: Dict[str, Node] = {}
        drifts = clock_drifts or {}
        extra = node_kwargs or {}
        # ``engines`` declares heterogeneous accelerator pools per node:
        # {"n0": {"gpu": 2}} (repro.hetero).  It is part of the scripted
        # kwargs, so shard replicas rebuild identical pools.
        engine_specs = engines or {}
        unknown_engine_nodes = set(engine_specs) - set(node_ids)
        if unknown_engine_nodes:
            raise ValueError(
                f"engines= names unknown node(s) "
                f"{sorted(unknown_engine_nodes)}; node_ids are "
                f"{sorted(node_ids)}")
        for node_id in node_ids:
            clock = HardwareClock(self.sim, drift=drifts.get(node_id, 0.0))
            node = Node(self.sim, node_id, tracer=self.tracer, clock=clock,
                        context_switch_cost=context_switch_cost,
                        metrics=self.metrics,
                        engines=engine_specs.get(node_id), **extra)
            self.nodes[node_id] = node
            self.network.add_node(node)
            if background_activities and self._owns(node_id):
                node.start_background_activities()
        if self.owned_nodes is not None:
            self.network.set_shard_owner(self.owned_nodes)
        self.network.connect_all()
        self.dispatcher = Dispatcher(self.sim, network=self.network,
                                     costs=costs, tracer=self.tracer,
                                     monitor=self.monitor,
                                     on_deadline_miss=on_deadline_miss,
                                     abort_mode=abort_mode,
                                     metrics=self.metrics,
                                     owned_nodes=owned_nodes)
        for node in self.nodes.values():
            self.dispatcher.register_node(node)
        if with_tnetwork:
            for node_id, node in self.nodes.items():
                if self._owns(node_id):
                    install_tnetwork(node, self.network.interfaces[node_id])
        # Set by :meth:`scripted`; required for ``run(shards=N)``.
        self._builder: Optional[Callable[["HadesSystem"], Any]] = None
        self._scripted_kwargs: Optional[Dict[str, Any]] = None

    def owns(self, node_id: str) -> bool:
        """Whether this (possibly shard-replica) system owns ``node_id``.

        Always true for a whole-system instance.  Scripted builders that
        construct per-node *services* (admission controllers, T_network
        managers, custom monitors) should gate on this so a shard
        replica only runs services for its own nodes.
        """
        return self.owned_nodes is None or node_id in self.owned_nodes

    # Backwards-compatible private alias (pre-1.5 internal spelling).
    _owns = owns

    @classmethod
    def scripted(cls, build: Callable[["HadesSystem"], Any],
                 **kwargs: Any) -> "HadesSystem":
        """Create a system from a replayable builder function.

        ``build(system)`` receives the freshly constructed system and
        registers the whole workload — tasks, schedulers, fault plans,
        message scripts.  The builder must be deterministic and
        shard-agnostic: sharded execution (``run(shards=N)``) replays
        it inside every worker against that worker's shard replica,
        where activity on foreign nodes silently becomes a no-op.
        Constructor ``kwargs`` are replayed too, so they must not
        include ``owned_nodes`` (the sharder assigns it).

        For service-shaped workloads (tiers, tenants, SLOs), prefer the
        fluent :class:`repro.scenarios.Scenario` facade — it builds a
        scripted system like this one underneath, so everything here
        (sharding, backends, determinism) applies to it unchanged.
        """
        if "owned_nodes" in kwargs:
            raise ValueError("scripted() builds whole systems; "
                             "owned_nodes is assigned by run(shards=N)")
        system = cls(**kwargs)
        system._builder = build
        system._scripted_kwargs = dict(kwargs)
        build(system)
        return system

    # -- delegation helpers ------------------------------------------------

    def attach_scheduler(self, scheduler) -> Any:
        """Plug a scheduling policy into the dispatcher; returns it."""
        self.dispatcher.attach_scheduler(scheduler)
        return scheduler

    def node(self, node_id: str) -> Node:
        """The :class:`~repro.kernel.node.Node` with the given id."""
        return self.nodes[node_id]

    def activate(self, task, **kwargs):
        """Issue an activation request for ``task`` (dispatcher shortcut)."""
        return self.dispatcher.activate(task, **kwargs)

    def register_periodic(self, task, **kwargs) -> Any:
        """Drive ``task`` from its periodic arrival law (shortcut);
        returns the :class:`~repro.core.dispatcher.PeriodicDriver`."""
        return self.dispatcher.register_periodic(task, **kwargs)

    def run(self, until: Optional[int] = None,
            shards: Optional[int] = None,
            partition: Optional[Sequence[Sequence[str]]] = None) -> Any:
        """Advance simulated time (to ``until``, or until idle).

        With ``shards=N`` (or an explicit ``partition=`` — a list of
        node-id groups) the run executes as a conservative parallel
        simulation: nodes are partitioned across N worker processes
        that synchronize on the network's guaranteed delivery bounds
        (see :mod:`repro.sim.sharded`).  Requires a system built with
        :meth:`scripted`.  Returns the
        :class:`~repro.sim.sharded.ShardRunResult` (with the merged,
        serial-identical trace loaded back into :attr:`tracer`), or
        ``None`` for a plain serial run.
        """
        if shards is None and partition is None:
            self.sim.run(until=until)
            return None
        from repro.sim.sharded import run_sharded
        return run_sharded(self, until=until, shards=shards,
                           partition=partition)

    def run_report(self, **meta: Any) -> RunReport:
        """Snapshot this deployment's metrics as a structured report.

        Includes ``sim_time`` and ``trace_records`` in the report meta.
        With metrics disabled (the default) the report is empty except
        for the meta — campaigns can aggregate it either way.
        """
        meta.setdefault("sim_time", self.sim.now)
        meta.setdefault("trace_records", len(self.tracer))
        return self.metrics.snapshot(**meta)

    # -- §4.2 characterisation of the deployed substrate ---------------------

    def kernel_activities(self) -> List[KernelActivity]:
        """The background kernel activities of this deployment, in the
        form the feasibility tests consume."""
        activities: List[KernelActivity] = []
        for node_id in sorted(self.nodes):
            node = self.nodes[node_id]
            activities.append(KernelActivity(
                f"{node_id}:clock", node.clock_tick.wcet,
                node.clock_tick.period))
            activities.append(KernelActivity(
                f"{node_id}:net", node.net_irq.wcet,
                node.net_irq.pseudo_period))
        return activities

    def node_kernel_activities(self, node_id: str) -> List[KernelActivity]:
        """One node's §4.2 background activities, for per-CPU tests."""
        node = self.nodes[node_id]
        return [
            KernelActivity("clock", node.clock_tick.wcet,
                           node.clock_tick.period),
            KernelActivity("net", node.net_irq.wcet,
                           node.net_irq.pseudo_period),
        ]
