"""Convenience facade wiring a complete HADES system.

A :class:`HadesSystem` owns one simulator, one shared tracer, a set of
nodes, the network connecting them, the generic dispatcher and the
execution monitor — the whole gray layer of the paper's Figure 1 plus
the simulated COTS substrate underneath it.  Most examples and
benchmarks start with::

    system = HadesSystem(node_ids=["n0", "n1"])
    system.attach_scheduler(EDFScheduler(scope="n0"))
    ...
    system.run(until=1_000_000)
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from repro.core.costs import DispatcherCosts, KernelActivity
from repro.core.dispatcher import Dispatcher
from repro.core.monitoring import ExecutionMonitor
from repro.core.tnetwork import install_tnetwork
from repro.kernel.clocks import HardwareClock
from repro.kernel.node import Node
from repro.network.network import Network
from repro.obs.metrics import RunReport, resolve_metrics
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer


class HadesSystem:
    """One simulated deployment of the middleware."""

    def __init__(self, node_ids: Iterable[str] = ("n0",),
                 costs: Optional[DispatcherCosts] = None,
                 network_latency: int = 50,
                 network_jitter: int = 0,
                 seed: int = 0,
                 context_switch_cost: int = 0,
                 clock_drifts: Optional[Dict[str, float]] = None,
                 with_tnetwork: bool = False,
                 background_activities: bool = False,
                 on_deadline_miss: str = "record",
                 abort_mode: str = "kill",
                 node_kwargs: Optional[Dict[str, Any]] = None,
                 metrics: Any = None,
                 trace_maxlen: Optional[int] = None,
                 trace_categories: Optional[Iterable[str]] = None,
                 backend: Optional[str] = None):
        # ``metrics`` accepts a MetricsRegistry, True (create one), or
        # None/False (disabled — the near-zero-cost default); see
        # :func:`repro.obs.resolve_metrics` for the full contract.
        # ``backend`` names the engine's event-set implementation
        # ("heapq" or "calendar"); an explicit argument wins over the
        # REPRO_SIM_BACKEND environment variable, which wins over the
        # heapq default.  Both backends produce byte-identical traces
        # (tests/test_backend_conformance.py).
        self.metrics = resolve_metrics(metrics)
        self.sim = Simulator(metrics=self.metrics, backend=backend)
        self.backend = self.sim.backend
        self.tracer = Tracer(lambda: self.sim.now, maxlen=trace_maxlen,
                             categories=trace_categories)
        self.monitor = ExecutionMonitor()
        self.network = Network(self.sim, self.tracer,
                               base_latency=network_latency,
                               jitter_bound=network_jitter, seed=seed,
                               metrics=self.metrics)
        self.nodes: Dict[str, Node] = {}
        drifts = clock_drifts or {}
        extra = node_kwargs or {}
        for node_id in node_ids:
            clock = HardwareClock(self.sim, drift=drifts.get(node_id, 0.0))
            node = Node(self.sim, node_id, tracer=self.tracer, clock=clock,
                        context_switch_cost=context_switch_cost,
                        metrics=self.metrics, **extra)
            self.nodes[node_id] = node
            self.network.add_node(node)
            if background_activities:
                node.start_background_activities()
        self.network.connect_all()
        self.dispatcher = Dispatcher(self.sim, network=self.network,
                                     costs=costs, tracer=self.tracer,
                                     monitor=self.monitor,
                                     on_deadline_miss=on_deadline_miss,
                                     abort_mode=abort_mode,
                                     metrics=self.metrics)
        for node in self.nodes.values():
            self.dispatcher.register_node(node)
        if with_tnetwork:
            for node_id, node in self.nodes.items():
                install_tnetwork(node, self.network.interfaces[node_id])

    # -- delegation helpers ------------------------------------------------

    def attach_scheduler(self, scheduler) -> Any:
        """Plug a scheduling policy into the dispatcher; returns it."""
        self.dispatcher.attach_scheduler(scheduler)
        return scheduler

    def node(self, node_id: str) -> Node:
        """The :class:`~repro.kernel.node.Node` with the given id."""
        return self.nodes[node_id]

    def activate(self, task, **kwargs):
        """Issue an activation request for ``task`` (dispatcher shortcut)."""
        return self.dispatcher.activate(task, **kwargs)

    def register_periodic(self, task, **kwargs) -> None:
        """Drive ``task`` from its periodic arrival law (shortcut)."""
        self.dispatcher.register_periodic(task, **kwargs)

    def run(self, until: Optional[int] = None) -> None:
        """Advance simulated time (to ``until``, or until idle)."""
        self.sim.run(until=until)

    def run_report(self, **meta: Any) -> RunReport:
        """Snapshot this deployment's metrics as a structured report.

        Includes ``sim_time`` and ``trace_records`` in the report meta.
        With metrics disabled (the default) the report is empty except
        for the meta — campaigns can aggregate it either way.
        """
        meta.setdefault("sim_time", self.sim.now)
        meta.setdefault("trace_records", len(self.tracer))
        return self.metrics.snapshot(**meta)

    # -- §4.2 characterisation of the deployed substrate ---------------------

    def kernel_activities(self) -> List[KernelActivity]:
        """The background kernel activities of this deployment, in the
        form the feasibility tests consume."""
        activities: List[KernelActivity] = []
        for node_id in sorted(self.nodes):
            node = self.nodes[node_id]
            activities.append(KernelActivity(
                f"{node_id}:clock", node.clock_tick.wcet,
                node.clock_tick.period))
            activities.append(KernelActivity(
                f"{node_id}:net", node.net_irq.wcet,
                node.net_irq.pseudo_period))
        return activities

    def node_kernel_activities(self, node_id: str) -> List[KernelActivity]:
        """One node's §4.2 background activities, for per-CPU tests."""
        node = self.nodes[node_id]
        return [
            KernelActivity("clock", node.clock_tick.wcet,
                           node.clock_tick.period),
            KernelActivity("net", node.net_irq.wcet,
                           node.net_irq.pseudo_period),
        ]
