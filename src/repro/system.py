"""Convenience facade wiring a complete HADES system.

A :class:`HadesSystem` owns one simulator, one shared tracer, a set of
nodes, the network connecting them, the generic dispatcher and the
execution monitor — the whole gray layer of the paper's Figure 1 plus
the simulated COTS substrate underneath it.  Most examples and
benchmarks start with::

    system = HadesSystem(node_ids=["n0", "n1"])
    system.attach_scheduler(EDFScheduler(scope="n0"))
    ...
    system.run(until=1_000_000)
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.core.costs import DispatcherCosts, KernelActivity
from repro.core.dispatcher import Dispatcher
from repro.core.monitoring import ExecutionMonitor
from repro.core.tnetwork import install_tnetwork
from repro.kernel.clocks import HardwareClock
from repro.kernel.node import Node
from repro.network.network import Network
from repro.obs.metrics import RunReport, resolve_metrics
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer


class HadesSystem:
    """One simulated deployment of the middleware."""

    def __init__(self, node_ids: Iterable[str] = ("n0",),
                 costs: Optional[DispatcherCosts] = None,
                 network_latency: int = 50,
                 network_jitter: int = 0,
                 seed: int = 0,
                 context_switch_cost: int = 0,
                 clock_drifts: Optional[Dict[str, float]] = None,
                 with_tnetwork: bool = False,
                 background_activities: bool = False,
                 on_deadline_miss: str = "record",
                 abort_mode: str = "kill",
                 node_kwargs: Optional[Dict[str, Any]] = None,
                 metrics: Any = None,
                 trace_maxlen: Optional[int] = None,
                 trace_categories: Optional[Iterable[str]] = None,
                 backend: Optional[str] = None,
                 owned_nodes: Optional[Iterable[str]] = None,
                 lazy_links: bool = False):
        # ``metrics`` accepts a MetricsRegistry, True (create one), or
        # None/False (disabled — the near-zero-cost default); see
        # :func:`repro.obs.resolve_metrics` for the full contract.
        # ``backend`` names the engine's event-set implementation
        # ("heapq" or "calendar"); an explicit argument wins over the
        # REPRO_SIM_BACKEND environment variable, which wins over the
        # heapq default.  Both backends produce byte-identical traces
        # (tests/test_backend_conformance.py).
        # ``owned_nodes`` turns this instance into one shard's replica
        # of the deployment (repro.sim.sharded): every node is built —
        # foreign nodes are inert stand-ins for link endpoints — but
        # only the owned subset activates tasks, sends messages or runs
        # background activity.  ``lazy_links`` defers full-mesh link
        # construction to first use (see :class:`repro.network.Network`).
        self.metrics = resolve_metrics(metrics)
        self.sim = Simulator(metrics=self.metrics, backend=backend)
        self.backend = self.sim.backend
        self.tracer = Tracer(lambda: self.sim.now, maxlen=trace_maxlen,
                             categories=trace_categories)
        self.monitor = ExecutionMonitor()
        node_ids = list(node_ids)
        self.owned_nodes: Optional[frozenset] = None
        if owned_nodes is not None:
            self.owned_nodes = frozenset(owned_nodes)
            unknown = self.owned_nodes - set(node_ids)
            if unknown:
                raise ValueError(
                    f"owned_nodes {sorted(unknown)} are not in node_ids")
        self.network = Network(self.sim, self.tracer,
                               base_latency=network_latency,
                               jitter_bound=network_jitter, seed=seed,
                               metrics=self.metrics, lazy_links=lazy_links)
        self.nodes: Dict[str, Node] = {}
        drifts = clock_drifts or {}
        extra = node_kwargs or {}
        for node_id in node_ids:
            clock = HardwareClock(self.sim, drift=drifts.get(node_id, 0.0))
            node = Node(self.sim, node_id, tracer=self.tracer, clock=clock,
                        context_switch_cost=context_switch_cost,
                        metrics=self.metrics, **extra)
            self.nodes[node_id] = node
            self.network.add_node(node)
            if background_activities and self._owns(node_id):
                node.start_background_activities()
        if self.owned_nodes is not None:
            self.network.set_shard_owner(self.owned_nodes)
        self.network.connect_all()
        self.dispatcher = Dispatcher(self.sim, network=self.network,
                                     costs=costs, tracer=self.tracer,
                                     monitor=self.monitor,
                                     on_deadline_miss=on_deadline_miss,
                                     abort_mode=abort_mode,
                                     metrics=self.metrics,
                                     owned_nodes=owned_nodes)
        for node in self.nodes.values():
            self.dispatcher.register_node(node)
        if with_tnetwork:
            for node_id, node in self.nodes.items():
                if self._owns(node_id):
                    install_tnetwork(node, self.network.interfaces[node_id])
        # Set by :meth:`scripted`; required for ``run(shards=N)``.
        self._builder: Optional[Callable[["HadesSystem"], Any]] = None
        self._scripted_kwargs: Optional[Dict[str, Any]] = None

    def _owns(self, node_id: str) -> bool:
        """Whether this (possibly shard-replica) system owns ``node_id``."""
        return self.owned_nodes is None or node_id in self.owned_nodes

    @classmethod
    def scripted(cls, build: Callable[["HadesSystem"], Any],
                 **kwargs: Any) -> "HadesSystem":
        """Create a system from a replayable builder function.

        ``build(system)`` receives the freshly constructed system and
        registers the whole workload — tasks, schedulers, fault plans,
        message scripts.  The builder must be deterministic and
        shard-agnostic: sharded execution (``run(shards=N)``) replays
        it inside every worker against that worker's shard replica,
        where activity on foreign nodes silently becomes a no-op.
        Constructor ``kwargs`` are replayed too, so they must not
        include ``owned_nodes`` (the sharder assigns it).
        """
        if "owned_nodes" in kwargs:
            raise ValueError("scripted() builds whole systems; "
                             "owned_nodes is assigned by run(shards=N)")
        system = cls(**kwargs)
        system._builder = build
        system._scripted_kwargs = dict(kwargs)
        build(system)
        return system

    # -- delegation helpers ------------------------------------------------

    def attach_scheduler(self, scheduler) -> Any:
        """Plug a scheduling policy into the dispatcher; returns it."""
        self.dispatcher.attach_scheduler(scheduler)
        return scheduler

    def node(self, node_id: str) -> Node:
        """The :class:`~repro.kernel.node.Node` with the given id."""
        return self.nodes[node_id]

    def activate(self, task, **kwargs):
        """Issue an activation request for ``task`` (dispatcher shortcut)."""
        return self.dispatcher.activate(task, **kwargs)

    def register_periodic(self, task, **kwargs) -> Any:
        """Drive ``task`` from its periodic arrival law (shortcut);
        returns the :class:`~repro.core.dispatcher.PeriodicDriver`."""
        return self.dispatcher.register_periodic(task, **kwargs)

    def run(self, until: Optional[int] = None,
            shards: Optional[int] = None,
            partition: Optional[Sequence[Sequence[str]]] = None) -> Any:
        """Advance simulated time (to ``until``, or until idle).

        With ``shards=N`` (or an explicit ``partition=`` — a list of
        node-id groups) the run executes as a conservative parallel
        simulation: nodes are partitioned across N worker processes
        that synchronize on the network's guaranteed delivery bounds
        (see :mod:`repro.sim.sharded`).  Requires a system built with
        :meth:`scripted`.  Returns the
        :class:`~repro.sim.sharded.ShardRunResult` (with the merged,
        serial-identical trace loaded back into :attr:`tracer`), or
        ``None`` for a plain serial run.
        """
        if shards is None and partition is None:
            self.sim.run(until=until)
            return None
        from repro.sim.sharded import run_sharded
        return run_sharded(self, until=until, shards=shards,
                           partition=partition)

    def run_report(self, **meta: Any) -> RunReport:
        """Snapshot this deployment's metrics as a structured report.

        Includes ``sim_time`` and ``trace_records`` in the report meta.
        With metrics disabled (the default) the report is empty except
        for the meta — campaigns can aggregate it either way.
        """
        meta.setdefault("sim_time", self.sim.now)
        meta.setdefault("trace_records", len(self.tracer))
        return self.metrics.snapshot(**meta)

    # -- §4.2 characterisation of the deployed substrate ---------------------

    def kernel_activities(self) -> List[KernelActivity]:
        """The background kernel activities of this deployment, in the
        form the feasibility tests consume."""
        activities: List[KernelActivity] = []
        for node_id in sorted(self.nodes):
            node = self.nodes[node_id]
            activities.append(KernelActivity(
                f"{node_id}:clock", node.clock_tick.wcet,
                node.clock_tick.period))
            activities.append(KernelActivity(
                f"{node_id}:net", node.net_irq.wcet,
                node.net_irq.pseudo_period))
        return activities

    def node_kernel_activities(self, node_id: str) -> List[KernelActivity]:
        """One node's §4.2 background activities, for per-CPU tests."""
        node = self.nodes[node_id]
        return [
            KernelActivity("clock", node.clock_tick.wcet,
                           node.clock_tick.period),
            KernelActivity("net", node.net_irq.wcet,
                           node.net_irq.pseudo_period),
        ]
