"""Standalone experiment runner: ``python -m repro.experiments``.

Regenerates the paper's figures and experiment tables (DESIGN.md §4)
by running the benchmark harness with table printing enabled.  This is
a thin front door over ``pytest benchmarks/ --benchmark-only -s``; it
therefore needs a source checkout (the ``benchmarks/`` directory is
not installed as part of the library).

Usage::

    python -m repro.experiments              # everything
    python -m repro.experiments E4 E11       # only selected experiments
    python -m repro.experiments E9 --jobs 4  # parallel fault campaigns
    python -m repro.experiments --list       # what is available

``--jobs N`` fans campaign-style experiments (E9/E9b, the parallel
campaign benchmark) out to N worker processes; results are merged in
seed order and are identical to a serial run.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys
from typing import List, Optional

#: Environment variable carrying ``--jobs`` into the benchmark processes.
JOBS_ENV = "REPRO_CAMPAIGN_JOBS"

#: Experiment id -> benchmark file (kept in sync with DESIGN.md §4).
EXPERIMENTS = {
    "F1": "bench_architecture.py",
    "F2": "bench_fig2_edf_cooperation.py",
    "F3": "bench_fig3_translation.py",
    "E1": "bench_cost_calibration.py",
    "E2": "bench_kernel_activities.py",
    "E3": "bench_spuri_test.py",
    "E4": "bench_hades_test.py",
    "E5": "bench_compatibility.py",
    "E6": "bench_clocksync.py",
    "E7": "bench_broadcast.py",
    "E8": "bench_replication.py",
    "E9": "bench_monitoring.py",
    "E10": "bench_policy_comparison.py",
    "E11": "bench_pessimism.py",
    "E12": "bench_end_to_end.py",
    "E13": "bench_end_to_end_analysis.py",
    "E14": "bench_overhead.py",
    "E15": "bench_observability.py",
    "E16": "bench_parallel_campaign.py",
    "E17": "bench_engine_hotpath.py",
    "E18": "bench_forensics.py",
    "E19": "bench_admission.py",
    "E20": "bench_engine_hotpath.py",
    "E21": "bench_sharded_scaling.py",
    "E22": "bench_service_scenarios.py",
    "E23": "bench_live_monitoring.py",
    "E24": "bench_hetero_mapping.py",
    "A1": "bench_ablations.py",
    "A2": "bench_ablations.py",
    "A3": "bench_ablations.py",
    "A4": "bench_ablations.py",
    "A5": "bench_modes_cohabitation.py",
    "A6": "bench_modes_cohabitation.py",
    "A7": "bench_modes_cohabitation.py",
    "PERF": "bench_scalability.py",
}


def find_benchmarks_dir() -> Optional[pathlib.Path]:
    """Locate the benchmarks directory of a source checkout."""
    candidates = [
        pathlib.Path.cwd() / "benchmarks",
        # src/repro/experiments.py -> repo root / benchmarks
        pathlib.Path(__file__).resolve().parent.parent.parent / "benchmarks",
    ]
    for candidate in candidates:
        if candidate.is_dir() and any(candidate.glob("bench_*.py")):
            return candidate
    return None


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if "--list" in argv:
        for exp_id, filename in EXPERIMENTS.items():
            print(f"{exp_id:>5}  {filename}")
        return 0

    jobs: Optional[int] = None
    if "--jobs" in argv:
        position = argv.index("--jobs")
        try:
            jobs = int(argv[position + 1])
        except (IndexError, ValueError):
            print("error: --jobs requires an integer argument",
                  file=sys.stderr)
            return 2
        if jobs < 1:
            print("error: --jobs must be >= 1", file=sys.stderr)
            return 2
        del argv[position:position + 2]

    benchmarks = find_benchmarks_dir()
    if benchmarks is None:
        print("error: benchmarks/ not found — the experiment harness "
              "needs a source checkout of the repository.",
              file=sys.stderr)
        return 2

    selected = [arg for arg in argv if not arg.startswith("-")]
    unknown = [exp for exp in selected if exp not in EXPERIMENTS]
    if unknown:
        print(f"error: unknown experiment id(s): {', '.join(unknown)} "
              f"(try --list)", file=sys.stderr)
        return 2
    if selected:
        files = sorted({EXPERIMENTS[exp] for exp in selected})
        targets = [str(benchmarks / name) for name in files]
    else:
        targets = [str(benchmarks)]

    command = [sys.executable, "-m", "pytest", *targets,
               "--benchmark-only", "-s", "-q"]
    env = dict(os.environ)
    if jobs is not None:
        env[JOBS_ENV] = str(jobs)
    print("+", " ".join(command))
    return subprocess.call(command, cwd=str(benchmarks.parent), env=env)


if __name__ == "__main__":
    raise SystemExit(main())
