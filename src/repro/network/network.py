"""The network: nodes, links, routing.

By default the network is a full mesh of identical links — the shape of
the paper's ATM switch fabric: every node pair communicates directly
with the same bounded latency.  Individual links can be replaced,
degraded or partitioned for fault-injection campaigns.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.kernel.node import Node
from repro.network.interface import NetworkInterface
from repro.network.link import DeliveryOutcome, Link
from repro.network.messages import Message
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer

#: Message-id lane width per source node.  Ids are namespaced per
#: sender (``node_order * stride + per-src count``) so allocation is
#: independent of cross-node interleaving — the property that lets a
#: sharded run (repro.sim.sharded) hand out the same ids as the serial
#: engine without coordination.  10M messages per node per run is far
#: beyond any campaign here; the global fallback lane stays below the
#: first node lane.
MSG_ID_STRIDE = 10_000_000

#: One queued cross-shard delivery: the message plus the send-side
#: decision (absolute delivery instant and planned outcome value).
RemoteDelivery = Tuple[Message, int, str]


class Network:
    """A set of nodes connected by unidirectional links.

    ``lazy_links`` defers link construction to first use (``link()`` /
    ``route()``): a 256-node full mesh is 65k links, almost all of
    which a partitionable scenario never touches.  Semantics are
    unchanged — each link's jitter RNG is seeded from the (seed, src,
    dst) triple, not from creation order — so eager and lazy
    construction drive identical simulations.
    """

    def __init__(self, sim: Simulator, tracer: Optional[Tracer] = None,
                 base_latency: int = 50, size_cost_per_byte: int = 0,
                 jitter_bound: int = 0, seed: int = 0, metrics=None,
                 lazy_links: bool = False):
        from repro.obs.metrics import resolve_metrics

        self.sim = sim
        self.tracer = tracer if tracer is not None else Tracer(lambda: sim.now)
        if self.tracer._clock is None:
            self.tracer.bind_clock(lambda: sim.now)
        self.metrics = resolve_metrics(metrics)
        self._m_no_route = self.metrics.counter("network.no_route")
        self.base_latency = base_latency
        self.size_cost_per_byte = size_cost_per_byte
        self.jitter_bound = jitter_bound
        self._seed = seed
        self.lazy_links = lazy_links
        self.nodes: Dict[str, Node] = {}
        self.interfaces: Dict[str, NetworkInterface] = {}
        self.links: Dict[Tuple[str, str], Link] = {}
        self.lost_no_route = 0
        # Attachment order of nodes, 1-based: the per-src message-id
        # lane index.  Identical in a serial run and in every shard
        # replica, which build the same node list in the same order.
        self._node_order: Dict[str, int] = {}
        self._msg_counters: Dict[Optional[str], int] = {}
        # Sharded execution (repro.sim.sharded): the shard's owned node
        # set, and the outbox of deliveries bound for other shards.
        self.owned: Optional[frozenset] = None
        self.shard_outbox: List[RemoteDelivery] = []

    def next_msg_id(self, src: Optional[str] = None) -> int:
        """Allocate the next message id.

        Ids are unique network-wide and *consecutive per source node*:
        each attached node allocates from its own lane
        (``attachment_order * MSG_ID_STRIDE + count``), so the id of a
        message depends only on how many messages its sender sent
        before it — never on what other nodes did in between.  Callers
        that pass no ``src`` (or an unattached one) share a fallback
        lane below every node lane.
        """
        lane = src if src in self._node_order else None
        count = self._msg_counters.get(lane, 0) + 1
        self._msg_counters[lane] = count
        if lane is None:
            return count
        return self._node_order[lane] * MSG_ID_STRIDE + count

    # -- topology construction ------------------------------------------------

    def add_node(self, node: Node) -> NetworkInterface:
        """Attach ``node``, creating links to and from every existing node
        (deferred to first use under ``lazy_links``)."""
        if node.node_id in self.nodes:
            raise ValueError(f"duplicate node id {node.node_id!r}")
        interface = NetworkInterface(self, node)
        self._node_order[node.node_id] = len(self._node_order) + 1
        if not self.lazy_links:
            for other_id in self.nodes:
                self._make_link(node.node_id, other_id)
                self._make_link(other_id, node.node_id)
        self.nodes[node.node_id] = node
        self.interfaces[node.node_id] = interface
        return interface

    def _make_link(self, src: str, dst: str) -> Link:
        rng = None
        if self.jitter_bound > 0:
            # One RNG per link, derived deterministically from the seed.
            rng = random.Random(f"{self._seed}:{src}->{dst}")
        link = Link(self.sim, self.tracer, src, dst,
                    base_latency=self.base_latency,
                    size_cost_per_byte=self.size_cost_per_byte,
                    jitter_bound=self.jitter_bound, rng=rng,
                    metrics=self.metrics)
        if (self.owned is not None and src in self.owned
                and dst not in self.owned):
            link.redirect = self._queue_remote_delivery
        self.links[(src, dst)] = link
        return link

    def link(self, src: str, dst: str) -> Link:
        """The link object for the (src, dst) pair.

        Under ``lazy_links`` the link (and its delivery wiring) is
        materialized on first access; unknown endpoints still raise
        :class:`KeyError` as in the eager mode.
        """
        existing = self.links.get((src, dst))
        if existing is not None:
            return existing
        if (not self.lazy_links or src == dst
                or src not in self.nodes or dst not in self.nodes):
            raise KeyError((src, dst))
        link = self._make_link(src, dst)
        interface = self.interfaces.get(dst)
        if interface is not None:
            link.connect(interface._deliver_from_link,
                         accepts=interface.accepts_delivery)
        return link

    def connect_all(self) -> None:
        """Wire every link to its destination interface.

        Called automatically by :meth:`route`; exposed for explicitness
        in set-up code.
        """
        for (src, dst), link in self.links.items():
            interface = self.interfaces.get(dst)
            if interface is not None:
                link.connect(interface._deliver_from_link,
                             accepts=interface.accepts_delivery)

    # -- sharded execution (repro.sim.sharded) --------------------------------

    def set_shard_owner(self, owned: Iterable[str]) -> None:
        """Mark this replica as owning ``owned`` nodes (sharded mode).

        Links from an owned source to a foreign destination stop
        scheduling local deliveries: the send-side decision (delivery
        instant + planned outcome) is queued on :attr:`shard_outbox`
        for the coordinator to ship to the destination's shard.
        """
        self.owned = frozenset(owned)
        for (src, dst), link in self.links.items():
            if src in self.owned and dst not in self.owned:
                link.redirect = self._queue_remote_delivery

    def _queue_remote_delivery(self, message: Message, deliver_at: int,
                               outcome: DeliveryOutcome) -> None:
        self.shard_outbox.append((message, deliver_at, outcome.value))

    def drain_shard_outbox(self) -> List[RemoteDelivery]:
        """Remove and return the queued cross-shard deliveries."""
        drained, self.shard_outbox = self.shard_outbox, []
        return drained

    def inject_delivery(self, message: Message, deliver_at: int,
                        outcome: DeliveryOutcome) -> None:
        """Schedule a delivery decided on another shard.

        The receiving side of the cross-shard wire: the local replica
        of the (src, dst) link runs its normal ``_deliver`` — crash
        probe, stats, trace record — at the instant the sender already
        fixed.  Conservative windows guarantee ``deliver_at`` is still
        in this shard's future.
        """
        link = self.link(message.src, message.dst)
        self.sim.call_at(deliver_at,
                         lambda: link._deliver(message, outcome))

    def min_cross_base_latency(self,
                               owner: Dict[str, Any]) -> Optional[int]:
        """Smallest base latency over links crossing shard boundaries.

        ``owner`` maps node id -> shard key; links whose endpoints map
        to different shards count.  This is the conservative lookahead
        of the sharded engine: every delivery takes at least the base
        latency, so a shard at local time *t* cannot affect a peer
        before ``t + lookahead``.  Unmaterialized lazy links use the
        network-wide defaults.  ``None`` when no link crosses.
        """
        best: Optional[int] = None
        crossing_links = 0
        for (src, dst), link in self.links.items():
            if owner.get(src) != owner.get(dst):
                crossing_links += 1
                if best is None or link.base_latency < best:
                    best = link.base_latency
        total_crossing = sum(
            1 for src in self.nodes for dst in self.nodes
            if src != dst and owner.get(src) != owner.get(dst))
        if crossing_links < total_crossing:
            # At least one crossing pair has no materialized link yet;
            # it would be built with the default parameters.
            if best is None or self.base_latency < best:
                best = self.base_latency
        return best

    # -- routing ------------------------------------------------------------

    def route(self, message: Message) -> None:
        """Carry ``message`` over the (src, dst) link."""
        key = (message.src, message.dst)
        link = self.links.get(key)
        if link is None and self.lazy_links:
            try:
                link = self.link(*key)
            except KeyError:
                link = None
        if link is None:
            self.lost_no_route += 1
            self._m_no_route.inc()
            self.tracer.record("network", "no_route", src=message.src,
                               dst=message.dst, msg=message.msg_id)
            return
        if link._on_deliver is None:
            interface = self.interfaces.get(message.dst)
            if interface is not None:
                link.connect(interface._deliver_from_link,
                             accepts=interface.accepts_delivery)
        link.transmit(message)

    # -- fault helpers --------------------------------------------------------

    def partition(self, group_a: Iterable[str], group_b: Iterable[str]) -> None:
        """Take down every link crossing the two groups."""
        group_a, group_b = set(group_a), set(group_b)
        if self.lazy_links:
            # Materialize the crossing links so the outage is a real
            # per-link state, visible to later sends either way.
            for a in group_a & self.nodes.keys():
                for b in group_b & self.nodes.keys():
                    if a != b:
                        self.link(a, b).up = False
                        self.link(b, a).up = False
            return
        for (src, dst), link in self.links.items():
            if ((src in group_a and dst in group_b)
                    or (src in group_b and dst in group_a)):
                link.up = False

    def heal(self) -> None:
        """Bring every link back up."""
        for link in self.links.values():
            link.up = True

    # -- properties used by timing analyses --------------------------------------

    def max_message_delay(self, size: int = 64) -> int:
        """Network-wide worst-case correct transfer delay for ``size`` bytes."""
        bound = 0
        if self.lazy_links and len(self.nodes) > 1:
            # Unmaterialized pairs would be built with the defaults.
            bound = (self.base_latency + self.size_cost_per_byte * size
                     + self.jitter_bound)
        if self.links:
            bound = max(bound, max(link.guaranteed_bound(size)
                                   for link in self.links.values()))
        return bound

    def node_ids(self) -> List[str]:
        """Sorted ids of the attached nodes."""
        return sorted(self.nodes)

    def __repr__(self) -> str:
        return f"<Network nodes={len(self.nodes)} links={len(self.links)}>"
