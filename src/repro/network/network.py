"""The network: nodes, links, routing.

By default the network is a full mesh of identical links — the shape of
the paper's ATM switch fabric: every node pair communicates directly
with the same bounded latency.  Individual links can be replaced,
degraded or partitioned for fault-injection campaigns.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Tuple

from repro.kernel.node import Node
from repro.network.interface import NetworkInterface
from repro.network.link import Link
from repro.network.messages import Message
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer


class Network:
    """A set of nodes connected by unidirectional links."""

    def __init__(self, sim: Simulator, tracer: Optional[Tracer] = None,
                 base_latency: int = 50, size_cost_per_byte: int = 0,
                 jitter_bound: int = 0, seed: int = 0, metrics=None):
        from repro.obs.metrics import resolve_metrics

        self.sim = sim
        self.tracer = tracer if tracer is not None else Tracer(lambda: sim.now)
        if self.tracer._clock is None:
            self.tracer.bind_clock(lambda: sim.now)
        self.metrics = resolve_metrics(metrics)
        self._m_no_route = self.metrics.counter("network.no_route")
        self.base_latency = base_latency
        self.size_cost_per_byte = size_cost_per_byte
        self.jitter_bound = jitter_bound
        self._seed = seed
        self.nodes: Dict[str, Node] = {}
        self.interfaces: Dict[str, NetworkInterface] = {}
        self.links: Dict[Tuple[str, str], Link] = {}
        self.lost_no_route = 0
        # Per-network message ids keep traces identical across runs in
        # one process (the module-global Message counter does not).
        self._msg_counter = 0

    def next_msg_id(self) -> int:
        """Allocate the next network-unique message id."""
        self._msg_counter += 1
        return self._msg_counter

    # -- topology construction ------------------------------------------------

    def add_node(self, node: Node) -> NetworkInterface:
        """Attach ``node``, creating links to and from every existing node."""
        if node.node_id in self.nodes:
            raise ValueError(f"duplicate node id {node.node_id!r}")
        interface = NetworkInterface(self, node)
        for other_id in self.nodes:
            self._make_link(node.node_id, other_id)
            self._make_link(other_id, node.node_id)
        self.nodes[node.node_id] = node
        self.interfaces[node.node_id] = interface
        return interface

    def _make_link(self, src: str, dst: str) -> Link:
        rng = None
        if self.jitter_bound > 0:
            # One RNG per link, derived deterministically from the seed.
            rng = random.Random(f"{self._seed}:{src}->{dst}")
        link = Link(self.sim, self.tracer, src, dst,
                    base_latency=self.base_latency,
                    size_cost_per_byte=self.size_cost_per_byte,
                    jitter_bound=self.jitter_bound, rng=rng,
                    metrics=self.metrics)
        self.links[(src, dst)] = link
        return link

    def link(self, src: str, dst: str) -> Link:
        """The link object for the (src, dst) pair."""
        return self.links[(src, dst)]

    def connect_all(self) -> None:
        """Wire every link to its destination interface.

        Called automatically by :meth:`route`; exposed for explicitness
        in set-up code.
        """
        for (src, dst), link in self.links.items():
            interface = self.interfaces.get(dst)
            if interface is not None:
                link.connect(interface._deliver_from_link,
                             accepts=interface.accepts_delivery)

    # -- routing ------------------------------------------------------------

    def route(self, message: Message) -> None:
        """Carry ``message`` over the (src, dst) link."""
        key = (message.src, message.dst)
        link = self.links.get(key)
        if link is None:
            self.lost_no_route += 1
            self._m_no_route.inc()
            self.tracer.record("network", "no_route", src=message.src,
                               dst=message.dst, msg=message.msg_id)
            return
        if link._on_deliver is None:
            interface = self.interfaces.get(message.dst)
            if interface is not None:
                link.connect(interface._deliver_from_link,
                             accepts=interface.accepts_delivery)
        link.transmit(message)

    # -- fault helpers --------------------------------------------------------

    def partition(self, group_a: Iterable[str], group_b: Iterable[str]) -> None:
        """Take down every link crossing the two groups."""
        group_a, group_b = set(group_a), set(group_b)
        for (src, dst), link in self.links.items():
            if ((src in group_a and dst in group_b)
                    or (src in group_b and dst in group_a)):
                link.up = False

    def heal(self) -> None:
        """Bring every link back up."""
        for link in self.links.values():
            link.up = True

    # -- properties used by timing analyses --------------------------------------

    def max_message_delay(self, size: int = 64) -> int:
        """Network-wide worst-case correct transfer delay for ``size`` bytes."""
        if not self.links:
            return 0
        return max(link.guaranteed_bound(size) for link in self.links.values())

    def node_ids(self) -> List[str]:
        """Sorted ids of the attached nodes."""
        return sorted(self.nodes)

    def __repr__(self) -> str:
        return f"<Network nodes={len(self.nodes)} links={len(self.links)}>"
