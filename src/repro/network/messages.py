"""Network message representation."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

_msg_counter = itertools.count(1)


@dataclass
class Message:
    """A datagram travelling between two nodes.

    ``kind`` is a free-form protocol tag ("app", "rbcast", "clocksync",
    "heartbeat", ...); ``size`` is in bytes and feeds the per-byte
    transmission cost of the link.
    """

    src: str
    dst: str
    payload: Any
    kind: str = "app"
    size: int = 64
    send_time: int = -1
    msg_id: int = field(default_factory=lambda: next(_msg_counter))
    #: Set by the link at delivery time.
    deliver_time: int = -1

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"negative message size {self.size}")

    @property
    def latency(self) -> int:
        """Observed transfer delay; -1 until delivered."""
        if self.deliver_time < 0 or self.send_time < 0:
            return -1
        return self.deliver_time - self.send_time

    def __repr__(self) -> str:
        return (f"<Message #{self.msg_id} {self.src}->{self.dst} "
                f"kind={self.kind} size={self.size}>")
