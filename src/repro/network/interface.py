"""Per-node network endpoint.

Delivery path: link → destination node's network-card interrupt (whose
WCET and pseudo-period are the §4.2 ``w_atm`` / ``P_atm`` background
kernel activity) → inbox + receive callbacks.  A crashed node receives
nothing; messages addressed to it while down are lost (crash semantics
of §2.1).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, TYPE_CHECKING

from repro.kernel.node import Node
from repro.network.messages import Message

if TYPE_CHECKING:
    from repro.network.network import Network

Receiver = Callable[[Message], None]


class NetworkInterface:
    """Send/receive endpoint bound to one node."""

    def __init__(self, network: "Network", node: Node):
        self.network = network
        self.node = node
        self.inbox: Deque[Message] = deque()
        self._receivers: List[Receiver] = []
        self._kind_receivers: Dict[str, List[Receiver]] = {}
        self.sent_count = 0
        self.received_count = 0
        node.net_irq.handler = self._irq_handler

    # -- sending ------------------------------------------------------------

    def send(self, dst: str, payload, kind: str = "app",
             size: int = 64) -> Optional[Message]:
        """Send a message to node ``dst``.

        Returns the message, or None if the local node is down (a
        crashed node cannot send).
        """
        if self.node.crashed:
            return None
        owned = self.network.owned
        if owned is not None and self.node.node_id not in owned:
            # Sharded execution: this is a foreign replica of the node;
            # the owning shard performs the send (and allocates the
            # message id from this node's lane).
            return None
        message = Message(src=self.node.node_id, dst=dst, payload=payload,
                          kind=kind, size=size,
                          msg_id=self.network.next_msg_id(self.node.node_id))
        self.sent_count += 1
        self.network.route(message)
        return message

    # -- receiving -----------------------------------------------------------

    def on_receive(self, receiver: Receiver,
                   kind: Optional[str] = None) -> None:
        """Register a callback for incoming messages.

        With ``kind`` the callback only sees messages of that protocol
        tag; otherwise it sees everything.
        """
        if kind is None:
            self._receivers.append(receiver)
        else:
            self._kind_receivers.setdefault(kind, []).append(receiver)

    def accepts_delivery(self) -> bool:
        """Liveness probe consulted by the incoming link at delivery
        time: a crashed node receives nothing (§2.1 crash semantics)."""
        return not self.node.crashed

    def _deliver_from_link(self, message: Message) -> None:
        """Entry point called by the incoming link."""
        if self.node.crashed:
            return
        # Model the network-card receive interrupt: the message becomes
        # visible only after the handler's WCET has executed on the CPU.
        self.node.net_irq.fire(message)

    def _irq_handler(self, message: Message) -> None:
        if self.node.crashed or message is None:
            return
        self.inbox.append(message)
        self.received_count += 1
        for receiver in self._receivers:
            receiver(message)
        for receiver in self._kind_receivers.get(message.kind, ()):
            receiver(message)

    def drain_inbox(self) -> List[Message]:
        """Remove and return every queued message."""
        drained = list(self.inbox)
        self.inbox.clear()
        return drained

    def __repr__(self) -> str:
        return (f"<NetworkInterface {self.node.node_id} "
                f"sent={self.sent_count} recv={self.received_count}>")
