"""Simulated network substrate (substitute for the ATM testbed).

The paper's prototype used "an ATM network of Pentium workstations"
(§2.2.1) and models network management as an independent HADES task
``T_network`` (§3.1).  The fault model covers "performance and omission
failures for the communication network" (§2.1).

This package provides the corresponding simulated substrate:

* :class:`~repro.network.link.Link` — a unidirectional channel with
  *bounded* latency (``[min_latency, max_latency]``), per-byte cost and
  injectable omission / performance faults,
* :class:`~repro.network.network.Network` — the set of nodes and links
  (full mesh by default), message routing and delivery through the
  destination node's network-card interrupt,
* :class:`~repro.network.interface.NetworkInterface` — per-node send /
  receive endpoint with inbox and receive callbacks.

Timing guarantees offered to upper layers: if neither endpoint crashes
and the message is not hit by an omission fault, a message sent at
``t`` is delivered no later than ``t + max_latency + size_cost * size +
irq_wcet`` — the bound the time-bounded communication services build on.
"""

from repro.network.interface import NetworkInterface
from repro.network.link import (
    DeliveryOutcome,
    Link,
    LinkFault,
    OmissionFault,
    PerformanceFault,
)
from repro.network.messages import Message
from repro.network.network import Network

__all__ = [
    "DeliveryOutcome",
    "Link",
    "LinkFault",
    "Message",
    "Network",
    "NetworkInterface",
    "OmissionFault",
    "PerformanceFault",
]
