"""Point-to-point links with bounded latency and injectable faults.

A link delivers each message after ``base_latency + size_cost * size +
jitter`` microseconds, where jitter is drawn deterministically from a
seeded RNG in ``[0, jitter_bound]``.  The *guaranteed* bound used by
feasibility analyses is :attr:`Link.max_latency`; a correct link never
exceeds it.

Faults (paper §2.1: omission and performance failures for the
communication network) are injected through :class:`LinkFault` hooks:

* :class:`OmissionFault` drops messages (probabilistically or by plan),
* :class:`PerformanceFault` delays messages beyond the bound — the
  failure mode that timing-failure detection must catch.
"""

from __future__ import annotations

import enum
import random
from typing import Callable, List, Optional, Tuple, TYPE_CHECKING

from repro.network.messages import Message
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer

if TYPE_CHECKING:
    from repro.network.interface import NetworkInterface


class DeliveryOutcome(enum.Enum):
    """Possible fates of a transmitted message."""
    DELIVERED = "delivered"      # arrived within the guaranteed bound
    DROPPED = "dropped"          # omission fault
    LATE = "late"                # delivered past the guaranteed bound
    DST_CRASHED = "dst_crashed"  # receiver was down at delivery time


class LinkFault:
    """Base fault hook: inspects a message, returns (drop?, extra_delay)."""

    def apply(self, message: Message) -> Tuple[bool, int]:
        """Apply this operation; returns its result."""
        raise NotImplementedError


class OmissionFault(LinkFault):
    """Drops messages, probabilistically and/or by explicit sequence plan.

    ``probability`` applies an i.i.d. coin per message using the given
    deterministic RNG; ``drop_ids`` drops specific message ids (useful
    for adversarial worst-case tests).  ``max_consecutive`` optionally
    caps runs of drops, matching the bounded-omission assumption that
    time-bounded reliable broadcast protocols rely on.
    """

    def __init__(self, probability: float = 0.0,
                 rng: Optional[random.Random] = None,
                 drop_ids: Optional[set] = None,
                 max_consecutive: Optional[int] = None):
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability {probability} outside [0, 1]")
        if probability > 0 and rng is None:
            raise ValueError("probabilistic omission needs an explicit rng")
        self.probability = probability
        self.rng = rng
        self.drop_ids = drop_ids or set()
        self.max_consecutive = max_consecutive
        self._run = 0
        self.dropped = 0

    def apply(self, message: Message) -> Tuple[bool, int]:
        """Apply this operation; returns its result."""
        drop = message.msg_id in self.drop_ids
        if not drop and self.probability > 0:
            drop = self.rng.random() < self.probability
        if drop and self.max_consecutive is not None:
            if self._run >= self.max_consecutive:
                drop = False
        self._run = self._run + 1 if drop else 0
        if drop:
            self.dropped += 1
        return drop, 0


class PerformanceFault(LinkFault):
    """Delays messages past the link's guaranteed bound."""

    def __init__(self, extra_delay: int, probability: float = 1.0,
                 rng: Optional[random.Random] = None):
        if extra_delay < 0:
            raise ValueError("extra_delay must be >= 0")
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability {probability} outside [0, 1]")
        if probability < 1.0 and rng is None:
            raise ValueError("probabilistic delay needs an explicit rng")
        self.extra_delay = int(extra_delay)
        self.probability = probability
        self.rng = rng
        self.delayed = 0

    def apply(self, message: Message) -> Tuple[bool, int]:
        """Apply this operation; returns its result."""
        hit = self.probability >= 1.0 or self.rng.random() < self.probability
        if hit:
            self.delayed += 1
            return False, self.extra_delay
        return False, 0


class Link:
    """A unidirectional channel from ``src`` to ``dst``."""

    def __init__(self, sim: Simulator, tracer: Tracer, src: str, dst: str,
                 base_latency: int = 50, size_cost_per_byte: int = 0,
                 jitter_bound: int = 0,
                 rng: Optional[random.Random] = None, fifo: bool = True,
                 metrics=None):
        from repro.obs.metrics import resolve_metrics

        if base_latency < 0 or jitter_bound < 0 or size_cost_per_byte < 0:
            raise ValueError("latency parameters must be >= 0")
        if jitter_bound > 0 and rng is None:
            raise ValueError("jitter needs an explicit rng")
        self.sim = sim
        self.tracer = tracer
        self.src = src
        self.dst = dst
        self.base_latency = int(base_latency)
        self.size_cost_per_byte = int(size_cost_per_byte)
        self.jitter_bound = int(jitter_bound)
        self.rng = rng
        self.fifo = fifo
        self.up = True
        self.faults: List[LinkFault] = []
        self._last_delivery = 0
        self.stats = {outcome: 0 for outcome in DeliveryOutcome}
        self._on_deliver: Optional[Callable[[Message], None]] = None
        self._accepts: Optional[Callable[[], bool]] = None
        # Sharded execution: when set, a transmitted message is handed
        # to this callback as ``(message, deliver_at, outcome)`` instead
        # of being scheduled locally — the destination lives on another
        # shard, which replays ``_deliver`` at the decided instant.
        # All send-side decisions (faults, jitter, FIFO push-back, the
        # LATE classification) still happen here, on the sender's
        # replica of the link, exactly as in a serial run.
        self.redirect: Optional[
            Callable[[Message, int, "DeliveryOutcome"], None]] = None
        self.metrics = resolve_metrics(metrics)
        self._m_sent = self.metrics.counter("network.messages_sent")
        self._m_delivered = self.metrics.counter("network.messages_delivered")
        self._m_dropped = self.metrics.counter("network.messages_dropped")
        self._h_latency = self.metrics.histogram("network.latency")

    def guaranteed_bound(self, size: int) -> int:
        """Worst-case correct transfer delay for a ``size``-byte message."""
        return (self.base_latency + self.size_cost_per_byte * size
                + self.jitter_bound)

    def add_fault(self, fault: LinkFault) -> None:
        """Attach a fault hook to this link."""
        self.faults.append(fault)

    def clear_faults(self) -> None:
        """Remove every fault hook from this link."""
        self.faults.clear()

    def connect(self, deliver: Callable[[Message], None],
                accepts: Optional[Callable[[], bool]] = None) -> None:
        """Set the delivery callback (normally the dst NetworkInterface).

        ``accepts`` is an optional liveness probe consulted at delivery
        time; returning False classifies the message as
        :attr:`DeliveryOutcome.DST_CRASHED` instead of delivered.
        """
        self._on_deliver = deliver
        self._accepts = accepts

    def transmit(self, message: Message) -> DeliveryOutcome:
        """Send ``message``; returns the *planned* outcome.

        The outcome is computed at send time (deterministically, from
        the injected faults and the already-known delivery instant) but
        only observable to the receiver at delivery time, as on a real
        network.  A message is LATE iff it reaches the receiver past
        the guaranteed bound — ``deliver_time - send_time >
        guaranteed_bound(size)`` — regardless of *why*: a fault delay
        fully absorbed by jitter headroom stays DELIVERED, while FIFO
        push-back behind a delayed predecessor counts as LATE.
        Delivery exactly at the bound is on time.
        """
        message.send_time = self.sim.now
        self._m_sent.inc()
        # The message span's opening edge (recorded for every transmit,
        # before the link decides the message's fate).  For remote
        # precedence constraints the payload carries the HEUG
        # correlation ids (activation + edge index); forwarding them
        # here lets a span reconstructor tie this msg_id to its
        # activation without guessing from FIFO order.
        send_details = {"link": f"{self.src}->{self.dst}",
                        "msg": message.msg_id, "kind": message.kind,
                        "size": message.size}
        payload = message.payload
        if type(payload) is dict and "task" in payload and "seq" in payload:
            send_details["activation_id"] = (f"{payload['task']}"
                                             f"#{payload['seq']}")
            if "edge" in payload:
                send_details["edge"] = payload["edge"]
        self.tracer.record("network", "send", **send_details)
        if not self.up:
            self.stats[DeliveryOutcome.DROPPED] += 1
            self._m_dropped.inc()
            self.tracer.record("network", "drop", link=f"{self.src}->{self.dst}",
                               msg=message.msg_id, reason="link_down")
            return DeliveryOutcome.DROPPED

        extra = 0
        for fault in self.faults:
            drop, delay = fault.apply(message)
            if drop:
                self.stats[DeliveryOutcome.DROPPED] += 1
                self._m_dropped.inc()
                self.tracer.record("network", "drop",
                                   link=f"{self.src}->{self.dst}",
                                   msg=message.msg_id, reason="omission")
                return DeliveryOutcome.DROPPED
            extra += delay

        jitter = self.rng.randrange(0, self.jitter_bound + 1) if self.jitter_bound else 0
        delay = (self.base_latency + self.size_cost_per_byte * message.size
                 + jitter + extra)
        deliver_at = self.sim.now + delay
        if self.fifo and deliver_at < self._last_delivery:
            deliver_at = self._last_delivery
        self._last_delivery = deliver_at

        late = (deliver_at - message.send_time
                > self.guaranteed_bound(message.size))
        outcome = DeliveryOutcome.LATE if late else DeliveryOutcome.DELIVERED
        redirect = self.redirect
        if redirect is not None:
            redirect(message, deliver_at, outcome)
            return outcome
        self.sim.call_at(deliver_at, lambda: self._deliver(message, outcome))
        return outcome

    def _deliver(self, message: Message, outcome: DeliveryOutcome) -> None:
        message.deliver_time = self.sim.now
        if self._on_deliver is None or (self._accepts is not None
                                        and not self._accepts()):
            # No receiver wired, or the receiver is down at delivery
            # time (crash semantics of §2.1): the message is lost.
            self.stats[DeliveryOutcome.DST_CRASHED] += 1
            self.tracer.record("network", "dst_crashed",
                               link=f"{self.src}->{self.dst}",
                               msg=message.msg_id, kind=message.kind)
            return
        self.stats[outcome] += 1
        self._m_delivered.inc()
        self._h_latency.observe(message.latency)
        self.tracer.record("network", "deliver",
                           link=f"{self.src}->{self.dst}",
                           msg=message.msg_id, kind=message.kind,
                           latency=message.latency,
                           outcome=outcome.value,
                           bound=self.guaranteed_bound(message.size))
        self._on_deliver(message)

    def __repr__(self) -> str:
        return (f"<Link {self.src}->{self.dst} "
                f"bound={self.guaranteed_bound(0)}+{self.size_cost_per_byte}/B>")
