"""Avionics-style rate-group workloads and random distributed pipelines.

Flight software is classically organised in harmonic *rate groups*
(e.g. 80 / 40 / 20 / 10 Hz); :func:`avionics_taskset` generates such
sets with utilisation split across groups.  :func:`random_pipeline`
generates random distributed processing chains (the sensor→fusion→
actuation shape) for tests and benchmarks of the end-to-end machinery.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.core.heug import Task
from repro.feasibility.taskset import AnalysisTask
from repro.workloads.generators import uunifast

#: Classic rate groups, as periods in microseconds (80/40/20/10 Hz).
RATE_GROUP_PERIODS = (12_500, 25_000, 50_000, 100_000)


def avionics_taskset(tasks_per_group: int, total_utilization: float,
                     seed: int,
                     periods: Sequence[int] = RATE_GROUP_PERIODS
                     ) -> List[AnalysisTask]:
    """A harmonic rate-group task set at a target utilisation.

    Each group receives an equal utilisation share, split among its
    tasks by UUniFast; deadlines are implicit (= period), the classic
    cyclic-executive-friendly shape RM handles at high utilisation.
    """
    if tasks_per_group <= 0:
        raise ValueError("tasks_per_group must be > 0")
    rng = random.Random(seed)
    tasks: List[AnalysisTask] = []
    share = total_utilization / len(periods)
    for group_index, period in enumerate(periods):
        utilizations = uunifast(tasks_per_group, share, rng)
        for task_index, u in enumerate(utilizations):
            wcet = max(1, int(u * period))
            tasks.append(AnalysisTask(
                name=f"rg{group_index}_t{task_index}", wcet=wcet,
                deadline=period, period=period))
    return tasks


def random_pipeline(name: str, node_ids: Sequence[str], seed: int,
                    n_stages: Optional[int] = None,
                    wcet_range=(100, 2_000),
                    deadline_slack: float = 4.0) -> Task:
    """A random distributed processing chain.

    Stages are assigned round-robin-with-jumps over ``node_ids`` so
    that some precedence constraints are local and some remote; the
    deadline is ``deadline_slack`` times the total WCET (slack for
    network hops and interference).
    """
    if not node_ids:
        raise ValueError("need at least one node")
    if deadline_slack <= 1.0:
        raise ValueError("deadline_slack must exceed 1.0")
    rng = random.Random(seed)
    stages = n_stages if n_stages is not None else rng.randrange(2, 6)
    wcets = [rng.randrange(*wcet_range) for _ in range(stages)]
    deadline = int(sum(wcets) * deadline_slack)
    chain = Task(name, deadline=deadline, node_id=node_ids[0])
    previous = None
    for index, wcet in enumerate(wcets):
        node = rng.choice(list(node_ids))
        eu = chain.code_eu(f"stage{index}", wcet=wcet, node_id=node)
        if previous is not None:
            chain.precede(previous, eu)
        previous = eu
    return chain.validate()
