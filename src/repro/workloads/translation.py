"""Task-model translations into HEUGs.

:func:`spuri_to_heug` is the paper's **Figure 3**: a Spuri task with a
critical section becomes the chain

    eu_i1 (w = c_before_i)
      -> eu_i2 (w = cs_i, resource S, latest = B'_i)
        -> eu_i3 (w = c_after_i)

with the task deadline D = D_i carried by the HEUG.  The middle unit's
*latest start time* is set to the worst-case blocking bound B'_i so
the dispatcher's monitoring detects blocking beyond what the §5.3
analysis assumed.  A task without a critical section translates to a
single unit.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.attributes import EUAttributes, Periodic, Sporadic
from repro.core.heug import Task
from repro.core.resources import AccessMode, Resource
from repro.feasibility.taskset import AnalysisTask, SpuriTask


def spuri_to_heug(task: SpuriTask, node_id: str,
                  resources: Dict[str, Resource],
                  latest_blocking: Optional[int] = None,
                  actual_fraction: float = 1.0) -> Task:
    """Figure 3 translation of one Spuri task.

    ``resources`` maps resource names to shared :class:`Resource`
    objects (one per name across the whole task set, so that critical
    sections actually contend).  ``latest_blocking`` is B'_i for the
    middle unit's ``latest`` attribute.  ``actual_fraction`` scales the
    actual execution times below the WCETs (1.0 = always worst case).
    """
    if not 0.0 < actual_fraction <= 1.0:
        raise ValueError("actual_fraction must be in (0, 1]")
    heug = Task(task.name, deadline=task.deadline,
                arrival=Sporadic(task.pseudo_period), node_id=node_id)

    def actual(wcet: int) -> int:
        return max(0, int(wcet * actual_fraction)) if wcet else 0

    if task.resource is None:
        heug.code_eu("eu1", wcet=task.wcet, actual_time=actual(task.wcet))
        return heug.validate()

    resource = resources.setdefault(task.resource,
                                    Resource(task.resource, node_id=node_id))
    eu1 = heug.code_eu("eu1", wcet=task.c_before,
                       actual_time=actual(task.c_before))
    eu2 = heug.code_eu(
        "eu2", wcet=task.cs, actual_time=actual(task.cs),
        resources=[(resource, AccessMode.EXCLUSIVE)],
        attrs=EUAttributes(latest=latest_blocking)
        if latest_blocking is not None else None)
    eu3 = heug.code_eu("eu3", wcet=task.c_after,
                       actual_time=actual(task.c_after))
    heug.chain(eu1, eu2, eu3)
    return heug.validate()


def periodic_to_heug(task: AnalysisTask, node_id: str,
                     actual_fraction: float = 1.0) -> Task:
    """A periodic analysis task as a single-unit HEUG."""
    if not 0.0 < actual_fraction <= 1.0:
        raise ValueError("actual_fraction must be in (0, 1]")
    heug = Task(task.name, deadline=task.deadline,
                arrival=Periodic(task.period), node_id=node_id)
    actual = max(1, int(task.wcet * actual_fraction))
    heug.code_eu("eu1", wcet=task.wcet, actual_time=min(actual, task.wcet))
    return heug.validate()
