"""Random task-set generators (deterministic given a seed)."""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.feasibility.taskset import AnalysisTask, SpuriTask


def uunifast(n: int, total_utilization: float,
             rng: random.Random) -> List[float]:
    """Bini & Buttazzo's UUniFast: n utilisations summing to the target,
    uniformly distributed over the simplex."""
    if n <= 0:
        raise ValueError("need at least one task")
    if not 0 < total_utilization <= 1.0:
        raise ValueError("total utilisation must be in (0, 1]")
    utilizations = []
    remaining = total_utilization
    for i in range(1, n):
        next_remaining = remaining * rng.random() ** (1.0 / (n - i))
        utilizations.append(remaining - next_remaining)
        remaining = next_remaining
    utilizations.append(remaining)
    return utilizations


def random_periodic_taskset(n: int, total_utilization: float, seed: int,
                            period_range=(10_000, 1_000_000),
                            implicit_deadline: bool = True,
                            ) -> List[AnalysisTask]:
    """Random periodic tasks at a target utilisation (log-uniform periods)."""
    rng = random.Random(seed)
    utilizations = uunifast(n, total_utilization, rng)
    tasks = []
    low, high = period_range
    for index, u in enumerate(utilizations):
        import math
        period = int(math.exp(rng.uniform(math.log(low), math.log(high))))
        wcet = max(1, int(u * period))
        if implicit_deadline:
            deadline = period
        else:
            deadline = rng.randint(max(wcet, period // 2), period)
        tasks.append(AnalysisTask(name=f"task{index}", wcet=wcet,
                                  deadline=deadline, period=period))
    return tasks


def random_spuri_taskset(n: int, total_utilization: float, seed: int,
                         period_range=(10_000, 500_000),
                         resource_probability: float = 0.5,
                         n_resources: int = 2,
                         cs_fraction: float = 0.3,
                         arbitrary_deadlines: bool = True,
                         ) -> List[SpuriTask]:
    """Random instances of the paper's §5.1 model.

    Each task is sporadic with pseudo-period drawn log-uniformly; with
    probability ``resource_probability`` it has one critical section of
    up to ``cs_fraction`` of its WCET on one of ``n_resources`` shared
    resources.  Deadlines are arbitrary (may be below the pseudo-period)
    unless ``arbitrary_deadlines`` is False.
    """
    import math

    rng = random.Random(seed)
    utilizations = uunifast(n, total_utilization, rng)
    low, high = period_range
    tasks = []
    for index, u in enumerate(utilizations):
        pseudo_period = int(math.exp(rng.uniform(math.log(low),
                                                 math.log(high))))
        wcet = max(3, int(u * pseudo_period))
        if arbitrary_deadlines:
            deadline = rng.randint(max(wcet, pseudo_period // 2),
                                   2 * pseudo_period)
        else:
            deadline = pseudo_period
        if rng.random() < resource_probability:
            cs = max(1, int(wcet * rng.uniform(0.05, cs_fraction)))
            before_budget = wcet - cs
            c_before = rng.randint(0, before_budget)
            c_after = before_budget - c_before
            resource = f"R{rng.randrange(n_resources)}"
        else:
            cs, resource = 0, None
            c_before = wcet
            c_after = 0
        tasks.append(SpuriTask(name=f"spuri{index}", c_before=c_before,
                               cs=cs, c_after=c_after, deadline=deadline,
                               pseudo_period=pseudo_period,
                               resource=resource))
    return tasks
