"""Harmonic task sets.

Harmonic periods (each period divides the next) are the classical
family on which Rate Monotonic achieves full utilisation — used by the
policy-comparison benchmark to show both sides of the RM/EDF crossover.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.feasibility.taskset import AnalysisTask
from repro.workloads.generators import uunifast


def harmonic_taskset(n: int, total_utilization: float, seed: int,
                     base_period: int = 10_000,
                     multipliers: Sequence[int] = (2, 2, 2, 2, 2, 2, 2, 2),
                     ) -> List[AnalysisTask]:
    """Random harmonic set: periods base, base*m1, base*m1*m2, ..."""
    if n - 1 > len(multipliers):
        raise ValueError(
            f"need {n - 1} multipliers for {n} tasks, got {len(multipliers)}")
    rng = random.Random(seed)
    utilizations = uunifast(n, total_utilization, rng)
    tasks = []
    period = base_period
    for index, u in enumerate(utilizations):
        wcet = max(1, int(u * period))
        tasks.append(AnalysisTask(name=f"harm{index}", wcet=wcet,
                                  deadline=period, period=period))
        if index < n - 1:
            period *= multipliers[index]
    return tasks
