"""Synthetic workload generation.

The paper evaluates nothing quantitatively on public data, so every
benchmark in this reproduction drives the middleware with synthetic
task sets.  This package provides:

* :func:`~repro.workloads.generators.uunifast` — the standard unbiased
  utilisation-splitting algorithm (Bini & Buttazzo) for random task
  sets at a target utilisation,
* :func:`~repro.workloads.generators.random_spuri_taskset` — random
  instances of the §5.1 model (sporadic, arbitrary deadlines, one
  critical section),
* :func:`~repro.workloads.translation.spuri_to_heug` — the **Figure 3
  translation** of a Spuri task into a three-unit HEUG,
* :func:`~repro.workloads.translation.periodic_to_heug` — plain
  periodic tasks as single-unit HEUGs,
* :func:`~repro.workloads.harmonic.harmonic_taskset` — harmonic
  period sets (the classical RM-friendly family).
"""

from repro.workloads.arrivals import (
    bursty_arrivals,
    diurnal_profile,
    nhpp_arrivals,
    overload_ramp_arrivals,
    periodic_arrivals,
    sporadic_arrivals,
    validate_arrivals,
)
from repro.workloads.avionics import (
    RATE_GROUP_PERIODS,
    avionics_taskset,
    random_pipeline,
)
from repro.workloads.generators import (
    random_periodic_taskset,
    random_spuri_taskset,
    uunifast,
)
from repro.workloads.harmonic import harmonic_taskset
from repro.workloads.translation import (
    periodic_to_heug,
    spuri_to_heug,
)

__all__ = [
    "RATE_GROUP_PERIODS",
    "avionics_taskset",
    "bursty_arrivals",
    "diurnal_profile",
    "nhpp_arrivals",
    "overload_ramp_arrivals",
    "periodic_arrivals",
    "sporadic_arrivals",
    "validate_arrivals",
    "harmonic_taskset",
    "random_pipeline",
    "periodic_to_heug",
    "random_periodic_taskset",
    "random_spuri_taskset",
    "spuri_to_heug",
    "uunifast",
]
