"""Arrival-trace generation for activation laws.

Benchmarks exercise analyses at the synchronous worst case
(:meth:`~repro.core.dispatcher.Dispatcher.register_max_rate`), but
realistic evaluations also need *typical* arrival patterns: sporadic
tasks that do not always arrive at their maximum rate, bursty event
sources, phased periodic releases.  These generators produce explicit
arrival-time lists (deterministic per seed) for
:meth:`~repro.core.dispatcher.Dispatcher.register_arrivals`.
"""

from __future__ import annotations

import math
import random
from typing import Callable, List, Union

from repro.core.attributes import Periodic, Sporadic


def periodic_arrivals(law: Periodic, horizon: int,
                      jitter: int = 0,
                      seed: int = 0) -> List[int]:
    """Release times of a periodic law over ``[0, horizon)``.

    ``jitter`` adds a bounded random release delay per job (activation
    jitter): observed gaps fall in ``[period - jitter, period +
    jitter]``.  A task driven with jitter > 0 should declare
    ``Sporadic(period - jitter)`` (or accept arrival-law reports) —
    the strict periodic law requires exact separation.
    """
    if jitter < 0:
        raise ValueError("jitter must be >= 0")
    rng = random.Random(seed)
    times = []
    release = law.phase
    while release < horizon:
        offset = rng.randrange(0, jitter + 1) if jitter else 0
        times.append(release + offset)
        release += law.period
    return times


def sporadic_arrivals(law: Sporadic, horizon: int, seed: int,
                      mean_slack: float = 0.5,
                      burstiness: float = 0.0) -> List[int]:
    """Legal sporadic arrivals over ``[0, horizon)``.

    Gaps are ``pseudo_period * (1 + X)`` with X exponential of mean
    ``mean_slack`` — always legal (gap >= pseudo-period).  With
    ``burstiness`` in (0, 1], that fraction of gaps collapses to
    exactly the pseudo-period, producing max-rate bursts inside an
    otherwise relaxed stream (the pattern the arrival-law monitor must
    accept and the feasibility test must cover).
    """
    if mean_slack < 0:
        raise ValueError("mean_slack must be >= 0")
    if not 0.0 <= burstiness <= 1.0:
        raise ValueError("burstiness must be in [0, 1]")
    rng = random.Random(seed)
    times = []
    release = 0
    while release < horizon:
        times.append(release)
        if burstiness and rng.random() < burstiness:
            gap = law.pseudo_period
        else:
            gap = int(law.pseudo_period * (1.0 + rng.expovariate(
                1.0 / mean_slack) if mean_slack else 1.0))
            gap = max(gap, law.pseudo_period)
        release += gap
    return times


def bursty_arrivals(horizon: int, burst_size: int, burst_gap: int,
                    intra_gap: int = 0, start: int = 0,
                    jitter: int = 0, seed: int = 0) -> List[int]:
    """Deterministic bursty aperiodic arrivals over ``[0, horizon)``.

    Bursts of ``burst_size`` arrivals (``intra_gap`` microseconds
    apart inside a burst) start every ``burst_gap`` microseconds from
    ``start``; ``jitter`` adds a seeded random delay in ``[0, jitter]``
    to each burst head.  ``burst_size == 0`` is a legal zero-length
    burst (no arrivals at all), and the horizon is exclusive: arrivals
    at or past it are clipped, even mid-burst.
    """
    if horizon < 0:
        raise ValueError("horizon must be >= 0")
    if burst_size < 0:
        raise ValueError("burst_size must be >= 0")
    if burst_gap <= 0:
        raise ValueError("burst_gap must be > 0")
    if intra_gap < 0 or jitter < 0:
        raise ValueError("intra_gap and jitter must be >= 0")
    rng = random.Random(seed)
    times = []
    head = start
    while head < horizon:
        offset = rng.randrange(0, jitter + 1) if jitter else 0
        for index in range(burst_size):
            release = head + offset + index * intra_gap
            if release >= horizon:
                break
            times.append(release)
        head += burst_gap
    return times


def overload_ramp_arrivals(horizon: int, wcet: int,
                           start_load: float, peak_load: float,
                           ramp_end: int = 0,
                           jitter: float = 0.0, seed: int = 0) -> List[int]:
    """Aperiodic arrivals whose *offered load* ramps up over time.

    The instantaneous offered load (work arriving per unit time for a
    stream of ``wcet``-sized jobs) is interpolated linearly from
    ``start_load`` at t=0 to ``peak_load`` at ``ramp_end`` (default:
    the horizon) and held there; the inter-arrival gap at time t is
    ``wcet / load(t)``.  ``jitter`` (a fraction in ``[0, 1)``) scales
    each gap by a seeded random factor in ``[1 - jitter, 1 + jitter]``,
    keeping the stream deterministic per seed.  ``peak_load > 1``
    produces a sustained overload ramp — the admission-control stress
    pattern.  Arrivals lie in ``[0, horizon)``.

    With ``start_load == peak_load`` the ramp is degenerate: the load
    is flat and ``ramp_end`` is irrelevant.  At **exactly 1.0** (the
    saturation boundary between under- and overload) the unjittered
    gap is exactly ``wcet``, so the stream is ``[0, wcet, 2*wcet,
    ...)`` — back-to-back jobs that fill the CPU with zero headroom
    and zero backlog growth.  Every gap is clamped to >= 1 microsecond
    after rounding, so loads above ``wcet`` collapse to one arrival
    per microsecond rather than duplicating timestamps.
    """
    if horizon < 0:
        raise ValueError("horizon must be >= 0")
    if wcet <= 0:
        raise ValueError("wcet must be > 0")
    if start_load <= 0 or peak_load <= 0:
        raise ValueError("offered loads must be > 0")
    if not 0.0 <= jitter < 1.0:
        raise ValueError("jitter must be in [0, 1)")
    ramp = ramp_end if ramp_end > 0 else horizon
    rng = random.Random(seed)
    times = []
    release = 0
    while release < horizon:
        times.append(release)
        fraction = min(1.0, release / ramp) if ramp else 1.0
        load = start_load + (peak_load - start_load) * fraction
        gap = wcet / load
        if jitter:
            gap *= 1.0 + rng.uniform(-jitter, jitter)
        release += max(1, int(round(gap)))
    return times


#: Arrival rate: a constant (arrivals per microsecond) or a function of
#: absolute simulated time returning the instantaneous rate.
RateLike = Union[float, Callable[[float], float]]


def diurnal_profile(base_rate: float, peak_rate: float, period: int,
                    phase: int = 0) -> Callable[[float], float]:
    """A smooth day/night arrival-rate curve (arrivals per microsecond).

    Returns ``rate(t)`` following a raised cosine over ``period``: the
    trough (``base_rate``) sits at ``t = phase``, the peak
    (``peak_rate``) half a period later.  Feed the result to
    :func:`nhpp_arrivals` — the returned callable carries the peak as
    a ``.peak`` attribute so the thinning cap can be derived
    automatically.
    """
    if period <= 0:
        raise ValueError("period must be > 0")
    if base_rate < 0 or peak_rate < base_rate:
        raise ValueError("need 0 <= base_rate <= peak_rate")

    def rate(t: float) -> float:
        cycle = math.cos(2.0 * math.pi * (t - phase) / period)
        return base_rate + (peak_rate - base_rate) * (1.0 - cycle) / 2.0

    rate.peak = peak_rate  # type: ignore[attr-defined]
    return rate


def nhpp_arrivals(rate: RateLike, horizon: int, seed: int = 0,
                  rate_cap: float = None) -> List[int]:
    """Nonhomogeneous-Poisson arrivals over ``[0, horizon)``.

    Lewis & Shedler thinning: candidate points are drawn from a
    homogeneous Poisson process at ``rate_cap`` (arrivals per
    microsecond) and kept with probability ``rate(t) / rate_cap``.
    ``rate`` may be a constant or a callable of absolute time (e.g. a
    :func:`diurnal_profile`); the cap defaults to the constant rate,
    or to the callable's ``.peak`` attribute when it has one.  The
    instantaneous rate must never exceed the cap (checked).  Times are
    floored to integer microseconds, so the list is nondecreasing and
    may contain duplicates at high rates — exactly what a
    millions-of-users ingress produces.  Deterministic per seed.
    """
    if horizon < 0:
        raise ValueError("horizon must be >= 0")
    if callable(rate):
        rate_fn = rate
        if rate_cap is None:
            rate_cap = getattr(rate, "peak", None)
        if rate_cap is None:
            raise ValueError("a callable rate needs rate_cap= (or a "
                             ".peak attribute, see diurnal_profile)")
    else:
        constant = float(rate)
        if constant < 0:
            raise ValueError("rate must be >= 0")
        if constant == 0.0:
            return []
        rate_fn = None
        if rate_cap is None:
            rate_cap = constant
    if rate_cap <= 0:
        raise ValueError("rate_cap must be > 0")
    rng = random.Random(seed)
    times: List[int] = []
    t = 0.0
    while True:
        t += rng.expovariate(rate_cap)
        if t >= horizon:
            return times
        if rate_fn is None:
            times.append(int(t))
            continue
        lam = rate_fn(t)
        if lam > rate_cap * (1.0 + 1e-9):
            raise ValueError(
                f"rate({t:.0f}) = {lam} exceeds rate_cap {rate_cap}; "
                f"thinning needs a true upper bound")
        if lam > 0 and rng.random() * rate_cap <= lam:
            times.append(int(t))


def validate_arrivals(times: List[int], law) -> bool:
    """Whether an arrival list respects the law's minimum separation.

    A list whose timestamps go *backwards* is malformed input (not an
    arrival-law question) and raises ``ValueError`` — previously a
    non-monotone list under an unconstrained law slipped through as
    valid.  Equal adjacent timestamps are legal input (bursts emit
    them) and are judged against the law like any other gap.
    """
    for a, b in zip(times, times[1:]):
        if b < a:
            raise ValueError(
                f"arrival list is not monotone: {a} followed by {b}")
    gap = law.min_separation()
    if gap is None:
        return True
    return all(b - a >= gap for a, b in zip(times, times[1:]))
