"""Arrival-trace generation for activation laws.

Benchmarks exercise analyses at the synchronous worst case
(:meth:`~repro.core.dispatcher.Dispatcher.register_max_rate`), but
realistic evaluations also need *typical* arrival patterns: sporadic
tasks that do not always arrive at their maximum rate, bursty event
sources, phased periodic releases.  These generators produce explicit
arrival-time lists (deterministic per seed) for
:meth:`~repro.core.dispatcher.Dispatcher.register_arrivals`.
"""

from __future__ import annotations

import random
from typing import List

from repro.core.attributes import Periodic, Sporadic


def periodic_arrivals(law: Periodic, horizon: int,
                      jitter: int = 0,
                      seed: int = 0) -> List[int]:
    """Release times of a periodic law over ``[0, horizon)``.

    ``jitter`` adds a bounded random release delay per job (activation
    jitter): observed gaps fall in ``[period - jitter, period +
    jitter]``.  A task driven with jitter > 0 should declare
    ``Sporadic(period - jitter)`` (or accept arrival-law reports) —
    the strict periodic law requires exact separation.
    """
    if jitter < 0:
        raise ValueError("jitter must be >= 0")
    rng = random.Random(seed)
    times = []
    release = law.phase
    while release < horizon:
        offset = rng.randrange(0, jitter + 1) if jitter else 0
        times.append(release + offset)
        release += law.period
    return times


def sporadic_arrivals(law: Sporadic, horizon: int, seed: int,
                      mean_slack: float = 0.5,
                      burstiness: float = 0.0) -> List[int]:
    """Legal sporadic arrivals over ``[0, horizon)``.

    Gaps are ``pseudo_period * (1 + X)`` with X exponential of mean
    ``mean_slack`` — always legal (gap >= pseudo-period).  With
    ``burstiness`` in (0, 1], that fraction of gaps collapses to
    exactly the pseudo-period, producing max-rate bursts inside an
    otherwise relaxed stream (the pattern the arrival-law monitor must
    accept and the feasibility test must cover).
    """
    if mean_slack < 0:
        raise ValueError("mean_slack must be >= 0")
    if not 0.0 <= burstiness <= 1.0:
        raise ValueError("burstiness must be in [0, 1]")
    rng = random.Random(seed)
    times = []
    release = 0
    while release < horizon:
        times.append(release)
        if burstiness and rng.random() < burstiness:
            gap = law.pseudo_period
        else:
            gap = int(law.pseudo_period * (1.0 + rng.expovariate(
                1.0 / mean_slack) if mean_slack else 1.0))
            gap = max(gap, law.pseudo_period)
        release += gap
    return times


def validate_arrivals(times: List[int], law) -> bool:
    """Whether an arrival list respects the law's minimum separation."""
    gap = law.min_separation()
    if gap is None:
        return True
    return all(b - a >= gap for a, b in zip(times, times[1:]))
