"""Replication services: active, passive, semi-active (§2.2.1 (ii)).

The paper cites Poledna's classification [Pol96]; HADES promises all
three styles.  All replicate a deterministic *state machine*:

* **Active**: every replica receives and applies every request; the
  client collects all answers and (optionally) votes, which also masks
  *coherent value failures* of up to f replicas (§2.1's value-failure
  fault model) when ``2f + 1`` replicas answer.
* **Passive** (primary/backup): only the primary applies requests and
  checkpoints its state to the backups; a heartbeat detector promotes
  the next backup on primary crash.  Cheapest in CPU, slowest
  failover (detection + state restore).
* **Semi-active** (leader/follower): every replica receives every
  request, the leader broadcasts ordering decisions, followers apply
  in the same order; on leader crash a follower continues immediately
  with warm state — failover cost is just detection.

Experiment E8 measures exactly this overhead/failover trade-off.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.network.network import Network
from repro.services.fault_detection import HeartbeatDetector
from repro.sim.engine import Event


class KeyValueMachine:
    """A small deterministic state machine used by tests and examples.

    Requests: ``("set", key, value)``, ``("get", key)``,
    ``("add", key, delta)``.
    """

    def __init__(self):
        self.data: Dict[Any, Any] = {}
        self.applied = 0

    def apply(self, request: Tuple) -> Any:
        """Apply this operation; returns its result."""
        self.applied += 1
        op = request[0]
        if op == "set":
            _op, key, value = request
            self.data[key] = value
            return value
        if op == "get":
            return self.data.get(request[1])
        if op == "add":
            _op, key, delta = request
            self.data[key] = self.data.get(key, 0) + delta
            return self.data[key]
        raise ValueError(f"unknown request {request!r}")

    def snapshot(self) -> Dict[str, Any]:
        """A deep copy of the current state."""
        return {"data": dict(self.data), "applied": self.applied}

    def restore(self, state: Dict[str, Any]) -> None:
        """Replace the current state from a snapshot."""
        self.data = dict(state["data"])
        self.applied = state["applied"]


MachineFactory = Callable[[], Any]


class _ReplicaBase:
    """Shared plumbing: one replica object bound to one node."""

    def __init__(self, network: Network, node_id: str,
                 machine_factory: MachineFactory, kind: str):
        self.network = network
        self.node_id = node_id
        self.machine = machine_factory()
        self.kind = kind
        self.interface = network.interfaces[node_id]
        self.sim = network.sim
        #: Optional coherent-value-failure injection: corrupts responses.
        self.corrupt: Optional[Callable[[Any], Any]] = None

    @property
    def crashed(self) -> bool:
        """Whether this replica's node is down."""
        return self.network.nodes[self.node_id].crashed

    def _respond(self, value: Any) -> Any:
        return self.corrupt(value) if self.corrupt is not None else value


# --------------------------------------------------------------------------
# Active replication
# --------------------------------------------------------------------------

class ActiveReplica(_ReplicaBase):
    """Server side of active replication on one node."""
    def __init__(self, network: Network, node_id: str,
                 machine_factory: MachineFactory):
        super().__init__(network, node_id, machine_factory, "active")
        self.interface.on_receive(self._on_request, kind="repl-active")

    def _on_request(self, message) -> None:
        if self.crashed:
            return
        body = message.payload
        result = self.machine.apply(tuple(body["request"]))
        self.interface.send(body["client"],
                            {"req_id": body["req_id"],
                             "result": self._respond(result),
                             "replica": self.node_id},
                            kind="repl-active-rsp", size=32)


class ActiveReplication:
    """Client-side coordinator for an actively replicated service."""

    def __init__(self, network: Network, client_node: str,
                 replica_nodes: Sequence[str],
                 machine_factory: MachineFactory = KeyValueMachine):
        self.network = network
        self.client_node = client_node
        self.replicas = [ActiveReplica(network, node_id, machine_factory)
                         for node_id in replica_nodes]
        self.replica_nodes = list(replica_nodes)
        self.interface = network.interfaces[client_node]
        self.sim = network.sim
        self._req_counter = itertools.count(1)
        self._pending: Dict[int, Dict] = {}
        #: Replica-determinism violations (Poledna [Pol96]): replicas
        #: whose answer disagreed with the voted majority, per request.
        self.divergences: List[Dict] = []
        #: node id -> count of detected disagreements (a coherent value
        #: failure shows up as one node diverging consistently).
        self.suspected_value_failures: Dict[str, int] = {}
        self.interface.on_receive(self._on_response, kind="repl-active-rsp")

    def submit(self, request: Tuple, quorum: Optional[int] = None,
               timeout: int = 100_000) -> Event:
        """Send ``request`` to every replica.

        The returned event succeeds with ``(value, votes)`` once
        ``quorum`` identical answers arrived (default: simple majority),
        or fails on timeout.
        """
        req_id = next(self._req_counter)
        needed = (quorum if quorum is not None
                  else len(self.replica_nodes) // 2 + 1)
        done = self.sim.event(f"active:{req_id}")
        self._pending[req_id] = {"answers": {}, "needed": needed,
                                 "event": done}
        for node_id in self.replica_nodes:
            self.interface.send(node_id,
                                {"req_id": req_id,
                                 "request": list(request),
                                 "client": self.client_node},
                                kind="repl-active", size=64)
        self.sim.call_in(timeout, lambda: self._expire(req_id))
        return done

    def _on_response(self, message) -> None:
        body = message.payload
        pending = self._pending.get(body["req_id"])
        if pending is None:
            return
        answers = pending["answers"]
        answers[body["replica"]] = body["result"]
        # Vote: count identical values.
        counts: Dict[Any, int] = {}
        winner = None
        for value in answers.values():
            counts[repr(value)] = counts.get(repr(value), 0) + 1
            if counts[repr(value)] >= pending["needed"]:
                winner = value
        if winner is not None:
            # Replica-determinism check: minority answers are detected
            # coherent value failures (§2.1) / determinism violations.
            dissenters = [replica for replica, value in answers.items()
                          if repr(value) != repr(winner)]
            for replica in dissenters:
                self.suspected_value_failures[replica] = \
                    self.suspected_value_failures.get(replica, 0) + 1
            if dissenters:
                self.divergences.append({
                    "req_id": body["req_id"],
                    "majority": winner,
                    "dissenters": sorted(dissenters),
                })
                self.network.tracer.record(
                    "service", "value_failure_detected",
                    req=body["req_id"],
                    dissenters=",".join(sorted(dissenters)))
            del self._pending[body["req_id"]]
            if not pending["event"].triggered:
                pending["event"].succeed((winner, counts[repr(winner)]))

    def _expire(self, req_id: int) -> None:
        pending = self._pending.pop(req_id, None)
        if pending is not None and not pending["event"].triggered:
            pending["event"].fail(
                ReplicationError(f"request {req_id}: no quorum"))


# --------------------------------------------------------------------------
# Passive replication (primary / backup)
# --------------------------------------------------------------------------

class PassiveReplication:
    """Primary-backup replication with heartbeat-driven failover.

    One coordinator object manages the whole group (the replicas are
    addressed by node id; all state transfer crosses the network).
    Clients call :meth:`submit`; requests go to the current primary,
    and are retried against the new primary after a failover.
    """

    def __init__(self, network: Network, client_node: str,
                 replica_nodes: Sequence[str],
                 machine_factory: MachineFactory = KeyValueMachine,
                 checkpoint_every: int = 1,
                 heartbeat_period: int = 5_000):
        if not replica_nodes:
            raise ValueError("need at least one replica")
        self.network = network
        self.client_node = client_node
        self.replica_nodes = list(replica_nodes)
        self.machines = {node_id: machine_factory()
                         for node_id in replica_nodes}
        self.checkpoint_every = checkpoint_every
        self.primary = self.replica_nodes[0]
        self.sim = network.sim
        self.interface = network.interfaces[client_node]
        self._req_counter = itertools.count(1)
        self._pending: Dict[int, Dict] = {}
        self._since_checkpoint = 0
        self.failover_count = 0
        self.failover_times: List[int] = []
        self._crash_time: Optional[int] = None
        # Wire replica-side handlers.
        for node_id in replica_nodes:
            iface = network.interfaces[node_id]
            iface.on_receive(
                lambda msg, nid=node_id: self._replica_handle(nid, msg),
                kind="repl-passive")
        self.interface.on_receive(self._on_response, kind="repl-passive-rsp")
        # Heartbeats + detection on the client (which drives promotion).
        for node_id in replica_nodes:
            HeartbeatDetector.start_heartbeats(network, node_id,
                                               [client_node],
                                               heartbeat_period)
        self.detector = HeartbeatDetector(network, client_node,
                                          replica_nodes, heartbeat_period)
        self.detector.on_suspect(self._on_suspect)
        self.detector.start()

    # -- client side ---------------------------------------------------------------

    def submit(self, request: Tuple, timeout: int = 30_000,
               retries: int = 5) -> Event:
        """Submit a request; the returned event carries the reply."""
        req_id = next(self._req_counter)
        done = self.sim.event(f"passive:{req_id}")
        self._pending[req_id] = {"request": request, "event": done,
                                 "retries": retries, "timeout": timeout}
        self._send_to_primary(req_id)
        return done

    def _send_to_primary(self, req_id: int) -> None:
        pending = self._pending.get(req_id)
        if pending is None:
            return
        self.interface.send(self.primary,
                            {"type": "request", "req_id": req_id,
                             "request": list(pending["request"]),
                             "client": self.client_node},
                            kind="repl-passive", size=64)
        self.sim.call_in(pending["timeout"],
                         lambda: self._maybe_retry(req_id))

    def _maybe_retry(self, req_id: int) -> None:
        pending = self._pending.get(req_id)
        if pending is None:
            return
        pending["retries"] -= 1
        if pending["retries"] < 0:
            del self._pending[req_id]
            if not pending["event"].triggered:
                pending["event"].fail(
                    ReplicationError(f"request {req_id}: primary unreachable"))
            return
        self._send_to_primary(req_id)

    def _on_response(self, message) -> None:
        body = message.payload
        pending = self._pending.pop(body["req_id"], None)
        if pending is not None and not pending["event"].triggered:
            pending["event"].succeed(body["result"])
            if self._crash_time is not None:
                # First successful answer after a failover: record it.
                self.failover_times.append(self.sim.now - self._crash_time)
                self._crash_time = None

    # -- replica side ---------------------------------------------------------------

    def _replica_handle(self, node_id: str, message) -> None:
        if self.network.nodes[node_id].crashed:
            return
        body = message.payload
        if body["type"] == "request":
            if node_id != self.primary:
                return  # only the primary serves
            machine = self.machines[node_id]
            result = machine.apply(tuple(body["request"]))
            self.network.interfaces[node_id].send(
                body["client"], {"req_id": body["req_id"], "result": result},
                kind="repl-passive-rsp", size=32)
            self._since_checkpoint += 1
            if self._since_checkpoint >= self.checkpoint_every:
                self._since_checkpoint = 0
                snapshot = machine.snapshot()
                for backup in self.replica_nodes:
                    if backup != node_id:
                        self.network.interfaces[node_id].send(
                            backup, {"type": "checkpoint",
                                     "state": snapshot},
                            kind="repl-passive", size=256)
        elif body["type"] == "checkpoint":
            self.machines[node_id].restore(body["state"])

    # -- failover ----------------------------------------------------------------------

    def _on_suspect(self, node_id: str, time: int) -> None:
        if node_id != self.primary:
            return
        survivors = [n for n in self.replica_nodes
                     if n != node_id and not self.network.nodes[n].crashed
                     and not self.detector.is_suspected(n)]
        if not survivors:
            return
        self.failover_count += 1
        self.network.metrics.counter("services.replication_failovers").inc()
        self._crash_time = (self._crash_time
                            if self._crash_time is not None else time)
        self.primary = survivors[0]
        self.network.tracer.record("service", "failover",
                                   style="passive", new_primary=self.primary)
        # Outstanding requests chase the new primary.
        for req_id in list(self._pending):
            self._send_to_primary(req_id)

    def mark_crash(self, time: Optional[int] = None) -> None:
        """Tell the coordinator when the fault was injected, so
        failover time is measured from the actual crash."""
        self._crash_time = time if time is not None else self.sim.now


# --------------------------------------------------------------------------
# Semi-active replication (leader / follower)
# --------------------------------------------------------------------------

class SemiActiveReplication:
    """Leader decides, followers apply the leader's decisions."""

    def __init__(self, network: Network, client_node: str,
                 replica_nodes: Sequence[str],
                 machine_factory: MachineFactory = KeyValueMachine,
                 heartbeat_period: int = 5_000):
        if not replica_nodes:
            raise ValueError("need at least one replica")
        self.network = network
        self.client_node = client_node
        self.replica_nodes = list(replica_nodes)
        self.machines = {node_id: machine_factory()
                         for node_id in replica_nodes}
        self.leader = self.replica_nodes[0]
        self.sim = network.sim
        self.interface = network.interfaces[client_node]
        self._req_counter = itertools.count(1)
        self._pending: Dict[int, Event] = {}
        #: Per-replica queues of undecided requests and decided order.
        self._buffered: Dict[str, Dict[int, Tuple]] = {
            node_id: {} for node_id in replica_nodes}
        self._applied_upto: Dict[str, int] = {node_id: 0
                                              for node_id in replica_nodes}
        self._decisions: Dict[str, Dict[int, int]] = {
            node_id: {} for node_id in replica_nodes}
        self._next_order = itertools.count(1)
        self.failover_count = 0
        self.failover_times: List[int] = []
        self._crash_time: Optional[int] = None
        for node_id in replica_nodes:
            iface = network.interfaces[node_id]
            iface.on_receive(
                lambda msg, nid=node_id: self._replica_handle(nid, msg),
                kind="repl-semi")
        self.interface.on_receive(self._on_response, kind="repl-semi-rsp")
        for node_id in replica_nodes:
            HeartbeatDetector.start_heartbeats(network, node_id,
                                               [client_node],
                                               heartbeat_period)
        self.detector = HeartbeatDetector(network, client_node,
                                          replica_nodes, heartbeat_period)
        self.detector.on_suspect(self._on_suspect)
        self.detector.start()

    def submit(self, request: Tuple, timeout: int = 100_000) -> Event:
        """Submit a request; the returned event carries the reply."""
        req_id = next(self._req_counter)
        done = self.sim.event(f"semi:{req_id}")
        self._pending[req_id] = done
        # Every replica receives every request (the semi-active pattern).
        for node_id in self.replica_nodes:
            self.interface.send(node_id,
                                {"type": "request", "req_id": req_id,
                                 "request": list(request),
                                 "client": self.client_node},
                                kind="repl-semi", size=64)
        self.sim.call_in(timeout, lambda: self._expire(req_id, done))
        return done

    def _expire(self, req_id: int, done: Event) -> None:
        if not done.triggered:
            self._pending.pop(req_id, None)
            done.fail(ReplicationError(f"request {req_id}: no leader answer"))

    def _replica_handle(self, node_id: str, message) -> None:
        if self.network.nodes[node_id].crashed:
            return
        body = message.payload
        if body["type"] == "request":
            self._buffered[node_id][body["req_id"]] = tuple(body["request"])
            if node_id == self.leader:
                # The leader decides the execution order and tells the
                # followers.
                order = next(self._next_order)
                decision = {"type": "decision", "req_id": body["req_id"],
                            "order": order}
                for follower in self.replica_nodes:
                    if follower != node_id:
                        self.network.interfaces[node_id].send(
                            follower, decision, kind="repl-semi", size=16)
                self._decisions[node_id][order] = body["req_id"]
                self._apply_ready(node_id, respond=True)
        elif body["type"] == "decision":
            self._decisions[node_id][body["order"]] = body["req_id"]
            self._apply_ready(node_id,
                              respond=(node_id == self.leader))

    def _apply_ready(self, node_id: str, respond: bool) -> None:
        machine = self.machines[node_id]
        decisions = self._decisions[node_id]
        buffered = self._buffered[node_id]
        while True:
            next_order = self._applied_upto[node_id] + 1
            req_id = decisions.get(next_order)
            if req_id is None or req_id not in buffered:
                return
            request = buffered.pop(req_id)
            result = machine.apply(request)
            self._applied_upto[node_id] = next_order
            if respond:
                self.network.interfaces[node_id].send(
                    self.client_node,
                    {"req_id": req_id, "result": result},
                    kind="repl-semi-rsp", size=32)

    def _on_response(self, message) -> None:
        body = message.payload
        done = self._pending.pop(body["req_id"], None)
        if done is not None and not done.triggered:
            done.succeed(body["result"])
            if self._crash_time is not None:
                self.failover_times.append(self.sim.now - self._crash_time)
                self._crash_time = None

    def _on_suspect(self, node_id: str, time: int) -> None:
        if node_id != self.leader:
            return
        survivors = [n for n in self.replica_nodes
                     if n != node_id and not self.network.nodes[n].crashed
                     and not self.detector.is_suspected(n)]
        if not survivors:
            return
        self.failover_count += 1
        self.network.metrics.counter("services.replication_failovers").inc()
        self._crash_time = (self._crash_time
                            if self._crash_time is not None else time)
        # Most-advanced follower becomes leader: every other survivor's
        # applied prefix is then a prefix of the new leader's (FIFO
        # links, crash-only faults), so no state diverges.
        self.leader = max(survivors,
                          key=lambda n: (self._applied_upto[n], n))
        self.network.tracer.record("service", "failover",
                                   style="semi-active",
                                   new_leader=self.leader)
        # The new leader decides all still-buffered requests.
        leader = self.leader
        buffered = self._buffered[leader]
        decided = set(self._decisions[leader].values())
        for req_id in sorted(buffered):
            if req_id in decided:
                continue
            order = next(self._next_order)
            self._decisions[leader][order] = req_id
            decision = {"type": "decision", "req_id": req_id, "order": order}
            for follower in self.replica_nodes:
                if follower != leader:
                    self.network.interfaces[leader].send(
                        follower, decision, kind="repl-semi", size=16)
        self._apply_ready(leader, respond=True)

    def mark_crash(self, time: Optional[int] = None) -> None:
        """Record the fault-injection instant for failover timing."""
        self._crash_time = time if time is not None else self.sim.now


class ReplicationError(RuntimeError):
    """A replicated request could not be completed."""
