"""Violation-driven recovery (§3.1 exception handling + §3.2.1
fault-tolerance mechanisms).

The dispatcher already activates a task's declared ``recovery`` task
when one of its actions *raises*.  Timing violations are detected by
the monitoring activity instead; :class:`RecoveryManager` closes the
loop: it watches the execution monitor and applies per-task recovery
policies — abort the late instance and activate the recovery task, or
run an arbitrary handler (e.g. trigger a mode switch).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.dispatcher import Dispatcher, InstanceState
from repro.core.heug import Task
from repro.core.monitoring import Violation, ViolationKind

Handler = Callable[[Violation], None]


class RecoveryManager:
    """Applies recovery policies when the monitor reports violations."""

    def __init__(self, dispatcher: Dispatcher):
        self.dispatcher = dispatcher
        self._tasks: Dict[str, Task] = {}
        self._handlers: Dict[Tuple[ViolationKind, str], List[Handler]] = {}
        self.recoveries_triggered = 0
        dispatcher.monitor.subscribe(self._on_violation)

    def protect(self, task: Task,
                kinds: Tuple[ViolationKind, ...] = (
                    ViolationKind.DEADLINE_MISS,)) -> None:
        """On any of ``kinds`` for ``task``: abort the offending
        instance and activate ``task.recovery``.

        Requires the task to declare a recovery task.
        """
        if task.recovery is None:
            raise ValueError(f"task {task.name} declares no recovery task")
        self._tasks[task.name] = task
        for kind in kinds:
            self.register(kind, task.name, self._standard_recovery)

    def register(self, kind: ViolationKind, task_name: str,
                 handler: Handler) -> None:
        """Run ``handler(violation)`` on every matching violation."""
        self._handlers.setdefault((kind, task_name), []).append(handler)

    def _standard_recovery(self, violation: Violation) -> None:
        task = self._tasks.get(violation.task)
        if task is None or task.recovery is None:
            return
        instance = self.dispatcher.instance(violation.task,
                                            violation.instance)
        if instance is not None and \
                instance.state is InstanceState.ACTIVE:
            self.dispatcher.abort_instance(instance, reason="recovery")
        self.recoveries_triggered += 1
        self.dispatcher.tracer.record("service", "recovery",
                                      failed=violation.task,
                                      recovery=task.recovery.name,
                                      cause=violation.kind.value)
        self.dispatcher.activate(task.recovery)

    def _on_violation(self, violation: Violation) -> None:
        for handler in self._handlers.get(
                (violation.kind, violation.task), ()):
            handler(violation)
