"""Activation watchdog: detecting *missing* activations.

The dispatcher's arrival-law monitoring (§3.2.1 event ii) catches
activations that arrive **too early**; this service watches the other
side: a periodic/sporadic task whose activations *stop arriving*
(dead sensor, crashed producer node, broken timer).  The watchdog
checks each registered task's last activation time against its
expected cadence and reports an ``ARRIVAL_LAW`` violation with
``reason="overdue"`` when the silence exceeds

    period (or pseudo-period) + margin.

Reports repeat every overdue period until activations resume, so a
recovery policy (mode switch, replica promotion) has a persistent
signal to act on.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.dispatcher import Dispatcher
from repro.core.heug import Task
from repro.core.monitoring import ViolationKind


class ActivationWatchdog:
    """Watches registered tasks for overdue activations."""

    def __init__(self, dispatcher: Dispatcher, margin: int = 1_000):
        self.dispatcher = dispatcher
        self.margin = margin
        self._expected: Dict[str, int] = {}       # task -> max gap
        self._last_seen: Dict[str, int] = {}
        self._reported_at: Dict[str, int] = {}
        self.overdue_reports = 0
        self._armed = False
        dispatcher.tracer.subscribe(self._on_trace)

    def watch(self, task: Task) -> None:
        """Monitor ``task``; it must have a periodic/sporadic law."""
        gap = task.arrival.min_separation()
        if gap is None:
            raise ValueError(
                f"task {task.name} has no activation cadence to watch")
        self._expected[task.name] = gap + self.margin
        self._last_seen[task.name] = self.dispatcher.sim.now
        if not self._armed:
            self._armed = True
            self._tick()

    def unwatch(self, task_name: str) -> None:
        """Stop monitoring the named task."""
        self._expected.pop(task_name, None)
        self._last_seen.pop(task_name, None)

    # -- internals ----------------------------------------------------------

    def _on_trace(self, record) -> None:
        if record.category == "dispatcher" and record.event == "activate":
            name = record.details.get("task")
            if name in self._last_seen:
                self._last_seen[name] = record.time

    def _tick(self) -> None:
        sim = self.dispatcher.sim
        now = sim.now
        for name, max_gap in self._expected.items():
            silence = now - self._last_seen[name]
            if silence <= max_gap:
                continue
            last_report = self._reported_at.get(name, -max_gap)
            if now - last_report < max_gap:
                continue  # one report per overdue period
            self._reported_at[name] = now
            self.overdue_reports += 1
            self.dispatcher.monitor.report(
                ViolationKind.ARRIVAL_LAW, now, name,
                0, reason="overdue", silence=silence,
                expected_max_gap=max_gap)
        if self._expected:
            interval = max(1, min(self._expected.values()) // 2)
            sim.call_in(interval, self._tick)
        else:
            self._armed = False
