"""Dependency tracking (§2.2.1 (v), after Nett, Mock & Theisohn 1997).

"Managing dependencies — a key problem in fault-tolerant distributed
algorithms": when a computation turns out to be faulty (value failure,
abort), every computation that consumed its results is suspect and may
need to be invalidated or compensated.

:class:`DependencyTracker` records read/write dependencies between
activities (any hashable identifiers — in HADES, task-instance keys)
and answers the transitive-closure queries fault handling needs:
``dependents_of`` (who must be invalidated if X is bad) and
``depends_on`` (whose failure would invalidate X).  The dispatcher's
parameter-carrying precedence constraints can feed the tracker
automatically via :func:`track_dispatcher`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Set, Tuple


class DependencyTracker:
    """A growing DAG of "consumer depends on producer" edges."""

    def __init__(self):
        #: producer -> set of consumers
        self._out: Dict[Any, Set[Any]] = {}
        #: consumer -> set of producers
        self._in: Dict[Any, Set[Any]] = {}
        #: data item -> last writer (for read-tracking)
        self._last_writer: Dict[Any, Any] = {}
        self.invalidated: Set[Any] = set()
        self.edge_count = 0

    # -- recording ------------------------------------------------------------------

    def record(self, producer: Any, consumer: Any) -> None:
        """Record that ``consumer`` used a result of ``producer``."""
        if producer == consumer:
            return
        self._out.setdefault(producer, set()).add(consumer)
        self._in.setdefault(consumer, set()).add(producer)
        self.edge_count += 1

    def record_write(self, writer: Any, item: Any) -> None:
        """Note that ``writer`` produced data item ``item``."""
        self._last_writer[item] = writer

    def record_read(self, reader: Any, item: Any) -> None:
        """Note that ``reader`` consumed ``item``: creates a dependency
        on its last writer, if any."""
        writer = self._last_writer.get(item)
        if writer is not None:
            self.record(writer, reader)

    # -- queries --------------------------------------------------------------------

    def dependents_of(self, activity: Any) -> Set[Any]:
        """Every activity transitively depending on ``activity``."""
        return self._closure(activity, self._out)

    def depends_on(self, activity: Any) -> Set[Any]:
        """Every activity ``activity`` transitively depends on."""
        return self._closure(activity, self._in)

    @staticmethod
    def _closure(start: Any, edges: Dict[Any, Set[Any]]) -> Set[Any]:
        seen: Set[Any] = set()
        frontier = list(edges.get(start, ()))
        while frontier:
            node = frontier.pop()
            if node in seen:
                continue
            seen.add(node)
            frontier.extend(edges.get(node, ()))
        return seen

    # -- invalidation ------------------------------------------------------------------

    def invalidate(self, activity: Any) -> Set[Any]:
        """Mark ``activity`` faulty; returns the full set of casualties
        (itself plus all transitive dependents)."""
        casualties = {activity} | self.dependents_of(activity)
        self.invalidated |= casualties
        return casualties

    def is_valid(self, activity: Any) -> bool:
        """Whether the activity has not been invalidated."""
        return activity not in self.invalidated


def track_dispatcher(tracker: DependencyTracker, dispatcher) -> None:
    """Feed the tracker from a dispatcher's trace: every satisfied
    parameter-carrying precedence constraint between task instances
    becomes a dependency edge, and aborted instances are invalidated."""
    def on_record(record) -> None:
        if record.category != "dispatcher":
            return
        if record.event == "instance_abort":
            tracker.invalidate((record.details["task"],
                                record.details["seq"]))

    dispatcher.tracer.subscribe(on_record)
