"""System-wide monitoring service.

The dispatcher's :class:`~repro.core.monitoring.ExecutionMonitor`
records violations; this service aggregates it with substrate health
into one operator-facing status: per-node utilisation and thread
counts, violation totals by kind, network loss statistics, and trace
volume.  ``report()`` renders a text panel — what the paper's
"monitoring services" would surface to the system integrator.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.monitoring import ViolationKind
from repro.network.link import DeliveryOutcome


class SystemMonitor:
    """Aggregated health view over a :class:`~repro.system.HadesSystem`."""

    def __init__(self, system):
        self.system = system

    # -- snapshots -----------------------------------------------------------

    def node_status(self) -> Dict[str, Dict[str, object]]:
        """Per-node liveness/utilisation/thread snapshot."""
        status = {}
        for node_id in sorted(self.system.nodes):
            node = self.system.nodes[node_id]
            status[node_id] = {
                "up": not node.crashed,
                "utilization": round(node.utilization(), 4),
                "busy_by_category": dict(sorted(
                    node.cpu.busy_time.items())),
                "threads": len(node.threads),
            }
        return status

    def violation_counts(self) -> Dict[str, int]:
        """Non-zero violation totals by kind."""
        monitor = self.system.monitor
        return {kind.value: monitor.count(kind) for kind in ViolationKind
                if monitor.count(kind)}

    def network_status(self) -> Dict[str, object]:
        """Delivered/dropped/late counters and downed links."""
        delivered = dropped = late = 0
        for link in self.system.network.links.values():
            delivered += link.stats[DeliveryOutcome.DELIVERED]
            dropped += link.stats[DeliveryOutcome.DROPPED]
            late += link.stats[DeliveryOutcome.LATE]
        return {
            "delivered": delivered,
            "dropped": dropped,
            "late": late,
            "links_down": sum(1 for link in
                              self.system.network.links.values()
                              if not link.up),
        }

    def application_status(self) -> Dict[str, object]:
        """Instance completion and middleware-cost totals."""
        dispatcher = self.system.dispatcher
        return {
            "completed_instances": dispatcher.completed_instances,
            "active_instances": len(dispatcher.active_instances()),
            "dispatcher_cost_charged": dispatcher.ledger.total(),
        }

    def healthy(self) -> bool:
        """No violations, no crashed node, no downed link."""
        return (not self.violation_counts()
                and all(s["up"] for s in self.node_status().values())
                and self.network_status()["links_down"] == 0)

    # -- rendering -----------------------------------------------------------

    def report(self) -> str:
        """Render the aggregated status as a text panel."""
        lines: List[str] = []
        lines.append(f"HADES status @ {self.system.sim.now} us "
                     f"({'HEALTHY' if self.healthy() else 'DEGRADED'})")
        lines.append("nodes:")
        for node_id, status in self.node_status().items():
            state = "up" if status["up"] else "CRASHED"
            lines.append(f"  {node_id}: {state}, "
                         f"util={status['utilization']:.1%}, "
                         f"threads={status['threads']}")
        violations = self.violation_counts()
        lines.append(f"violations: {violations if violations else 'none'}")
        net = self.network_status()
        lines.append(f"network: {net['delivered']} delivered, "
                     f"{net['dropped']} dropped, {net['late']} late, "
                     f"{net['links_down']} links down")
        app = self.application_status()
        lines.append(f"instances: {app['completed_instances']} done, "
                     f"{app['active_instances']} active; middleware cost "
                     f"charged: {app['dispatcher_cost_charged']} us")
        return "\n".join(lines)
