"""Time-bounded reliable point-to-point communication.

The first service the paper lists (§2.2.1 (i)) is "time-bounded
point-to-point communication".  Over a link with *bounded omission
runs* (at most ``k`` consecutive losses — the standard assumption for
bounded-time reliability) an acknowledged retransmission protocol
delivers every message within

    bound = (k + 1) * retransmit_interval + one_way_delay + irq

:class:`BoundedChannel` implements that protocol: sequence numbers,
positive acks, periodic retransmission with a bounded retry budget,
and duplicate suppression at the receiver.  Exceeding the retry budget
raises the ``failed`` counter — the signal a fault-tolerance layer
(or the dispatcher's omission monitoring) reacts to.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.network.network import Network
from repro.sim.engine import Event


class BoundedChannel:
    """Reliable FIFO channel endpoint on one node.

    One :class:`BoundedChannel` per node serves all its peers;
    ``send(dst, payload)`` returns an event that succeeds when the
    message is acknowledged or fails (with :class:`ChannelError`) when
    the retry budget is exhausted.
    """

    def __init__(self, network: Network, node_id: str,
                 retransmit_interval: int = 2_000, max_retries: int = 5,
                 kind: str = "channel"):
        if retransmit_interval <= 0 or max_retries < 0:
            raise ValueError("bad channel parameters")
        self.network = network
        self.node_id = node_id
        self.retransmit_interval = retransmit_interval
        self.max_retries = max_retries
        self.kind = kind
        self.interface = network.interfaces[node_id]
        self.sim = network.sim
        #: per-destination sequence counters (FIFO is per peer pair)
        self._seq: Dict[str, "itertools.count"] = {}
        #: (dst, seq) -> (payload, retries so far, ack event)
        self._unacked: Dict[Tuple[str, int], List] = {}
        #: peer -> highest seq delivered contiguously (FIFO delivery)
        self._delivered: Dict[str, int] = {}
        self._reorder: Dict[str, Dict[int, Any]] = {}
        self._receivers: List[Callable[[str, Any], None]] = []
        self.sent = 0
        self.retransmissions = 0
        self.failed = 0
        self.duplicates = 0
        self.interface.on_receive(self._on_message, kind=self.kind)

    def delivery_bound(self, size: int = 64) -> int:
        """Worst-case delivery time with at most ``max_retries - 1``
        lost copies."""
        one_way = self.network.max_message_delay(size)
        return self.max_retries * self.retransmit_interval + one_way

    # -- sending -----------------------------------------------------------------

    def send(self, dst: str, payload: Any, size: int = 64) -> Event:
        """Reliably send ``payload``; the returned event acks delivery."""
        seq = next(self._seq.setdefault(dst, itertools.count(1)))
        ack = self.sim.event(f"channel:ack:{dst}:{seq}")
        record = [payload, 0, ack, size]
        self._unacked[(dst, seq)] = record
        self.sent += 1
        self._transmit(dst, seq)
        return ack

    def _transmit(self, dst: str, seq: int) -> None:
        record = self._unacked.get((dst, seq))
        if record is None:
            return
        payload, retries, ack, size = record
        self.interface.send(dst, {"type": "data", "seq": seq,
                                  "payload": payload},
                            kind=self.kind, size=size)
        self.sim.call_in(self.retransmit_interval,
                         lambda: self._maybe_retransmit(dst, seq))

    def _maybe_retransmit(self, dst: str, seq: int) -> None:
        record = self._unacked.get((dst, seq))
        if record is None:
            return  # acked meanwhile
        record[1] += 1
        if record[1] > self.max_retries:
            del self._unacked[(dst, seq)]
            self.failed += 1
            if not record[2].triggered:
                record[2].fail(ChannelError(
                    f"{self.node_id}->{dst} seq {seq}: retries exhausted"))
            return
        self.retransmissions += 1
        self._transmit(dst, seq)

    # -- receiving -----------------------------------------------------------------

    def on_receive(self, receiver: Callable[[str, Any], None]) -> None:
        """Register ``receiver(src, payload)`` for delivered messages."""
        self._receivers.append(receiver)

    def _on_message(self, message) -> None:
        body = message.payload
        if body["type"] == "ack":
            record = self._unacked.pop((message.src, body["seq"]), None)
            if record is not None and not record[2].triggered:
                record[2].succeed()
            return
        # Data: always (re-)ack, deliver FIFO exactly once.
        seq = body["seq"]
        src = message.src
        self.interface.send(src, {"type": "ack", "seq": seq},
                            kind=self.kind, size=8)
        highest = self._delivered.get(src, 0)
        if seq <= highest:
            self.duplicates += 1
            return
        pending = self._reorder.setdefault(src, {})
        if seq in pending:
            self.duplicates += 1
            return
        pending[seq] = body["payload"]
        while highest + 1 in pending:
            highest += 1
            payload = pending.pop(highest)
            self._delivered[src] = highest
            for receiver in self._receivers:
                receiver(src, payload)


class ChannelError(RuntimeError):
    """Raised (via the ack event) when a reliable send gives up."""
