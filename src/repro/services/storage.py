"""Persistent storage service (§2.2.1 (iv)).

A per-node stable store that survives node crashes: writes go through
a write-ahead log, commits are atomic, and :meth:`capture` /
:meth:`restore_capture` implement the "state capture" low-level
fault-tolerance mechanism the dispatcher relies on (§3.2.1).

The simulated stable medium is simply memory that the
:class:`~repro.kernel.node.Node` crash model does *not* wipe — the
defining property of stable storage.  Writes cost simulated time
(``write_latency`` per operation) so storage-heavy designs show up in
the timing analysis.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.kernel.node import Node
from repro.sim.engine import Event


class PersistentStore:
    """Logged, atomically-committed key-value stable storage."""

    def __init__(self, node: Node, write_latency: int = 100):
        if write_latency < 0:
            raise ValueError("write_latency must be >= 0")
        self.node = node
        self.sim = node.sim
        self.write_latency = write_latency
        # Stable medium: survives node.crash().
        self._committed: Dict[Any, Any] = {}
        self._log: List[Tuple[int, str, Any, Any]] = []
        self._captures: Dict[int, Dict[Any, Any]] = {}
        self._capture_counter = itertools.count(1)
        # Volatile: lost on crash.
        self._transaction: Optional[Dict[Any, Any]] = None
        node.on_crash(self._on_crash)
        self.write_count = 0
        self.commit_count = 0
        self.aborted_transactions = 0

    # -- plain operations ---------------------------------------------------------

    def put(self, key: Any, value: Any) -> Event:
        """Durably write one key; the event triggers when it is stable."""
        done = self.sim.event("store:put")

        def commit() -> None:
            if self.node.crashed:
                return  # the write never reached the medium
            self._log.append((self.sim.now, "put", key, value))
            self._committed[key] = value
            self.write_count += 1
            done.succeed(value)

        self.sim.call_in(self.write_latency, commit)
        return done

    def get(self, key: Any, default: Any = None) -> Any:
        """Read a committed value (raises while the node is down)."""
        if self.node.crashed:
            raise RuntimeError(f"node {self.node.node_id} is down")
        return self._committed.get(key, default)

    def keys(self) -> List[Any]:
        """Committed keys, deterministically ordered."""
        return sorted(self._committed, key=repr)

    # -- atomic multi-key transactions ----------------------------------------------

    def begin(self) -> None:
        """Open a transaction for staged writes."""
        if self._transaction is not None:
            raise RuntimeError("transaction already open")
        self._transaction = {}

    def stage(self, key: Any, value: Any) -> None:
        """Add one write to the open transaction."""
        if self._transaction is None:
            raise RuntimeError("no open transaction")
        self._transaction[key] = value

    def commit(self) -> Event:
        """Atomically commit every staged write (all or nothing)."""
        if self._transaction is None:
            raise RuntimeError("no open transaction")
        staged, self._transaction = self._transaction, None
        done = self.sim.event("store:commit")
        cost = self.write_latency * max(1, len(staged))

        def apply() -> None:
            if self.node.crashed:
                return  # atomicity: nothing applied
            for key, value in staged.items():
                self._log.append((self.sim.now, "put", key, value))
                self._committed[key] = value
                self.write_count += 1
            self.commit_count += 1
            done.succeed(len(staged))

        self.sim.call_in(cost, apply)
        return done

    def abort(self) -> None:
        """Discard the open transaction."""
        if self._transaction is None:
            raise RuntimeError("no open transaction")
        self._transaction = None
        self.aborted_transactions += 1

    # -- state capture (the §3.2.1 fault-tolerance mechanism) ---------------------------

    def capture(self, state: Dict[Any, Any]) -> int:
        """Atomically snapshot an application state; returns capture id."""
        capture_id = next(self._capture_counter)
        self._captures[capture_id] = dict(state)
        self._log.append((self.sim.now, "capture", capture_id, None))
        return capture_id

    def restore_capture(self, capture_id: int) -> Dict[Any, Any]:
        """Return a copy of a captured state by id."""
        if capture_id not in self._captures:
            raise KeyError(f"unknown capture {capture_id}")
        return dict(self._captures[capture_id])

    def latest_capture(self) -> Optional[int]:
        """Most recent capture id (None if none taken)."""
        if not self._captures:
            return None
        return max(self._captures)

    # -- crash semantics --------------------------------------------------------------

    def _on_crash(self, _node: Node) -> None:
        # Volatile state dies with the node; the medium persists.
        if self._transaction is not None:
            self._transaction = None
            self.aborted_transactions += 1

    @property
    def log(self) -> List[Tuple[int, str, Any, Any]]:
        """The append-only operation log (copy)."""
        return list(self._log)
