"""Generic HADES services (paper §2.2.1).

"The intent of the set of services is to provide a wide range of
facilities required for executing distributed safety-critical real-time
software whatever its timeliness and criticality requirements are."

The paper enumerates (i) time-bounded reliable communication,
(ii) replication (passive, active, semi-active), (iii) consensus,
(iv) persistent storage, (v) dependency tracking, and (vi) clock
synchronisation.  Each lives in its own module here, built only on the
kernel/network substrate and designed to be *compatible* with the
schedulers (no hidden locking, bounded execution, explicit costs):

* :mod:`repro.services.clocksync` — Lundelius & Lynch fault-tolerant
  clock synchronisation, tolerating Byzantine clocks,
* :mod:`repro.services.channels` — time-bounded reliable point-to-point
  (acknowledged retransmission, bounded omission runs),
* :mod:`repro.services.broadcast` — time-bounded reliable broadcast and
  multicast by bounded-depth diffusion,
* :mod:`repro.services.consensus` — round-based synchronous consensus
  (FloodSet) tolerating crash failures,
* :mod:`repro.services.replication` — active, passive and semi-active
  replication with value-failure voting,
* :mod:`repro.services.fault_detection` — heartbeat crash detection,
* :mod:`repro.services.storage` — logged persistent storage with atomic
  state capture (checkpoint/restore across crashes),
* :mod:`repro.services.dependency` — dependency tracking for cascading
  invalidation (Nett et al.).
"""

from repro.services.broadcast import ReliableBroadcast
from repro.services.channels import BoundedChannel
from repro.services.clocksync import ClockSyncService, measure_skew
from repro.services.consensus import ConsensusService
from repro.services.dependency import DependencyTracker
from repro.services.fault_detection import HeartbeatDetector
from repro.services.modes import ModeDefinition, ModeManager
from repro.services.monitor import SystemMonitor
from repro.services.recovery import RecoveryManager
from repro.services.replication import (
    ActiveReplication,
    PassiveReplication,
    SemiActiveReplication,
)
from repro.services.storage import PersistentStore
from repro.services.watchdog import ActivationWatchdog

__all__ = [
    "ActivationWatchdog",
    "ActiveReplication",
    "BoundedChannel",
    "ClockSyncService",
    "ConsensusService",
    "DependencyTracker",
    "HeartbeatDetector",
    "ModeDefinition",
    "ModeManager",
    "PassiveReplication",
    "PersistentStore",
    "RecoveryManager",
    "ReliableBroadcast",
    "SemiActiveReplication",
    "SystemMonitor",
    "measure_skew",
]
