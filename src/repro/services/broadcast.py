"""Time-bounded reliable broadcast and multicast (§2.2.1 (i)).

Diffusion-based reliable broadcast: the initiator sends to every group
member; the first time a member receives a given broadcast it *relays*
it to every other member before delivering.  With at most ``f`` faulty
members (crash) and per-link omission runs shorter than the relay
fan-out, every correct member delivers every message that any correct
member delivers (agreement), exactly once (integrity), and within

    bound = 2 * (one_way_delay + irq_cost)        (one relay hop)

for the single-relay diffusion used here (each copy travels at most
two hops: origin -> relayer -> destination).  The properties
(validity / agreement / integrity / timeliness) are checked by the
test suite and experiment E7.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.network.network import Network

Deliver = Callable[[str, Any], None]


class ReliableBroadcast:
    """One group member's reliable-broadcast endpoint."""

    def __init__(self, network: Network, node_id: str,
                 group: Sequence[str], relay: bool = True,
                 reliable_links: bool = False,
                 retransmit_interval: int = 2_000, max_retries: int = 8):
        if node_id not in group:
            raise ValueError("node must belong to the broadcast group")
        self.network = network
        self.node_id = node_id
        self.group = list(group)
        self.relay = relay
        self.interface = network.interfaces[node_id]
        self._counter = itertools.count(1)
        self._seen: Set[Tuple[str, int]] = set()
        self._receivers: List[Deliver] = []
        self.broadcast_count = 0
        self.delivered_count = 0
        self.relayed_count = 0
        self._m_broadcasts = network.metrics.counter(
            "services.rbcast_broadcasts")
        self._m_deliveries = network.metrics.counter(
            "services.rbcast_deliveries")
        self._m_relays = network.metrics.counter("services.rbcast_relays")
        #: With reliable_links, every copy travels over an acknowledged
        #: retransmitting channel: agreement then tolerates arbitrary
        #: probabilistic loss with bounded omission runs (the channel's
        #: retry budget), at the price of ack traffic and a larger
        #: delivery bound.  Plain mode is the cheap diffusion variant
        #: that assumes at most one faulty path per (origin, member).
        self.channel = None
        if reliable_links:
            from repro.services.channels import BoundedChannel
            self.channel = BoundedChannel(
                network, node_id, retransmit_interval=retransmit_interval,
                max_retries=max_retries, kind="rbcast-ch")
            self.channel.on_receive(
                lambda _src, body: self._on_body(body, size=64))
        else:
            self.interface.on_receive(self._on_message, kind="rbcast")

    def on_deliver(self, receiver: Deliver) -> None:
        """Register ``receiver(origin, payload)``."""
        self._receivers.append(receiver)

    def delivery_bound(self, size: int = 64) -> int:
        """Worst-case delivery latency at a correct member.

        Diffusion mode: two hops.  Reliable-link mode: two hops of the
        channel's retransmission bound.
        """
        node = self.network.nodes[self.node_id]
        if self.channel is not None:
            hop = (self.channel.delivery_bound(size) + node.net_irq.wcet
                   + node.net_irq.pseudo_period)
        else:
            hop = (self.network.max_message_delay(size) + node.net_irq.wcet
                   + node.net_irq.pseudo_period)
        return 2 * hop

    # -- sending --------------------------------------------------------------

    def broadcast(self, payload: Any, size: int = 64,
                  to: Optional[Sequence[str]] = None) -> Tuple[str, int]:
        """Reliably broadcast (or, with ``to``, multicast) ``payload``.

        Returns the broadcast id ``(origin, seq)``.
        """
        members = list(to) if to is not None else self.group
        if self.node_id not in members:
            raise ValueError("sender must be in the destination group")
        seq = next(self._counter)
        ident = (self.node_id, seq)
        self.broadcast_count += 1
        self._m_broadcasts.inc()
        body = {"origin": self.node_id, "seq": seq, "payload": payload,
                "members": members, "relayed": False}
        # Local delivery first (validity holds even if all links die).
        self._accept(ident, body)
        for member in members:
            if member != self.node_id:
                self._transmit(member, dict(body), size)
        return ident

    def _transmit(self, member: str, body: Dict, size: int) -> None:
        if self.channel is not None:
            self.channel.send(member, body, size=size)
        else:
            self.interface.send(member, body, kind="rbcast", size=size)

    def multicast(self, payload: Any, to: Sequence[str],
                  size: int = 64) -> Tuple[str, int]:
        """Reliable multicast to a subset of the group."""
        return self.broadcast(payload, size=size, to=to)

    # -- receiving --------------------------------------------------------------

    def _on_message(self, message) -> None:
        self._on_body(message.payload, size=message.size)

    def _on_body(self, body: Dict, size: int) -> None:
        ident = (body["origin"], body["seq"])
        if ident in self._seen:
            return
        if self.relay and not body["relayed"]:
            relayed = dict(body)
            relayed["relayed"] = True
            for member in body["members"]:
                if member not in (self.node_id, body["origin"]):
                    self._transmit(member, relayed, size)
                    self.relayed_count += 1
                    self._m_relays.inc()
        self._accept(ident, body)

    def _accept(self, ident: Tuple[str, int], body: Dict) -> None:
        self._seen.add(ident)
        self.delivered_count += 1
        self._m_deliveries.inc()
        self.network.tracer.record("service", "rbcast_deliver",
                                   node=self.node_id, origin=body["origin"],
                                   seq=body["seq"])
        for receiver in self._receivers:
            receiver(body["origin"], body["payload"])


def make_group(network: Network, group: Sequence[str], relay: bool = True,
               reliable_links: bool = False,
               **channel_kwargs) -> Dict[str, ReliableBroadcast]:
    """Create one endpoint per group member."""
    return {node_id: ReliableBroadcast(network, node_id, group, relay=relay,
                                       reliable_links=reliable_links,
                                       **channel_kwargs)
            for node_id in group}
