"""Round-based synchronous consensus (§2.2.1 (iii)).

The classical FloodSet algorithm: with at most ``f`` crash failures,
``f + 1`` synchronous rounds of value exchange guarantee that every
correct node ends with the same view and decides the same value (we
decide the minimum, by a deterministic order on values).

Round pacing uses real simulated time: a round lasts long enough for
every correct message to arrive (network bound + interrupt cost +
margin), which is what "synchronous system" means in this substrate.
Properties guaranteed (and tested): termination after f+1 rounds,
agreement, validity (the decision is some node's input).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Set

from repro.network.network import Network
from repro.sim.engine import Event


class ConsensusService:
    """One participant in one consensus instance group.

    Usage: create one service per node with the same ``group``; call
    :meth:`propose` on every (live) participant; each returns an event
    that succeeds with the decision after f+1 rounds.
    """

    def __init__(self, network: Network, node_id: str,
                 group: Sequence[str], f: int,
                 round_margin: int = 500):
        if node_id not in group:
            raise ValueError("participant must belong to the group")
        if f < 0 or f >= len(group):
            raise ValueError(f"invalid f={f} for group of {len(group)}")
        self.network = network
        self.node_id = node_id
        self.group = list(group)
        self.f = f
        self.interface = network.interfaces[node_id]
        self.sim = network.sim
        node = network.nodes[node_id]
        self.round_length = (network.max_message_delay(128)
                             + node.net_irq.wcet
                             + node.net_irq.pseudo_period * len(group)
                             + round_margin)
        self._known: Set[Any] = set()
        self._incoming: Set[Any] = set()
        self._round = 0
        self._running = False
        self.decision: Optional[Any] = None
        self.decided_event: Event = self.sim.event(
            f"consensus:{node_id}:decided")
        self.rounds_executed = 0
        self.interface.on_receive(self._on_message, kind="consensus")

    def propose(self, value: Any) -> Event:
        """Start the protocol with our input value."""
        if self._running:
            raise RuntimeError("consensus already running on this node")
        self._running = True
        self._known = {value}
        self._round = 0
        self._start_round()
        return self.decided_event

    # -- rounds --------------------------------------------------------------------

    def _start_round(self) -> None:
        node = self.network.nodes[self.node_id]
        if node.crashed:
            return
        self._round += 1
        self._incoming = set()
        for member in self.group:
            if member != self.node_id:
                self.interface.send(member,
                                    {"round": self._round,
                                     "values": sorted(self._known,
                                                      key=repr)},
                                    kind="consensus", size=128)
        self.sim.call_in(self.round_length, self._end_round)

    def _end_round(self) -> None:
        node = self.network.nodes[self.node_id]
        if node.crashed:
            return
        self._known |= self._incoming
        self.rounds_executed += 1
        if self._round <= self.f:
            self._start_round()
            return
        # f+1 rounds done: decide deterministically.
        self.decision = min(self._known, key=repr)
        self.network.tracer.record("service", "consensus_decide",
                                   node=self.node_id,
                                   decision=repr(self.decision),
                                   rounds=self.rounds_executed)
        if not self.decided_event.triggered:
            self.decided_event.succeed(self.decision)

    def _on_message(self, message) -> None:
        if not self._running:
            # Late joiner: adopt values so agreement still holds if we
            # are asked to propose later in a different instance; for
            # this instance we simply ignore.
            return
        for value in message.payload["values"]:
            self._incoming.add(value)


def run_consensus(network: Network, group: Sequence[str], f: int,
                  inputs: Dict[str, Any]) -> Dict[str, ConsensusService]:
    """Create services for the whole group and propose the given inputs."""
    services = {}
    for node_id in group:
        service = ConsensusService(network, node_id, group, f)
        services[node_id] = service
    for node_id, service in services.items():
        if node_id in inputs and not network.nodes[node_id].crashed:
            service.propose(inputs[node_id])
    return services
