"""Modes of operation and mode switching.

The dispatcher's low-level fault-tolerance mechanisms include
"switching of modes of operation in case of failure [Mos94]"
(§3.2.1).  A *mode* is a named set of periodic task registrations
(e.g. "nominal" vs "degraded"); the :class:`ModeManager` activates one
mode at a time, and a switch — triggered explicitly or by a
monitoring-violation policy — stops the outgoing mode's activation
sources, optionally aborts its in-flight instances, and starts the
incoming mode's sources.

Switch latency is bounded: stopping drivers and (optionally) aborting
instances is immediate in the dispatcher; the first activation of the
new mode occurs within one phase of its tasks.  The manager records
every switch with its trigger for post-mortem analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.dispatcher import Dispatcher, InstanceState, PeriodicDriver
from repro.core.heug import Task
from repro.core.monitoring import Violation, ViolationKind


@dataclass
class ModeDefinition:
    """One mode: tasks to drive periodically while the mode is active."""

    name: str
    tasks: List[Task] = field(default_factory=list)

    def add(self, task: Task) -> "ModeDefinition":
        """Append and return self for chaining."""
        self.tasks.append(task)
        return self


@dataclass(frozen=True)
class ModeSwitch:
    """Record of one mode change (time, from, to, trigger)."""
    time: int
    from_mode: Optional[str]
    to_mode: str
    trigger: str


class ModeManager:
    """Runs one mode at a time over a dispatcher."""

    def __init__(self, dispatcher: Dispatcher,
                 abort_outgoing: bool = True):
        self.dispatcher = dispatcher
        self.abort_outgoing = abort_outgoing
        self._modes: Dict[str, ModeDefinition] = {}
        self._drivers: List[PeriodicDriver] = []
        self.current: Optional[str] = None
        self.switches: List[ModeSwitch] = []
        self._policies: List[Tuple[ViolationKind, Optional[str], str, int]] = []
        self._violation_counts: Dict[Tuple, int] = {}
        self._switch_listeners: List[Callable[[ModeSwitch], None]] = []
        self.dispatcher.monitor.subscribe(self._on_violation)

    def on_switch(self, listener: Callable[["ModeSwitch"], None]) -> None:
        """Run ``listener(switch)`` after every mode change (e.g. to
        stop event sources belonging to the outgoing mode)."""
        self._switch_listeners.append(listener)

    # -- mode definition -----------------------------------------------------

    def define(self, name: str, tasks: Sequence[Task] = ()) -> ModeDefinition:
        """Declare a new mode; returns its definition."""
        if name in self._modes:
            raise ValueError(f"mode {name!r} already defined")
        mode = ModeDefinition(name, list(tasks))
        self._modes[name] = mode
        return mode

    def mode(self, name: str) -> ModeDefinition:
        """Look up a mode definition by name."""
        return self._modes[name]

    # -- switching ------------------------------------------------------------

    def switch_to(self, name: str, trigger: str = "explicit") -> None:
        """Stop the current mode (if any) and start ``name``."""
        if name not in self._modes:
            raise ValueError(f"unknown mode {name!r}")
        if name == self.current:
            return
        previous = self.current
        for driver in self._drivers:
            driver.stop()
        self._drivers.clear()
        if self.abort_outgoing and previous is not None:
            outgoing_names = {task.name
                              for task in self._modes[previous].tasks}
            for instance in self.dispatcher.active_instances():
                if instance.task.name in outgoing_names:
                    self.dispatcher.abort_instance(instance,
                                                   reason="mode_switch")
        self.current = name
        for task in self._modes[name].tasks:
            self._drivers.append(self.dispatcher.register_periodic(task))
        switch = ModeSwitch(self.dispatcher.sim.now, previous, name, trigger)
        self.switches.append(switch)
        self.dispatcher.tracer.record("service", "mode_switch",
                                      from_mode=previous, to_mode=name,
                                      trigger=trigger)
        for listener in self._switch_listeners:
            listener(switch)

    def revert(self, trigger: str = "revert") -> None:
        """Switch back to the mode active before the last switch.

        The recover half of a detect→react→recover loop: a live
        monitor degrades the mode when a burn-rate rule raises and
        reverts when it clears.  A no-op when there is no previous
        mode to return to (never switched, or the first switch came
        from no mode at all).
        """
        if not self.switches:
            return
        previous = self.switches[-1].from_mode
        if previous is None or previous == self.current:
            return
        self.switch_to(previous, trigger=trigger)

    # -- violation-driven policies ------------------------------------------------

    def on_violation(self, kind: ViolationKind, switch_to: str,
                     task: Optional[str] = None, threshold: int = 1) -> None:
        """Switch to ``switch_to`` after ``threshold`` violations of
        ``kind`` (optionally restricted to one task name)."""
        if switch_to not in self._modes:
            raise ValueError(f"unknown mode {switch_to!r}")
        self._policies.append((kind, task, switch_to, threshold))

    def _on_violation(self, violation: Violation) -> None:
        for kind, task, target, threshold in self._policies:
            if violation.kind is not kind:
                continue
            if task is not None and violation.task != task:
                continue
            if target == self.current:
                continue
            key = (kind, task, target)
            self._violation_counts[key] = \
                self._violation_counts.get(key, 0) + 1
            if self._violation_counts[key] >= threshold:
                self._violation_counts[key] = 0
                self.switch_to(target,
                               trigger=f"{violation.kind.value}"
                                       f":{violation.task}")
