"""Heartbeat-based crash detection (§2.2.1's "fault detection").

Every monitored node broadcasts an "I am alive" message each
``heartbeat_period``; a :class:`HeartbeatDetector` on each observer
suspects a node when no heartbeat arrived for

    timeout = heartbeat_period + max_delay + irq + margin

Under the synchronous substrate this detector is *perfect*: it never
suspects a correct node (accuracy) and eventually — within one timeout
— suspects every crashed node (completeness).  Both properties are
exercised by the test suite; detection latency feeds experiment E9 and
the passive-replication failover measurement (E8).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.network.network import Network

SuspectHandler = Callable[[str, int], None]


class HeartbeatDetector:
    """Crash detector running on one observer node."""

    def __init__(self, network: Network, node_id: str,
                 watched: Sequence[str], heartbeat_period: int = 10_000,
                 margin: int = 1_000):
        self.network = network
        self.node_id = node_id
        self.watched = [w for w in watched if w != node_id]
        self.heartbeat_period = heartbeat_period
        node = network.nodes[node_id]
        self.timeout = (heartbeat_period + network.max_message_delay(8)
                        + node.net_irq.wcet + node.net_irq.pseudo_period
                        + margin)
        self.sim = network.sim
        self.interface = network.interfaces[node_id]
        self._last_seen: Dict[str, int] = {w: 0 for w in self.watched}
        self._suspected: Set[str] = set()
        self._handlers: List[SuspectHandler] = []
        self.interface.on_receive(self._on_heartbeat, kind="heartbeat")
        self._started = False

    # -- emission side -------------------------------------------------------------

    @staticmethod
    def start_heartbeats(network: Network, node_id: str,
                         group: Sequence[str],
                         heartbeat_period: int = 10_000) -> None:
        """Start this node's periodic heartbeat emission to the group."""
        interface = network.interfaces[node_id]
        node = network.nodes[node_id]

        def beat() -> None:
            if node.crashed:
                return
            for member in group:
                if member != node_id:
                    interface.send(member, {"alive": node_id},
                                   kind="heartbeat", size=8)
            network.sim.call_in(heartbeat_period, beat)

        beat()

    # -- detection side ------------------------------------------------------------

    def start(self) -> None:
        """Begin monitoring (call once heartbeats are flowing)."""
        if self._started:
            return
        self._started = True
        for watched in self.watched:
            self._last_seen[watched] = self.sim.now
        self._arm()

    def _arm(self) -> None:
        self.sim.call_in(self.timeout // 2, self._check)

    def _check(self) -> None:
        if self.network.nodes[self.node_id].crashed:
            return
        now = self.sim.now
        for watched in self.watched:
            if watched in self._suspected:
                continue
            if now - self._last_seen[watched] > self.timeout:
                self._suspected.add(watched)
                self.network.tracer.record("service", "suspect",
                                           observer=self.node_id,
                                           suspect=watched)
                for handler in self._handlers:
                    handler(watched, now)
        self._arm()

    def _on_heartbeat(self, message) -> None:
        src = message.src
        if src in self._last_seen:
            self._last_seen[src] = self.sim.now
            if src in self._suspected:
                # Recovery: stop suspecting a node that speaks again.
                self._suspected.discard(src)
                self.network.tracer.record("service", "unsuspect",
                                           observer=self.node_id,
                                           suspect=src)

    def on_suspect(self, handler: SuspectHandler) -> None:
        """Call ``handler(node_id, time)`` when a node becomes suspected."""
        self._handlers.append(handler)

    @property
    def suspected(self) -> Set[str]:
        """The currently suspected node ids (copy)."""
        return set(self._suspected)

    def is_suspected(self, node_id: str) -> bool:
        """Whether the given node is currently suspected."""
        return node_id in self._suspected
