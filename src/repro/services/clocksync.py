"""Fault-tolerant clock synchronisation (Lundelius & Lynch 1988).

The paper ships the [LL88] algorithm as its clock-synchronisation
service (Figure 1) and its fault model admits "Byzantine failures for
clocks" (§2.1).  We implement the classical fault-tolerant averaging
scheme:

Every ``resync_period`` (measured on its local clock) each node asks
every group member for a clock reading, estimates the peer's offset as

    offset_j ~= (T_j + delta/2) - T_local(receipt)

(``delta/2`` being half the nominal transfer delay), collects the
estimates (including 0 for itself), **discards the f largest and the f
smallest**, and adjusts its clock by the midpoint of the remainder.
With ``n >= 3f + 1`` nodes of which at most ``f`` have arbitrarily
faulty clocks, the post-synchronisation skew between correct clocks is
bounded; the classical bound for one round is on the order of the
reading error ``eps`` plus drift accumulated over a period:

    skew <= 4 * eps + 4 * rho * P       (eps = jitter/2 reading error)

:func:`measure_skew` samples the real pairwise skew so tests and the
E6 benchmark can compare measurement against the bound.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.kernel.node import Node
from repro.kernel.threads import Compute, Sleep, WaitEvent
from repro.network.network import Network


class ClockSyncService:
    """One node's clock-synchronisation daemon."""

    def __init__(self, network: Network, node: Node, group: Sequence[str],
                 f: int, resync_period: int = 1_000_000,
                 reading_cost: int = 5, priority: int = 900):
        if f < 0:
            raise ValueError("f must be >= 0")
        if len(group) < 3 * f + 1:
            raise ValueError(
                f"need n >= 3f+1 nodes for f={f}, got {len(group)}")
        if node.node_id not in group:
            raise ValueError("node must belong to its own sync group")
        self.network = network
        self.node = node
        self.group = list(group)
        self.f = f
        self.resync_period = resync_period
        self.reading_cost = reading_cost
        self.rounds_completed = 0
        self.last_correction = 0
        self._m_rounds = network.metrics.counter("services.clocksync_rounds")
        self._h_correction = network.metrics.histogram(
            "services.clocksync_correction")
        self._pending: Optional[Dict[str, int]] = None
        self._round_done = None
        interface = network.interfaces[node.node_id]
        interface.on_receive(self._on_message, kind="clocksync")
        self.interface = interface
        self._thread = node.spawn(self._body(), name="clocksync",
                                  priority=priority,
                                  preemption_threshold=priority)

    # -- protocol ------------------------------------------------------------

    def _on_message(self, message) -> None:
        kind = message.payload.get("type")
        if kind == "read_req":
            # Answer with our local clock reading.
            self.interface.send(message.src,
                                {"type": "read_rsp",
                                 "round": message.payload["round"],
                                 "reading": self.node.now()},
                                kind="clocksync", size=16)
        elif kind == "read_rsp" and self._pending is not None:
            if message.payload["round"] != self.rounds_completed:
                return  # stale response from an earlier round
            src = message.src
            if src in self._pending:
                return
            delta_half = self.network.max_message_delay(16) // 2
            estimate = (message.payload["reading"] + delta_half
                        - self.node.now())
            self._pending[src] = estimate
            if (len(self._pending) == len(self.group)
                    and self._round_done is not None
                    and not self._round_done.triggered):
                self._round_done.succeed()

    def _body(self):
        sim = self.node.sim
        while True:
            yield Sleep(self.resync_period)
            if self.node.crashed:
                return
            # Ask everyone for a reading.
            self._pending = {self.node.node_id: 0}
            self._round_done = sim.event("clocksync:round")
            for peer in self.group:
                if peer != self.node.node_id:
                    self.interface.send(
                        peer, {"type": "read_req",
                               "round": self.rounds_completed},
                        kind="clocksync", size=16)
            # Wait for all answers, bounded by the collection window.
            window = 4 * self.network.max_message_delay(16) + 1_000
            timeout = sim.timeout(window)
            yield WaitEvent(sim.any_of([self._round_done, timeout]))
            if self.reading_cost:
                yield Compute(self.reading_cost * len(self.group),
                              category="service")
            self._apply_round()

    def _apply_round(self) -> None:
        estimates = sorted(self._pending.values())
        self._pending = None
        self._round_done = None
        # Fault-tolerant reduction: discard the f largest and f smallest.
        if self.f > 0 and len(estimates) > 2 * self.f:
            estimates = estimates[self.f:-self.f]
        if not estimates:
            return
        correction = (estimates[0] + estimates[-1]) // 2
        self.last_correction = correction
        self.node.clock.adjust(correction)
        self.rounds_completed += 1
        self._m_rounds.inc()
        self._h_correction.observe(abs(correction))
        self.node.tracer.record("service", "clocksync_round",
                                node=self.node.node_id,
                                correction=correction,
                                round=self.rounds_completed)

    # -- theory -------------------------------------------------------------------

    def skew_bound(self, drift_bound: float) -> int:
        """Worst-case post-round skew between correct clocks.

        ``4*eps + 4*rho*P`` with reading error eps = jitter/2 plus the
        half-delay estimation error.
        """
        full = self.network.max_message_delay(16)
        eps = full / 2  # worst asymmetry of (actual - estimate)
        return int(4 * eps + 4 * drift_bound * self.resync_period) + 1


def measure_skew(nodes: Sequence[Node],
                 exclude: Sequence[str] = ()) -> int:
    """Maximum pairwise skew among the (correct) nodes' clocks, now."""
    readings = [node.now() for node in nodes
                if node.node_id not in exclude and not node.crashed]
    if len(readings) < 2:
        return 0
    return max(readings) - min(readings)
