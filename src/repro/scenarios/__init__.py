"""Production traffic scenarios behind one fluent facade.

This package turns the reproduction's paper-shaped workloads into
production-service ones — tiered request fan-out/fan-in HEUG DAGs
(edge → service → storage) under diurnal, heavy-tailed, nonhomogeneous-
Poisson traffic with per-tenant (m, k)-firm SLOs — and wraps the whole
construction surface (deployment, schedulers, admission control,
traffic, SLO accounting) in the chainable :class:`Scenario` builder::

    from repro import Scenario, LogNormalService

    result = (Scenario()
              .tier("edge", replicas=2, wcet=300)
              .tier("svc", fan_out=3, wcet=800,
                    service=LogNormalService(median=250, sigma=0.7))
              .cells(4)
              .tenant("gold", rate=120, mk=(9, 10), value=5,
                      deadline=40_000)
              .admission("mk_firm")
              .load(3.0)
              .run(until=1_000_000, seed=7, shards=4))

Modules: :mod:`~repro.scenarios.scenario` (the facade),
:mod:`~repro.scenarios.traffic` (heavy-tailed service-time models),
:mod:`~repro.scenarios.scoreboard` (trace-reconstructed per-tenant /
per-tier SLO accounting).  Experiment E22
(``benchmarks/bench_service_scenarios.py``) compares EDF, Spring and
admission policies on these scenarios under 1×–10× load.
"""

from repro.scenarios.scenario import Scenario, ScenarioResult, scenario
from repro.scenarios.scoreboard import Scoreboard, TenantSLO, exact_quantile
from repro.scenarios.traffic import (
    DeterministicService,
    LogNormalService,
    ParetoService,
    ServiceTimeModel,
    derive_seed,
)

__all__ = [
    "DeterministicService",
    "LogNormalService",
    "ParetoService",
    "Scenario",
    "ScenarioResult",
    "Scoreboard",
    "ServiceTimeModel",
    "TenantSLO",
    "derive_seed",
    "exact_quantile",
    "scenario",
]
