"""Heavy-tailed service-time models for production traffic scenarios.

Production request service times are not constants: measured
distributions are right-skewed with heavy tails (lognormal bodies,
Pareto tails), and it is exactly that tail that makes p99/p999 latency
interesting.  The HEUG model already separates the *designer-guaranteed*
WCET from what an execution really consumes (``CodeEU.actual_time``),
so a service-time model plugs in as a per-EU ``actual_time`` callable:
seeded, stateful, and clamped to ``[1, wcet]`` (the WCET contract is a
hard bound — the tail mass above it models work the designer budgeted
for; admission reasons about the WCET, the simulation burns the sample).

Determinism: each sampler owns a private :class:`random.Random` seeded
at construction, and each EU gets its own sampler.  An EU executes on
exactly one node — hence, under sharding, in exactly one worker — so the
per-EU draw sequence is identical between serial and sharded runs.
"""

from __future__ import annotations

import math
import random
import zlib
from typing import Any, Callable, Dict

__all__ = ["ServiceTimeModel", "DeterministicService", "LogNormalService",
           "ParetoService", "derive_seed"]


def derive_seed(*parts: Any) -> int:
    """A stable 32-bit sub-seed from string-able parts.

    ``hash()`` is per-process randomized; CRC32 over the joined repr is
    not, so builders replayed inside shard workers derive identical
    seeds.
    """
    return zlib.crc32(":".join(str(p) for p in parts).encode())


class ServiceTimeModel:
    """Interface: a factory of per-EU ``actual_time`` callables.

    ``sampler(wcet, seed)`` returns a callable suitable for
    ``CodeEU(actual_time=...)``: it ignores the action inputs, draws
    the next service time from the model's distribution, and clamps it
    into ``[1, wcet]``.
    """

    def sample(self, rng: random.Random) -> float:
        raise NotImplementedError

    def sampler(self, wcet: int, seed: int) -> Callable[[Dict[str, Any]], int]:
        if wcet <= 0:
            raise ValueError("wcet must be > 0")
        rng = random.Random(seed)

        def actual_time(_inputs: Dict[str, Any]) -> int:
            drawn = int(round(self.sample(rng)))
            return min(wcet, max(1, drawn))

        return actual_time

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class DeterministicService(ServiceTimeModel):
    """Constant service time (``fraction`` of the WCET is applied by the
    caller — this model just returns the configured microseconds)."""

    def __init__(self, micros: int):
        if micros <= 0:
            raise ValueError("micros must be > 0")
        self.micros = micros

    def sample(self, rng: random.Random) -> float:
        return float(self.micros)


class LogNormalService(ServiceTimeModel):
    """Lognormal service times parameterized by their median.

    ``median`` is the distribution median in microseconds (``mu =
    ln(median)``); ``sigma`` is the shape — 0.5 is a mild skew, 1.0 a
    long tail (p999/p50 ≈ 22×).
    """

    def __init__(self, median: float, sigma: float = 0.5):
        if median <= 0:
            raise ValueError("median must be > 0")
        if sigma <= 0:
            raise ValueError("sigma must be > 0")
        self.median = median
        self.sigma = sigma

    def sample(self, rng: random.Random) -> float:
        return rng.lognormvariate(math.log(self.median), self.sigma)


class ParetoService(ServiceTimeModel):
    """Pareto service times: scale ``xm`` (the minimum) and tail index
    ``alpha``.  ``alpha <= 2`` has infinite variance — the classic
    heavy-tail stressor for tail-latency studies."""

    def __init__(self, scale: float, alpha: float = 1.5):
        if scale <= 0:
            raise ValueError("scale must be > 0")
        if alpha <= 0:
            raise ValueError("alpha must be > 0")
        self.scale = scale
        self.alpha = alpha

    def sample(self, rng: random.Random) -> float:
        return self.scale * rng.paretovariate(self.alpha)
