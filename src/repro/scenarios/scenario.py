"""The fluent ``Scenario`` facade — one declarative construction path.

Before this module, standing up a workload meant touching four layers
by hand: ``HadesSystem.scripted`` for the deployment, raw arrival-law
generators for traffic, per-node scheduler construction, and ad-hoc
``AdmissionController`` wiring.  ``Scenario`` folds them into one
chainable builder::

    result = (Scenario()
              .tier("edge", replicas=2, wcet=300)
              .tier("svc", fan_out=3, wcet=800,
                    service=LogNormalService(median=250, sigma=0.7))
              .tier("store", fan_out=2, wcet=600)
              .cells(4)
              .tenant("gold", rate=120, mk=(9, 10), value=5,
                      deadline=40_000)
              .tenant("bronze", rate=400, mk=(1, 4), deadline=60_000)
              .admission("mk_firm")
              .load(multiplier=3.0)
              .run(until=1_000_000, seed=7))

    print(result.scoreboard.to_dict()["gold"]["p99"])

The same facade also expresses classic paper-shaped workloads (see
``examples/quickstart.py``) through :meth:`Scenario.task` /
:meth:`Scenario.periodic`, so one API covers both regimes.

Everything composes with the existing execution machinery unchanged:
the scenario builds a replayable :meth:`~repro.system.HadesSystem.
scripted` system, so ``run(shards=N)`` forks cell-partitioned workers
(tenants are pinned to cells; a cell never spans shards) and
``backend=`` / ``REPRO_SIM_BACKEND`` select the event-set backend.

**Service request model.**  A request is one activation of a
per-tenant HEUG: one ingress EU on the tenant's edge node, then for
each subsequent tier ``fan_out`` parallel EUs per upstream EU (a tree
fan-out — tier *i* has ``prod(fan_out)`` units), and a final ``reply``
EU back on the ingress node that fans in every leaf — the classic
edge → service → storage diamond.  EUs are named ``{tier}:{j}`` so the
scoreboard can date each tier's fan-in from ``eu_done`` records, and
per-tier latency budgets become cumulative EU-deadline attributes
(Kermia-style multiple latency constraints rather than one end-to-end
deadline).

**Admission.**  With :meth:`admission` declared, every request is
*submitted* to a per-ingress-node :class:`~repro.admission.controller.
AdmissionController` instead of being released directly.  The
submission WCET is suspension-obliviously inflated — total WCET plus a
network bound per remote precedence edge — so the single-CPU pooled
guarantee test stays conservative for a DAG that spans the cell.
Tenant ``(m, k)`` declarations become per-task ``mk_overrides`` on the
shared controller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, \
    Union

from repro.admission.controller import AdmissionController
from repro.admission.guarantee import GuaranteeTest, ResponseTimeTest
from repro.core.attributes import Aperiodic, EUAttributes
from repro.core.costs import DispatcherCosts
from repro.core.heug import Task
from repro.core.monitoring import ViolationKind
from repro.scenarios.scoreboard import Scoreboard, TenantSLO
from repro.scenarios.traffic import ServiceTimeModel, derive_seed
from repro.system import HadesSystem
from repro.workloads.arrivals import nhpp_arrivals

__all__ = ["Scenario", "ScenarioResult", "scenario"]

#: Scheduler policies constructible per node without a task list.
_DYNAMIC_POLICIES = ("edf", "spring", "fifo")
#: Policies that need the (periodic) task set up front.
_STATIC_POLICIES = ("rm", "dm")

RateLike = Union[float, int, Callable[[float], float]]


def scenario() -> "Scenario":
    """Start a fresh fluent :class:`Scenario` (readability helper)."""
    return Scenario()


@dataclass(frozen=True)
class _TierSpec:
    name: str
    replicas: int
    fan_out: int
    wcet: int
    service: Optional[ServiceTimeModel]
    budget: Optional[int]
    #: Accelerator pool per replica node of this tier ({"gpu": 2}),
    #: or None for plain CPU nodes (repro.hetero).
    engines: Optional[Dict[str, int]] = None
    #: Per-engine-class WCETs of this tier's units ({"gpu": 120}).
    variants: Optional[Dict[str, int]] = None


@dataclass(frozen=True)
class _MonitorSpec:
    tenant: str
    objective_ppm: int
    interval: int
    fast_window: int
    slow_window: int
    threshold_milli: int
    clear_milli: Optional[int]
    hold: int
    react: Optional[Union[str, Callable[..., None]]]
    on_clear: Optional[Union[str, Callable[..., None]]]
    samples: bool


@dataclass(frozen=True)
class _TenantSpec:
    name: str
    rate: Optional[RateLike]
    mk: Optional[Tuple[int, int]]
    value: int
    deadline: Optional[int]

    def slo(self) -> TenantSLO:
        return TenantSLO(self.name, value=self.value, mk=self.mk)


class ScenarioResult:
    """Outcome of one :meth:`Scenario.run`."""

    def __init__(self, scenario: "Scenario", system: HadesSystem,
                 scoreboard: Scoreboard, shard_result=None):
        #: The scenario that produced this run.
        self.scenario = scenario
        #: The underlying :class:`~repro.system.HadesSystem` (tracer,
        #: metrics, dispatcher, monitor — everything is reachable).
        self.system = system
        #: Per-tenant / per-tier SLO accounting (trace-reconstructed,
        #: so identical for serial and sharded runs).
        self.scoreboard = scoreboard
        #: The :class:`~repro.sim.sharded.ShardRunResult` for sharded
        #: runs, else None.
        self.shard_result = shard_result

    @property
    def schedulers(self) -> List[Any]:
        """The scheduler instances the builder attached (serial state)."""
        return list(getattr(self.system, "_scenario_schedulers", ()))

    @property
    def controllers(self) -> List[AdmissionController]:
        """Admission controllers of this replica (serial state; under
        sharding consult the :attr:`scoreboard` instead)."""
        return list(getattr(self.system, "_scenario_controllers", ()))

    @property
    def monitors(self) -> List[Any]:
        """Live monitors of this replica (serial state; under sharding
        read the merged trace's ``monitor``/``alert`` records)."""
        return list(getattr(self.system, "_scenario_monitors", ()))

    @property
    def completed(self) -> int:
        """Completed task instances (dispatcher counter)."""
        return self.system.dispatcher.completed_instances

    @property
    def misses(self) -> int:
        """Deadline-miss violations recorded by the execution monitor."""
        return self.system.monitor.count(ViolationKind.DEADLINE_MISS)

    @property
    def scheduler_rejections(self) -> int:
        """Jobs turned away by planning-based schedulers (Spring)."""
        return sum(getattr(s, "rejected_count", 0)
                   for s in self.schedulers)

    def tenant(self, name: str) -> Dict[str, Any]:
        """One tenant's scoreboard row."""
        return self.scoreboard.tenant_stats(name)

    def accrued_value(self) -> int:
        """Total value accrued across tenants (in-time completions)."""
        return sum(row["value"]
                   for row in self.scoreboard.to_dict().values())

    def to_dict(self) -> Dict[str, Any]:
        """Deterministic summary: scoreboard plus run meta."""
        return {
            "sim_time": self.system.sim.now,
            "completed": self.completed,
            "tenants": self.scoreboard.to_dict(),
        }

    def __repr__(self) -> str:
        return (f"<ScenarioResult completed={self.completed} "
                f"tenants={len(self.scoreboard.tenants)}>")


class Scenario:
    """Fluent builder for a complete workload-on-deployment (see the
    module docstring for the request model).  Every declaration method
    returns ``self``; :meth:`run` builds and executes."""

    def __init__(self) -> None:
        self._tiers: List[_TierSpec] = []
        self._tenants: List[_TenantSpec] = []
        self._cells = 1
        self._load = 1.0
        self._policy: Tuple[str, Dict[str, Any]] = ("edf", {})
        self._admission: Optional[Dict[str, Any]] = None
        self._tasks: List[Tuple[Task, Optional[int]]] = []
        self._extra_nodes: List[str] = []
        self._costs: Optional[DispatcherCosts] = DispatcherCosts.zero()
        self._options: Dict[str, Any] = {}
        self._seed = 0
        self._horizon: Optional[int] = None
        self._stagger: Optional[int] = None
        self._monitors: List[_MonitorSpec] = []
        #: Raw node_id -> {engine class: count} overrides merged over
        #: the per-tier ``engines=`` declarations (repro.hetero).
        self._engine_overrides: Dict[str, Dict[str, int]] = {}

    # -- declarations ------------------------------------------------------

    def tier(self, name: str, replicas: int = 1, fan_out: int = 1,
             wcet: int = 1_000,
             service: Optional[ServiceTimeModel] = None,
             budget: Optional[int] = None,
             engines: Optional[Dict[str, int]] = None,
             variants: Optional[Dict[str, int]] = None) -> "Scenario":
        """Declare the next service tier (declaration order = depth).

        ``replicas`` — nodes of this tier per cell (tenants and fan-out
        units are spread across them round-robin); ``fan_out`` — units
        each upstream unit spawns at the *next* tier; ``wcet`` — the
        designer-guaranteed per-unit budget (µs); ``service`` — a
        heavy-tailed :class:`~repro.scenarios.traffic.ServiceTimeModel`
        for actual times (default: every unit burns its WCET);
        ``budget`` — this tier's latency budget (µs), accumulated into
        a per-unit deadline attribute when every tier declares one.

        ``engines`` gives every replica node of this tier a
        heterogeneous accelerator pool (``{"gpu": 2}``); ``variants``
        declares per-engine-class WCETs for this tier's units
        (``{"gpu": 120}``).  When any tier declares engines, every
        tenant DAG is auto-mapped by the deterministic
        :func:`repro.hetero.mapping.map_task` heuristic at build time —
        shard replicas replay the identical mapping (repro.hetero).
        """
        if any(t.name == name for t in self._tiers):
            raise ValueError(f"duplicate tier {name!r}")
        if not name or any(c in name for c in ":/#."):
            raise ValueError(f"tier name {name!r} must be non-empty and "
                             "contain none of ':', '/', '#', '.'")
        if replicas < 1 or fan_out < 1:
            raise ValueError("replicas and fan_out must be >= 1")
        if wcet <= 0:
            raise ValueError("wcet must be > 0")
        if budget is not None and budget <= 0:
            raise ValueError("budget must be > 0")
        if engines is not None:
            if not isinstance(engines, dict) or not engines:
                raise ValueError("engines must be a non-empty mapping of "
                                 "engine class to unit count")
            for cls_name, count in engines.items():
                if cls_name == "cpu":
                    raise ValueError("engine class 'cpu' is implicit; "
                                     "declare only accelerator classes")
                if not isinstance(count, int) or count < 1:
                    raise ValueError(
                        f"engine class {cls_name!r} needs a positive "
                        f"unit count, got {count!r}")
        if variants is not None:
            if not isinstance(variants, dict) or not variants:
                raise ValueError("variants must be a non-empty mapping of "
                                 "engine class to wcet")
            for cls_name, bound in variants.items():
                if not isinstance(bound, int) or bound < 0 \
                        or isinstance(bound, bool):
                    raise ValueError(
                        f"variant wcet for engine {cls_name!r} must be "
                        f">= 0, got {bound!r}")
        self._tiers.append(_TierSpec(name, replicas, fan_out, wcet,
                                     service, budget,
                                     engines=dict(engines) if engines
                                     else None,
                                     variants=dict(variants) if variants
                                     else None))
        return self

    def tenant(self, name: str, rate: Optional[RateLike] = None,
               mk: Optional[Tuple[int, int]] = None, value: int = 1,
               deadline: Optional[int] = None) -> "Scenario":
        """Declare a tenant traffic class.

        ``rate`` is in requests **per second** — a number, or a
        callable of simulated time (µs) for diurnal shapes (build one
        with :func:`~repro.workloads.arrivals.diurnal_profile` using
        per-second rates; its ``.peak`` attribute supplies the thinning
        cap).  ``mk`` is the (m, k)-firm SLO, ``value`` the accrued
        value per satisfied request, ``deadline`` the end-to-end
        relative deadline (µs; None = unconstrained).
        """
        if any(t.name == name for t in self._tenants):
            raise ValueError(f"duplicate tenant {name!r}")
        if not name or any(c in name for c in ":/#"):
            raise ValueError(f"tenant name {name!r} must be non-empty and "
                             "contain none of ':', '/', '#'")
        if rate is not None and not callable(rate) and rate < 0:
            raise ValueError("rate must be >= 0")
        if value < 1:
            raise ValueError("value must be >= 1")
        TenantSLO(name, value=value, mk=mk)  # validates mk
        self._tenants.append(_TenantSpec(name, rate, mk, value, deadline))
        return self

    def cells(self, count: int) -> "Scenario":
        """Replicate the tier topology into ``count`` independent
        cells; tenants are pinned round-robin (tenant *i* → cell
        ``i % count``).  Cells are the sharding unit: a request DAG
        never leaves its cell, so ``run(shards=N)`` partitions whole
        cells across workers."""
        if count < 1:
            raise ValueError("cells must be >= 1")
        self._cells = count
        return self

    def load(self, multiplier: float) -> "Scenario":
        """Scale every tenant's arrival rate (the 1×–10× axis of the
        overload experiments)."""
        if multiplier <= 0:
            raise ValueError("multiplier must be > 0")
        self._load = float(multiplier)
        return self

    def policy(self, name: str, **kwargs: Any) -> "Scenario":
        """Select the per-node scheduling policy: ``"edf"`` (default),
        ``"spring"``, ``"fifo"``, ``"rm"`` or ``"dm"`` (the static two
        require an all-periodic :meth:`task` workload).  ``kwargs`` are
        forwarded to the scheduler constructor (e.g. ``w_sched=0``)."""
        if name not in _DYNAMIC_POLICIES + _STATIC_POLICIES:
            raise ValueError(
                f"unknown policy {name!r} (expected one of "
                f"{_DYNAMIC_POLICIES + _STATIC_POLICIES})")
        self._policy = (name, dict(kwargs))
        return self

    def admission(self, policy: str = "reject",
                  test: Optional[GuaranteeTest] = None,
                  mk: Optional[Tuple[int, int]] = None,
                  queue_capacity: int = 256,
                  w_adm: int = 0) -> "Scenario":
        """Route every request through per-ingress-node admission
        control (:mod:`repro.admission`) under the given overload
        ``policy`` (``"reject"`` | ``"shed"`` | ``"mk_firm"``).

        ``test`` defaults to the pooled
        :class:`~repro.admission.guarantee.ResponseTimeTest`; ``mk`` is
        the default (m, k) window for ``mk_firm`` (tenant declarations
        override it per task); ``w_adm`` defaults to 0 so the guarantee
        test does not need an interference hook for its own cost.
        """
        if policy not in ("reject", "shed", "mk_firm"):
            raise ValueError(
                "scenario admission supports reject/shed/mk_firm")
        self._admission = {
            "policy": policy,
            "test": test,
            "mk": mk,
            "queue_capacity": queue_capacity,
            "w_adm": w_adm,
        }
        return self

    def monitor(self, tenant: str, *, interval: int,
                objective_ppm: int = 990_000,
                fast_window: Optional[int] = None,
                slow_window: Optional[int] = None,
                threshold_milli: int = 1000,
                clear_milli: Optional[int] = None,
                hold: int = 2,
                react: Optional[Union[str, Callable[..., None]]] = None,
                on_clear: Optional[Union[str,
                                         Callable[..., None]]] = None,
                samples: bool = True) -> "Scenario":
        """Attach a live burn-rate monitor to one (declared) tenant.

        A :class:`~repro.obs.live.LiveMonitor` is created on the
        tenant's ingress node with an in-sim probe every ``interval``
        µs (phase-locked to the tenant's cell when :meth:`stagger` is
        active, keeping sharded runs byte-identical — under stagger,
        ``interval`` must be a multiple of the quantum).  One burn-rate
        rule named ``"burn"`` watches the ``objective_ppm`` SLO over
        ``fast_window`` (default: ``interval``) and ``slow_window``
        (default: ``5 * interval``), raising at ``threshold_milli``
        (1000 = burning the error budget exactly at the sustainable
        rate) and clearing with ``hold``-probe hysteresis below
        ``clear_milli``.

        ``react`` runs when the rule raises (once): ``"conservative"``
        swaps the ingress controller's guarantee test to the
        conservative :class:`~repro.admission.guarantee.
        ResponseTimeTest`; ``"policy:<name>"`` switches its overload
        policy; or pass any ``f(system, alert)`` callable (e.g.
        :func:`~repro.obs.live.react_degrade`).  ``on_clear`` runs on
        every clear: ``"restore"`` puts back the policy/test the
        controller had when the monitor was wired, or a callable.
        String reactions require :meth:`admission`.
        """
        if not any(t.name == tenant for t in self._tenants):
            raise ValueError(f"monitor for undeclared tenant {tenant!r} "
                             "(declare the tenant first)")
        if any(m.tenant == tenant for m in self._monitors):
            raise ValueError(f"duplicate monitor for tenant {tenant!r}")
        if interval < 1:
            raise ValueError("interval must be >= 1")
        for spec, label in ((react, "react"), (on_clear, "on_clear")):
            if spec is None or callable(spec):
                continue
            if self._admission is None:
                raise ValueError(f"string {label}= needs .admission()")
            if label == "react":
                if not (spec == "conservative"
                        or spec.startswith("policy:")):
                    raise ValueError(
                        f"unknown react {spec!r} (expected "
                        "'conservative', 'policy:<name>', or a "
                        "callable)")
            elif spec != "restore":
                raise ValueError(f"unknown on_clear {spec!r} (expected "
                                 "'restore' or a callable)")
        self._monitors.append(_MonitorSpec(
            tenant, objective_ppm, interval,
            fast_window if fast_window is not None else interval,
            slow_window if slow_window is not None else 5 * interval,
            threshold_milli, clear_milli, hold, react, on_clear,
            samples))
        return self

    # -- generic (paper-shaped) declarations --------------------------------

    def node(self, *node_ids: str) -> "Scenario":
        """Add plain nodes (generic workloads without tiers)."""
        for node_id in node_ids:
            if node_id in self._extra_nodes:
                raise ValueError(f"duplicate node {node_id!r}")
            self._extra_nodes.append(node_id)
        return self

    def task(self, task: Task, periodic: Optional[int] = None) -> "Scenario":
        """Register a hand-built HEUG.  With ``periodic=count`` the
        task is driven from its periodic arrival law for ``count``
        activations; otherwise it is only made known (activate it
        through ``result.system``)."""
        self._tasks.append((task, periodic))
        return self

    def costs(self, costs: Optional[DispatcherCosts]) -> "Scenario":
        """Dispatcher cost constants (default: zero — scenario
        guarantee tests then need no interference hook; pass
        ``DispatcherCosts()`` for the §4.2 realistic constants)."""
        self._costs = costs
        return self

    def options(self, **kwargs: Any) -> "Scenario":
        """Pass-through :class:`~repro.system.HadesSystem` constructor
        options (``backend=``, ``metrics=``, ``network_latency=``,
        ``trace_maxlen=`` ...), merged over previous calls."""
        for forbidden in ("node_ids", "owned_nodes", "costs", "engines"):
            if forbidden in kwargs:
                raise ValueError(f"{forbidden}= is managed by the "
                                 "scenario; use its fluent methods")
        self._options.update(kwargs)
        return self

    def engines(self, mapping: Dict[str, Dict[str, int]]) -> "Scenario":
        """Attach accelerator pools to raw node ids (repro.hetero).

        ``mapping`` is ``{node_id: {engine class: count}}`` — the same
        shape ``HadesSystem(engines=...)`` takes.  Use it for extra
        nodes (:meth:`nodes`) or to override a tier node's pool; the
        per-tier ``tier(engines=...)`` axis is the fluent spelling for
        whole tiers.  Merged over previous calls.
        """
        if not isinstance(mapping, dict):
            raise ValueError("engines() takes {node_id: {class: count}}")
        for node_id, spec in mapping.items():
            if not isinstance(spec, dict) or not spec:
                raise ValueError(
                    f"node {node_id!r}: engine spec must be a non-empty "
                    f"mapping of engine class to unit count")
            self._engine_overrides[node_id] = dict(spec)
        return self

    def seed(self, seed: int) -> "Scenario":
        """Master seed for traffic and service-time generation (also
        settable per run: ``run(seed=...)``)."""
        self._seed = int(seed)
        return self

    def stagger(self, quantum: int) -> "Scenario":
        """Quantize arrivals onto per-cell residue classes mod
        ``quantum`` (cell *c* arrives at instants ``≡ c * (quantum //
        cells)``).

        This is the residue-class discipline of the sharded
        determinism harness (``tests/test_sharded_determinism.py``):
        when every duration is a multiple of the quantum — WCETs,
        network latency, zero jitter/costs, no heavy-tailed ``service``
        models — no two cells ever record at the same instant, and the
        sharded merge is **byte-identical** to the serial trace, not
        just scoreboard-identical.  Requires ``cells <= quantum / 2``.
        """
        if quantum < 2:
            raise ValueError("quantum must be >= 2")
        if self._cells > quantum // 2:
            raise ValueError("stagger needs cells <= quantum / 2")
        self._stagger = quantum
        return self

    # -- derived structure -------------------------------------------------

    def _node_id(self, cell: int, tier: str, replica: int) -> str:
        return f"c{cell}.{tier}{replica}"

    def node_ids(self) -> List[str]:
        """Every node of the deployment, cells first, then extras."""
        nodes = [self._node_id(cell, tier.name, replica)
                 for cell in range(self._cells)
                 for tier in self._tiers
                 for replica in range(tier.replicas)]
        nodes.extend(self._extra_nodes)
        if not nodes:
            raise ValueError("scenario declares no tiers and no nodes")
        return nodes

    def partition(self, shards: int) -> List[List[str]]:
        """Cell-aligned node partition for ``run(shards=N)``.

        Cells are split into **contiguous** blocks (cells 0..j to shard
        0, the next block to shard 1, ...; extra nodes ride on the last
        shard).  Contiguity matters for byte-identity: construction-
        time records (thread spawns at t=0) appear in cell order in a
        serial trace, and the sharded merge key groups same-instant
        records by shard rank — contiguous blocks make those two
        orders agree.
        """
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if shards > self._cells:
            raise ValueError(
                f"shards={shards} exceeds cells={self._cells}; a cell "
                "is the smallest shard unit (declare more cells)")
        base, extra = divmod(self._cells, shards)
        groups: List[List[str]] = []
        cell = 0
        for rank in range(shards):
            block = base + (1 if rank < extra else 0)
            group: List[str] = []
            for _ in range(block):
                group.extend(self._node_id(cell, tier.name, replica)
                             for tier in self._tiers
                             for replica in range(tier.replicas))
                cell += 1
            groups.append(group)
        groups[-1].extend(self._extra_nodes)
        return groups

    def _ingress_node(self, tenant_index: int) -> str:
        tier0 = self._tiers[0]
        cell = tenant_index % self._cells
        return self._node_id(cell, tier0.name, tenant_index % tier0.replicas)

    def _engine_map(self) -> Dict[str, Dict[str, int]]:
        """The deployment's platform spec: node id -> {class: count},
        from per-tier ``engines=`` declarations merged with raw
        :meth:`engines` overrides (overrides win per node)."""
        engine_map: Dict[str, Dict[str, int]] = {}
        for cell in range(self._cells):
            for tier in self._tiers:
                if tier.engines is None:
                    continue
                for replica in range(tier.replicas):
                    node_id = self._node_id(cell, tier.name, replica)
                    engine_map[node_id] = dict(tier.engines)
        engine_map.update({node_id: dict(spec) for node_id, spec
                           in self._engine_overrides.items()})
        return engine_map

    def _cumulative_budgets(self) -> Optional[List[int]]:
        if any(t.budget is None for t in self._tiers):
            return None
        totals, running = [], 0
        for tier in self._tiers:
            running += tier.budget
            totals.append(running)
        return totals

    def _tenant_task(self, spec: _TenantSpec, tenant_index: int) -> Task:
        """Build one tenant's request DAG (tree fan-out + reply fan-in)."""
        cell = tenant_index % self._cells
        budgets = self._cumulative_budgets()
        task = Task(spec.name, deadline=spec.deadline, arrival=Aperiodic())
        previous: List[Any] = []
        width = 1
        for depth, tier in enumerate(self._tiers):
            layer = []
            for j in range(width):
                eu_name = f"{tier.name}:{j}"
                actual = None
                if tier.service is not None:
                    actual = tier.service.sampler(
                        tier.wcet,
                        derive_seed(self._seed, spec.name, eu_name))
                attrs = (EUAttributes(deadline=budgets[depth])
                         if budgets else None)
                layer.append(task.code_eu(
                    eu_name, wcet=tier.wcet,
                    node_id=self._node_id(
                        cell, tier.name,
                        (tenant_index + j) % tier.replicas),
                    actual_time=actual, attrs=attrs,
                    variants=tier.variants))
            if previous:
                fan = self._tiers[depth - 1].fan_out
                for j, unit in enumerate(layer):
                    task.precede(previous[j // fan], unit)
            previous = layer
            width *= tier.fan_out
        reply = task.code_eu(
            "reply:0", wcet=self._tiers[0].wcet,
            node_id=self._ingress_node(tenant_index),
            actual_time=(self._tiers[0].service.sampler(
                self._tiers[0].wcet,
                derive_seed(self._seed, spec.name, "reply:0"))
                if self._tiers[0].service is not None else None),
            attrs=(EUAttributes(deadline=spec.deadline)
                   if budgets and spec.deadline else None))
        for unit in previous:
            task.precede(unit, reply)
        engine_map = self._engine_map()
        if engine_map:
            # Deterministic mapping of multi-version units onto the
            # declared pools: shard replicas replaying this builder
            # reach the identical assignment (byte-exact traces).
            from repro.hetero.mapping import auto_map
            auto_map(task, engine_map)
        return task.validate()

    def _tenant_arrivals(self, spec: _TenantSpec,
                         tenant_index: int) -> List[int]:
        """Absolute request times over the horizon (NHPP, per-second
        rates scaled by the load multiplier; optionally quantized onto
        the cell's :meth:`stagger` residue class)."""
        if spec.rate is None:
            return []
        seed = derive_seed(self._seed, spec.name, "arrivals")
        scale = self._load / 1_000_000.0  # req/s -> req/µs, under load
        if callable(spec.rate):
            base = spec.rate
            peak = getattr(base, "peak", None)
            if peak is None:
                raise ValueError(
                    f"tenant {spec.name!r}: a callable rate needs a "
                    ".peak attribute (see diurnal_profile)")

            def scaled(t: float, _base=base, _scale=scale) -> float:
                return _base(t) * _scale

            times = nhpp_arrivals(scaled, self._horizon, seed=seed,
                                  rate_cap=peak * scale)
        else:
            times = nhpp_arrivals(spec.rate * scale, self._horizon,
                                  seed=seed)
        if self._stagger:
            quantum = self._stagger
            if self._cells > quantum // 2:
                raise ValueError("stagger needs cells <= quantum / 2")
            phase = (tenant_index % self._cells) * (quantum // self._cells)
            times = [t - t % quantum + phase for t in times
                     if t - t % quantum + phase < self._horizon]
        return times

    def _inflated_wcet(self, task: Task) -> int:
        """Suspension-oblivious submission WCET: total CPU demand plus
        a delivery bound per remote precedence edge, so the pooled
        single-CPU guarantee test upper-bounds the distributed DAG."""
        latency = self._options.get("network_latency", 50)
        jitter = self._options.get("network_jitter", 0)
        remote = sum(1 for edge in task.edges if task.is_remote(edge))
        return task.total_wcet() + remote * (latency + jitter)

    # -- construction ------------------------------------------------------

    def _cell_nodes(self, cell: int) -> List[str]:
        return [self._node_id(cell, tier.name, replica)
                for tier in self._tiers
                for replica in range(tier.replicas)]

    def _attach_schedulers(self, system: HadesSystem,
                           node_ids: Sequence[str]) -> None:
        from repro.scheduling import (DMScheduler, EDFScheduler,
                                      FIFOScheduler, RMScheduler,
                                      SpringScheduler)
        name, kwargs = self._policy
        if name in _STATIC_POLICIES and self._tenants:
            raise ValueError(
                f"policy {name!r} needs periodic tasks; tenant request "
                "streams are aperiodic — use edf/spring/fifo")
        for node_id in node_ids:
            if name == "edf":
                sched = EDFScheduler(scope=node_id, **kwargs)
            elif name == "spring":
                sched = SpringScheduler(scope=node_id, **kwargs)
            elif name == "fifo":
                sched = FIFOScheduler(scope=node_id, **kwargs)
            else:
                here = [t for t, _ in self._tasks
                        if any(t.node_of(eu) == node_id for eu in t.eus)]
                cls = RMScheduler if name == "rm" else DMScheduler
                sched = cls(here, scope=node_id, **kwargs)
            system.attach_scheduler(sched)
            system._scenario_schedulers.append(sched)

    def _build_service_cell(self, system: HadesSystem,
                            plans: List[Tuple[_TenantSpec, str, Task,
                                              List[int]]]) -> None:
        """Wire one cell's controllers and request traffic."""
        controllers: Dict[str, AdmissionController] = {}
        if self._admission is not None:
            by_node: Dict[str, List[_TenantSpec]] = {}
            for spec, node, _task, _times in plans:
                by_node.setdefault(node, []).append(spec)
            adm = self._admission
            for node in sorted(by_node):
                # Shard replicas only run admission for owned nodes —
                # a foreign controller would re-emit trace records the
                # owning shard already produces.
                if not system.owns(node):
                    continue
                overrides = {spec.name: spec.mk
                             for spec in by_node[node]
                             if spec.mk is not None}
                default_mk = adm["mk"]
                if adm["policy"] == "mk_firm" and default_mk is None:
                    # Tenants without an (m, k) declaration get the
                    # strictest window: a failed guarantee is always a
                    # violation, never a permitted skip.
                    default_mk = (1, 1)
                controllers[node] = AdmissionController(
                    system.dispatcher, node,
                    test=adm["test"] or ResponseTimeTest(),
                    policy=adm["policy"],
                    queue_capacity=adm["queue_capacity"],
                    w_adm=adm["w_adm"],
                    mk=default_mk,
                    mk_overrides=overrides or None)
        system._scenario_controllers.extend(controllers.values())
        for spec, node, task, times in plans:
            if self._admission is None:
                system.dispatcher.register_arrivals(task, times)
                continue
            controller = controllers.get(node)
            if controller is None:
                continue  # foreign cell on this shard replica
            wcet = self._inflated_wcet(task)
            for when in times:
                system.sim.call_at(
                    when,
                    lambda c=controller, t=task, v=spec.value, w=wcet:
                    c.submit(t, v, wcet=w))
        self._attach_monitors(system, plans, controllers)

    def _attach_monitors(self, system: HadesSystem,
                         plans: List[Tuple[_TenantSpec, str, Task,
                                           List[int]]],
                         controllers: Dict[str, AdmissionController],
                         ) -> None:
        """Wire one cell's live monitors (owned ingress nodes only)."""
        if not self._monitors:
            return
        from repro.obs.live import (BurnRateRule, LiveMonitor, SloSpec,
                                    react_reconfigure)
        from repro.admission.guarantee import ResponseTimeTest
        by_tenant = {spec.name: node for spec, node, _t, _times in plans}
        index_of = {spec.name: i for i, spec in enumerate(self._tenants)}
        for mon in self._monitors:
            node = by_tenant.get(mon.tenant)
            if node is None or not system.owns(node):
                continue  # another cell, or a foreign shard replica
            if self._stagger and mon.interval % self._stagger:
                raise ValueError(
                    f"monitor interval {mon.interval} must be a "
                    f"multiple of the stagger quantum {self._stagger} "
                    "(probes must tick on the cell's residue class)")
            cell = index_of[mon.tenant] % self._cells
            phase = (cell * (self._stagger // self._cells)
                     if self._stagger else 0)
            rule = BurnRateRule(
                "burn", fast_window=mon.fast_window,
                slow_window=mon.slow_window,
                threshold_milli=mon.threshold_milli,
                clear_milli=mon.clear_milli, hold=mon.hold)
            live = LiveMonitor(
                system, mon.tenant,
                SloSpec(mon.objective_ppm, window=mon.slow_window),
                [rule], interval=mon.interval, horizon=self._horizon,
                phase=phase, node=node, samples=mon.samples)
            controller = controllers.get(node)
            for spec, register in ((mon.react, live.on_alert),
                                   (mon.on_clear, live.on_clear)):
                if spec is None:
                    continue
                if callable(spec):
                    register(rule.name, spec)
                    continue
                if controller is None:
                    raise ValueError(
                        f"monitor {mon.tenant!r}: string reaction "
                        f"{spec!r} needs an admission controller on "
                        f"the ingress node")
                if spec == "conservative":
                    register(rule.name, react_reconfigure(
                        [controller], test_factory=ResponseTimeTest))
                elif spec == "restore":
                    register(rule.name, self._restore_reaction(
                        controller))
                else:  # "policy:<name>", validated in monitor()
                    register(rule.name, react_reconfigure(
                        [controller], policy=spec.split(":", 1)[1]))
            system._scenario_monitors.append(live)

    @staticmethod
    def _restore_reaction(controller: AdmissionController
                          ) -> Callable[..., None]:
        """Reaction putting back the policy/test the controller had
        when the monitor was wired (the recover half)."""
        policy, test = controller.policy, controller.test

        def restore(_system, alert, c=controller, p=policy, t=test):
            c.reconfigure(policy=p, test=t,
                          trigger=f"alert_clear:{alert.rule}")

        return restore

    def _build_into(self, system: HadesSystem) -> None:
        """The replayable scripted builder (deterministic and
        shard-agnostic, as ``HadesSystem.scripted`` requires).

        Construction is **cell-major**: each cell's schedulers,
        controllers and traffic are wired together before the next
        cell's.  Serial time-0 records (thread spawns) then appear in
        cell order, matching the sharded merge over the contiguous
        :meth:`partition` — the remaining ingredient of byte-identity.
        """
        system._scenario_schedulers = []
        system._scenario_controllers = []
        system._scenario_monitors = []
        if self._tenants and not self._tiers:
            raise ValueError("tenants declared without tiers")
        if self._tiers:
            by_cell: Dict[int, List[Tuple[_TenantSpec, str, Task,
                                          List[int]]]] = {}
            for index, spec in enumerate(self._tenants):
                by_cell.setdefault(index % self._cells, []).append(
                    (spec, self._ingress_node(index),
                     self._tenant_task(spec, index),
                     self._tenant_arrivals(spec, index)))
            for cell in range(self._cells):
                self._attach_schedulers(system, self._cell_nodes(cell))
                self._build_service_cell(system, by_cell.get(cell, []))
            self._attach_schedulers(system, self._extra_nodes)
        else:
            self._attach_schedulers(system, list(system.nodes))
        for task, periodic in self._tasks:
            if periodic is not None:
                system.register_periodic(task, count=periodic)
            else:
                system.dispatcher.known_tasks.setdefault(task.name, task)

    def build(self) -> HadesSystem:
        """Construct the (replayable, un-run) system."""
        if self._tenants and self._horizon is None:
            raise ValueError(
                "tenant traffic needs a horizon: run(until=...)")
        kwargs = dict(self._options)
        kwargs["costs"] = self._costs
        engine_map = self._engine_map()
        if engine_map:
            kwargs["engines"] = engine_map
        return HadesSystem.scripted(self._build_into,
                                    node_ids=self.node_ids(), **kwargs)

    def run(self, until: Optional[int] = None, seed: Optional[int] = None,
            shards: Optional[int] = None) -> ScenarioResult:
        """Build and execute; returns a :class:`ScenarioResult`.

        ``until`` doubles as the traffic horizon (required when tenants
        are declared); ``shards=N`` runs the conservative parallel
        executor over the cell-aligned :meth:`partition` — the merged
        trace, and therefore the scoreboard, is byte-identical to the
        serial run.
        """
        if seed is not None:
            self._seed = int(seed)
        if until is not None:
            self._horizon = until
        system = self.build()
        shard_result = None
        if shards is not None and shards > 1:
            shard_result = system.run(until=self._horizon,
                                      partition=self.partition(shards))
        else:
            system.run(until=self._horizon)
        scoreboard = Scoreboard.from_records(
            system.tracer.records,
            [spec.slo() for spec in self._tenants],
            tiers=[tier.name for tier in self._tiers])
        scoreboard.publish(system.metrics)
        return ScenarioResult(self, system, scoreboard,
                              shard_result=shard_result)
