"""Per-tenant / per-tier SLO scoreboard, reconstructed from the trace.

The scoreboard is deliberately **trace-based**: it consumes the
dispatcher/admission event stream instead of live controller or
dispatcher state.  Under sharded execution only the merged trace is
byte-identical to a serial run (the parent dispatcher never advances),
so reconstructing from records is what makes the scoreboard itself
deterministic across ``shards=1/2/4`` and both event-set backends —
a property the scenario test-suite asserts.

Events consumed (all emitted by existing instrumentation):

* ``admission submit/admit/reject/skip/shed`` — the per-tenant request
  stream and its decisions (``admit`` carries the ``activation_id``
  that ties a decision to its instance);
* ``dispatcher activate`` — activation time and task of each instance
  (the whole stream for admit-all scenarios with no controller);
* ``dispatcher instance_done / instance_abort / deadline_miss`` — the
  end state of each instance (response time, late completion, abort,
  miss-while-running);
* ``dispatcher eu_done`` — per-tier completion: scenario EUs are named
  ``{tier}:{j}``, so the last ``eu_done`` of a tier inside one
  activation dates that tier's fan-in.

Quantiles are exact (nearest-rank on the sorted sample), not
histogram-bucketed: p999 on a few thousand requests is precisely the
regime where bucket edges lie.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

# One exact-quantile implementation tree-wide (re-exported here for
# backward compatibility): the scoreboard, the live monitoring windows
# and campaign report aggregation must agree on what "p99" means.
from repro.obs.metrics import exact_quantile

__all__ = ["TenantSLO", "Scoreboard", "exact_quantile"]


@dataclass(frozen=True)
class TenantSLO:
    """One tenant's service-level declaration.

    ``mk`` is the (m, k)-firm window: among any k consecutive requests
    at least m must be *satisfied* (admitted and completed by the
    deadline); ``value`` is the value accrued per satisfied request.
    """

    name: str
    value: int = 1
    mk: Optional[Tuple[int, int]] = None

    def __post_init__(self) -> None:
        if self.mk is not None:
            m, k = self.mk
            if not 0 < m <= k:
                raise ValueError("mk must satisfy 0 < m <= k")


@dataclass
class _Activation:
    tenant: str
    start: int
    response: Optional[int] = None
    missed: bool = False
    aborted: bool = False
    done: bool = False
    tier_done: Dict[str, int] = field(default_factory=dict)

    @property
    def in_time(self) -> bool:
        return self.done and not self.missed


class Scoreboard:
    """Aggregated per-tenant / per-tier SLO accounting."""

    def __init__(self, tenants: Sequence[TenantSLO],
                 tiers: Sequence[str] = ()):
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            raise ValueError("duplicate tenant names")
        self.tenants: Dict[str, TenantSLO] = {t.name: t for t in tenants}
        self.tiers: List[str] = list(tiers)
        self._activations: Dict[str, _Activation] = {}
        #: Per tenant, the decision stream in trace order:
        #: ("admit", activation_id) | ("reject"|"skip"|"shed", None).
        self._decisions: Dict[str, List[Tuple[str, Optional[str]]]] = {
            name: [] for name in self.tenants}
        self._submits: Dict[str, int] = {name: 0 for name in self.tenants}
        self._had_admission: Dict[str, bool] = {
            name: False for name in self.tenants}

    # -- ingestion ---------------------------------------------------------

    @classmethod
    def from_records(cls, records: Iterable, tenants: Sequence[TenantSLO],
                     tiers: Sequence[str] = ()) -> "Scoreboard":
        """Build a scoreboard by replaying a trace-record stream."""
        board = cls(tenants, tiers)
        for record in records:
            board.ingest(record)
        return board

    def ingest(self, record) -> None:
        """Feed one :class:`~repro.sim.trace.TraceRecord` (in order)."""
        category = record.category
        if category == "admission":
            self._ingest_admission(record)
        elif category == "dispatcher":
            self._ingest_dispatcher(record)

    def _ingest_admission(self, record) -> None:
        details = record.details
        tenant = details.get("task")
        if tenant not in self.tenants:
            return
        event = record.event
        if event == "submit":
            self._submits[tenant] += 1
            self._had_admission[tenant] = True
        elif event == "admit":
            self._decisions[tenant].append(
                ("admit", details.get("activation_id")))
        elif event in ("reject", "skip"):
            self._decisions[tenant].append((event, None))
        elif event == "shed":
            # The victim's earlier "admit" stays in the stream; its
            # aborted instance makes the slot unsatisfied.  Count the
            # shed itself for the tally.
            self._decisions[tenant].append(("shed", None))

    def _ingest_dispatcher(self, record) -> None:
        details = record.details
        event = record.event
        if event == "activate":
            tenant = details.get("task")
            if tenant in self.tenants:
                self._activations[details["activation_id"]] = _Activation(
                    tenant=tenant, start=record.time)
            return
        if event == "eu_done":
            qualified = details.get("eu", "")
            aid, _, eu_name = qualified.partition("/")
            activation = self._activations.get(aid)
            if activation is not None and ":" in eu_name:
                tier = eu_name.split(":", 1)[0]
                previous = activation.tier_done.get(tier, record.time)
                activation.tier_done[tier] = max(previous, record.time)
            return
        activation = self._activations.get(details.get("activation_id"))
        if activation is None:
            return
        if event == "instance_done":
            activation.done = True
            activation.response = details.get("response")
            activation.missed = bool(details.get("missed"))
        elif event == "instance_abort":
            activation.aborted = True
        elif event == "deadline_miss":
            activation.missed = True

    # -- aggregation -------------------------------------------------------

    def _request_outcomes(self, tenant: str) -> List[bool]:
        """The tenant's request stream as satisfied/unsatisfied bits.

        With admission events the stream is the decision sequence
        (decision order == submission order: the controller queue is
        FIFO and each decision names its tenant); without a controller
        it is the activation sequence.  An admitted request is
        satisfied iff its instance completed by the deadline.
        """
        if self._had_admission[tenant]:
            outcomes: List[bool] = []
            for decision, aid in self._decisions[tenant]:
                if decision == "shed":
                    continue  # tallied; the victim's admit slot flips
                if decision != "admit":
                    outcomes.append(False)
                    continue
                activation = self._activations.get(aid)
                outcomes.append(activation is not None
                                and activation.in_time)
            return outcomes
        return [a.in_time for a in self._activations.values()
                if a.tenant == tenant]

    @staticmethod
    def mk_violations(outcomes: Sequence[bool],
                      mk: Tuple[int, int]) -> int:
        """Number of length-k windows with fewer than m satisfied."""
        m, k = mk
        if not 0 < m <= k:
            raise ValueError("mk must satisfy 0 < m <= k")
        violations = 0
        window_sum = 0
        for index, ok in enumerate(outcomes):
            window_sum += ok
            if index >= k:
                window_sum -= outcomes[index - k]
            if index >= k - 1 and window_sum < m:
                violations += 1
        return violations

    def tenant_stats(self, name: str) -> Dict[str, Any]:
        """One tenant's scoreboard row (see :meth:`to_dict`)."""
        slo = self.tenants[name]
        acts = [a for a in self._activations.values() if a.tenant == name]
        decisions = self._decisions[name]
        counts = {kind: sum(1 for d, _ in decisions if d == kind)
                  for kind in ("admit", "reject", "skip", "shed")}
        submitted = (self._submits[name] if self._had_admission[name]
                     else len(acts))
        completed = [a for a in acts if a.done]
        in_time = [a for a in completed if not a.missed]
        missed = (sum(1 for a in completed if a.missed)
                  + sum(1 for a in acts
                        if not a.done and not a.aborted and a.missed))
        admitted_work = len(acts)
        responses = sorted(a.response for a in completed
                           if a.response is not None)
        outcomes = self._request_outcomes(name)
        row: Dict[str, Any] = {
            "submitted": submitted,
            "admitted": (counts["admit"] if self._had_admission[name]
                         else len(acts)),
            "rejected": counts["reject"],
            "skipped": counts["skip"],
            "shed": counts["shed"],
            "completed": len(completed),
            "missed": missed,
            "miss_ratio": (round(missed / admitted_work, 6)
                           if admitted_work else 0.0),
            "p50": exact_quantile(responses, 0.5),
            "p99": exact_quantile(responses, 0.99),
            "p999": exact_quantile(responses, 0.999),
            "value": slo.value * len(in_time),
            "mk": list(slo.mk) if slo.mk else None,
            "mk_violations": (self.mk_violations(outcomes, slo.mk)
                              if slo.mk else None),
        }
        tier_rows: Dict[str, Any] = {}
        for tier in self.tiers:
            latencies = sorted(a.tier_done[tier] - a.start for a in acts
                               if tier in a.tier_done)
            tier_rows[tier] = {
                "completed": len(latencies),
                "p50": exact_quantile(latencies, 0.5),
                "p99": exact_quantile(latencies, 0.99),
                "p999": exact_quantile(latencies, 0.999),
            }
        if tier_rows:
            row["tiers"] = tier_rows
        return row

    def to_dict(self) -> Dict[str, Any]:
        """The whole scoreboard as a deterministic plain dict.

        Tenants are keyed in sorted order; every leaf is an int, a
        rounded float, a string, or None — safe to compare or JSON-dump
        byte-for-byte across runs, shard counts and backends.
        """
        return {name: self.tenant_stats(name)
                for name in sorted(self.tenants)}

    def publish(self, metrics) -> None:
        """Export headline figures as gauges on a metrics registry."""
        for name in sorted(self.tenants):
            row = self.tenant_stats(name)
            prefix = f"scenario.{name}."
            for key in ("submitted", "admitted", "completed", "missed",
                        "value"):
                metrics.gauge(prefix + key).set(row[key])
            for key in ("p50", "p99", "p999"):
                if row[key] is not None:
                    metrics.gauge(prefix + key).set(row[key])
            if row["mk_violations"] is not None:
                metrics.gauge(prefix + "mk_violations").set(
                    row["mk_violations"])

    def __repr__(self) -> str:
        return (f"<Scoreboard tenants={len(self.tenants)} "
                f"activations={len(self._activations)}>")
