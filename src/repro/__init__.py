"""HADES reproduction: middleware for distributed safety-critical
real-time applications.

This library reproduces, in simulation, the system described in

    E. Anceaume, G. Cabillic, P. Chevochot, I. Puaut,
    "Hades: A Middleware Support for Distributed Safety-Critical
    Real-Time Applications", INRIA RR-3280 / ICDCS 1998.

Public entry points:

* :class:`repro.system.HadesSystem` — one wired deployment (simulator,
  nodes, network, dispatcher, monitor),
* :mod:`repro.core` — the HEUG task model, dispatcher, cost model,
* :mod:`repro.scheduling` — EDF, RM, DM, Spring, PCP, SRP, FIFO,
* :mod:`repro.feasibility` — off-line scheduling tests incl. the §5.3
  cost-integrated test,
* :mod:`repro.services` — clock sync, reliable broadcast, replication,
  consensus, fault detection, storage, dependency tracking,
* :mod:`repro.workloads` — synthetic task-set generators,
* :mod:`repro.faults` — fault-injection campaigns,
* :mod:`repro.analysis` — cost calibration and trace analysis.
"""

from repro.system import HadesSystem

__version__ = "1.0.0"

__all__ = ["HadesSystem", "__version__"]
