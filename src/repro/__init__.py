"""HADES reproduction: middleware for distributed safety-critical
real-time applications.

This library reproduces, in simulation, the system described in

    E. Anceaume, G. Cabillic, P. Chevochot, I. Puaut,
    "Hades: A Middleware Support for Distributed Safety-Critical
    Real-Time Applications", INRIA RR-3280 / ICDCS 1998.

Stable facade
-------------

The names exported here (see ``__all__``) form the supported public
API; everything else is an implementation detail that may move between
minor versions.  A typical deployment needs nothing beyond::

    from repro import (HadesSystem, Task, EUAttributes, EDFScheduler,
                       DispatcherCosts)

    system = HadesSystem(node_ids=["n0", "n1"])
    system.attach_scheduler(EDFScheduler(scope="n0"))
    task = Task("control", deadline=10_000)
    sense = task.code_eu("sense", wcet=200, node_id="n0",
                         attrs=EUAttributes(prio=20))
    act = task.code_eu("act", wcet=100, node_id="n1",
                       attrs=EUAttributes(prio=20))
    task.precede(sense, act)
    system.activate(task.validate())
    system.run()

For service-shaped workloads — tiered request DAGs under diurnal,
heavy-tailed multi-tenant traffic with (m, k)-firm SLOs — the blessed
construction path is the fluent :class:`~repro.scenarios.Scenario`
builder (see :mod:`repro.scenarios`)::

    from repro import Scenario

    result = (Scenario()
              .tier("edge", replicas=2, wcet=300)
              .tier("svc", fan_out=3, wcet=800)
              .tenant("gold", rate=120, mk=(9, 10), deadline=40_000)
              .admission("mk_firm")
              .load(3.0)
              .run(until=1_000_000, seed=7, shards=4))
    print(result.tenant("gold")["p99"])

The engine's pending-event set is swappable: ``HadesSystem(backend=
"calendar")`` (or the ``REPRO_SIM_BACKEND`` environment variable)
selects the calendar-queue core, proven trace-identical to the heapq
reference by ``tests/test_backend_conformance.py``; see
:func:`available_backends` / :func:`resolve_backend`.

Deeper layers remain importable for research use:

* :mod:`repro.core` — the HEUG task model, dispatcher, cost model,
* :mod:`repro.admission` — online admission control & overload
  management (guarantee tests, overload policies, distributed
  guarantee forwarding),
* :mod:`repro.scheduling` — EDF, RM, DM, Spring, PCP, SRP, FIFO,
* :mod:`repro.feasibility` — off-line scheduling tests incl. the §5.3
  cost-integrated test,
* :mod:`repro.services` — clock sync, reliable broadcast, replication,
  consensus, fault detection, storage, dependency tracking,
* :mod:`repro.scenarios` — production traffic scenarios (tiered
  request DAGs, heavy-tailed service times, SLO scoreboard),
* :mod:`repro.hetero` — heterogeneous processing engines (GPU/DSP
  pools, multi-version EUs, EU-to-engine mapping heuristics),
* :mod:`repro.workloads` — synthetic task-set generators,
* :mod:`repro.faults` — fault-injection campaigns,
* :mod:`repro.analysis` — cost calibration and trace analysis,
* :mod:`repro.obs` — metrics registry, trace tooling, and the live
  monitoring plane (:mod:`repro.obs.live`: in-sim time-series, SLO
  burn-rate alerts, closed-loop reactions).
"""

from repro.admission import (
    AdmissionController,
    AdmissionRequest,
    ResponseTimeTest,
    SpringProbeTest,
    UtilizationTest,
)
from repro.core.costs import DispatcherCosts
from repro.core.heug import (
    CodeEU,
    ConditionVariable,
    EUAttributes,
    InvEU,
    Precedence,
    Resource,
    Task,
)
from repro.core.attributes import Aperiodic, Periodic, Sporadic
from repro.faults import Campaign, CampaignResult, FaultPlan, random_plan
from repro.hetero import (
    Assignment,
    EngineClass,
    HeterogeneousPool,
    apply_assignment,
    auto_map,
    cpu_only,
    enumerate_assignments,
    map_task,
)
from repro.obs.forensics import forensics_report
from repro.obs.live import (
    Alert,
    BurnRateRule,
    LiveMonitor,
    SloSpec,
    react_degrade,
    react_reconfigure,
    react_revert,
)
from repro.obs.metrics import MetricsRegistry, RunReport, resolve_metrics
from repro.obs.spans import SpanForest, critical_path, decompose, reconstruct
from repro.obs.timeline import build_timeline, write_timeline
from repro.scenarios import (
    DeterministicService,
    LogNormalService,
    ParetoService,
    Scenario,
    ScenarioResult,
    Scoreboard,
    ServiceTimeModel,
    TenantSLO,
    scenario,
)
from repro.scheduling import (
    DMScheduler,
    EDFScheduler,
    FIFOScheduler,
    FixedPriorityScheduler,
    RMScheduler,
    SpringScheduler,
)
from repro.sim.engine import Simulator
from repro.sim.sharded import ShardRunResult, auto_partition, run_sharded
from repro.sim.event_set import available_backends, resolve_backend
from repro.sim.trace import Tracer, TraceRecord, load_trace
from repro.system import HadesSystem, RunOptions
from repro.workloads.arrivals import diurnal_profile, nhpp_arrivals

__version__ = "1.7.0"

__all__ = [
    # deployment facade
    "HadesSystem",
    "RunOptions",
    "Simulator",
    # production traffic scenarios (fluent builder)
    "Scenario",
    "ScenarioResult",
    "scenario",
    "Scoreboard",
    "TenantSLO",
    "ServiceTimeModel",
    "DeterministicService",
    "LogNormalService",
    "ParetoService",
    "diurnal_profile",
    "nhpp_arrivals",
    # engine backend selection
    "available_backends",
    "resolve_backend",
    # HEUG task model
    "Task",
    "CodeEU",
    "InvEU",
    "EUAttributes",
    "Precedence",
    "Resource",
    "ConditionVariable",
    # arrival laws
    "Periodic",
    "Sporadic",
    "Aperiodic",
    # dispatcher cost model
    "DispatcherCosts",
    # scheduling policies
    "EDFScheduler",
    "RMScheduler",
    "DMScheduler",
    "SpringScheduler",
    "FixedPriorityScheduler",
    "FIFOScheduler",
    # admission control & overload management
    "AdmissionController",
    "AdmissionRequest",
    "UtilizationTest",
    "ResponseTimeTest",
    "SpringProbeTest",
    # heterogeneous engines & EU-to-engine mapping (repro.hetero)
    "EngineClass",
    "HeterogeneousPool",
    "Assignment",
    "map_task",
    "apply_assignment",
    "auto_map",
    "cpu_only",
    "enumerate_assignments",
    # fault-injection campaigns
    "Campaign",
    "CampaignResult",
    "FaultPlan",
    "random_plan",
    # observability
    "MetricsRegistry",
    "RunReport",
    "resolve_metrics",
    "Tracer",
    "TraceRecord",
    "load_trace",
    # live monitoring plane (burn-rate SLO alerts, closed-loop reactions)
    "LiveMonitor",
    "SloSpec",
    "BurnRateRule",
    "Alert",
    "react_reconfigure",
    "react_degrade",
    "react_revert",
    # sharded conservative parallel simulation
    "ShardRunResult",
    "auto_partition",
    "run_sharded",
    # causal spans, forensics, timeline export
    "SpanForest",
    "reconstruct",
    "critical_path",
    "decompose",
    "forensics_report",
    "build_timeline",
    "write_timeline",
    "__version__",
]
