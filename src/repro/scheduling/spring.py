"""Planning-based scheduling in the style of Spring (Ramamritham,
Stankovic & Shiah 1990).

The Spring kernel *guarantees* tasks dynamically: when a task arrives,
the scheduler tries to build a full plan (a sequence of start times)
in which every already-guaranteed task and the newcomer all meet their
deadlines; if no plan is found the newcomer is rejected (and a
recovery action can run instead).  Plans are built by a heuristic
search: candidates are ordered by a heuristic function H (minimum
deadline, minimum laxity, ...) with optional limited backtracking.

On HADES (§3.1.2): "attribute earliest ... serves at implementing
static and dynamic planning-based scheduling algorithms".  This
scheduler assigns each guaranteed unit an *earliest start time* equal
to its planned slot and holds every unit it has not yet placed, so the
dispatcher executes exactly the plan.  Rejected instances are aborted
and recorded, which benchmarks use to measure the guarantee ratio.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.dispatcher import NEVER, EUState
from repro.core.notifications import Notification, NotificationKind
from repro.core.scheduler_api import SchedulerBase
from repro.kernel.priorities import PRIO_MAX_APPL

#: Heuristic functions H(candidate, now): smaller = scheduled earlier.
Heuristic = Callable[["_Job", int], float]


def h_min_deadline(job: "_Job", _now: int) -> float:
    """Spring heuristic: earliest absolute deadline first."""
    return job.deadline


def h_min_laxity(job: "_Job", now: int) -> float:
    """Spring heuristic: minimum laxity (deadline - now - work) first."""
    return job.deadline - now - job.wcet


def h_min_wcet(job: "_Job", _now: int) -> float:
    """Spring heuristic: shortest job first."""
    return job.wcet


class _Job:
    """Planner view of one guaranteed unit (a whole task instance,
    planned as the sequence of its units on one processor).

    With ``eui=None`` the job is a *hypothetical* probe (wcet/deadline
    given explicitly) used by :meth:`SpringScheduler.try_plan`; probes
    are always movable and never touch dispatcher state.
    """

    def __init__(self, eui=None, wcet: int = 0,
                 deadline: Optional[int] = None):
        self.eui = eui
        if eui is not None:
            self.wcet = eui.instance.task.total_wcet()
            self.deadline = (eui.instance.abs_deadline
                             if eui.instance.abs_deadline is not None
                             else NEVER)
        else:
            self.wcet = wcet
            self.deadline = deadline if deadline is not None else NEVER

    @property
    def alive(self) -> bool:
        """Whether the underlying work is still pending."""
        if self.eui is None:
            return True
        return self.eui.state not in (EUState.DONE, EUState.ABORTED)


class SpringScheduler(SchedulerBase):
    """Dynamic planning with admission control for one processor.

    ``overhead_per_unit`` is added to each job's planned cost so the
    plan accounts for the dispatcher constants (the §4/§5 methodology
    applied to planning-based scheduling).
    """

    policy_name = "spring"

    def __init__(self, scope: str, heuristic: Heuristic = h_min_deadline,
                 backtrack: int = 2, overhead_per_unit: int = 0,
                 home_node: Optional[str] = None, w_sched: int = 3):
        super().__init__(scope=scope, home_node=home_node, w_sched=w_sched)
        self.heuristic = heuristic
        self.backtrack = backtrack
        self.overhead_per_unit = overhead_per_unit
        #: instance key -> planned start (absolute).
        self.plan: Dict[object, int] = {}
        self._guaranteed: List[_Job] = []
        self.guaranteed_count = 0
        self.rejected_count = 0

    # -- notification treatment ---------------------------------------------

    def handle(self, notification: Notification) -> None:
        """Admit newcomers on Atv; retire finished jobs on Trm."""
        eui = notification.eu_instance
        if notification.kind is NotificationKind.ATV:
            # Only plan once per instance (its first unit); subsequent
            # units inherit the instance's slot through precedence.
            sources = eui.instance.task.sources()
            if eui.eu not in sources or eui.eu is not sources[0]:
                return
            self._admit(eui)
        elif notification.kind is NotificationKind.TRM:
            if eui.instance.remaining <= 1:
                self.plan.pop(eui.instance.key, None)
                self._guaranteed = [job for job in self._guaranteed
                                    if job.alive]

    # -- the guarantee algorithm ------------------------------------------------

    def _admit(self, eui) -> None:
        now = self.dispatcher.sim.now
        newcomer = _Job(eui)
        plan = self._plan_with(newcomer, now)
        if plan is None:
            self.rejected_count += 1
            self.dispatcher.tracer.record("scheduler", "spring_reject",
                                          task=eui.instance.task.name,
                                          seq=eui.instance.seq)
            self.dispatcher.abort_instance(eui.instance, reason="not_guaranteed")
            return
        self.guaranteed_count += 1
        self._guaranteed.append(newcomer)
        for job, start in plan.items():
            self.plan[job.eui.instance.key] = start
            if job.eui.state not in (EUState.DONE, EUState.ABORTED):
                self.set_priority(job.eui, PRIO_MAX_APPL)
                self.set_earliest(job.eui, start)

    def _plan_with(self, newcomer: _Job, now: int
                   ) -> Optional[Dict[_Job, int]]:
        """Plan the currently guaranteed set plus ``newcomer``."""
        candidates = [job for job in self._guaranteed if job.alive]
        candidates.append(newcomer)
        return self._build_plan(candidates, now, self.backtrack,
                                newcomer=newcomer)

    def try_plan(self, wcet: int, deadline: Optional[int] = None
                 ) -> Optional[Dict[_Job, int]]:
        """Side-effect-free guarantee probe.

        Answers "would a hypothetical job of ``wcet`` microseconds with
        absolute ``deadline`` be guaranteed *right now*, alongside
        everything already guaranteed?" without committing anything:
        neither ``plan`` / ``_guaranteed`` / the counters nor any
        dispatcher thread parameter is touched.  Returns the candidate
        plan ({job: start}, probe included) or ``None`` if the search
        finds no feasible plan — exactly the accept/reject answer
        :meth:`_admit` would give, making this the *try-only* mode the
        admission layer uses as its Spring guarantee test.
        """
        if self.dispatcher is None:
            raise RuntimeError("try_plan requires an attached scheduler")
        probe = _Job(wcet=wcet, deadline=deadline)
        return self._plan_with(probe, self.dispatcher.sim.now)

    def _build_plan(self, jobs: List[_Job], now: int, backtrack: int,
                    newcomer: Optional[_Job] = None
                    ) -> Optional[Dict[_Job, int]]:
        """Heuristic sequential plan construction with backtracking.

        Returns {job: start time} covering every job, or None if the
        search (within the backtracking budget) finds no feasible plan.
        """
        remaining = list(jobs)
        plan: Dict[_Job, int] = {}
        cursor = now
        budget = [backtrack]

        def place(rest: List[_Job], cursor: int) -> bool:
            if not rest:
                return True
            ranked = sorted(rest, key=lambda j: (self.heuristic(j, cursor),
                                                 j.deadline))
            # Try the heuristic's first choice, then alternatives while
            # backtracking budget remains.
            for index, job in enumerate(ranked):
                if index > 0:
                    if budget[0] <= 0:
                        return False
                    budget[0] -= 1
                cost = job.wcet + self.overhead_per_unit
                start = cursor
                finish = start + cost
                if finish > job.deadline:
                    continue  # this placement already misses; try another
                plan[job] = start
                rest_after = [j for j in ranked if j is not job]
                if place(rest_after, finish):
                    return True
                del plan[job]
            return False

        # Already-running jobs keep their original start; re-planning
        # must not move work that has begun.  The newcomer is always
        # movable: it has at most a zero-progress head start.
        fixed = [job for job in remaining
                 if job is not newcomer and job.eui.start_time is not None]
        for job in fixed:
            planned = self.plan.get(job.eui.instance.key, now)
            plan[job] = planned
            cursor = max(cursor, planned + job.wcet + self.overhead_per_unit)
        movable = [job for job in remaining if job not in fixed]
        if place(movable, cursor):
            return plan
        return None
