"""Fixed-priority schedulers: Rate Monotonic and Deadline Monotonic.

"A static priority assignation can be used to implement static
priority-based scheduling algorithms like RM" (§3.1.2).  These
schedulers compute the assignment once, at attach time, and write it
into the Code_EU attributes of the registered tasks, so every future
instance is created directly with the right priority (no activation
race).  ``Atv``/``Trm`` notifications still flow to the scheduler task
(whose per-notification cost is what the §5.3 test charges) but need no
reaction.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.core.attributes import Periodic, Sporadic
from repro.core.heug import Task
from repro.core.notifications import Notification
from repro.core.scheduler_api import SchedulerBase
from repro.kernel.priorities import PRIO_MAX_APPL, PRIO_MIN_APPL


class FixedPriorityScheduler(SchedulerBase):
    """Base for policies that derive one static priority per task.

    Subclasses provide ``key(task)``: tasks are ranked by ascending key
    (smaller key = higher priority).  Ties break by task name for
    determinism.
    """

    policy_name = "fixed"

    def __init__(self, tasks: Sequence[Task], scope: Optional[str] = None,
                 home_node: Optional[str] = None, w_sched: int = 1,
                 manage_only: Optional[set] = None):
        if manage_only is None:
            # A fixed-priority scheduler naturally manages exactly the
            # tasks whose priorities it assigned.
            manage_only = {task.name for task in tasks}
        super().__init__(scope=scope, home_node=home_node, w_sched=w_sched,
                         manage_only=manage_only)
        self.tasks = list(tasks)
        self.priority_map: Dict[str, int] = {}

    def key(self, task: Task) -> int:
        """Ranking key: smaller = higher priority (policy-specific)."""
        raise NotImplementedError

    def assign_priorities(self) -> Dict[str, int]:
        """Rank tasks and return the {task name: priority} map."""
        ranked = sorted(self.tasks, key=lambda t: (self.key(t), t.name))
        mapping: Dict[str, int] = {}
        for rank, task in enumerate(ranked):
            mapping[task.name] = max(PRIO_MIN_APPL, PRIO_MAX_APPL - rank)
        return mapping

    def on_attach(self) -> None:
        """Write the static assignment into the tasks' EU attributes."""
        self.priority_map = self.assign_priorities()
        for task in self.tasks:
            priority = self.priority_map[task.name]
            for eu in task.code_eus():
                eu.attrs.prio = priority
                if eu.attrs.pt is None or eu.attrs.pt < priority:
                    eu.attrs.pt = priority

    def handle(self, notification: Notification) -> None:
        """Static policy: notifications need (almost) no reaction."""
        # Static assignment: nothing to adjust at run time.  If a task
        # unknown at attach time shows up, give it background priority.
        eui = notification.eu_instance
        if (eui.instance.task.name not in self.priority_map
                and eui.priority > PRIO_MIN_APPL):
            self.set_priority(eui, PRIO_MIN_APPL)


class RMScheduler(FixedPriorityScheduler):
    """Rate Monotonic: shorter period (or pseudo-period) = higher priority.

    Requires every task to have a periodic or sporadic arrival law
    (Liu & Layland's model).
    """

    policy_name = "rm"

    def key(self, task: Task) -> int:
        """Ranking key for this policy (smaller = higher priority)."""
        law = task.arrival
        if isinstance(law, Periodic):
            return law.period
        if isinstance(law, Sporadic):
            return law.pseudo_period
        raise ValueError(
            f"RM needs periodic/sporadic tasks; {task.name} is neither")


class DMScheduler(FixedPriorityScheduler):
    """Deadline Monotonic: shorter relative deadline = higher priority."""

    policy_name = "dm"

    def key(self, task: Task) -> int:
        """Ranking key for this policy (smaller = higher priority)."""
        if task.deadline is None:
            raise ValueError(f"DM needs a deadline on task {task.name}")
        return task.deadline
