"""Scheduling policies — the application-domain-dedicated components.

The paper's flexibility claim rests on isolating everything that
depends on application task characteristics into interchangeable
*scheduler* components built over the generic dispatcher (§2.2.1).
This package provides the policies the paper reports implementing:

* priority-based: Rate Monotonic (:mod:`repro.scheduling.rm`),
  Deadline Monotonic (:mod:`repro.scheduling.dm`),
  Earliest Deadline First (:mod:`repro.scheduling.edf`),
* planning-based: a Spring-style guarantee scheduler
  (:mod:`repro.scheduling.spring`),
* protocols avoiding multiple priority inversions: Priority Ceiling
  (:mod:`repro.scheduling.pcp`) and Stack Resource Policy
  (:mod:`repro.scheduling.srp`),
* a best-effort FIFO baseline (:mod:`repro.scheduling.fifo`) for the
  cohabitation scenario discussed in §2.2.1.

All of them use only the public scheduler interface: the shared FIFO
notification queue and the dispatcher primitive.
"""

from repro.scheduling.edf import EDFScheduler
from repro.scheduling.fifo import FIFOScheduler
from repro.scheduling.fixed_priority import (
    DMScheduler,
    FixedPriorityScheduler,
    RMScheduler,
)
from repro.scheduling.offline_plan import (
    Job,
    Placement,
    StaticPlan,
    build_plan,
    plan_to_system,
)
from repro.scheduling.pcp import DynamicPCPProtocol, PCPProtocol
from repro.scheduling.spring import SpringScheduler
from repro.scheduling.srp import SRPProtocol, preemption_levels

__all__ = [
    "DMScheduler",
    "Job",
    "Placement",
    "StaticPlan",
    "build_plan",
    "plan_to_system",
    "EDFScheduler",
    "FIFOScheduler",
    "FixedPriorityScheduler",
    "DynamicPCPProtocol",
    "PCPProtocol",
    "RMScheduler",
    "SpringScheduler",
    "SRPProtocol",
    "preemption_levels",
]
