"""Earliest Deadline First via the scheduler/dispatcher protocol.

This is the policy of the paper's Figure 2: on every thread activation
(``Atv``) the scheduler reorders live threads by absolute deadline and
uses the dispatcher primitive to give the earliest deadline the highest
priority; ``Trm`` removes the finished thread from the live set (the
figure shows EDF ignoring it, because nothing needs reordering — we do
the same unless priorities must be compacted).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.notifications import Notification, NotificationKind
from repro.core.scheduler_api import SchedulerBase
from repro.kernel.priorities import PRIO_MAX_APPL, PRIO_MIN_APPL

#: Deadline used for units whose task declares none (runs at background
#: priority under EDF).
_NO_DEADLINE = 2 ** 62


class EDFScheduler(SchedulerBase):
    """Dynamic-priority EDF for one processor (``scope`` = node id)."""

    policy_name = "edf"

    def __init__(self, scope: str, w_sched: int = 2,
                 home_node: Optional[str] = None, manage_only=None):
        super().__init__(scope=scope, home_node=home_node, w_sched=w_sched,
                         manage_only=manage_only)
        self._live: List = []  # EUInstance, insertion ordered

    @staticmethod
    def _deadline_of(eui) -> int:
        if eui.deadline is not None:
            return eui.deadline
        if eui.instance.abs_deadline is not None:
            return eui.instance.abs_deadline
        return _NO_DEADLINE

    def handle(self, notification: Notification) -> None:
        """Reorder live units by absolute deadline (Atv) / retire (Trm)."""
        eui = notification.eu_instance
        if notification.kind is NotificationKind.ATV:
            self._live.append(eui)
            self._reassign()
        elif notification.kind is NotificationKind.TRM:
            if eui in self._live:
                self._live.remove(eui)
        # Rac/Rre are ignored by plain EDF (Figure 2's behaviour); pair
        # with SRPProtocol for resource-sharing workloads.

    def _reassign(self) -> None:
        """Map deadline order onto the application priority band."""
        from repro.core.dispatcher import EUState

        self._live = [eui for eui in self._live
                      if eui.state not in (EUState.DONE, EUState.ABORTED)]
        # Stable sort: ties keep activation order.
        ordered = sorted(self._live, key=self._deadline_of)
        for rank, eui in enumerate(ordered):
            priority = max(PRIO_MIN_APPL, PRIO_MAX_APPL - rank)
            if eui.priority != priority:
                self.set_priority(eui, priority)
