"""Stack Resource Policy (Baker 1991), as a dispatcher start gate.

SRP assigns each task a static *preemption level* (higher for shorter
relative deadline) and each resource a *ceiling* (the highest
preemption level among tasks that may use it).  A job may start only
when its preemption level is strictly higher than the *system ceiling*
— the maximum ceiling over currently held resources.  The classic
properties follow: a job is blocked at most once, before it starts,
and deadlock is impossible.

In HADES terms (paper footnote 2, §3.2.2): the protocol observes the
dispatcher's resource state and vetoes unit starts through the
synchronous start-gate hook; releases re-open the gate.  SRP composes
with EDF (the pairing analysed in §5: "EDF preemptive scheduling
algorithm, and SRP") or with any fixed-priority scheduler.

Only the *first* unit of a task instance is gated: once a job has
started, SRP guarantees it never blocks, so mid-graph units pass
freely.  Because the dispatcher grants resources at unit *release*
rather than at execution start, a start decision taken mid-instant
could race with a same-instant grant to an already-started job; the
gate therefore defers its decision to the tail of the current instant
(same timestamp) whenever another managed job is in flight.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Set

from repro.core.heug import Task
from repro.core.notifications import Notification, NotificationKind
from repro.core.resources import Resource
from repro.core.scheduler_api import SchedulerBase


def preemption_levels(tasks: Sequence[Task]) -> Dict[str, int]:
    """Preemption levels by relative deadline: shorter D = higher level.

    Tasks without a deadline get level 0 (never allowed to block
    anyone by starting — they still run when the ceiling is clear).
    """
    with_deadline = sorted(
        (task for task in tasks if task.deadline is not None),
        key=lambda t: (-t.deadline, t.name))
    levels = {task.name: 0 for task in tasks}
    for rank, task in enumerate(with_deadline):
        levels[task.name] = rank + 1
    return levels


def resource_ceilings(tasks: Sequence[Task],
                      levels: Dict[str, int]) -> Dict[Resource, int]:
    """Ceiling of each resource: max preemption level of its users."""
    ceilings: Dict[Resource, int] = {}
    for task in tasks:
        level = levels[task.name]
        for eu in task.code_eus():
            for resource, _mode in eu.resources:
                ceilings[resource] = max(ceilings.get(resource, 0), level)
    return ceilings


class SRPProtocol(SchedulerBase):
    """SRP enforcement over the generic dispatcher.

    Attach *after* the priority-assigning scheduler, e.g.::

        dispatcher.attach_scheduler(EDFScheduler(scope="n0"))
        dispatcher.attach_scheduler(SRPProtocol(tasks, scope="n0"))
    """

    policy_name = "srp"

    def __init__(self, tasks: Sequence[Task], scope: Optional[str] = None,
                 home_node: Optional[str] = None, w_sched: int = 1,
                 levels: Optional[Dict[str, int]] = None):
        super().__init__(scope=scope, home_node=home_node, w_sched=w_sched)
        self.tasks = list(tasks)
        self.levels = levels if levels is not None else preemption_levels(
            self.tasks)
        self.ceilings: Dict[Resource, int] = resource_ceilings(
            self.tasks, self.levels)
        self._started_instances: Set = set()
        self._settled_at = -1
        self._settle_pending = False
        self.blocked_starts = 0

    # -- gate ------------------------------------------------------------

    def on_attach(self) -> None:
        """Install the SRP start gate on the dispatcher."""
        self.dispatcher.add_start_gate(self._gate)

    def system_ceiling(self) -> int:
        """Max ceiling over currently held resources (0 when all free)."""
        return max((ceiling for resource, ceiling in self.ceilings.items()
                    if not resource.free), default=0)

    def level_of(self, eui) -> int:
        """The preemption level of the unit's task (0 if unknown)."""
        return self.levels.get(eui.instance.task.name, 0)

    def _gate(self, eui) -> bool:
        # Gates are installed dispatcher-wide; only police the tasks
        # this protocol instance actually manages.
        if not self.manages(eui) or \
                eui.instance.task.name not in self.levels:
            return True
        instance_key = eui.instance.key
        if instance_key in self._started_instances:
            return True  # SRP only gates the job's first unit
        if self._settled_at != self.dispatcher.sim.now and \
                self._started_instances:
            # The dispatcher grants resources when a unit is *released*
            # (its predecessor finishes), and events at one simulated
            # instant drain in insertion order: a started job's grant
            # can still be pending behind us in this instant's queue.
            # Deciding now would test a stale ceiling and could admit a
            # job that then blocks mid-graph.  Defer the decision to
            # the tail of the instant — same timestamp, settled state.
            self._arm_settle()
            return False
        if self.level_of(eui) > self.system_ceiling():
            self._started_instances.add(instance_key)
            return True
        self.blocked_starts += 1
        return False

    def _arm_settle(self) -> None:
        if not self._settle_pending:
            self._settle_pending = True
            sim = self.dispatcher.sim
            sim.call_at(sim.now, self._settle_tick)

    def _settle_tick(self) -> None:
        sim = self.dispatcher.sim
        if sim.next_event_time() == sim.now:
            # More work queued at this instant (grant chains run through
            # zero-delay events) — stay behind it.
            sim.call_at(sim.now, self._settle_tick)
            return
        self._settle_pending = False
        self._settled_at = sim.now
        self.dispatcher.reevaluate_gated()

    # -- notifications -----------------------------------------------------

    def handle(self, notification: Notification) -> None:
        """Clean the started-jobs set when an instance's last unit ends."""
        # The dispatcher re-runs gated units on every release already
        # (reevaluate_gated); Trm cleans the started set.
        if notification.kind is NotificationKind.TRM:
            instance = notification.eu_instance.instance
            if instance.remaining <= 1:
                self._started_instances.discard(instance.key)
