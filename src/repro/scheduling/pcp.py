"""Priority Ceiling Protocol (dynamic ceilings variant, Chen & Lin 1990).

PCP avoids multiple priority inversions and deadlock by letting a unit
acquire its resources only when its priority is strictly higher than
the ceiling of every resource currently held by *other* jobs; when the
test fails, the blocked unit's priority is *inherited* by the holders
so that the blocking interval cannot be stretched by medium-priority
jobs.

Mapped onto HADES (paper footnote 2, §3.2.2): resource acquisition
happens at unit start (all-or-nothing), so the protocol is a start gate
for resource-claiming units, plus priority-inheritance bookkeeping
driven by the ``Rac``/``Rre``-visible state.  Use it with a
fixed-priority scheduler (RM/DM), the setting PCP was designed for.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.heug import Task
from repro.core.notifications import Notification, NotificationKind
from repro.core.resources import Resource
from repro.core.scheduler_api import SchedulerBase


def priority_ceilings(tasks: Sequence[Task]) -> Dict[Resource, int]:
    """Ceiling of each resource: highest priority among claiming units.

    Call after the fixed-priority scheduler has written its assignment
    into the Code_EU attributes.
    """
    ceilings: Dict[Resource, int] = {}
    for task in tasks:
        for eu in task.code_eus():
            for resource, _mode in eu.resources:
                ceilings[resource] = max(ceilings.get(resource, 0),
                                         eu.attrs.prio)
    return ceilings


class PCPProtocol(SchedulerBase):
    """PCP enforcement over the generic dispatcher."""

    policy_name = "pcp"

    def __init__(self, tasks: Sequence[Task], scope: Optional[str] = None,
                 home_node: Optional[str] = None, w_sched: int = 1):
        super().__init__(scope=scope, home_node=home_node, w_sched=w_sched)
        self.tasks = list(tasks)
        self.ceilings: Dict[Resource, int] = {}
        #: holder EUInstance -> original (priority, threshold) to restore.
        self._inherited: Dict[object, Tuple[int, int]] = {}
        #: units currently refused by the gate: inheritance is
        #: re-applied for them after every scheduler pass, because a
        #: dynamic-priority scheduler (EDF) overwrites priorities on
        #: each notification.
        self._blocked: List[object] = []
        self.blocked_requests = 0
        self.inheritance_events = 0

    def on_attach(self) -> None:
        """Compute ceilings (post priority assignment) and install the gate."""
        # Ceilings must reflect the (static) priorities in force, so
        # compute them lazily after priority assignment.
        self.ceilings = priority_ceilings(self.tasks)
        self.dispatcher.add_start_gate(self._gate)

    # -- the ceiling test -----------------------------------------------------

    def _held_by_others(self, eui) -> List[Resource]:
        held = []
        for resource in self.ceilings:
            for holder in resource.holders:
                if holder.instance is not eui.instance:
                    held.append(resource)
                    break
        return held

    def _gate(self, eui) -> bool:
        if not self.manages(eui):
            return True  # outside this protocol's jurisdiction
        claims = getattr(eui.eu, "resources", ())
        if not claims:
            return True  # PCP only mediates resource acquisition
        blocking = [resource for resource in self._held_by_others(eui)
                    if self.ceilings[resource] >= eui.priority]
        if not blocking:
            if eui in self._blocked:
                self._blocked.remove(eui)
            return True
        # Blocked: holders inherit the blocked unit's priority.
        self.blocked_requests += 1
        if eui not in self._blocked:
            self._blocked.append(eui)
        self._inherit(eui, blocking)
        return False

    def _inherit(self, eui, blocking) -> None:
        for resource in blocking:
            for holder in resource.holders:
                if holder.priority < eui.priority:
                    if holder not in self._inherited:
                        self._inherited[holder] = (
                            holder.priority, holder.preemption_threshold)
                    self.inheritance_events += 1
                    self.dispatcher.set_thread_params(
                        holder, priority=eui.priority)

    def _reapply_inheritance(self) -> None:
        """Re-assert inheritance for still-blocked units.

        A dynamic scheduler (EDF) reassigns priorities on every
        notification, silently undoing earlier inheritance; the
        protocol runs after it (attach order) and restores the boost.
        """
        from repro.core.dispatcher import EUState

        for eui in list(self._blocked):
            if eui.state is not EUState.ELIGIBLE:
                self._blocked.remove(eui)
                continue
            self._refresh_for(eui)
            blocking = [resource for resource in self._held_by_others(eui)
                        if self.ceilings[resource] >= eui.priority]
            self._inherit(eui, blocking)

    def _refresh_for(self, eui) -> None:
        """Hook: dynamic-ceiling variants recompute ceilings here."""

    # -- inheritance restore -----------------------------------------------------

    def handle(self, notification: Notification) -> None:
        """Restore inherited priorities on Rre; re-assert inheritance."""
        if notification.kind is NotificationKind.RRE:
            holder = notification.eu_instance
            restore = self._inherited.pop(holder, None)
            if restore is not None:
                priority, threshold = restore
                self.dispatcher.set_thread_params(
                    holder, priority=priority,
                    preemption_threshold=threshold)
        # Whatever arrived, the priority landscape may have moved (a
        # dynamic scheduler handled the same notification first).
        self._reapply_inheritance()


class DynamicPCPProtocol(PCPProtocol):
    """Dynamic priority ceilings (Chen & Lin 1990 — the paper's [CL90]).

    The original PCP assumes static priorities; [CL90] extends it to
    dynamic-priority schedulers like EDF by recomputing each resource's
    ceiling from the *current* priorities of its potential users: the
    ceiling of R at time t is the highest current priority among live
    units that may still claim R.  The gate and inheritance machinery
    are inherited from :class:`PCPProtocol`; only the ceiling lookup
    changes.  Pair it with :class:`~repro.scheduling.edf.EDFScheduler`.
    """

    policy_name = "dpcp"

    def on_attach(self) -> None:
        """Index claimants per resource and install the gate."""
        # Record, per resource, which (task name, eu name) pairs may
        # claim it; ceilings are then computed live.
        self._claimants: Dict[Resource, List[Tuple[str, str]]] = {}
        for task in self.tasks:
            for eu in task.code_eus():
                for resource, _mode in eu.resources:
                    self._claimants.setdefault(resource, []).append(
                        (task.name, eu.name))
        self.ceilings = {resource: 0 for resource in self._claimants}
        self.dispatcher.add_start_gate(self._gate)

    def _current_ceiling(self, resource: Resource) -> int:
        from repro.core.dispatcher import EUState

        ceiling = 0
        claimant_pairs = set(self._claimants.get(resource, ()))
        for instance in self.dispatcher.active_instances():
            for eui in instance.eu_instances.values():
                if eui.state in (EUState.DONE, EUState.ABORTED):
                    continue
                if (instance.task.name, eui.eu.name) in claimant_pairs:
                    ceiling = max(ceiling, eui.priority)
        return ceiling

    def _refresh_for(self, eui) -> None:
        # Refresh the ceilings of resources held by other jobs from the
        # live (EDF-assigned) priorities.
        for resource in self._held_by_others(eui):
            if resource in self._claimants:
                self.ceilings[resource] = self._current_ceiling(resource)

    def _gate(self, eui) -> bool:
        claims = getattr(eui.eu, "resources", ())
        if not claims:
            return True
        self._refresh_for(eui)
        return super()._gate(eui)
