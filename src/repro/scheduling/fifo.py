"""Best-effort FIFO scheduler.

The §2.2.1 cohabitation discussion restricts mixing to "a single
scheduler implementing a feasibility test and any number of best-effort
schedulers".  This is the canonical best-effort policy: every thread
gets the same background priority, so the CPU serves them in activation
order (the kernel breaks priority ties FIFO).  No feasibility test, no
guarantees — useful as the baseline the guaranteed policies are
compared against, and as the "any number of best-effort schedulers"
cohabitant.
"""

from __future__ import annotations

from typing import Optional

from repro.core.notifications import Notification, NotificationKind
from repro.core.scheduler_api import SchedulerBase
from repro.kernel.priorities import PRIO_MIN_APPL


class FIFOScheduler(SchedulerBase):
    """Run-to-completion, activation order, background priority."""

    policy_name = "fifo"

    def __init__(self, scope: Optional[str] = None, priority: int = PRIO_MIN_APPL,
                 home_node: Optional[str] = None, w_sched: int = 1,
                 manage_only=None):
        super().__init__(scope=scope, home_node=home_node, w_sched=w_sched,
                         manage_only=manage_only)
        self.priority = priority

    def handle(self, notification: Notification) -> None:
        """Treat one notification per this policy."""
        if notification.kind is NotificationKind.ATV:
            eui = notification.eu_instance
            if eui.priority != self.priority:
                self.set_priority(eui, self.priority,
                                  preemption_threshold=self.priority)
