"""Static planning-based scheduling (after Xu 1993, cited [Xu93]).

[Xu93] schedules processes with release times, deadlines, precedence
and exclusion relations on multiple processors, off-line.  The paper
cites it as the archetype of static planning-based policies that the
``earliest`` attribute supports ("static priority assignation... these
two kinds of definitions serve respectively at implementing static and
dynamic planning-based scheduling algorithms", §3.1.2).

This module implements that planning problem:

* :class:`Job` — release time, WCET, deadline, processor restriction,
  precedence over other jobs, and mutual-exclusion groups,
* :func:`build_plan` — deadline-driven list scheduling with bounded
  backtracking over the candidate order (a pragmatic stand-in for
  Xu's branch-and-bound: complete enough to solve the classical
  instances, clearly documented as heuristic),
* :func:`plan_to_system` — execute a plan on the middleware by pinning
  each job's Code_EU to its processor with ``earliest`` equal to the
  planned start (the §3.1.2 mechanism), verifying the plan really
  drives the dispatcher.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple


@dataclass
class Job:
    """One process to place in the static plan."""

    name: str
    wcet: int
    deadline: int
    release: int = 0
    #: names of jobs that must finish before this one starts
    predecessors: Tuple[str, ...] = ()
    #: jobs sharing an exclusion group never overlap in time, even on
    #: different processors (Xu's EXCLUSION relation)
    exclusion_group: Optional[str] = None
    #: restrict to one processor id (None = any)
    processor: Optional[str] = None

    def __post_init__(self) -> None:
        if self.wcet <= 0:
            raise ValueError(f"{self.name}: wcet must be > 0")
        if self.deadline <= self.release:
            raise ValueError(f"{self.name}: deadline before release")


@dataclass(frozen=True)
class Placement:
    """One job fixed to a processor and start time in the plan."""

    job: Job
    processor: str
    start: int

    @property
    def end(self) -> int:
        """Completion time of the placed job."""
        return self.start + self.job.wcet


@dataclass
class StaticPlan:
    """A complete static schedule: one placement per job."""

    placements: List[Placement] = field(default_factory=list)

    def by_name(self) -> Dict[str, Placement]:
        """Placements indexed by job name."""
        return {p.job.name: p for p in self.placements}

    @property
    def makespan(self) -> int:
        """Completion time of the whole plan."""
        return max((p.end for p in self.placements), default=0)

    def validate(self) -> None:
        """Check every Xu93 constraint holds in the plan."""
        table = self.by_name()
        for placement in self.placements:
            job = placement.job
            if placement.start < job.release:
                raise ValueError(f"{job.name}: starts before release")
            if placement.end > job.deadline:
                raise ValueError(f"{job.name}: misses its deadline")
            if job.processor is not None and \
                    placement.processor != job.processor:
                raise ValueError(f"{job.name}: wrong processor")
            for pred in job.predecessors:
                if table[pred].end > placement.start:
                    raise ValueError(
                        f"{job.name}: starts before predecessor {pred}")
        # No overlap on one processor; no overlap within an exclusion
        # group anywhere.
        for a_index, a in enumerate(self.placements):
            for b in self.placements[a_index + 1:]:
                overlap = a.start < b.end and b.start < a.end
                if not overlap:
                    continue
                if a.processor == b.processor:
                    raise ValueError(
                        f"{a.job.name}/{b.job.name} overlap on "
                        f"{a.processor}")
                if (a.job.exclusion_group is not None
                        and a.job.exclusion_group == b.job.exclusion_group):
                    raise ValueError(
                        f"{a.job.name}/{b.job.name} violate exclusion "
                        f"{a.job.exclusion_group}")


def build_plan(jobs: Sequence[Job], processors: Sequence[str],
               backtrack: int = 200) -> Optional[StaticPlan]:
    """Search for a feasible static plan; None if the (bounded) search
    fails.

    Strategy: jobs become *ready* when their predecessors are placed;
    among ready jobs try earliest-deadline first, backtracking over the
    alternatives within a step budget.
    """
    jobs = list(jobs)
    names = {job.name for job in jobs}
    for job in jobs:
        for pred in job.predecessors:
            if pred not in names:
                raise ValueError(f"{job.name}: unknown predecessor {pred}")

    budget = [backtrack]
    proc_free: Dict[str, int] = {proc: 0 for proc in processors}
    group_free: Dict[str, int] = {}
    placed: Dict[str, Placement] = {}
    order: List[Placement] = []

    def earliest_start(job: Job, processor: str) -> int:
        start = max(job.release, proc_free[processor])
        for pred in job.predecessors:
            start = max(start, placed[pred].end)
        if job.exclusion_group is not None:
            start = max(start, group_free.get(job.exclusion_group, 0))
        return start

    def ready_jobs(remaining: List[Job]) -> List[Job]:
        return [job for job in remaining
                if all(pred in placed for pred in job.predecessors)]

    def search(remaining: List[Job]) -> bool:
        if not remaining:
            return True
        candidates = sorted(ready_jobs(remaining),
                            key=lambda j: (j.deadline, j.release, j.name))
        if not candidates:
            return False  # cyclic precedence among the rest
        for index, job in enumerate(candidates):
            if index > 0:
                if budget[0] <= 0:
                    return False
                budget[0] -= 1
            proc_options = ([job.processor] if job.processor is not None
                            else sorted(processors,
                                        key=lambda p: proc_free[p]))
            for processor in proc_options:
                start = earliest_start(job, processor)
                if start + job.wcet > job.deadline:
                    continue
                placement = Placement(job, processor, start)
                saved = (proc_free[processor],
                         group_free.get(job.exclusion_group))
                placed[job.name] = placement
                order.append(placement)
                proc_free[processor] = placement.end
                if job.exclusion_group is not None:
                    group_free[job.exclusion_group] = placement.end
                rest = [j for j in remaining if j is not job]
                if search(rest):
                    return True
                # Undo.
                order.pop()
                del placed[job.name]
                proc_free[processor] = saved[0]
                if job.exclusion_group is not None:
                    if saved[1] is None:
                        group_free.pop(job.exclusion_group, None)
                    else:
                        group_free[job.exclusion_group] = saved[1]
                if budget[0] <= 0:
                    return False
        return False

    if search(jobs):
        plan = StaticPlan(list(order))
        plan.validate()
        return plan
    return None


def plan_to_system(plan: StaticPlan, system) -> Dict[str, object]:
    """Execute a plan on the middleware.

    Each job becomes a single-unit HEUG pinned to its planned processor
    with ``earliest`` = planned start (the §3.1.2 static planning
    mechanism) at the highest application priority.  Returns the task
    instances, keyed by job name, after activation (caller runs the
    simulator).
    """
    from repro.core.attributes import EUAttributes
    from repro.core.heug import Task
    from repro.kernel.priorities import PRIO_MAX_APPL

    instances = {}
    for placement in plan.placements:
        job = placement.job
        task = Task(f"plan.{job.name}",
                    deadline=max(1, job.deadline),
                    node_id=placement.processor)
        task.code_eu("eu", wcet=job.wcet,
                     attrs=EUAttributes(prio=PRIO_MAX_APPL,
                                        earliest=placement.start))
        instances[job.name] = system.activate(task)
    return instances
